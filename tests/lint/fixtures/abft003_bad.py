"""Fixture: exact float equality on rounding-sensitive quantities."""


def detect(syndrome, threshold):
    if syndrome == 0.0:  # MARK:ABFT003
        return False
    return syndrome != threshold  # MARK:ABFT003


def converged(residual_norm):
    return residual_norm == -0.0  # MARK:ABFT003
