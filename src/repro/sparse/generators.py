"""Synthetic sparse-matrix generators.

The paper evaluates on 25 symmetric positive-definite matrices from the
Florida (SuiteSparse) collection.  This environment has no network access, so
:mod:`repro.sparse.suite` substitutes synthetic analogues built from the
generators in this module.  All generators return SPD matrices in CSR form:

* :func:`poisson2d` / :func:`poisson3d` — classic finite-difference
  Laplacians (the canonical PCG model problems);
* :func:`banded_spd` — random banded SPD matrices with controllable
  bandwidth and in-band density;
* :func:`random_spd` — random SPD matrices with a target nnz and a
  locality parameter that mimics the clustered structure of FEM meshes.

SPD-ness is obtained by making every matrix strictly diagonally dominant
with a positive diagonal, which is sufficient (Gershgorin) and keeps the
generators simple and robust.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


def _spd_from_offdiag(
    n: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, dominance: float
) -> CsrMatrix:
    """Assemble an SPD CSR matrix from off-diagonal triplets.

    The triplets are symmetrized (both ``(i, j)`` and ``(j, i)`` are stored)
    and a diagonal is added so that every row satisfies
    ``a_ii = sum_j |a_ij| + dominance``.
    """
    keep = rows != cols
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    sym_rows = np.concatenate([rows, cols])
    sym_cols = np.concatenate([cols, rows])
    sym_vals = np.concatenate([vals, vals])
    off = CooMatrix((n, n), sym_rows, sym_cols, sym_vals).deduplicated()
    row_abs = np.zeros(n, dtype=np.float64)
    np.add.at(row_abs, off.row, np.abs(off.data))
    diag = row_abs + dominance
    all_rows = np.concatenate([off.row, np.arange(n, dtype=np.int64)])
    all_cols = np.concatenate([off.col, np.arange(n, dtype=np.int64)])
    all_vals = np.concatenate([off.data, diag])
    return CooMatrix((n, n), all_rows, all_cols, all_vals).to_csr()


def poisson2d(
    nx: int, ny: int | None = None, dtype: object = np.float64
) -> CsrMatrix:
    """Five-point finite-difference Laplacian on an ``nx`` x ``ny`` grid.

    Returns the standard SPD matrix with 4 on the diagonal and -1 for each
    of the (up to four) grid neighbours.  ``n = nx * ny``.  ``dtype``
    selects the storage precision (assembly runs in float64 and casts
    once at the end; the default returns the historic float64 matrix).
    """
    if nx <= 0:
        raise ConfigurationError(f"grid dimension must be positive, got nx={nx}")
    ny = nx if ny is None else ny
    if ny <= 0:
        raise ConfigurationError(f"grid dimension must be positive, got ny={ny}")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(ny, nx)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    pairs = np.concatenate([right, down], axis=1)
    vals = np.full(pairs.shape[1], -1.0)
    n = nx * ny
    # Dominance of 0 would give the singular Neumann Laplacian; the classic
    # Dirichlet matrix keeps the diagonal at 4 everywhere, so boundary rows
    # are strictly dominant and the matrix is SPD.
    keep = pairs[0] != pairs[1]
    rows, cols, v = pairs[0][keep], pairs[1][keep], vals[keep]
    sym_rows = np.concatenate([rows, cols])
    sym_cols = np.concatenate([cols, rows])
    sym_vals = np.concatenate([v, v])
    diag_rows = np.arange(n, dtype=np.int64)
    diag_vals = np.full(n, 4.0)
    all_rows = np.concatenate([sym_rows, diag_rows])
    all_cols = np.concatenate([sym_cols, diag_rows])
    all_vals = np.concatenate([sym_vals, diag_vals])
    return CooMatrix((n, n), all_rows, all_cols, all_vals).to_csr().astype(dtype)


def poisson3d(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    dtype: object = np.float64,
) -> CsrMatrix:
    """Seven-point finite-difference Laplacian on an ``nx*ny*nz`` grid."""
    if nx <= 0:
        raise ConfigurationError(f"grid dimension must be positive, got nx={nx}")
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if ny <= 0 or nz <= 0:
        raise ConfigurationError("grid dimensions must be positive")
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    pairs = [
        np.stack([idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()]),
        np.stack([idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()]),
        np.stack([idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()]),
    ]
    pairs = np.concatenate(pairs, axis=1)
    n = nx * ny * nz
    rows, cols = pairs[0], pairs[1]
    sym_rows = np.concatenate([rows, cols])
    sym_cols = np.concatenate([cols, rows])
    sym_vals = np.full(sym_rows.size, -1.0)
    diag_rows = np.arange(n, dtype=np.int64)
    all_rows = np.concatenate([sym_rows, diag_rows])
    all_cols = np.concatenate([sym_cols, diag_rows])
    all_vals = np.concatenate([sym_vals, np.full(n, 6.0)])
    return CooMatrix((n, n), all_rows, all_cols, all_vals).to_csr().astype(dtype)


def banded_spd(
    n: int,
    half_bandwidth: int,
    in_band_density: float = 1.0,
    seed: int | np.random.Generator = 0,
    dominance: float = 1.0,
    dtype: object = np.float64,
) -> CsrMatrix:
    """Random SPD matrix whose entries live within a diagonal band.

    Args:
        n: matrix dimension.
        half_bandwidth: maximum ``|i - j|`` of stored off-diagonal entries.
        in_band_density: probability that an in-band position is non-zero.
        seed: RNG seed or generator.
        dominance: additive diagonal slack (larger means better conditioned).
        dtype: storage precision of the returned matrix (assembly runs in
            float64 and casts once at the end).
    """
    if n <= 0:
        raise ConfigurationError(f"dimension must be positive, got n={n}")
    if half_bandwidth < 0 or half_bandwidth >= n:
        raise ConfigurationError(
            f"half_bandwidth must be in [0, n), got {half_bandwidth} for n={n}"
        )
    if not 0.0 <= in_band_density <= 1.0:
        raise ConfigurationError(f"in_band_density must be in [0, 1], got {in_band_density}")
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for offset in range(1, half_bandwidth + 1):
        count = n - offset
        mask = rng.random(count) < in_band_density
        i = np.nonzero(mask)[0].astype(np.int64)
        rows_list.append(i + offset)
        cols_list.append(i)
    if rows_list:
        rows = np.concatenate(rows_list)
        cols = np.concatenate(cols_list)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    vals = -rng.random(rows.size)  # negative off-diagonals, Laplacian-like
    return _spd_from_offdiag(n, rows, cols, vals, dominance).astype(dtype)


def random_spd(
    n: int,
    nnz_target: int,
    locality: float = 0.05,
    seed: int | np.random.Generator = 0,
    dominance: float = 1.0,
    dtype: object = np.float64,
) -> CsrMatrix:
    """Random SPD matrix with approximately ``nnz_target`` stored entries.

    Off-diagonal positions are drawn with column offsets from a folded
    normal distribution of scale ``locality * n``, which clusters entries
    near the diagonal the way FEM discretizations do.  The realized nnz is
    close to (but, because duplicates are merged, not exactly) the target.

    Args:
        n: matrix dimension.
        nnz_target: desired total stored entries, including the diagonal.
        locality: off-diagonal spread as a fraction of ``n`` (smaller is
            more banded).
        seed: RNG seed or generator.
        dominance: additive diagonal slack.
        dtype: storage precision of the returned matrix (assembly runs in
            float64 and casts once at the end).
    """
    if n <= 0:
        raise ConfigurationError(f"dimension must be positive, got n={n}")
    if nnz_target < n:
        raise ConfigurationError(
            f"nnz_target must cover at least the diagonal (n={n}), got {nnz_target}"
        )
    if locality <= 0:
        raise ConfigurationError(f"locality must be positive, got {locality}")
    rng = np.random.default_rng(seed)
    # Each sampled pair is stored twice (symmetrization); diagonal adds n.
    n_pairs = max(0, (nnz_target - n) // 2)
    spread = max(1.0, locality * n)
    # Tight bands collide heavily, so sample in rounds until the deduplicated
    # pair count reaches the target (or the band saturates).
    pair_ids = np.empty(0, dtype=np.int64)
    for _ in range(12):
        deficit = n_pairs - pair_ids.size
        if deficit <= 0:
            break
        n_draw = int(deficit * 1.3) + 8
        draw_rows = rng.integers(0, n, size=n_draw).astype(np.int64)
        offsets = np.rint(rng.normal(0.0, spread, size=n_draw)).astype(np.int64)
        offsets[offsets == 0] = 1
        draw_cols = np.clip(draw_rows + offsets, 0, n - 1)
        keep = draw_rows != draw_cols
        draw_rows, draw_cols = draw_rows[keep], draw_cols[keep]
        # Canonicalize to the lower triangle so symmetric duplicates merge.
        lo = np.minimum(draw_rows, draw_cols)
        hi = np.maximum(draw_rows, draw_cols)
        pair_ids = np.unique(np.concatenate([pair_ids, hi * n + lo]))
    if pair_ids.size > n_pairs:
        pick = rng.permutation(pair_ids.size)[:n_pairs]
        pair_ids = pair_ids[pick]
    rows = pair_ids // n
    cols = pair_ids % n
    vals = -rng.random(rows.size)
    return _spd_from_offdiag(n, rows, cols, vals, dominance).astype(dtype)


def block_stencil_spd(
    n_cells: int,
    block_edge: int,
    seed: int | np.random.Generator = 0,
    dominance: float = 1.0,
    dtype: object = np.float64,
) -> CsrMatrix:
    """FEM-style block-structured SPD matrix: dense tiles on a 5-point stencil.

    Models a finite-element discretization with ``block_edge`` degrees of
    freedom per mesh node: the ``n_cells`` nodes sit on a (near-)square
    grid and each node couples to itself and its (up to four) grid
    neighbours through a fully dense ``block_edge x block_edge`` tile.
    Converted to BSR at the matching tile size, the fill ratio is exactly
    1.0 — the regime where the tile pipeline beats CSR.

    ``n = n_cells * block_edge``.
    """
    if n_cells <= 0:
        raise ConfigurationError(f"n_cells must be positive, got {n_cells}")
    if block_edge <= 0:
        raise ConfigurationError(f"block_edge must be positive, got {block_edge}")
    rng = np.random.default_rng(seed)
    side = max(1, int(np.sqrt(n_cells)))
    cell = np.arange(n_cells, dtype=np.int64)
    neighbour_offsets = (-side, -1, 1, side)
    pair_rows = [cell]
    pair_cols = [cell]
    for offset in neighbour_offsets:
        other = cell + offset
        ok = (other >= 0) & (other < n_cells)
        if offset in (-1, 1):
            # No wrap-around coupling across grid-row boundaries.
            ok &= (cell // side) == (other // side)
        pair_rows.append(cell[ok])
        pair_cols.append(other[ok])
    brow = np.concatenate(pair_rows)
    bcol = np.concatenate(pair_cols)
    # Expand each (block row, block col) pair into a dense tile of entries.
    edge = np.arange(block_edge, dtype=np.int64)
    rows = (brow[:, None, None] * block_edge + edge[None, :, None]).repeat(
        block_edge, axis=2
    )
    cols = (bcol[:, None, None] * block_edge + edge[None, None, :]).repeat(
        block_edge, axis=1
    )
    keep = rows.ravel() != cols.ravel()
    vals = -rng.random(keep.size)
    return _spd_from_offdiag(
        n_cells * block_edge, rows.ravel()[keep], cols.ravel()[keep],
        vals[keep], dominance,
    ).astype(dtype)


def arrowhead_spd(n: int, seed: int | np.random.Generator = 0) -> CsrMatrix:
    """SPD arrowhead matrix (dense first row/column plus diagonal).

    A pathological pattern for block checksum schemes: one block sees every
    column.  Used by tests and ablations as a structural corner case.
    """
    if n <= 1:
        raise ConfigurationError(f"arrowhead needs n >= 2, got n={n}")
    rng = np.random.default_rng(seed)
    rows = np.arange(1, n, dtype=np.int64)
    cols = np.zeros(n - 1, dtype=np.int64)
    vals = -rng.random(n - 1)
    return _spd_from_offdiag(n, rows, cols, vals, dominance=1.0)
