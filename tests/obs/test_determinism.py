"""Telemetry determinism: identical runs produce identical event streams.

With a fake clock injected, two seeded ``run_pcg`` executions must emit
bit-identical events — the property that makes event logs diffable across
machines and usable as regression artifacts.
"""

import numpy as np
import pytest

from repro.obs import InMemoryExporter, Telemetry
from repro.solvers.ft_pcg import run_pcg
from repro.sparse import banded_spd

from tests.obs.conftest import FakeClock


def run_instrumented(seed=3, error_rate=1e-6):
    matrix = banded_spd(300, half_bandwidth=3, seed=0)
    b = np.ones(matrix.n_rows)
    tel = Telemetry(exporter=InMemoryExporter(), clock=FakeClock())
    result = run_pcg(
        matrix, b, scheme="ours", error_rate=error_rate, seed=seed, telemetry=tel
    )
    return result, tel.events()


def test_identical_runs_emit_identical_event_streams():
    result_a, events_a = run_instrumented()
    result_b, events_b = run_instrumented()
    assert result_a.iterations == result_b.iterations
    assert events_a == events_b  # full structural equality, timestamps included
    assert events_a  # and the stream is non-trivial


def test_different_seeds_diverge():
    _, events_a = run_instrumented(seed=3)
    _, events_b = run_instrumented(seed=4)
    assert events_a != events_b


def test_event_stream_matches_solver_accounting():
    result, events = run_instrumented(error_rate=1e-6)
    iteration_spans = [
        e for e in events if e["type"] == "span" and e["name"] == "pcg.iteration"
    ]
    assert len(iteration_spans) == result.iterations
    detections = sum(
        float(e["value"])
        for e in events
        if e["type"] == "counter" and e["name"] == "abft.detections"
    )
    assert detections == result.detections
    solves = [e for e in events if e["type"] == "span" and e["name"] == "pcg.solve"]
    assert len(solves) == 1
    assert solves[0]["depth"] == 0
    # Iteration spans nest directly under the solve span.
    assert all(span["parent"] == "pcg.solve" for span in iteration_spans)


def test_residual_gauge_tracks_convergence():
    result, events = run_instrumented(error_rate=0.0)
    residuals = [
        float(e["value"])
        for e in events
        if e["type"] == "gauge" and e["name"] == "pcg.residual_relative"
    ]
    assert len(residuals) == result.iterations
    assert result.converged
    assert residuals[-1] == pytest.approx(min(residuals))
