"""Cross-backend differential fault-injection matrix.

Two layers of the bit-identity contract:

1. **Scheme layer** — every registered scheme, configured with every
   execution backend (``AbftConfig(parallel=...)``), replays the golden
   corpus of PR 5 (clean + single burst) and must match the committed
   snapshots bit for bit.  A backend is an execution strategy, never a
   numerics change — even for schemes that take no planned path at all.

2. **Plan layer** — the planned ABFT multiply with real multi-shard
   fan-out (``serial_cutoff=0`` so ``processes`` engages on the tiny
   corpus): clean runs, per-shard injected bursts, and a flag-every-block
   correction storm must agree with the serial reference on value bits,
   detection/correction history, simulated seconds and flops.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import AbftConfig
from repro.core.protected import FaultTolerantSpMV
from repro.machine import Machine
from repro.perf import BUILTIN_BACKENDS, ProtectedPlan
from repro.schemes import BUILTIN_SCHEMES, make_scheme
from repro.sparse import random_spd

GOLDEN = Path(__file__).parent.parent / "schemes" / "golden"

#: Corpus parameters of the committed snapshots (see tests/schemes).
N, NNZ, MATRIX_SEED, RHS_SEED = 96, 900, 7, 123
BLOCK_SIZE = 16
BURST_INDEX, BURST_MAGNITUDE = 33, 1e4

#: Shard count of the plan-layer matrix (4 shards over 6 blocks).
N_SHARDS = 4

BACKENDS = tuple(sorted(BUILTIN_BACKENDS))


@pytest.fixture(scope="module")
def corpus():
    matrix = random_spd(N, NNZ, seed=MATRIX_SEED)
    b = np.random.default_rng(RHS_SEED).standard_normal(N)
    return matrix, b


def one_shot_burst(index=BURST_INDEX, magnitude=BURST_MAGNITUDE):
    state = {"armed": True}

    def hook(stage, data, work):
        if stage == "result" and state["armed"]:
            data[index] += magnitude
            state["armed"] = False

    return hook


def assert_matches_golden(result, golden):
    assert [float(v).hex() for v in result.value] == golden["value"]
    assert [bool(d) for d in result.detections] == golden["detections"]
    assert [[int(s), int(e)] for s, e in result.corrections] == golden["corrections"]
    assert [
        [int(block) for block in blocks] for blocks in result.detected_blocks
    ] == golden["detected_blocks"]
    assert [int(block) for block in result.corrected_blocks] == golden[
        "corrected_blocks"
    ]
    assert result.rounds == golden["rounds"]
    assert float(result.seconds).hex() == golden["seconds"]
    assert float(result.flops) == golden["flops"]
    assert bool(result.exhausted) is golden["exhausted"]


def snapshot(result):
    """Value-semantics copy of a result whose buffers a plan may reuse."""
    return {
        "value": [float(v).hex() for v in result.value],
        "detected": tuple(tuple(int(x) for x in d) for d in result.detected),
        "corrected_blocks": tuple(int(x) for x in result.corrected_blocks),
        "rounds": int(result.rounds),
        "seconds": float(result.seconds).hex(),
        "flops": float(result.flops),
        "exhausted": bool(result.exhausted),
    }


# ----------------------------------------------------------------------
# Scheme layer: every scheme x backend x scenario vs golden snapshots
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scenario", ("clean", "burst"))
@pytest.mark.parametrize("name", BUILTIN_SCHEMES)
def test_scheme_matches_golden_under_every_backend(corpus, name, scenario, backend):
    matrix, b = corpus
    golden = json.loads((GOLDEN / f"{name}_{scenario}.json").read_text())
    scheme = make_scheme(
        name,
        matrix,
        config=AbftConfig(block_size=BLOCK_SIZE, parallel=backend),
        machine=Machine(),
    )
    tamper = one_shot_burst() if scenario == "burst" else None
    result = scheme.multiply(b.copy(), tamper=tamper)
    assert_matches_golden(result, golden)


# ----------------------------------------------------------------------
# Plan layer: multi-shard fan-out across backends
# ----------------------------------------------------------------------
def _plan(corpus, backend, **config_kwargs):
    matrix, _ = corpus
    config = AbftConfig(block_size=BLOCK_SIZE, **config_kwargs)
    operator = FaultTolerantSpMV(matrix, config=config)
    return ProtectedPlan(
        operator,
        n_shards=N_SHARDS,
        parallel=backend,
        backend_options={"serial_cutoff": 0} if backend == "processes" else None,
        # The golden snapshots are CSR products; pin the format so a
        # REPRO_FORMAT override can't diverge the serial/threads legs from
        # the processes leg (which always coerces to CSR).
        sparse_format="csr",
    )


@pytest.fixture(scope="module")
def serial_reference(corpus):
    """Serial-backend snapshots for every plan-layer scenario."""
    _, b = corpus
    reference = {}
    with _plan(corpus, "serial") as plan:
        assert plan.spmv.n_shards == N_SHARDS
        reference["clean"] = snapshot(plan.multiply(b.copy()))
        for shard, (r0, r1) in enumerate(plan._shard_rows):
            tamper = one_shot_burst(index=(r0 + r1) // 2)
            reference[f"burst_shard{shard}"] = snapshot(
                plan.multiply(b.copy(), tamper=tamper)
            )
    with _plan(corpus, "serial", bound_scale=1e-12, max_correction_rounds=2) as plan:
        reference["flag_all"] = snapshot(plan.multiply(b.copy()))
    return reference


@pytest.mark.parametrize("backend", BACKENDS)
def test_plan_clean_multiply_bit_identical_across_backends(
    corpus, serial_reference, backend
):
    _, b = corpus
    with _plan(corpus, backend) as plan:
        if backend != "serial":
            assert plan.backend.parallel_active
        assert snapshot(plan.multiply(b.copy())) == serial_reference["clean"]
        # Steady state: repeated multiplies stay on the same bits.
        assert snapshot(plan.multiply(b.copy())) == serial_reference["clean"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_plan_per_shard_burst_bit_identical_across_backends(
    corpus, serial_reference, backend
):
    _, b = corpus
    with _plan(corpus, backend) as plan:
        for shard, (r0, r1) in enumerate(plan._shard_rows):
            tamper = one_shot_burst(index=(r0 + r1) // 2)
            result = snapshot(plan.multiply(b.copy(), tamper=tamper))
            assert result == serial_reference[f"burst_shard{shard}"], (
                f"backend {backend!r} diverged on shard {shard} burst"
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_plan_correction_storm_bit_identical_across_backends(
    corpus, serial_reference, backend
):
    """A microscopic bound flags every block: the fused correction round
    runs on every backend and must re-verify to the same bits."""
    _, b = corpus
    with _plan(
        corpus, backend, bound_scale=1e-12, max_correction_rounds=2
    ) as plan:
        result = snapshot(plan.multiply(b.copy()))
        assert result == serial_reference["flag_all"]
        assert result["corrected_blocks"]  # the storm actually corrected


def test_plan_clean_matches_unplanned_golden(corpus):
    """The multi-shard processes plan agrees with the committed unplanned
    abft snapshot — linking the plan layer back to the PR 5 corpus."""
    _, b = corpus
    golden = json.loads((GOLDEN / "abft_clean.json").read_text())
    with _plan(corpus, "processes") as plan:
        result = plan.multiply(b.copy())
        assert [float(v).hex() for v in result.value] == golden["value"]
        assert float(result.seconds).hex() == golden["seconds"]
        assert float(result.flops) == golden["flops"]
