"""End-to-end: JSONL exporter → ``python -m repro.obs summarize``."""

import numpy as np
import pytest

from repro.obs import JsonlExporter, Telemetry
from repro.obs.cli import EXIT_OK, EXIT_USAGE, main
from repro.obs.summary import aggregate_events, read_events, render_summary
from repro.solvers.ft_pcg import run_pcg
from repro.sparse import banded_spd


@pytest.fixture
def event_log(tmp_path):
    """JSONL log of one injected-fault protected solve."""
    path = tmp_path / "events.jsonl"
    tel = Telemetry(exporter=JsonlExporter(path))
    matrix = banded_spd(300, half_bandwidth=3, seed=0)
    result = run_pcg(
        matrix, np.ones(matrix.n_rows), scheme="ours", error_rate=1e-6, seed=3,
        telemetry=tel,
    )
    tel.close()
    assert result.detections >= 1  # the campaign must actually trip the scheme
    return path, result


def test_summarize_reports_the_protocol(event_log, capsys):
    path, result = event_log
    assert main(["summarize", str(path)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "== counters ==" in out
    assert "abft.detections" in out
    assert "abft.corrections" in out
    assert "== histograms ==" in out
    assert "abft.syndrome_margin" in out
    assert "== spans ==" in out
    assert "pcg.iteration" in out and "abft.multiply" in out


def test_summary_is_consistent_with_the_run(event_log):
    path, result = event_log
    summary = aggregate_events(read_events(path))
    assert summary.counters["abft.detections"] == result.detections
    assert summary.counters["abft.corrections"] >= result.corrections
    assert summary.span_count("pcg.iteration") == result.iterations
    assert summary.span_count("pcg.solve") == 1
    assert summary.histogram_values["abft.syndrome_margin"]


def test_summarize_missing_file(tmp_path, capsys):
    assert main(["summarize", str(tmp_path / "nope.jsonl")]) == EXIT_USAGE
    assert "error:" in capsys.readouterr().err


def test_summarize_skips_malformed_lines_with_warning(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        '{"type": "counter", "name": "abft.checks", "value": 2.0}\n'
        "not json\n"
        "[1, 2, 3]\n"
        '{"type": "counter", "name": "abft.checks", "value": 1.0}\n'
    )
    assert main(["summarize", str(bad)]) == EXIT_OK
    captured = capsys.readouterr()
    assert "skipped 2 corrupt line(s)" in captured.err
    assert "abft.checks" in captured.out  # the good lines still aggregate
    assert "3" in captured.out


def test_summarize_tolerates_mid_line_truncation(tmp_path, capsys):
    """A crashed writer leaves a torn final line; the log must still read."""
    log = tmp_path / "truncated.jsonl"
    full = '{"type": "counter", "name": "abft.detections", "value": 1.0}\n'
    log.write_text(full + '{"type": "hist", "name": "abft.syndro')
    assert main(["summarize", str(log)]) == EXIT_OK
    captured = capsys.readouterr()
    assert "skipped 1 corrupt line(s)" in captured.err
    assert "abft.detections" in captured.out


def test_summarize_json_output(event_log, capsys):
    import json as json_module

    path, result = event_log
    assert main(["summarize", str(path), "--json"]) == EXIT_OK
    payload = json_module.loads(capsys.readouterr().out)
    assert payload["counters"]["abft.detections"] == result.detections
    assert payload["skipped_lines"] == 0
    assert "abft.syndrome_margin" in payload["histogram_values"]
    assert payload["spans"]["pcg.solve"]["count"] == 1


def test_report_renders_markdown(event_log, tmp_path, capsys):
    path, result = event_log
    out = tmp_path / "report.md"
    assert main(["report", str(path), "--output", str(out)]) == EXIT_OK
    text = out.read_text()
    assert "# Telemetry campaign report" in text
    assert f"## {path.name}" in text
    assert "abft.detections" in text
    assert "### Span breakdown" in text
    assert "abft.syndrome_margin" in text
    # Without --output the report prints to stdout.
    assert main(["report", str(path)]) == EXIT_OK
    assert "# Telemetry campaign report" in capsys.readouterr().out


def test_expose_renders_openmetrics(event_log, capsys):
    path, result = event_log
    assert main(["expose", str(path)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "# TYPE abft_detections counter" in out
    assert f"abft_detections_total {result.detections}" in out
    assert 'abft_syndrome_margin_bucket{le="+Inf"}' in out
    assert out.rstrip().endswith("# EOF")


def test_exporters_subcommand_lists_builtins(capsys):
    assert main(["exporters"]) == EXIT_OK
    out = capsys.readouterr().out.split()
    for builtin in ("off", "memory", "jsonl", "text"):
        assert builtin in out


def test_render_summary_empty_stream():
    assert render_summary([]) == "(no events)"


def test_render_summary_survives_extreme_histogram_values():
    """Margins near the float64 extremes must not overflow the bucket edges."""
    events = [
        {"type": "hist", "name": "abft.syndrome_margin", "value": v, "attrs": {}}
        for v in (1e-310, 1e-9, 1.0, 1e308, float("inf"), float("nan"))
    ]
    text = render_summary(events)
    assert "abft.syndrome_margin" in text
    assert "inf" not in text.split("nan=")[0].split("max=")[0]  # edges stayed finite


def test_env_selected_jsonl_round_trip(tmp_path, monkeypatch):
    """REPRO_OBS=jsonl + REPRO_OBS_PATH: the acceptance-path selection."""
    from repro.obs import reset_telemetry_cache, resolve_telemetry

    path = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_OBS", "jsonl")
    monkeypatch.setenv("REPRO_OBS_PATH", str(path))
    reset_telemetry_cache()  # pick up the patched environment
    tel = resolve_telemetry(None)
    try:
        tel.count("abft.detections")
        tel.flush()
        events = read_events(path)
    finally:
        reset_telemetry_cache()
    assert events[0]["name"] == "abft.detections"
