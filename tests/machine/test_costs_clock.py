"""Unit tests for kernel cost builders and the execution meter."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import (
    HOST_SYNC_SPAN,
    DeviceParams,
    ExecutionMeter,
    KernelCost,
    Machine,
    TaskGraph,
    axpy_cost,
    blocked_checksum_cost,
    checkpoint_restore_cost,
    checkpoint_store_cost,
    checksum_matvec_cost,
    dense_check_cost,
    dot_cost,
    host_flag_cost,
    log2ceil,
    norm_cost,
    partial_spmv_cost,
    spmv_cost,
)


def test_log2ceil():
    assert log2ceil(1) == 1.0
    assert log2ceil(2) == 1.0
    assert log2ceil(3) == 2.0
    assert log2ceil(32) == 5.0
    assert log2ceil(33) == 6.0


def test_kernel_cost_rejects_negative():
    with pytest.raises(ConfigurationError):
        KernelCost(-1.0, 0.0)


def test_kernel_cost_fusion_adds():
    fused = KernelCost(10.0, 2.0) + KernelCost(5.0, 3.0)
    assert fused == KernelCost(15.0, 5.0)


def test_spmv_cost_counts_two_flops_per_entry():
    cost = spmv_cost(nnz=1000, max_row_nnz=16)
    assert cost.work == 2000.0
    assert cost.span == 4.0


def test_partial_spmv_cheaper_than_full():
    assert partial_spmv_cost(100, 16).work < spmv_cost(1000, 16).work


def test_dot_cost_two_pass_reduction():
    assert dot_cost(1024).span == 2 * 10.0
    assert dot_cost(1024).work == 2048.0


def test_norm_adds_sqrt():
    assert norm_cost(64).work == dot_cost(64).work + 1.0


def test_axpy_unit_span():
    assert axpy_cost(100) == KernelCost(200.0, 1.0)


def test_blocked_checksum_span_tracks_block_size():
    small = blocked_checksum_cost(n_rows=1024, block_size=4, n_blocks=256)
    large = blocked_checksum_cost(n_rows=1024, block_size=512, n_blocks=2)
    assert small.span < large.span
    assert small.work > large.work  # more blocks -> more syndrome entries


def test_blocked_checksum_rejects_bad_block():
    with pytest.raises(ConfigurationError):
        blocked_checksum_cost(10, 0, 10)


def test_dense_check_deeper_than_blocked():
    n = 4096
    dense = dense_check_cost(n)
    blocked = blocked_checksum_cost(n, 32, n // 32)
    assert dense.span > blocked.span


def test_checksum_matvec_is_spmv_shaped():
    assert checksum_matvec_cost(500, 30) == spmv_cost(500, 30)


def test_host_flag_is_pure_latency():
    cost = host_flag_cost()
    assert cost.work == 0.0
    assert cost.span == HOST_SYNC_SPAN


def test_checkpoint_costs_symmetric():
    assert checkpoint_store_cost(100) == checkpoint_restore_cost(100)


def test_meter_advance_and_snapshot():
    meter = ExecutionMeter()
    meter.advance(1.5, flops=10.0)
    meter.advance(0.5)
    assert meter.snapshot() == (2.0, 10.0)


def test_meter_rejects_negative():
    with pytest.raises(ConfigurationError):
        ExecutionMeter().advance(-1.0)


def test_meter_run_kernel_matches_solo_model():
    params = DeviceParams(throughput=100.0, launch_overhead=1.0, sync_time=0.5)
    meter = ExecutionMeter(machine=Machine(params))
    duration = meter.run_kernel(KernelCost(work=200.0, span=2.0))
    assert duration == pytest.approx(1.0 + max(2.0, 1.0))
    assert meter.flops == 200.0


def test_meter_run_graph_charges_makespan_and_work():
    params = DeviceParams(
        throughput=10.0, launch_overhead=0.0, sync_time=0.0, concurrency_boost=0.0
    )
    meter = ExecutionMeter(machine=Machine(params))
    g = TaskGraph()
    g.add("a", work=50.0)
    g.add("b", work=50.0)
    makespan = meter.run_graph(g)
    assert makespan == pytest.approx(10.0)
    assert meter.seconds == pytest.approx(10.0)
    assert meter.flops == 100.0


def test_meter_fork_shares_machine_but_not_counters():
    meter = ExecutionMeter()
    meter.advance(5.0, 5.0)
    fork = meter.fork()
    assert fork.machine is meter.machine
    assert fork.snapshot() == (0.0, 0.0)
