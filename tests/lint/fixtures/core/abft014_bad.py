"""Fixture: raw float64 coercions inside hot-path function bodies."""

import numpy as np

ACCUMULATION_DTYPE = np.dtype(np.float64)  # module-level constant is fine


def accumulate(values):
    return values.astype(np.float64)  # MARK:ABFT014


def allocate(n):
    return np.zeros(n, dtype=np.float64)  # MARK:ABFT014


def allocate_by_name(n):
    return np.zeros(n, dtype="float64")  # MARK:ABFT014


def scalar(x):
    return np.float64(x)  # MARK:ABFT014
