"""The built-in ABFT rule pack (ABFT001-ABFT007, ABFT013, ABFT014).

Each rule statically enforces one protocol invariant of the block-ABFT
scheme (Schoell et al., DSN 2016) that the runtime cannot check for
itself; ``docs/static_analysis.md`` gives the paper-grounded rationale for
every rule.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import (
    LintRule,
    ModuleContext,
    call_names,
    contains_raise,
    dotted_name,
    terminal_name,
)

#: Attributes whose mutation invalidates a protected matrix's checksums.
PROTECTED_ATTRS = frozenset({"data", "indices", "indptr"})

#: Calls that rebuild or refresh checksums after a mutation (ABFT001).
REFRESH_CALLS = frozenset(
    {"_refresh_operand_checksums", "build", "encode", "with_data", "refresh"}
)

#: Order-sensitive floating-point reductions (ABFT002).
REDUCTION_CALLS = frozenset(
    {"np.sum", "np.nansum", "np.add.reduceat", "np.cumsum", "np.dot",
     "np.matmul", "np.einsum", "math.fsum"}
)

#: Functions in ``kernels/base.py`` sanctioned to own the reduction order.
SANCTIONED_REDUCERS = frozenset({"segment_sums", "flat_segment_indices"})

#: Identifier fragments marking float quantities that must never be
#: compared exactly (ABFT003).
FLOAT_SENSITIVE_NAME = re.compile(
    r"(syndrome|threshold|bound|resid|norm|beta|tol|eps)", re.IGNORECASE
)

#: Narrow dtypes a silent ``astype`` must not downcast to (ABFT004).
NARROW_DTYPES = frozenset({"float32", "float16", "half", "single"})

#: Spellings of the accumulation dtype a hot path must not hardcode
#: (ABFT014) — the dtype policy owns them.
FLOAT64_LITERALS = frozenset({"np.float64", "numpy.float64", "float64"})

#: Parameter names that select a configuration variant and therefore need
#: a validation-error path (ABFT006).
SELECTOR_PARAMS = frozenset(
    {"kind", "weight_kind", "bound_kind", "mode", "scheme", "strategy", "method",
     "detector", "sparse_format"}
)

#: Calls accepted as delegated validation of a selector (ABFT006).
VALIDATOR_CALLS = frozenset(
    {"resolve_kernels", "make_weights", "make_bound", "validate_blocks", "AbftConfig",
     "make_scheme", "resolve_scheme", "canonical_scheme_name",
     "canonical_format_name", "resolve_format_name", "select_format",
     "build_format"}
)

#: Protection-scheme classes that must be built through the
#: :mod:`repro.schemes` registry outside the registry itself (ABFT007).
SCHEME_CLASSES = frozenset(
    {"DenseCheckSpMV", "CheckpointSpMV", "CompleteRecomputationSpMV",
     "PartialRecomputationSpMV", "DwcSpMV", "TmrSpMV"}
)


def _enclosing_function(
    stack: List[ast.AST],
) -> Optional[ast.AST]:
    for node in reversed(stack):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


class ChecksumRefreshRule(LintRule):
    """ABFT001: protected-matrix internals mutated without a checksum refresh."""

    rule_id = "ABFT001"
    title = "mutation of matrix internals without checksum refresh"
    rationale = (
        "DSN'16 Section III-B derives the invariant t1 = t2 from checksums "
        "encoded over A's current values; mutating data/indices/indptr "
        "without rebuilding C makes every later detection meaningless."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        rule = self
        findings: List[Finding] = []
        refresh_cache: dict[int, bool] = {}

        def refreshes(function: Optional[ast.AST]) -> bool:
            """Does the mutation's enclosing function also rebuild checksums?"""
            if function is None:
                return False  # module-level mutations have no refresh scope
            cached = refresh_cache.get(id(function))
            if cached is None:
                assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
                cached = bool(call_names(function.body) & REFRESH_CALLS)
                refresh_cache[id(function)] = cached
            return cached

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[ast.AST] = []

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self.stack.append(node)
                self.generic_visit(node)
                self.stack.pop()

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self.stack.append(node)
                self.generic_visit(node)
                self.stack.pop()

            def _report(self, node: ast.AST, target: ast.expr) -> None:
                if refreshes(self.stack[-1] if self.stack else None):
                    return
                findings.append(
                    module.finding(
                        rule.rule_id,
                        node,
                        f"assignment to "
                        f"'{dotted_name(target) or terminal_name(target)}' "
                        "mutates protected matrix internals without a checksum "
                        "refresh (call ChecksumMatrix.build / "
                        "_refresh_operand_checksums, or use with_data)",
                    )
                )

            def visit_Assign(self, node: ast.Assign) -> None:
                for t in node.targets:
                    attr = rule._protected_attribute(t)
                    if attr is not None:
                        self._report(node, attr)
                        break
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                attr = rule._protected_attribute(node.target)
                if attr is not None:
                    self._report(node, attr)
                self.generic_visit(node)

        Visitor().visit(module.tree)
        yield from findings

    @staticmethod
    def _protected_attribute(target: ast.expr) -> Optional[ast.expr]:
        """Return the mutated ``X.data``-style attribute, if any.

        Matches direct stores (``m.data = ...``), element stores
        (``m.data[i] = ...``) and slices; plain ``self.data = ...`` in
        constructors is the object laying out its own storage, not a
        mutation of someone else's protected operand, and is skipped.
        """
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute) or node.attr not in PROTECTED_ATTRS:
            return None
        base = node.value
        if isinstance(base, ast.Name) and base.id == "self":
            return None
        return node


class ReductionOrderRule(LintRule):
    """ABFT002: order-sensitive reductions in kernels outside sanctioned helpers."""

    rule_id = "ABFT002"
    title = "order-sensitive float reduction outside sanctioned kernel helpers"
    rationale = (
        "PR 1's differential contract requires bit-identical per-row "
        "reduction order across kernel sets; a stray np.sum/reduceat in a "
        "kernel changes summation order and silently breaks bit-level "
        "equivalence between implementations."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = module.display_path.replace("\\", "/").split("/")
        if "kernels" not in parts:
            return
        sanctioned_spans = self._sanctioned_spans(module)
        for node in ast.walk(module.tree):
            name = ""
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name not in REDUCTION_CALLS and terminal_name(node.func) != "sum":
                    continue
                if name not in REDUCTION_CALLS:
                    name = f"{dotted_name(node.func) or terminal_name(node.func)}"
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                name = "@ (matrix product)"
            else:
                continue
            if self._within(sanctioned_spans, getattr(node, "lineno", 0)):
                continue
            yield module.finding(
                self.rule_id,
                node,
                f"order-sensitive reduction '{name}' in a kernel module; use "
                "the sanctioned helpers (segment_sums/flat_segment_indices) "
                "or suppress with the reduction-order contract as reason",
            )

    @staticmethod
    def _sanctioned_spans(module: ModuleContext) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for function, _stack in module.functions():
            assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
            if function.name in SANCTIONED_REDUCERS:
                end = getattr(function, "end_lineno", function.lineno)
                spans.append((function.lineno, end or function.lineno))
        return spans

    @staticmethod
    def _within(spans: List[Tuple[int, int]], line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in spans)


class ExactFloatCompareRule(LintRule):
    """ABFT003: exact float equality on syndromes, bounds, or residuals."""

    rule_id = "ABFT003"
    title = "exact float equality on syndrome/bound/residual quantities"
    rationale = (
        "DSN'16 Section III-C: checksum invariants over floats never hold "
        "exactly; detection must compare |t1-t2| against the analytical "
        "bound.  == on such quantities either never fires (silent coverage "
        "loss, cf. V-ABFT) or fires on rounding noise."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._exempt(left) or self._exempt(right):
                    continue
                if self._float_literal(left) or self._float_literal(right):
                    reason = "compares against a float literal"
                elif self._sensitive(left) or self._sensitive(right):
                    reason = "names a rounding-sensitive quantity"
                else:
                    continue
                yield module.finding(
                    self.rule_id,
                    node,
                    f"exact float comparison ({reason}); compare against the "
                    "rounding-error bound (or np.isclose) instead of ==/!=",
                )
                break

    @staticmethod
    def _float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    @staticmethod
    def _sensitive(node: ast.expr) -> bool:
        name = terminal_name(node)
        return bool(name and FLOAT_SENSITIVE_NAME.search(name))

    @staticmethod
    def _exempt(node: ast.expr) -> bool:
        """Comparisons against None/bools/strings are not float equality."""
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, (bool, str))
        )


class DtypeDowncastRule(LintRule):
    """ABFT004: silent float32/float16 downcasts."""

    rule_id = "ABFT004"
    title = "silent dtype downcast below float64"
    rationale = (
        "The bounds assume the unit roundoff of the *declared* storage "
        "dtype (Section III-C derives eps_M = 2^-53 for float64); a "
        "downcast outside the dtype policy inflates rounding error past "
        "the modeled epsilon, so real errors hide inside the threshold.  "
        "Narrow storage is supported — but only routed through "
        "repro.core.dtypes (DtypePolicy / coerce_array), which keeps the "
        "epsilon model and the telemetry record in sync with the data."
    )

    #: The dtype-policy module — the one sanctioned home of narrow-dtype
    #: construction (builtin policies, quantizers, coerce_array).
    POLICY_MODULE = ("core", "dtypes.py")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = tuple(module.display_path.replace("\\", "/").split("/"))
        if parts[-2:] == self.POLICY_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if terminal_name(node.func) == "astype" and node.args:
                dtype = self._narrow_dtype(node.args[0])
                if dtype:
                    yield module.finding(
                        self.rule_id,
                        node,
                        f"astype({dtype}) silently downcasts below float64; "
                        "route narrow storage through the dtype policy "
                        "(repro.core.dtypes coerce_array / DtypePolicy) so "
                        "the epsilon model follows, or suppress with an "
                        "explicit opt-in reason",
                    )
                    continue
            dotted = dotted_name(node.func)
            if dotted in ("np.float32", "np.float16", "numpy.float32", "numpy.float16"):
                yield module.finding(
                    self.rule_id,
                    node,
                    f"{dotted}(...) constructs a sub-float64 value on the "
                    "checksum path; use the dtype policy or opt in "
                    "explicitly",
                )
                continue
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype = self._narrow_dtype(keyword.value)
                    if dtype:
                        yield module.finding(
                            self.rule_id,
                            node,
                            f"dtype={dtype} silently downcasts below float64",
                        )

    @staticmethod
    def _narrow_dtype(node: ast.expr) -> str:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value if node.value in NARROW_DTYPES else ""
        name = terminal_name(node)
        return name if name in NARROW_DTYPES else ""


class Float64LiteralRule(LintRule):
    """ABFT014: raw np.float64 coercions in core/kernels hot paths."""

    rule_id = "ABFT014"
    title = "hardcoded float64 coercion in a dtype-generic hot path"
    rationale = (
        "Since the dtype-generic refactor the core and kernel hot paths "
        "carry the matrix storage dtype and accumulate in "
        "ACCUMULATION_DTYPE; a raw np.float64 in a function body silently "
        "widens float32/bfloat16 pipelines back to double — hiding the "
        "precision the experiment was supposed to measure — and pins the "
        "accumulation side in scattered literals instead of the one "
        "policy-owned constant."
    )

    #: The dtype-policy module defines the float64 policy itself.
    POLICY_MODULE = ("core", "dtypes.py")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = tuple(module.display_path.replace("\\", "/").split("/"))
        if "core" not in parts and "kernels" not in parts:
            return
        if parts[-2:] == self.POLICY_MODULE:
            return
        for function, _stack in module.functions():
            assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                label = self._float64_coercion(node)
                if label:
                    yield module.finding(
                        self.rule_id,
                        node,
                        f"{label} hardcodes float64 in a hot-path function; "
                        "use ACCUMULATION_DTYPE (kernels/base.py) for "
                        "checksum accumulators, the matrix storage dtype "
                        "for data buffers, or the resolved DtypePolicy — "
                        "module-level constants are the place for raw "
                        "float64 literals",
                    )

    @staticmethod
    def _float64_coercion(node: ast.Call) -> str:
        """Return a display label when ``node`` coerces via a raw float64
        literal (``astype(np.float64)``, ``dtype=np.float64``,
        ``np.float64(...)`` and their string spellings)."""

        def is_float64(expr: ast.expr) -> str:
            if isinstance(expr, ast.Constant) and expr.value == "float64":
                return '"float64"'
            name = dotted_name(expr) or terminal_name(expr)
            return name if name in FLOAT64_LITERALS else ""

        if terminal_name(node.func) == "astype" and node.args:
            spelled = is_float64(node.args[0])
            if spelled:
                return f"astype({spelled})"
        dotted = dotted_name(node.func)
        if dotted in ("np.float64", "numpy.float64"):
            return f"{dotted}(...)"
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                spelled = is_float64(keyword.value)
                if spelled:
                    return f"dtype={spelled}"
        return ""


class BroadExceptRule(LintRule):
    """ABFT005: broad except handlers that swallow fault-injection errors."""

    rule_id = "ABFT005"
    title = "broad except swallows fault-injection failures"
    rationale = (
        "Fault campaigns (cf. Fasi et al. on PCG under faults) rely on "
        "InjectionError and friends propagating; a broad except that does "
        "not re-raise turns an injection bug into a silently-clean trial "
        "and corrupts every coverage statistic computed from it."
    )

    #: Exception names considered catch-alls.
    BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if contains_raise(node.body):
                continue  # cleanup-and-reraise is the sanctioned pattern
            label = "bare except" if node.type is None else (
                f"except {dotted_name(node.type) or 'Exception'}"
            )
            yield module.finding(
                self.rule_id,
                node,
                f"{label} swallows errors without re-raising; catch the "
                "specific ReproError subclass or re-raise after cleanup",
            )

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(element) for element in type_node.elts)
        return terminal_name(type_node) in self.BROAD


class MissingValidationRule(LintRule):
    """ABFT006: public selector-taking APIs without a validation-error path."""

    rule_id = "ABFT006"
    title = "public API selector parameter without validation-error path"
    rationale = (
        "Every configuration fork in the scheme (bound kind, weight kind, "
        "kernel set) changes what the detector guarantees; a selector that "
        "silently ignores unknown values runs the wrong protection without "
        "telling anyone — the repo-wide contract is ConfigurationError."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function, stack in module.functions():
            assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
            if function.name.startswith("_"):
                continue
            if _enclosing_function(stack) is not None:
                continue  # nested helpers are not public API
            selectors = self._selector_params(function)
            if not selectors:
                continue
            if contains_raise(function.body):
                continue
            if call_names(function.body) & VALIDATOR_CALLS:
                continue
            names = ", ".join(sorted(selectors))
            yield module.finding(
                self.rule_id,
                function,
                f"public function '{function.name}' takes selector "
                f"parameter(s) {names} but has no validation-error path "
                "(raise ConfigurationError on unknown values or delegate "
                "to a validating helper)",
            )

    @staticmethod
    def _selector_params(
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> List[str]:
        selectors: List[str] = []
        args = function.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg not in SELECTOR_PARAMS:
                continue
            annotation = arg.annotation
            if annotation is not None and terminal_name(annotation) not in ("str", ""):
                continue  # non-string selectors are validated by type
            selectors.append(arg.arg)
        return selectors


class SchemeConstructionRule(LintRule):
    """ABFT007: scheme classes constructed outside the scheme registry."""

    rule_id = "ABFT007"
    title = "direct construction of a protection-scheme class outside repro.schemes"
    rationale = (
        "The repro.schemes registry is the one place that wires kernels, "
        "telemetry, and AbftConfig into a protection scheme; a direct "
        "constructor call bypasses alias resolution, the REPRO_SCHEME "
        "override, and kernel/telemetry injection, so such code silently "
        "diverges from registry-selected runs of the same experiment."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = module.display_path.replace("\\", "/").split("/")
        if "schemes" in parts or "tests" in parts:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = terminal_name(node.func)
            if name not in SCHEME_CLASSES:
                continue
            yield module.finding(
                self.rule_id,
                node,
                f"direct construction of scheme class '{name}'; resolve it "
                "through the repro.schemes registry (make_scheme / "
                "resolve_scheme) so aliases, REPRO_SCHEME, and "
                "kernel/telemetry injection apply",
            )


class TelemetryGuardRule(LintRule):
    """ABFT013: telemetry writes on hot paths outside the enabled guard."""

    rule_id = "ABFT013"
    title = "telemetry write outside an `if telemetry.enabled` guard"
    rationale = (
        "The observability contract (bench_obs_overhead.py) promises the "
        "disabled path costs one attribute read; an unguarded "
        "count/observe/gauge still builds the event dict, reads the clock "
        "and takes the instrument lock even when telemetry is off, so "
        "every unguarded write erodes the <= 3% off-mode bound."
    )

    #: Telemetry facade methods that build events (span() returns a
    #: reusable null object when disabled, so it needs no guard).
    WRITE_METHODS = frozenset({"count", "gauge", "observe", "observe_many"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._scan_suite(module, module.tree.body, guarded=False)

    # -- traversal ---------------------------------------------------------
    def _scan_suite(
        self, module: ModuleContext, body: List[ast.stmt], guarded: bool
    ) -> Iterator[Finding]:
        guarded_rest = guarded
        for stmt in body:
            if isinstance(stmt, ast.If) and _mentions_enabled(stmt.test):
                # Both branches of an enabled-test are considered guarded
                # (the else branch of `if not tel.enabled: return` style
                # tests is the enabled path).
                yield from self._scan_suite(module, stmt.body, guarded=True)
                yield from self._scan_suite(module, stmt.orelse, guarded=True)
                if any(
                    isinstance(s, (ast.Return, ast.Raise, ast.Continue, ast.Break))
                    for s in stmt.body
                ):
                    guarded_rest = True  # early-return guard covers the rest
                continue
            if not guarded_rest:
                for call in self._header_calls(stmt):
                    method = self._unguarded_write(call)
                    if method:
                        yield module.finding(
                            self.rule_id,
                            call,
                            f"telemetry write '{method}' outside an "
                            "`if telemetry.enabled:` guard; the disabled hot "
                            "path must cost one attribute read — guard the "
                            "write or suppress with a reason",
                        )
            yield from self._scan_children(module, stmt, guarded_rest)

    def _scan_children(
        self, module: ModuleContext, stmt: ast.stmt, guarded: bool
    ) -> Iterator[Finding]:
        # A nested function does not run where it is defined, so it never
        # inherits the enclosing guard.
        nested_scope = isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
        for field in ("body", "orelse", "finalbody"):
            children = getattr(stmt, field, None)
            if children and isinstance(children[0], ast.stmt):
                yield from self._scan_suite(
                    module, children, guarded=False if nested_scope else guarded
                )
        for handler in getattr(stmt, "handlers", ()):  # try/except
            yield from self._scan_suite(module, handler.body, guarded)

    def _header_calls(self, stmt: ast.stmt) -> List[ast.Call]:
        """Calls owned by the statement itself, not its nested suites."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        if isinstance(stmt, (ast.If, ast.While)):
            exprs: List[ast.expr] = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            exprs = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            exprs = [item.context_expr for item in stmt.items]
        elif isinstance(stmt, ast.Try):
            return []
        else:
            exprs = [stmt]  # leaf statement: walk it whole
        calls: List[ast.Call] = []
        for expr in exprs:
            calls.extend(
                node for node in ast.walk(expr) if isinstance(node, ast.Call)
            )
        return calls

    def _unguarded_write(self, call: ast.Call) -> str:
        if not isinstance(call.func, ast.Attribute):
            return ""
        method = call.func.attr
        if method not in self.WRITE_METHODS:
            return ""
        receiver = dotted_name(call.func.value) or terminal_name(call.func.value)
        if not receiver:
            return ""
        last = receiver.split(".")[-1]
        if last == "tel" or last.endswith("telemetry"):
            return f"{receiver}.{method}"
        return ""


def _mentions_enabled(test: ast.expr) -> bool:
    """Does a test expression read some ``.enabled`` attribute?"""
    return any(
        isinstance(node, ast.Attribute) and node.attr == "enabled"
        for node in ast.walk(test)
    )


#: The rule pack, in id order (registered by :mod:`repro.lint`).
ABFT_RULES: Tuple[LintRule, ...] = (
    ChecksumRefreshRule(),
    ReductionOrderRule(),
    ExactFloatCompareRule(),
    DtypeDowncastRule(),
    BroadExceptRule(),
    MissingValidationRule(),
    SchemeConstructionRule(),
    TelemetryGuardRule(),
    Float64LiteralRule(),
)
