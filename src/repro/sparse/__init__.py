"""Sparse-matrix substrate: COO/CSR formats, kernels, generators, and I/O.

Built from scratch (no SciPy) so the ABFT layer can reason about — and the
machine model can cost — every kernel it relies on.
"""

from repro.sparse.construct import add, diags, identity, shift, subtract
from repro.sparse.coo import CooMatrix
from repro.sparse.ell import EllMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.bsr import BsrMatrix
from repro.sparse.formats import (
    AUTO_FORMAT,
    BSR_BLOCK_CANDIDATES,
    BSR_MIN_FILL,
    BUILTIN_FORMATS,
    DEFAULT_FORMAT,
    ELL_MAX_PADDING,
    FORMAT_ENV_VAR,
    FormatChoice,
    SparseFormat,
    available_formats,
    bsr_fill_ratio,
    build_format,
    canonical_format_name,
    ell_padding_ratio,
    probe_block_shape,
    resolve_format_name,
    select_format,
)
from repro.sparse.generators import (
    arrowhead_spd,
    banded_spd,
    block_stencil_spd,
    poisson2d,
    poisson3d,
    random_spd,
)
from repro.sparse.mmio import matrix_market_string, read_matrix_market, write_matrix_market
from repro.sparse.reordering import (
    bandwidth,
    cuthill_mckee,
    permute_vector,
    profile,
    random_permutation,
    reverse_cuthill_mckee,
    symmetric_permute,
)
from repro.sparse.validate import (
    MatrixReport,
    assert_spd_like,
    inspect_matrix,
    render_report,
)
from repro.sparse.suite import (
    QUICK_SUITE,
    SUITE_SPECS,
    MatrixSpec,
    iter_suite,
    spec_for,
    suite_matrix,
)

__all__ = [
    "CooMatrix",
    "identity",
    "diags",
    "add",
    "subtract",
    "shift",
    "CsrMatrix",
    "EllMatrix",
    "BsrMatrix",
    "SparseFormat",
    "FormatChoice",
    "FORMAT_ENV_VAR",
    "DEFAULT_FORMAT",
    "BUILTIN_FORMATS",
    "AUTO_FORMAT",
    "BSR_BLOCK_CANDIDATES",
    "BSR_MIN_FILL",
    "ELL_MAX_PADDING",
    "available_formats",
    "canonical_format_name",
    "resolve_format_name",
    "select_format",
    "build_format",
    "bsr_fill_ratio",
    "ell_padding_ratio",
    "probe_block_shape",
    "arrowhead_spd",
    "banded_spd",
    "block_stencil_spd",
    "poisson2d",
    "poisson3d",
    "random_spd",
    "read_matrix_market",
    "bandwidth",
    "profile",
    "cuthill_mckee",
    "reverse_cuthill_mckee",
    "symmetric_permute",
    "permute_vector",
    "random_permutation",
    "write_matrix_market",
    "matrix_market_string",
    "MatrixSpec",
    "SUITE_SPECS",
    "QUICK_SUITE",
    "iter_suite",
    "spec_for",
    "suite_matrix",
    "MatrixReport",
    "inspect_matrix",
    "assert_spd_like",
    "render_report",
]
