"""Sparse checksum matrix construction (Sections III-B and III-D).

Each row block ``A_k`` of the input matrix is encoded with a weight vector
``w_k`` into a *sparse* column-checksum row ``c_k = w_k^T A_k``; stacking
the ``c_k`` yields the checksum matrix ``C`` (one row per block, entries
only in the block's non-empty columns — Figure 2).  ``C`` inherits the
sparsity of ``A``, which is what makes the operand checksum ``t1 = C b``
cheap compared to a dense checksum vector.

The construction itself follows Figure 3: a structure pass derives ``C``'s
sparsity pattern from ``A``'s, then a numeric pass accumulates the weighted
column sums.  The numeric kernels dispatch through :mod:`repro.kernels`
(``"vectorized"`` runs both passes as one grouped reduction over ``A``'s
entries keyed by ``(block, column)``; ``"naive"`` iterates blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.core.blocking import BlockPartition
from repro.kernels import DEFAULT_KERNEL, resolve_kernels
from repro.kernels.base import ACCUMULATION_DTYPE
from repro.obs import resolve_telemetry

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.kernels.base import KernelSet
from repro.machine import KernelCost, log2ceil
from repro.sparse.csr import CsrMatrix


def make_weights(
    kind: str, partition: BlockPartition, kernel: object = None
) -> np.ndarray:
    """Full-length weight vector ``w`` with ``w[i]`` = weight of row i.

    ``"ones"`` is the paper's choice (checksums are plain column sums);
    ``"linear"`` assigns 1..len(block) within each block, an extension that
    makes single-row errors identifiable inside a block; ``"random"`` draws
    deterministic weights from [0.5, 1.5], which defeats the classic ABFT
    blind spot of exactly-cancelling multi-errors (two corruptions summing
    to zero no longer cancel in the weighted checksum).

    ``kernel`` selects the :mod:`repro.kernels` implementation for the
    per-block ``"linear"`` ramp (name, instance, or None for the default).
    """
    if kind == "ones":
        # Weights live on the accumulation side of the pipeline: float64
        # under every builtin dtype policy, so the checksum matrix (and
        # therefore t1/t2) accumulates wide even for narrow storage.
        return np.ones(partition.n_rows, dtype=ACCUMULATION_DTYPE)
    if kind == "linear":
        return resolve_kernels(kernel).linear_weights(partition)
    if kind == "random":
        rng = np.random.default_rng(0x5EED)
        return rng.uniform(0.5, 1.5, size=partition.n_rows)
    raise ConfigurationError(f"unknown weight scheme {kind!r}")


@dataclass(frozen=True)
class ChecksumMatrix:
    """The sparse checksum matrix ``C`` plus the per-block statistics the
    rounding-error bound needs.

    Attributes:
        matrix: ``C`` as CSR, shape ``(n_blocks, n_cols)``.
        partition: the row-block partition of the source matrix.
        weights: the full-length weight vector used for encoding.
        nonempty_columns: ``n_k`` per block — stored columns of ``C``'s row
            k, i.e. columns of ``A_k`` with at least one entry.
        row_norm_sums: per block, ``sum of ||a_i||_2`` over the block's rows.
        checksum_norms: per block, ``||c_k||_2``.
        setup_cost: kernel cost of building ``C`` (one-time preprocessing;
            paper Section III-E notes it amortizes over reuse).
        kernel_name: name of the kernel set the checksum was built with;
            checksum evaluations default to the same set.
    """

    matrix: CsrMatrix
    partition: BlockPartition
    weights: np.ndarray
    nonempty_columns: np.ndarray
    row_norm_sums: np.ndarray
    checksum_norms: np.ndarray
    setup_cost: KernelCost
    source_nnz: int
    kernel_name: str = DEFAULT_KERNEL

    @classmethod
    def build(
        cls,
        source: CsrMatrix,
        block_size: int,
        weight_kind: str = "ones",
        kernel: object = None,
        telemetry: object = None,
    ) -> "ChecksumMatrix":
        """Encode ``source`` into its checksum matrix.

        Args:
            source: the input matrix ``A``.
            block_size: rows per block (b_s).
            weight_kind: weight-vector scheme (see :func:`make_weights`).
            kernel: kernel-set name or instance executing the encoding and
                later checksum evaluations (None = configured default).
            telemetry: :mod:`repro.obs` selection; the build is traced as
                a ``checksum.build`` span when enabled.
        """
        tel = resolve_telemetry(telemetry)
        kernels = tel.wrap_kernels(resolve_kernels(kernel))
        with tel.span(
            "checksum.build", rows=source.n_rows, nnz=source.nnz,
            block_size=block_size, kernel=kernels.name,
        ):
            partition = BlockPartition(source.n_rows, block_size)
            weights = make_weights(weight_kind, partition, kernels)
            checksum = kernels.encode(source, partition, weights)

            nonempty = checksum.row_lengths()
            row_norms = source.row_norms()
            starts = partition.block_starts()
            row_norm_sums = np.add.reduceat(row_norms, starts[:-1]) if partition.n_blocks else (
                np.empty(0)
            )
            # reduceat quirk: a trailing singleton start equal to len-1 is fine
            # because every block is non-empty by construction.
            checksum_norms = checksum.row_norms()

            # Figure 3: a structure pass over A's entries plus a weighted
            # accumulation pass; span is the depth of the per-column reduction.
            setup_cost = KernelCost(
                work=3.0 * source.nnz,
                span=log2ceil(block_size) + 2.0,
            )
        return cls(
            matrix=checksum,
            partition=partition,
            weights=weights,
            nonempty_columns=nonempty.astype(np.int64),
            row_norm_sums=np.asarray(row_norm_sums, dtype=ACCUMULATION_DTYPE),
            checksum_norms=checksum_norms,
            setup_cost=setup_cost,
            source_nnz=source.nnz,
            kernel_name=kernels.name,
        )

    def _kernels(self, kernel: object = None) -> "KernelSet":
        """Resolve the kernel set for one evaluation (env override applies)."""
        return resolve_kernels(kernel if kernel is not None else self.kernel_name)

    @property
    def n_blocks(self) -> int:
        return self.partition.n_blocks

    @property
    def nnz(self) -> int:
        """Stored entries of ``C`` — the work driver of ``t1 = C b``."""
        return self.matrix.nnz

    @property
    def sparsity_gain(self) -> float:
        """nnz(C) / nnz(A) — how much sparsity the encoding preserved.

        The smaller this ratio, the cheaper the operand checksum relative
        to re-running the SpMV (block size 1 gives exactly 1.0).
        """
        return self.nnz / max(1, self.source_nnz)

    def operand_checksums(
        self,
        b: np.ndarray,
        out: np.ndarray | None = None,
        workspace: np.ndarray | None = None,
    ) -> np.ndarray:
        """t1 = C b (Figure 1, step 1, checksum stream).

        ``out`` (length ``n_blocks``) and ``workspace`` (length ``nnz`` of
        ``C``) are optional reusable buffers, as in
        :meth:`repro.sparse.csr.CsrMatrix.matvec`.
        """
        return self.matrix.matvec(b, out=out, workspace=workspace)

    def result_checksums(
        self,
        r: np.ndarray,
        kernel: object = None,
        out: np.ndarray | None = None,
        workspace: np.ndarray | None = None,
    ) -> np.ndarray:
        """t2_k = w_k^T r_k: segmented weighted sums of the result vector."""
        return self._kernels(kernel).result_checksums(
            self.weights, r, self.partition, out=out, workspace=workspace
        )

    def result_checksums_for_blocks(
        self,
        r: np.ndarray,
        blocks: np.ndarray,
        kernel: object = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Recompute t2 for selected blocks only (re-verification path).

        Raises:
            ConfigurationError: if any block id is negative or >= n_blocks.
        """
        return self._kernels(kernel).result_checksums_for_blocks(
            self.weights, r, self.partition, blocks, out=out
        )
