"""Unit tests for the ELLPACK format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CooMatrix, banded_spd, random_spd
from repro.sparse.ell import EllMatrix


@pytest.fixture
def csr():
    return random_spd(80, 700, seed=191)


def test_round_trip_csr_ell_csr(csr):
    ell = EllMatrix.from_csr(csr)
    assert ell.to_csr() == csr


def test_matvec_matches_csr(csr):
    ell = EllMatrix.from_csr(csr)
    b = np.random.default_rng(0).standard_normal(80)
    np.testing.assert_allclose(ell.matvec(b), csr.matvec(b), rtol=1e-12)
    np.testing.assert_allclose(ell @ b, csr @ b, rtol=1e-12)


def test_width_is_max_row_length(csr):
    ell = EllMatrix.from_csr(csr)
    assert ell.width == int(csr.row_lengths().max())
    assert ell.nnz == csr.nnz


def test_padding_ratio_zero_for_regular_matrix():
    diag = CooMatrix.from_dense(np.diag([1.0, 2.0, 3.0])).to_csr()
    ell = EllMatrix.from_csr(diag)
    assert ell.padding_ratio == 0.0
    assert ell.width == 1


def test_padding_ratio_high_for_irregular_matrix():
    # One dense row among empty ones: nearly all slots are padding.
    entries = [(0, j, 1.0) for j in range(50)] + [(5, 0, 1.0)]
    csr = CooMatrix.from_entries((10, 50), entries).to_csr()
    ell = EllMatrix.from_csr(csr)
    assert ell.width == 50
    assert ell.padding_ratio > 0.85


def test_empty_matrix():
    csr = CooMatrix.from_entries((4, 4), []).to_csr()
    ell = EllMatrix.from_csr(csr)
    assert ell.width == 0
    assert ell.nnz == 0
    np.testing.assert_array_equal(ell.matvec(np.ones(4)), np.zeros(4))


def test_matvec_with_structural_zero(csr):
    # Padded slots are masked, so a real zero entry survives conversion.
    entries = [(0, 1, 0.0), (1, 2, 5.0)]
    source = CooMatrix.from_entries((3, 3), entries).to_csr()
    ell = EllMatrix.from_csr(source)
    assert ell.nnz == 2
    assert ell.to_csr() == source


def test_matvec_shape_validation(csr):
    ell = EllMatrix.from_csr(csr)
    with pytest.raises(ShapeMismatchError):
        ell.matvec(np.ones(79))


def test_constructor_validation():
    with pytest.raises(SparseFormatError):
        EllMatrix((2, 2), np.zeros((2, 1)), np.zeros((2, 2)), np.zeros((2, 2), bool))
    with pytest.raises(SparseFormatError):
        EllMatrix(
            (2, 2),
            np.full((2, 1), 5),  # column out of range
            np.zeros((2, 1)),
            np.ones((2, 1), bool),
        )
    with pytest.raises(SparseFormatError):
        EllMatrix(
            (2, 2),
            np.zeros((2, 1), dtype=np.int64),
            np.ones((2, 1)),  # non-zero value in a padded slot
            np.zeros((2, 1), bool),
        )


def test_banded_matrix_is_ell_friendly():
    csr = banded_spd(60, 2, 1.0, seed=192)
    ell = EllMatrix.from_csr(csr)
    assert ell.padding_ratio < 0.2  # near-constant row degree
    b = np.random.default_rng(193).standard_normal(60)
    np.testing.assert_allclose(ell.matvec(b), csr.matvec(b), rtol=1e-12)
