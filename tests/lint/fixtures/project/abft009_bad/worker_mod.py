"""Registry mutation on the worker path (ABFT009 must fire twice)."""

from multiprocessing import Process

from registry import register_scheme


class _LocalScheme:
    pass


register_scheme("local", _LocalScheme)  # MARK:ABFT009


def _worker_main(queue):
    register_scheme("per-worker", _LocalScheme)  # MARK:ABFT009
    queue.put("ready")


def start(queue):
    process = Process(target=_worker_main, args=(queue,))
    process.start()
    return process
