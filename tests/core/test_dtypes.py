"""Dtype-policy layer: resolution chain, epsilon model, recorded coercions."""

import numpy as np
import pytest

from repro.core import AbftConfig, BlockAbftDetector, FaultTolerantSpMV
from repro.core.dtypes import (
    BFLOAT16_POLICY,
    DTYPE_ENV_VAR,
    EPS_BFLOAT16,
    EPS_FLOAT32,
    EPS_FLOAT64,
    FLOAT32_POLICY,
    FLOAT64_POLICY,
    DtypePolicy,
    available_dtypes,
    canonical_dtype_name,
    coerce_array,
    get_dtype_policy,
    register_dtype_policy,
    resolve_dtype_name,
    resolve_dtype_policy,
    unregister_dtype_policy,
)
from repro.errors import ConfigurationError
from repro.obs import InMemoryExporter, Telemetry
from repro.sparse import random_spd


# ----------------------------------------------------------------------
# Names, aliases, registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "alias, canonical",
    [
        ("f64", "float64"),
        ("double", "float64"),
        ("FP64", "float64"),
        ("single", "float32"),
        (" f32 ", "float32"),
        ("bf16", "bfloat16"),
        ("float64", "float64"),
    ],
)
def test_aliases_resolve(alias, canonical):
    assert canonical_dtype_name(alias) == canonical


def test_unknown_name_raises():
    with pytest.raises(ConfigurationError, match="unknown dtype policy"):
        canonical_dtype_name("float8")


def test_builtins_are_registered():
    assert set(available_dtypes()) >= {"float64", "float32", "bfloat16"}


def test_register_and_unregister_extension_policy():
    policy = DtypePolicy(name="wide", working="float64", accumulation="float64")
    register_dtype_policy(policy)
    try:
        assert get_dtype_policy("wide") is policy
        with pytest.raises(ConfigurationError, match="already registered"):
            register_dtype_policy(policy)
        register_dtype_policy(policy, replace=True)
    finally:
        unregister_dtype_policy("wide")
    with pytest.raises(ConfigurationError):
        get_dtype_policy("wide")


def test_builtin_policies_are_protected():
    with pytest.raises(ConfigurationError, match="builtin"):
        register_dtype_policy(
            DtypePolicy(name="float64", working="float64", accumulation="float64")
        )
    with pytest.raises(ConfigurationError, match="builtin"):
        unregister_dtype_policy("float32")


def test_non_float_dtype_rejected():
    with pytest.raises(ConfigurationError, match="float dtype"):
        DtypePolicy(name="ints", working="int64", accumulation="float64")


# ----------------------------------------------------------------------
# Resolution chain: explicit > env > configured > default
# ----------------------------------------------------------------------
def test_resolution_precedence(monkeypatch):
    monkeypatch.delenv(DTYPE_ENV_VAR, raising=False)
    assert resolve_dtype_name() == "float64"
    assert resolve_dtype_name(configured="float32") == "float32"
    monkeypatch.setenv(DTYPE_ENV_VAR, "bfloat16")
    assert resolve_dtype_name(configured="float32") == "bfloat16"
    assert resolve_dtype_name(configured="float32", explicit="f32") == "float32"


def test_resolve_policy_passes_instances_through():
    assert resolve_dtype_policy(explicit=FLOAT32_POLICY) is FLOAT32_POLICY


def test_config_dtype_validates():
    assert AbftConfig(dtype="f32").dtype == "f32"
    with pytest.raises(ConfigurationError):
        AbftConfig(dtype="float128ish")


# ----------------------------------------------------------------------
# Epsilon model keys on storage dtype
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "policy, storage, expected",
    [
        (FLOAT64_POLICY, np.float64, EPS_FLOAT64),
        (FLOAT64_POLICY, np.float32, EPS_FLOAT32),
        (FLOAT32_POLICY, np.float64, EPS_FLOAT64),
        (FLOAT32_POLICY, np.float32, EPS_FLOAT32),
        (BFLOAT16_POLICY, np.float64, EPS_FLOAT64),
        (BFLOAT16_POLICY, np.float32, EPS_BFLOAT16),
    ],
)
def test_epsilon_for_storage(policy, storage, expected):
    assert policy.epsilon_for(storage) == expected


def test_env_override_cannot_loosen_float64_matrix_bound(monkeypatch):
    """The tier-1 safety property: REPRO_DTYPE=float32 leaves a float64
    matrix's detector epsilon at 2^-53."""
    matrix = random_spd(32, 200, seed=3)
    monkeypatch.setenv(DTYPE_ENV_VAR, "float32")
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=8))
    assert detector.dtype_policy.name == "float32"
    assert detector.epsilon == EPS_FLOAT64


def test_float32_matrix_gets_float32_epsilon():
    matrix = random_spd(32, 200, seed=3, dtype=np.float32)
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=8))
    assert detector.epsilon == EPS_FLOAT32


# ----------------------------------------------------------------------
# bfloat16 quantization
# ----------------------------------------------------------------------
def test_bfloat16_quantize_drops_low_mantissa_bits():
    values = np.array([1.0, 1.0 + 2.0**-9, -3.14159, 1e30], dtype=np.float32)
    rounded = BFLOAT16_POLICY.quantize(values)
    assert rounded.dtype == np.float32
    bits = rounded.view(np.uint32)
    assert np.all(bits & np.uint32(0xFFFF) == 0)
    # round-to-nearest: 1 + 2^-9 is closer to 1 + 2^-8 than to 1.0? No —
    # exactly halfway between 1.0 and 1 + 2^-8; ties-to-even keeps 1.0.
    assert rounded[0] == np.float32(1.0)


def test_bfloat16_quantize_is_idempotent():
    rng = np.random.default_rng(11)
    values = rng.standard_normal(256).astype(np.float32)
    once = BFLOAT16_POLICY.quantize(values)
    np.testing.assert_array_equal(once, BFLOAT16_POLICY.quantize(once))


def test_native_policies_quantize_is_identity():
    values = np.array([1.0 + 2.0**-20], dtype=np.float32)
    np.testing.assert_array_equal(FLOAT32_POLICY.quantize(values), values)


# ----------------------------------------------------------------------
# Recorded coercions
# ----------------------------------------------------------------------
def test_coerce_array_is_zero_copy_on_matching_dtype():
    values = np.ones(4, dtype=np.float32)
    out = coerce_array(values, np.float32, site="test")
    assert out is values


def test_coerce_array_records_conversion():
    telemetry = Telemetry(exporter=InMemoryExporter())
    out = coerce_array(
        np.ones(4, dtype=np.float32),
        np.float64,
        site="test.site",
        telemetry=telemetry,
        reason="unit test",
    )
    assert out.dtype == np.float64
    events = [
        e
        for e in telemetry.events()
        if e["type"] == "counter" and e["name"] == "dtype.coerced"
    ]
    assert len(events) == 1
    attrs = events[0]["attrs"]
    assert attrs["site"] == "test.site"
    assert attrs["from_dtype"] == "float32"
    assert attrs["to_dtype"] == "float64"
    assert attrs["reason"] == "unit test"


def test_coerce_array_silent_without_telemetry():
    out = coerce_array([1, 2, 3], np.float64, site="test")
    assert out.dtype == np.float64


# ----------------------------------------------------------------------
# End-to-end: float32 protected SpMV
# ----------------------------------------------------------------------
def test_float32_protected_spmv_detects_and_corrects():
    matrix = random_spd(48, 400, seed=5, dtype=np.float32)
    spmv = FaultTolerantSpMV(matrix, config=AbftConfig(block_size=8))
    b = np.random.default_rng(6).standard_normal(48).astype(np.float32)
    clean = spmv.multiply(b)
    assert clean.value.dtype == np.float32
    assert not any(clean.detections)

    state = {"armed": True}

    def burst(stage, data, work):
        if stage == "result" and state["armed"]:
            data[5] += np.float32(1e4)
            state["armed"] = False

    hit = spmv.multiply(b, tamper=burst)
    assert any(hit.detections)
    np.testing.assert_array_equal(hit.value, clean.value)
