"""Automatic block-size selection (turning Figure 4 into an API).

The paper sweeps b_s over the whole suite and fixes 32 globally; per
matrix the optimum varies (denser matrices prefer larger blocks — see
``benchmarks/bench_ablation_blocksize_vs_rate.py``).  This module picks
the block size that minimizes *modeled total overhead* for a given matrix,
device, and expected error frequency:

    overhead(b_s) = detection(b_s) + p_error * correction(b_s)

where correction(b_s) is the cost of recomputing one average block plus
its re-verification.  With ``p_error = 0`` this reduces to the paper's
detection-only criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.config import AbftConfig
from repro.core.detector import BlockAbftDetector
from repro.errors import ConfigurationError
from repro.machine import Machine, TaskGraph, blocked_checksum_cost, log2ceil, spmv_cost
from repro.sparse.csr import CsrMatrix

#: Candidate block sizes (the paper's Figure 4 grid).
DEFAULT_CANDIDATES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a block-size search.

    Attributes:
        block_size: the winning candidate.
        overheads: modeled total overhead per candidate (same order as
            ``candidates``).
        candidates: the evaluated block sizes.
        error_probability: the per-multiply error probability assumed.
    """

    block_size: int
    overheads: Tuple[float, ...]
    candidates: Tuple[int, ...]
    error_probability: float


def _correction_seconds(
    matrix: CsrMatrix, block_size: int, machine: Machine
) -> float:
    """Modeled cost of one average-block correction round."""
    n_blocks = -(-matrix.n_rows // block_size)
    average_block_nnz = matrix.nnz / max(1, n_blocks)
    max_row = int(matrix.row_lengths().max(initial=1))
    graph = TaskGraph()
    graph.add("recompute", 2.0 * average_block_nnz, log2ceil(max_row))
    recheck = blocked_checksum_cost(block_size, block_size, 1)
    graph.add("recheck", recheck.work, recheck.span, deps=["recompute"])
    return machine.makespan(graph)


def choose_block_size(
    matrix: CsrMatrix,
    machine: Machine | None = None,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    error_probability: float = 0.0,
) -> TuningResult:
    """Pick the block size minimizing modeled total overhead.

    Args:
        matrix: the matrix to protect.
        machine: simulated device (calibrated K80 model by default).
        candidates: block sizes to evaluate.
        error_probability: expected fraction of multiplies that trigger a
            correction (0 = the paper's detection-only criterion).

    Returns:
        A :class:`TuningResult`; ``block_size`` is safe to pass to
        :class:`repro.core.FaultTolerantSpMV`.

    Raises:
        ConfigurationError: for empty candidates or probabilities outside
            [0, 1].
    """
    if not candidates:
        raise ConfigurationError("need at least one candidate block size")
    if not 0.0 <= error_probability <= 1.0:
        raise ConfigurationError(
            f"error_probability must be in [0, 1], got {error_probability}"
        )
    machine = machine or Machine()
    plain_graph = TaskGraph()
    cost = spmv_cost(matrix.nnz, int(matrix.row_lengths().max(initial=1)))
    plain_graph.add("spmv", cost.work, cost.span)
    plain_seconds = machine.makespan(plain_graph)

    overheads = []
    for block_size in candidates:
        detector = BlockAbftDetector(matrix, AbftConfig(block_size=int(block_size)))
        protected = machine.makespan(detector.detection_graph())
        total = protected + error_probability * _correction_seconds(
            matrix, int(block_size), machine
        )
        overheads.append(total / plain_seconds - 1.0)

    best_index = min(range(len(candidates)), key=overheads.__getitem__)
    return TuningResult(
        block_size=int(candidates[best_index]),
        overheads=tuple(overheads),
        candidates=tuple(int(c) for c in candidates),
        error_probability=error_probability,
    )
