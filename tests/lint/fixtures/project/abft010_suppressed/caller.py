"""Non-refreshing caller; the finding is silenced at the mutation site."""

from matrix import ChecksumMatrix


def double(matrix: ChecksumMatrix):
    matrix.scale(2.0)
    return matrix
