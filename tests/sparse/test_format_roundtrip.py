"""Property-based round-trip tests (hypothesis) for CSR↔BSR↔COO.

The format engine's correctness rests on conversions being *exact*:
values and indices preserved bit for bit, duplicates summed once, fill
slots never leaking into the entry set.  These properties sweep random
shapes (including degenerate 1×n / n×1 / empty matrices) and block
shapes that do not divide the matrix dimensions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CooMatrix, EllMatrix
from repro.sparse.bsr import BsrMatrix


@st.composite
def coo_matrices(draw, max_dim=12, max_entries=40):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    n_entries = draw(st.integers(0, max_entries))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=n_entries, max_size=n_entries)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=n_entries, max_size=n_entries)
    )
    finite = st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    vals = draw(st.lists(finite, min_size=n_entries, max_size=n_entries))
    return CooMatrix(
        (n_rows, n_cols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )


block_shapes = st.one_of(
    st.integers(1, 7),
    st.tuples(st.integers(1, 7), st.integers(1, 7)),
)


@settings(max_examples=80, deadline=None)
@given(coo_matrices(), block_shapes)
def test_csr_bsr_csr_round_trip_is_exact(coo, block_shape):
    csr = coo.to_csr()
    back = BsrMatrix.from_csr(csr, block_shape).to_csr()
    # Bitwise structural equality: same indptr/indices/data, not just
    # numerically close values.
    assert back == csr
    np.testing.assert_array_equal(back.indptr, csr.indptr)
    np.testing.assert_array_equal(back.indices, csr.indices)
    np.testing.assert_array_equal(back.data, csr.data)


@settings(max_examples=80, deadline=None)
@given(coo_matrices(), block_shapes)
def test_bsr_coo_round_trip_preserves_entries(coo, block_shape):
    csr = coo.to_csr()
    bsr = BsrMatrix.from_csr(csr, block_shape)
    assert bsr.to_coo().to_csr() == csr
    assert bsr.nnz == csr.nnz  # fill slots never count as entries


@settings(max_examples=80, deadline=None)
@given(coo_matrices(), block_shapes)
def test_from_coo_sums_duplicates_like_csr(coo, block_shape):
    # COO→BSR must collapse duplicate coordinates exactly once, with the
    # same summation as the canonical COO→CSR conversion.
    assert BsrMatrix.from_coo(coo, block_shape).to_csr() == coo.to_csr()


@settings(max_examples=60, deadline=None)
@given(coo_matrices(), block_shapes)
def test_bsr_dense_view_matches_csr(coo, block_shape):
    csr = coo.to_csr()
    bsr = BsrMatrix.from_csr(csr, block_shape)
    np.testing.assert_array_equal(bsr.to_dense(), csr.to_dense())


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_csr_ell_csr_round_trip_is_exact(coo):
    csr = coo.to_csr()
    assert EllMatrix.from_csr(csr).to_csr() == csr


@settings(max_examples=40, deadline=None)
@given(coo_matrices(), block_shapes, st.integers(0, 1_000_000))
def test_matvec_agrees_across_formats(coo, block_shape, seed):
    csr = coo.to_csr()
    b = np.random.default_rng(seed).standard_normal(csr.n_cols)
    reference = csr.to_dense() @ b
    bsr = BsrMatrix.from_csr(csr, block_shape)
    ell = EllMatrix.from_csr(csr)
    scale = max(1.0, float(np.abs(reference).max()))
    np.testing.assert_allclose(bsr.matvec(b), reference, atol=1e-9 * scale)
    np.testing.assert_allclose(ell.matvec(b), reference, atol=1e-9 * scale)
