"""Zero-allocation steady state; build and correction allocate (ABFT012 quiet)."""

import numpy as np


class SpmvPlan:
    def __init__(self, n):
        self.out = np.zeros(n)  # ok: plan build allocates once
        self.scratch = np.zeros(n)

    def execute(self, x):
        np.multiply(x, 2.0, out=self.scratch)
        np.add(self.scratch, 1.0, out=self.out)
        return self.out

    def correct_shard(self, x):
        return np.array(x)  # ok: correction is the rare path, allocates by design
