"""Unit tests for schedule tracing."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import DeviceParams, Machine, TaskGraph
from repro.machine.trace import render_gantt, utilization


@pytest.fixture
def machine():
    return Machine(
        DeviceParams(
            throughput=10.0, launch_overhead=1.0, sync_time=0.0,
            streams=4, concurrency_boost=0.0,
        )
    )


def test_render_empty_schedule(machine):
    assert render_gantt(machine.schedule(TaskGraph())) == "(empty schedule)"


def test_render_contains_every_task(machine):
    g = TaskGraph()
    g.add("alpha", work=50.0)
    g.add("beta", work=50.0, deps=["alpha"])
    text = render_gantt(machine.schedule(g))
    assert "alpha" in text and "beta" in text
    assert "makespan" in text
    assert "#" in text and "." in text  # compute and launch phases drawn


def test_render_bars_reflect_ordering(machine):
    g = TaskGraph()
    g.add("first", work=100.0)
    g.add("second", work=10.0, deps=["first"])
    lines = render_gantt(machine.schedule(g), width=40).splitlines()
    first_line = next(line for line in lines if line.startswith("first"))
    second_line = next(line for line in lines if line.startswith("second"))
    # The second task's bar starts after the first's ends.
    assert second_line.index("#") > first_line.index("#")


def test_render_width_validation(machine):
    g = TaskGraph()
    g.add("t", work=10.0)
    with pytest.raises(ConfigurationError):
        render_gantt(machine.schedule(g), width=5)


def test_render_clamps_compute_cell_to_start_cell():
    """A timing whose compute cell rounds before its start cell must not
    shift the bar left or render negative-width segments."""
    from repro.machine.scheduler import Schedule, TaskTiming

    # start=0.5 rounds to cell 30 at width 60, compute_start=0.49 to cell 29:
    # without clamping the launch segment would be "." * -1 == "" and the
    # compute segment would start one cell early.
    schedule = Schedule(
        makespan=1.0, timings={"t": TaskTiming(start=0.5, compute_start=0.49, finish=1.0)}
    )
    lines = render_gantt(schedule, width=60).splitlines()
    bar_line = next(line for line in lines if line.startswith("t"))
    bar = bar_line[bar_line.index("|") + 1 : bar_line.rindex("|")]
    assert bar.index("#") == 30  # compute starts exactly at the start cell
    assert "." not in bar

    # Degenerate timing (compute_start < start) stays well-formed too.
    degenerate = Schedule(
        makespan=1.0, timings={"t": TaskTiming(start=0.5, compute_start=0.4, finish=1.0)}
    )
    lines = render_gantt(degenerate, width=60).splitlines()
    bar_line = next(line for line in lines if line.startswith("t"))
    bar = bar_line[bar_line.index("|") + 1 : bar_line.rindex("|")]
    assert bar.index("#") == 30
    assert len(bar.rstrip()) == 60  # finish at the makespan edge, no overrun


def test_utilization_full_for_back_to_back(machine):
    g = TaskGraph()
    g.add("a", work=100.0)
    schedule = machine.schedule(g)
    # 1s launch + 10s compute: utilization = 10/11.
    assert utilization(schedule) == pytest.approx(10.0 / 11.0)


def test_utilization_counts_overlap_once(machine):
    g = TaskGraph()
    g.add("a", work=100.0)
    g.add("b", work=100.0)
    schedule = machine.schedule(g)
    # Both compute concurrently after the shared 1s launch window.
    assert utilization(schedule) == pytest.approx(20.0 / 21.0)


def test_utilization_empty_is_zero(machine):
    assert utilization(machine.schedule(TaskGraph())) == 0.0


def test_trace_of_detection_graph_is_plausible():
    """Integration: trace the real protected-SpMV graph."""
    from repro.core import BlockAbftDetector
    from repro.sparse import suite_matrix

    detector = BlockAbftDetector(suite_matrix("nos3"))
    machine = Machine()
    schedule = machine.schedule(detector.detection_graph())
    text = render_gantt(schedule)
    for task in ("spmv", "t1", "beta", "check"):
        assert task in text
    assert 0.3 < utilization(schedule) <= 1.0
