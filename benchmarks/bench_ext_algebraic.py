"""Extension study — algebraic repair vs partial recomputation.

The dual-checksum scheme (repro.core.algebraic) pays doubled checksum work
per multiply but repairs a single corrupted element by recomputing *one
row* instead of a whole block.  This bench measures both sides of that
trade across matrices of increasing density: detection-only cost (where
the dual scheme loses) and correction cost (where it wins).
"""

import numpy as np
from conftest import write_result

from repro.analysis import format_table
from repro.core import DualChecksumSpMV, FaultTolerantSpMV
from repro.sparse import QUICK_SUITE, iter_suite


def _clean_and_faulty_seconds(scheme, b, index):
    clean = scheme.multiply(b).seconds
    state = {"armed": True}

    def tamper(stage, data, work):
        if stage == "result" and state["armed"]:
            data[index] += 100.0 * float(np.linalg.norm(b))
            state["armed"] = False

    faulty = scheme.multiply(b, tamper=tamper).seconds
    return clean, faulty


def test_algebraic_extension_tradeoff(benchmark, full_suite):
    subset = [(s, m) for s, m in full_suite if s.name in QUICK_SUITE]
    rows = []
    correction_wins = 0
    for spec, matrix in subset:
        rng = np.random.default_rng(41)
        b = rng.standard_normal(matrix.n_cols)
        index = int(rng.integers(0, matrix.n_rows))
        ours = FaultTolerantSpMV(matrix, block_size=32)
        dual = DualChecksumSpMV(matrix, block_size=32)
        ours_clean, ours_faulty = _clean_and_faulty_seconds(ours, b, index)
        dual_clean, dual_faulty = _clean_and_faulty_seconds(dual, b, index)
        ours_corr = ours_faulty - ours_clean
        dual_corr = dual_faulty - dual_clean
        correction_wins += dual_corr <= ours_corr
        rows.append(
            (
                spec.name,
                f"{ours_clean * 1e6:.1f} us",
                f"{dual_clean * 1e6:.1f} us",
                f"{ours_corr * 1e6:.1f} us",
                f"{dual_corr * 1e6:.1f} us",
            )
        )
    table = format_table(
        ("matrix", "detect (paper)", "detect (dual)",
         "correct (paper)", "correct (dual)"),
        rows,
        title="Extension — dual-checksum algebraic repair vs block recomputation",
    )
    write_result("ext_algebraic", table)

    # Dual detection is never cheaper (doubled checksum stream)...
    # ...but its corrections win (or tie) on most matrices.
    assert correction_wins >= len(subset) - 1

    matrix = subset[1][1]
    dual = DualChecksumSpMV(matrix, block_size=32)
    rng = np.random.default_rng(42)
    b = rng.standard_normal(matrix.n_cols)
    benchmark(lambda: dual.multiply(b))
