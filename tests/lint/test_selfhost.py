"""Self-hosting gates: the shipped tree passes its own analyzer.

These tests are the in-repo mirror of the CI lint job — if they pass,
``python -m repro.lint src/`` exits 0 against the committed (empty)
baseline, and every suppression in the tree carries a reason.
"""

from pathlib import Path

from repro.lint import analyze_project, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_tree_is_clean():
    result = lint_paths([SRC], root=REPO_ROOT)
    assert result.files_checked > 50
    locations = [f.location() for f in result.findings]
    assert locations == [], f"new findings: {locations}"


def test_every_suppression_has_a_reason():
    result = lint_paths([SRC], root=REPO_ROOT)
    offenders = [
        f"{path}:{directive.line}"
        for path, directive in result.reasonless_suppressions
    ]
    assert offenders == [], f"reasonless suppressions: {offenders}"


def test_lint_package_self_hosts_without_suppressions():
    result = lint_paths([SRC / "repro" / "lint"], root=REPO_ROOT)
    assert result.findings == []
    assert result.suppressed == 0


def test_src_tree_is_clean_in_project_mode():
    """ABFT008-012 over the whole tree: the parallel backends obey their
    own protocols (or carry reasoned suppressions)."""
    result = analyze_project([SRC], base=REPO_ROOT)
    assert result.files_checked > 50
    locations = [f.location() for f in result.findings]
    assert locations == [], f"project findings: {locations}"
    assert result.reasonless_suppressions == []
