"""Bandwidth-reducing reordering (reverse Cuthill-McKee), from scratch.

The sparse checksum matrix ``C`` is small exactly when rows inside a block
share columns — a locality property of the ordering, not of the matrix.
Reordering a scattered matrix with RCM restores that locality, shrinking
``nnz(C)`` and with it the ``t1 = C b`` cost of the proposed scheme.  The
ablation bench quantifies this; this module provides the machinery:

* :func:`cuthill_mckee` / :func:`reverse_cuthill_mckee` — BFS orderings by
  increasing degree (the classic bandwidth heuristic);
* :func:`symmetric_permute` — apply ``P A P^T``;
* :func:`bandwidth` / :func:`profile` — the metrics they optimize.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


def bandwidth(matrix: CsrMatrix) -> int:
    """Maximum ``|i - j|`` over stored entries (0 for diagonal/empty)."""
    if matrix.nnz == 0:
        return 0
    return int(np.abs(matrix.entry_rows() - matrix.indices).max())


def profile(matrix: CsrMatrix) -> int:
    """Sum over rows of the distance from the leftmost entry to the
    diagonal (the envelope size, a finer metric than bandwidth)."""
    if matrix.nnz == 0:
        return 0
    rows = matrix.entry_rows()
    spread = rows - matrix.indices
    spread = spread[spread > 0]
    if spread.size == 0:
        return 0
    leftmost = np.zeros(matrix.n_rows, dtype=np.int64)
    np.maximum.at(leftmost, rows[rows - matrix.indices > 0], spread)
    return int(leftmost.sum())


def cuthill_mckee(matrix: CsrMatrix) -> np.ndarray:
    """Cuthill-McKee ordering of a structurally symmetric matrix.

    Returns a permutation array ``perm`` with ``perm[new] = old``: BFS from
    a minimum-degree vertex, visiting neighbours in increasing degree, one
    connected component after another.

    Raises:
        ShapeMismatchError: for non-square matrices.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise ShapeMismatchError(f"need a square matrix, got {matrix.shape}")
    n = matrix.n_rows
    degrees = matrix.row_lengths()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    cursor = 0

    # Stable seed choice: minimum degree, ties by index.
    seeds = np.lexsort((np.arange(n), degrees))
    seed_cursor = 0
    while cursor < n:
        while visited[seeds[seed_cursor]]:
            seed_cursor += 1
        root = int(seeds[seed_cursor])
        visited[root] = True
        order[cursor] = root
        head = cursor
        cursor += 1
        while head < cursor:
            vertex = int(order[head])
            head += 1
            lo, hi = matrix.indptr[vertex], matrix.indptr[vertex + 1]
            neighbours = matrix.indices[lo:hi]
            fresh = neighbours[~visited[neighbours]]
            if fresh.size:
                fresh = np.unique(fresh)  # unique also sorts
                fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                visited[fresh] = True
                order[cursor : cursor + fresh.size] = fresh
                cursor += fresh.size
    return order


def reverse_cuthill_mckee(matrix: CsrMatrix) -> np.ndarray:
    """RCM ordering: Cuthill-McKee reversed (usually a smaller profile)."""
    return cuthill_mckee(matrix)[::-1].copy()


def symmetric_permute(matrix: CsrMatrix, perm: np.ndarray) -> CsrMatrix:
    """Apply ``P A P^T``: row/column ``perm[new] = old`` relabeling.

    Args:
        matrix: square matrix to permute.
        perm: permutation with ``perm[new] = old``.

    Returns:
        The permuted matrix ``B`` with ``B[i, j] = A[perm[i], perm[j]]``.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise ShapeMismatchError(f"need a square matrix, got {matrix.shape}")
    perm = np.asarray(perm, dtype=np.int64)
    n = matrix.n_rows
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise SparseFormatError("perm must be a permutation of 0..n-1")
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n, dtype=np.int64)
    return CooMatrix(
        matrix.shape,
        inverse[matrix.entry_rows()],
        inverse[matrix.indices],
        matrix.data.copy(),
    ).to_csr()


def permute_vector(vector: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Reorder a vector consistently with :func:`symmetric_permute`
    (``out[new] = vector[perm[new]]``)."""
    return np.asarray(vector)[np.asarray(perm, dtype=np.int64)]


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    """A uniformly random permutation (for scrambling test matrices)."""
    return np.random.default_rng(seed).permutation(n).astype(np.int64)
