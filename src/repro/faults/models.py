"""Alternative fault models for robustness studies (extension).

The paper's evaluation uses one error model — bursts of bidirectional bit
flips (Section IV-A).  Real FPUs, however, exhibit different propagation
patterns ("different implementations of floating-point units ... may have
different error propagation patterns", Section IV-A), so this module
offers a family of models behind one protocol:

* :class:`BurstModel` — the paper's model (position ~ U{0..63}, width ~
  round(N(3, 2)));
* :class:`SingleBitModel` — one uniformly chosen bit (the classic SEU);
* :class:`ExponentModel` — flips confined to the exponent field: severe,
  magnitude-changing errors;
* :class:`MantissaModel` — flips confined to the mantissa: subtle errors
  that stress the rounding-error bounds;
* :class:`ScaledNoiseModel` — multiplicative Gaussian perturbation, an
  idealized "approximate hardware" model (EnerJ-style, [12]).

:class:`repro.faults.injector.FaultInjector` accepts any of these through
its ``model`` field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import InjectionError
from repro.faults.bitflip import (
    BURST_MEAN_BITS,
    BURST_VARIANCE_BITS,
    Burst,
    apply_bitmask,
    corrupt_value,
)

#: Bit layout of an IEEE-754 double.
MANTISSA_BITS = 52
EXPONENT_BITS = 11


class FaultModel(Protocol):
    """Anything that can corrupt one float64."""

    name: str

    def corrupt(self, value: float, rng: np.random.Generator) -> float: ...


@dataclass(frozen=True)
class BurstModel:
    """The paper's burst model (Section IV-A)."""

    name: str = "burst"
    mean_bits: float = BURST_MEAN_BITS
    variance_bits: float = BURST_VARIANCE_BITS

    def corrupt(self, value: float, rng: np.random.Generator) -> float:
        corrupted, _ = corrupt_value(value, rng, self.mean_bits, self.variance_bits)
        return corrupted


@dataclass(frozen=True)
class SingleBitModel:
    """Exactly one flipped bit, position uniform over the word."""

    name: str = "single-bit"

    def corrupt(self, value: float, rng: np.random.Generator) -> float:
        return Burst(position=int(rng.integers(0, 64)), width=1).apply(value)


@dataclass(frozen=True)
class ExponentModel:
    """One flipped bit inside the exponent field (severe errors)."""

    name: str = "exponent"

    def corrupt(self, value: float, rng: np.random.Generator) -> float:
        position = MANTISSA_BITS + int(rng.integers(0, EXPONENT_BITS))
        return Burst(position=position, width=1).apply(value)


@dataclass(frozen=True)
class MantissaModel:
    """A short burst inside the mantissa field (subtle errors)."""

    name: str = "mantissa"
    width: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.width <= MANTISSA_BITS:
            raise InjectionError(
                f"mantissa burst width must be in [1, {MANTISSA_BITS}], got {self.width}"
            )

    def corrupt(self, value: float, rng: np.random.Generator) -> float:
        position = int(rng.integers(0, MANTISSA_BITS - self.width + 1))
        return Burst(position=position, width=self.width).apply(value)


@dataclass(frozen=True)
class ScaledNoiseModel:
    """Multiplicative Gaussian noise: ``value * (1 + N(0, scale))``.

    Unlike the bit-level models this never produces inf/NaN and is
    magnitude-proportional — the idealized behaviour of voltage-scaled
    approximate arithmetic.
    """

    name: str = "scaled-noise"
    scale: float = 1e-3

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise InjectionError(f"noise scale must be positive, got {self.scale}")

    def corrupt(self, value: float, rng: np.random.Generator) -> float:
        # reprolint: disable=ABFT003 -- multiplicative noise is a no-op on an
        # exact zero; only that case needs the additive fallback
        if value == 0.0:
            return float(rng.normal(0.0, self.scale))
        return float(value * (1.0 + rng.normal(0.0, self.scale)))


@dataclass(frozen=True)
class StuckSignModel:
    """Forces the sign bit set (a stuck-at fault on the sign line)."""

    name: str = "stuck-sign"

    def corrupt(self, value: float, rng: np.random.Generator) -> float:
        # Forcing the sign bit to 1 is exactly -|value| (0.0 becomes -0.0).
        return apply_bitmask(abs(value), 1 << 63)


_MODELS = {
    "burst": BurstModel,
    "single-bit": SingleBitModel,
    "exponent": ExponentModel,
    "mantissa": MantissaModel,
    "scaled-noise": ScaledNoiseModel,
    "stuck-sign": StuckSignModel,
}


def make_fault_model(kind: str, **kwargs) -> FaultModel:
    """Factory over the registered model names."""
    try:
        factory = _MODELS[kind]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise InjectionError(f"unknown fault model {kind!r}; known: {known}") from None
    return factory(**kwargs)


def model_names() -> tuple[str, ...]:
    """Registered model names, sorted."""
    return tuple(sorted(_MODELS))
