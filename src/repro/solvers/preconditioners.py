"""Preconditioners for the PCG solver (paper Section VI-A).

The paper's case study uses the Jacobi preconditioner and reports that SSOR
and Incomplete Cholesky gave no significantly different results; all three
are implemented.  Each preconditioner exposes ``apply`` (compute
``z = M^{-1} r``) and ``apply_cost`` (the kernel cost one application
charges to the machine model).

The triangular solves of SSOR and IC(0) are inherently sequential row
sweeps; they are implemented as straightforward loops and intended for the
moderate problem sizes of the examples and tests (the campaigns follow the
paper and use Jacobi).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError, SingularMatrixError
from repro.machine import KernelCost, log2ceil, pointwise_cost
from repro.sparse.csr import CsrMatrix


class Preconditioner(Protocol):
    """Anything that can apply ``M^{-1}``."""

    def apply(self, r: np.ndarray) -> np.ndarray: ...

    @property
    def apply_cost(self) -> KernelCost: ...


class IdentityPreconditioner:
    """No preconditioning (plain CG)."""

    name = "identity"

    def __init__(self, matrix: CsrMatrix) -> None:
        self._n = matrix.n_rows

    def apply(self, r: np.ndarray) -> np.ndarray:
        return r.copy()

    @property
    def apply_cost(self) -> KernelCost:
        return KernelCost(0.0, 0.0)


class JacobiPreconditioner:
    """Diagonal scaling: ``z_i = r_i / a_ii`` (the paper's default)."""

    name = "jacobi"

    def __init__(self, matrix: CsrMatrix) -> None:
        diag = matrix.diagonal()
        if (diag == 0).any():
            raise SingularMatrixError("Jacobi preconditioner needs a zero-free diagonal")
        self._inverse_diag = 1.0 / diag
        self._cost = pointwise_cost(matrix.n_rows)

    def apply(self, r: np.ndarray) -> np.ndarray:
        return r * self._inverse_diag

    @property
    def apply_cost(self) -> KernelCost:
        return self._cost


def _forward_solve(matrix: CsrMatrix, diag: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(D + L) z = rhs`` where L is the strict lower triangle."""
    n = matrix.n_rows
    z = np.zeros(n, dtype=np.float64)
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        below = cols < i
        z[i] = (rhs[i] - np.dot(vals[below], z[cols[below]])) / diag[i]
    return z


def _backward_solve(matrix: CsrMatrix, diag: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(D + U) z = rhs`` where U is the strict upper triangle."""
    n = matrix.n_rows
    z = np.zeros(n, dtype=np.float64)
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        above = cols > i
        z[i] = (rhs[i] - np.dot(vals[above], z[cols[above]])) / diag[i]
    return z


class SsorPreconditioner:
    """Symmetric successive over-relaxation preconditioner.

    ``M = (D/w + L) (D/w)^{-1} (D/w + U) * w/(2-w)``; applied via one
    forward and one backward triangular sweep.
    """

    name = "ssor"

    def __init__(self, matrix: CsrMatrix, omega: float = 1.0) -> None:
        if not 0.0 < omega < 2.0:
            raise SingularMatrixError(f"SSOR needs omega in (0, 2), got {omega}")
        diag = matrix.diagonal()
        if (diag == 0).any():
            raise SingularMatrixError("SSOR needs a zero-free diagonal")
        self.matrix = matrix
        self.omega = omega
        self._scaled_diag = diag / omega
        # Two sequential sweeps over all nnz: work 4*nnz, span = n rows of
        # dependence (triangular solves barely parallelize).
        self._cost = KernelCost(4.0 * matrix.nnz, log2ceil(matrix.n_rows) * 4.0)

    def apply(self, r: np.ndarray) -> np.ndarray:
        scale = (2.0 - self.omega) / self.omega
        y = _forward_solve(self.matrix, self._scaled_diag, r)
        y = y * self._scaled_diag * scale
        return _backward_solve(self.matrix, self._scaled_diag, y)

    @property
    def apply_cost(self) -> KernelCost:
        return self._cost


class IncompleteCholeskyPreconditioner:
    """IC(0): Cholesky restricted to the sparsity pattern of ``A``.

    ``M = L L^T`` with ``L`` sharing the lower-triangle pattern of ``A``;
    applied via forward/backward substitution.
    """

    name = "ic0"

    def __init__(self, matrix: CsrMatrix) -> None:
        self.matrix = matrix
        self._factor_lower = self._factorize(matrix)
        self._factor_diag = self._factor_lower.diagonal()
        self._factor_upper = self._factor_lower.transpose()
        self._cost = KernelCost(4.0 * self._factor_lower.nnz, log2ceil(matrix.n_rows) * 4.0)

    @staticmethod
    def _factorize(matrix: CsrMatrix) -> CsrMatrix:
        """Row-oriented IC(0); raises on a non-positive pivot."""
        n = matrix.n_rows
        rows: list[dict[int, float]] = [{} for _ in range(n)]
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            pattern = {int(j): float(v) for j, v in zip(indices[lo:hi], data[lo:hi]) if j <= i}
            if i not in pattern:
                raise SingularMatrixError(f"IC(0): missing diagonal entry in row {i}")
            row: dict[int, float] = {}
            for j in sorted(pattern):
                value = pattern[j]
                # value -= sum_k L[i,k] * L[j,k] over shared columns k < j
                lj = rows[j] if j < i else row
                acc = value
                for k, lik in row.items():
                    if k < j:
                        ljk = lj.get(k)
                        if ljk is not None:
                            acc -= lik * ljk
                if j < i:
                    acc /= rows[j][j]
                    row[j] = acc
                else:  # diagonal pivot
                    if acc <= 0.0:
                        raise SingularMatrixError(
                            f"IC(0): non-positive pivot {acc!r} in row {i}"
                        )
                    row[j] = float(np.sqrt(acc))
            rows[i] = row
        entries = [
            (i, j, value) for i, row in enumerate(rows) for j, value in row.items()
        ]
        from repro.sparse.coo import CooMatrix

        return CooMatrix.from_entries((n, n), entries).to_csr()

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = _forward_solve(self._factor_lower, self._factor_diag, r)
        # The forward solver divides by diag but our L already contains the
        # sqrt pivots on its diagonal, so feed it the factor's diagonal and
        # account for the extra scaling: (D+Lstrict) z = rhs with D = diag(L)
        # is exactly L z = rhs here because L's stored diagonal IS D.
        return _backward_solve(self._factor_upper, self._factor_diag, y)

    @property
    def apply_cost(self) -> KernelCost:
        return self._cost


def make_preconditioner(kind: str, matrix: CsrMatrix, **kwargs):
    """Factory: ``identity`` | ``jacobi`` | ``ssor`` | ``ic0``."""
    if kind == "identity":
        return IdentityPreconditioner(matrix)
    if kind == "jacobi":
        return JacobiPreconditioner(matrix)
    if kind == "ssor":
        return SsorPreconditioner(matrix, **kwargs)
    if kind == "ic0":
        return IncompleteCholeskyPreconditioner(matrix)
    raise ConfigurationError(f"unknown preconditioner kind {kind!r}")
