"""Related-work fault-tolerance baselines the paper compares against.

* :class:`DenseChecksum` — the dense ABFT check of [30], [31];
* :class:`CompleteRecomputationSpMV` — dense check + full recomputation [31];
* :class:`PartialRecomputationSpMV` — dense check + iterative bisection
  localization (40 % early stop) + range recomputation [30];
* :class:`CheckpointStore` — state snapshots for checkpoint/rollback.
"""

from repro.baselines.bisection import (
    DEFAULT_EARLY_STOP,
    BisectionLocalizer,
    LocalizationOutcome,
    PartialRecomputationSpMV,
)
from repro.baselines.checkpoint import DEFAULT_CHECKPOINT_INTERVAL, CheckpointStore
from repro.baselines.complete import CompleteRecomputationSpMV
from repro.baselines.dense_check import DenseCheckReport, DenseChecksum
from repro.baselines.redundancy import DwcSpMV, TmrSpMV
from repro.baselines.scheme import BaselineSpmvResult, SpmvScheme

__all__ = [
    "BaselineSpmvResult",
    "SpmvScheme",
    "DenseChecksum",
    "DenseCheckReport",
    "CompleteRecomputationSpMV",
    "PartialRecomputationSpMV",
    "BisectionLocalizer",
    "LocalizationOutcome",
    "DEFAULT_EARLY_STOP",
    "CheckpointStore",
    "DwcSpMV",
    "TmrSpMV",
    "DEFAULT_CHECKPOINT_INTERVAL",
]
