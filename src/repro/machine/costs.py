"""Kernel cost builders: map linear-algebra operations to (work, span).

Every operation the fault-tolerance schemes execute is costed here, in one
place, so the schemes themselves never invent constants.  The builders
return :class:`KernelCost` values (work in FLOPs, span in kernel-level
sequential steps) which the drivers turn into :class:`repro.machine.task.Task`
instances.

Modeling notes (see DESIGN.md, substitution table):

* An inner product of length ``n`` on a GPU is a two-pass tree reduction —
  span ``2 * ceil(log2 n)`` — and its scalar result must round-trip to the
  host before a branch can act on it (``HOST_SYNC_SPAN``).
* The paper's blocked result checksum (t2) is a *segmented* reduction with
  span ``ceil(log2 b_s))`` only, because blocks reduce independently; the
  syndrome and threshold comparison fuse into the same kernel (+2 steps).
  This latency gap is precisely the advantage Section III-B claims over
  deep dense reductions.
* SpMV span is the depth of one row reduction, ``ceil(log2 max_row_nnz)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Sequential steps modeling a device-to-host scalar round trip plus the
#: host-side branch that decides whether correction is needed.
HOST_SYNC_SPAN = 3.0

#: Sequential steps of a *blocking* scalar reduction round trip (cuBLAS-style
#: dot: deep reduction result copied to the host with a device sync).  The
#: related-work dense check pays this once per scalar check; K80-era
#: measurements put the full round trip at tens of microseconds.
BLOCKING_SYNC_SPAN = 30.0

#: Sequential steps of the proposed scheme's asynchronous block-flag copy
#: (a compact flag word, no device-wide sync).
FLAG_SYNC_SPAN = 3.0


def log2ceil(value: float) -> float:
    """``ceil(log2(value))`` with a floor of 1 (any reduction has >= 1 level)."""
    if value <= 2:
        return 1.0
    return float(math.ceil(math.log2(value)))


@dataclass(frozen=True)
class KernelCost:
    """Work/span cost of one kernel."""

    work: float
    span: float

    def __post_init__(self) -> None:
        if self.work < 0 or self.span < 0:
            raise ConfigurationError(f"negative kernel cost: {self}")

    def __add__(self, other: "KernelCost") -> "KernelCost":
        """Fuse two kernels into one (work and span both accumulate)."""
        return KernelCost(self.work + other.work, self.span + other.span)


def spmv_cost(nnz: int, max_row_nnz: int) -> KernelCost:
    """Full sparse matrix-vector product ``r = A b``."""
    return KernelCost(2.0 * nnz, log2ceil(max_row_nnz))


def partial_spmv_cost(nnz_rows: int, max_row_nnz: int) -> KernelCost:
    """SpMV restricted to a row range (the correction kernel)."""
    return KernelCost(2.0 * nnz_rows, log2ceil(max_row_nnz))


def dot_cost(n: int) -> KernelCost:
    """Dense inner product of length ``n`` (two-pass tree reduction)."""
    return KernelCost(2.0 * n, 2.0 * log2ceil(n))


def norm_cost(n: int) -> KernelCost:
    """Euclidean norm ``||v||_2`` (dot plus a scalar sqrt)."""
    cost = dot_cost(n)
    return KernelCost(cost.work + 1.0, cost.span)


def axpy_cost(n: int) -> KernelCost:
    """``y <- a x + y`` (embarrassingly parallel, unit span)."""
    return KernelCost(2.0 * n, 1.0)


def scale_cost(n: int) -> KernelCost:
    """``y <- a x`` elementwise."""
    return KernelCost(float(n), 1.0)


def pointwise_cost(n: int) -> KernelCost:
    """Generic elementwise kernel over ``n`` elements (e.g. Jacobi apply)."""
    return KernelCost(float(n), 1.0)


def blocked_checksum_cost(n_rows: int, block_size: int, n_blocks: int) -> KernelCost:
    """Fused t2 / syndrome / threshold-compare kernel of the proposed scheme.

    One kernel computes ``t2_k = w_k^T r_k`` for every block (segmented
    reduction over at most ``block_size`` elements), subtracts ``t1``,
    evaluates the per-block bound and writes the block flags, which copy to
    the host asynchronously (``FLAG_SYNC_SPAN``).

    Span model: ``ceil(log2 b_s)`` reduction levels, plus ``b_s / 32``
    SIMD-serialization steps (large blocks leave too few independent blocks
    to fill the device — the effect that bends Figure 4 upward past
    b_s = 32), plus 2 steps for syndrome/compare, plus the flag copy.
    """
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    work = 2.0 * n_rows + 3.0 * n_blocks
    span = log2ceil(block_size) + block_size / 32.0 + 2.0 + FLAG_SYNC_SPAN
    return KernelCost(work, span)


def result_checksum_cost(n_rows: int, block_size: int) -> KernelCost:
    """Result checksum t2 (Figure 1, step 2): segmented reduction per block.

    Work covers one multiply-add per result element; span is the reduction
    depth of a single block — blocks reduce independently, which is the
    latency advantage over the dense check's full-length reduction.
    """
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    return KernelCost(2.0 * n_rows, log2ceil(block_size))


def syndrome_cost(n_blocks: int) -> KernelCost:
    """Syndrome s = t1 - t2 (Figure 1, step 3): one subtraction per block."""
    return KernelCost(float(n_blocks), 1.0)


def compare_cost(n_blocks: int) -> KernelCost:
    """Threshold comparison |s_k| < tau_k (Figure 1, step 4).

    Evaluates the per-block bound (one multiply by beta plus a compare) and
    ships the block flags to the host so correction can be dispatched.
    """
    return KernelCost(2.0 * n_blocks, 1.0 + HOST_SYNC_SPAN)


def checksum_matvec_cost(nnz_checksum: int, max_checksum_row_nnz: int) -> KernelCost:
    """Operand checksum ``t1 = C b`` (an SpMV on the sparse checksum matrix)."""
    return spmv_cost(nnz_checksum, max_checksum_row_nnz)


def dense_check_cost(n: int) -> KernelCost:
    """Result side of the dense check: ``w^T r`` then a blocking host sync.

    The related-work scheme ([30], [31]) reduces the *whole* result vector
    with a dense weight vector; the scalar is consumed by a host-side
    threshold comparison, which forces a blocking device round trip per
    check (cuBLAS dot semantics).
    """
    cost = dot_cost(n)
    return KernelCost(cost.work, cost.span + BLOCKING_SYNC_SPAN)


def probe_cost(n: int) -> KernelCost:
    """One bisection-localization probe (``c_node b`` plus host compare).

    During localization the host is already spinning in a synchronous
    descent loop, so consecutive probes pipeline: each pays the reduction
    plus a light host round trip rather than a full blocking sync.
    """
    cost = dot_cost(n)
    return KernelCost(cost.work, cost.span + HOST_SYNC_SPAN)


def blocking_norm_cost(n: int) -> KernelCost:
    """Operand norm computed for a *host-side* bound (dense-check baseline).

    Same reduction as :func:`norm_cost` plus the blocking scalar round trip
    — the ``tau = ||b||_2`` bound of [30] is evaluated on the host.
    """
    cost = norm_cost(n)
    return KernelCost(cost.work, cost.span + BLOCKING_SYNC_SPAN)


def host_flag_cost() -> KernelCost:
    """Device-to-host transfer of the block error flags (proposed scheme)."""
    return KernelCost(0.0, HOST_SYNC_SPAN)


def checkpoint_store_cost(n_state: int) -> KernelCost:
    """Copy solver state (``n_state`` doubles) to checkpoint storage.

    Modeled as a bandwidth-style pass over the state: one read + one write
    per element, unit span.
    """
    return KernelCost(2.0 * n_state, 1.0)


def checkpoint_restore_cost(n_state: int) -> KernelCost:
    """Restore solver state from checkpoint storage."""
    return checkpoint_store_cost(n_state)
