"""Lock-guarded shared-state write on a concurrent path (ABFT011 quiet)."""

import threading
from concurrent.futures import ThreadPoolExecutor

_CACHE = {}
_LOCK = threading.Lock()


def record(key, value):
    with _LOCK:
        _CACHE[key] = value  # ok: guarded by the module lock


def prune(key):
    # Not reachable from any spawn site: single-threaded maintenance.
    _CACHE.pop(key, None)


def run_all(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        for item in items:
            pool.submit(record, item, 1)
