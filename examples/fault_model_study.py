"""Detection coverage across fault models (robustness study).

The paper's evaluation uses one fault model (bit-flip bursts); real FPUs
propagate faults differently.  This example measures the block detector's
F1 coverage under every registered fault model, illustrating where the
analytical bound is conservative (severe exponent errors: trivially
caught) and where it is stressed (subtle mantissa errors).

Run:  python examples/fault_model_study.py
"""

import numpy as np

from repro.analysis import ConfusionCounts, wilson_interval
from repro.core import BlockAbftDetector
from repro.faults import FaultInjector, make_fault_model, model_names
from repro.sparse import suite_matrix

TRIALS = 300
SIGMA = 1e-10
BLOCK_SIZE = 32


def coverage_for(model_name: str, matrix, detector) -> ConfusionCounts:
    injector = FaultInjector(
        rng=np.random.default_rng(7), model=make_fault_model(model_name)
    )
    rng = np.random.default_rng(8)
    counts = ConfusionCounts()
    for _ in range(TRIALS):
        b = rng.standard_normal(matrix.n_cols)
        r = matrix.matvec(b)
        try:
            record = injector.corrupt_random_element(r, sigma=SIGMA)
        except Exception:
            continue  # model cannot make this element sigma-significant
        report = detector.detect(b, r)
        if record.index // BLOCK_SIZE in report.flagged:
            counts.true_positives += 1
        else:
            counts.false_negatives += 1
        counts.false_positives += int(
            len(set(int(x) for x in report.flagged) - {record.index // BLOCK_SIZE})
        )
    return counts


def main() -> None:
    matrix = suite_matrix("bcsstk13")
    detector = BlockAbftDetector(matrix)
    print(f"matrix: bcsstk13 analogue ({matrix.shape[0]}x{matrix.shape[1]}), "
          f"{TRIALS} sigma-significant injections per model (sigma={SIGMA:g})\n")
    print(f"{'fault model':14s} {'F1':>6s} {'recall':>8s} {'95% CI on recall':>20s}")
    print("-" * 52)
    for name in model_names():
        if name == "stuck-sign":
            continue  # cannot produce significant errors on half the values
        counts = coverage_for(name, matrix, detector)
        detected = counts.true_positives
        total = counts.true_positives + counts.false_negatives
        low, high = wilson_interval(detected, max(total, 1))
        print(
            f"{name:14s} {counts.f1:6.3f} {counts.recall:8.3f} "
            f"{'[' + format(low, '.3f') + ', ' + format(high, '.3f') + ']':>20s}"
        )
    print(
        "\nexponent bursts change magnitudes drastically and are always caught;"
        "\nmantissa-only errors sit closest to the rounding-error bound."
    )


if __name__ == "__main__":
    main()
