"""Compressed Sparse Row (CSR) matrices and their computational kernels.

This is the storage format used throughout the library, matching the paper's
experimental setup (Section IV-B: "the evaluated matrices were stored in the
compressed sparse row storage format").  All kernels are vectorized with
NumPy; none delegate to SciPy — the substrate is built from scratch.

The two kernels the ABFT scheme cares about are:

* :meth:`CsrMatrix.matvec` — the full SpMV ``r = A b``;
* :meth:`CsrMatrix.matvec_rows` — the *partial* SpMV over a row range,
  which is what error correction recomputes for an erroneous block.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError

#: Cap on the dense ``(nnz, chunk)`` scratch a single SpMM pass may
#: materialize (elements, i.e. ~128 MiB of float64) — wide multivectors
#: are processed in column chunks instead of densifying all at once.
MATMAT_CHUNK_ELEMENTS = 1 << 24

#: Storage dtypes a sparse matrix carries as-is.  Anything else (ints,
#: float16, ...) is coerced to float64 at construction, which preserves
#: the historic behavior for every pre-dtype-policy caller.
SUPPORTED_STORAGE_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def storage_dtype(values: np.ndarray) -> np.dtype:
    """The dtype a sparse format stores ``values`` in.

    float32 and float64 round-trip unchanged; every other dtype coerces
    to float64 (the paper's baseline precision).
    """
    dtype = np.asarray(values).dtype
    return dtype if dtype in SUPPORTED_STORAGE_DTYPES else np.dtype(np.float64)


def _segment_sums(
    values: np.ndarray,
    indptr: np.ndarray,
    n_segments: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sum ``values`` over the segments delimited by ``indptr``.

    Segment ``i`` covers ``values[indptr[i]:indptr[i+1]]``; empty segments
    yield 0.  This is the reduction at the heart of every CSR row operation
    (SpMV row sums, row norms, row counts).  ``out``, when given, must be an
    array of length ``n_segments`` (the working dtype of the pipeline); it
    is overwritten and returned.
    """
    if out is None:
        out = np.zeros(n_segments, dtype=values.dtype)
    else:
        out[:] = 0.0
    if values.size == 0:
        return out
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    # np.add.reduceat sums values[starts[k]:starts[k+1]]; because segments of
    # empty rows contribute no entries, consecutive non-empty starts delimit
    # exactly one logical row each.
    out[nonempty] = np.add.reduceat(values, starts)
    return out


def _spmm_chunked(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
) -> None:
    """Accumulate ``out[i, :] += sum_j data_ij * b[col_ij, :]`` in chunks.

    ``indptr`` is local to the ``data``/``indices`` slice (starts at 0).
    Columns of ``b`` are processed ``MATMAT_CHUNK_ELEMENTS // nnz`` at a
    time; each column's reduction is independent, so the chunked result is
    bit-identical to a single dense pass.
    """
    nnz = data.size
    k = b.shape[1]
    if nnz == 0 or k == 0:
        return
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    if not nonempty.any():
        return
    starts = indptr[:-1][nonempty]
    chunk = max(1, MATMAT_CHUNK_ELEMENTS // nnz)
    for j0 in range(0, k, chunk):
        j1 = min(j0 + chunk, k)
        products = data[:, None] * b[indices, j0:j1]
        out[nonempty, j0:j1] = np.add.reduceat(products, starts, axis=0)


class CsrMatrix:
    """An immutable sparse matrix in compressed sparse row format.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        indptr: int64 array of length ``n_rows + 1``; row ``i`` owns the
            entry range ``[indptr[i], indptr[i+1])``.
        indices: int64 array of column indices, sorted within each row.
        data: float64 or float32 array of values aligned with ``indices``
            (:func:`storage_dtype`: float input keeps its precision, every
            other dtype coerces to float64).
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_entry_rows", "_row_lengths")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=storage_dtype(data))
        self._entry_rows: np.ndarray | None = None
        self._row_lengths: np.ndarray | None = None
        self._validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"negative dimension in shape {self.shape}")
        if self.indptr.shape != (n_rows + 1,):
            raise SparseFormatError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if self.indptr[-1] != self.indices.size:
            raise SparseFormatError(
                f"indptr[-1]={self.indptr[-1]} does not match nnz={self.indices.size}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise SparseFormatError("indices and data must have equal length")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise SparseFormatError("column index out of range")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    #: Registry / dispatch name of this storage format.
    format_name = "csr"

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the matrix values (the pipeline's working dtype)."""
        return self.data.dtype

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to the full ``m * n`` grid."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row (cached; read-only).

        The matrix arrays are treated as frozen after construction, so the
        cache never needs invalidation; the returned array is marked
        non-writeable to keep it that way.
        """
        if self._row_lengths is None:
            lengths = np.diff(self.indptr)
            lengths.flags.writeable = False
            self._row_lengths = lengths
        return self._row_lengths

    def entry_rows(self) -> np.ndarray:
        """Row index of every stored entry (cached; used by scatter kernels)."""
        if self._entry_rows is None:
            self._entry_rows = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), self.row_lengths()
            )
        return self._entry_rows

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(
        self,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sparse matrix-vector product ``r = A b``.

        Args:
            b: dense operand of length ``n_cols``.
            out: optional float64 result buffer of length ``n_rows``;
                overwritten and returned (planned callers reuse it to
                avoid the per-call allocation).
            workspace: optional float64 scratch of length ``nnz`` holding
                the gathered products; contents are clobbered.

        The buffered path computes bit-identical values to the allocating
        path (elementwise multiply is commutative; the segment reduction
        is shared).  The operand is coerced to the matrix's storage dtype:
        the working precision of an SpMV follows the data it multiplies.
        """
        b = np.asarray(b, dtype=self.data.dtype)
        if b.shape != (self.n_cols,):
            raise ShapeMismatchError(
                f"operand has shape {b.shape}, expected ({self.n_cols},)"
            )
        if workspace is None:
            products = self.data * b[self.indices]
        else:
            # mode="clip" lets numpy gather straight into the workspace;
            # the default bounds-checking mode buffers an nnz-sized
            # temporary first.  Column indices are validated in-range at
            # construction, so clipping never fires.
            np.take(b, self.indices, out=workspace, mode="clip")
            np.multiply(workspace, self.data, out=workspace)
            products = workspace
        return _segment_sums(products, self.indptr, self.n_rows, out=out)

    def __matmul__(self, b: np.ndarray) -> np.ndarray:
        return self.matvec(b)

    def matvec_rows(
        self,
        row_start: int,
        row_stop: int,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Partial SpMV over rows ``[row_start, row_stop)``.

        This is the correction kernel: an erroneous result block is repaired
        by recomputing exactly these rows.  Cost is proportional to the nnz
        of the selected rows only.  ``out`` (length ``row_stop - row_start``)
        and ``workspace`` (length >= nnz of the row range) mirror
        :meth:`matvec`.
        """
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        b = np.asarray(b, dtype=self.data.dtype)
        if b.shape != (self.n_cols,):
            raise ShapeMismatchError(
                f"operand has shape {b.shape}, expected ({self.n_cols},)"
            )
        lo, hi = self.indptr[row_start], self.indptr[row_stop]
        if workspace is None:
            products = self.data[lo:hi] * b[self.indices[lo:hi]]
        else:
            products = workspace[: hi - lo]
            # mode="clip": gather in place (see matvec); indices are
            # validated in-range at construction.
            np.take(b, self.indices[lo:hi], out=products, mode="clip")
            np.multiply(products, self.data[lo:hi], out=products)
        local_indptr = self.indptr[row_start : row_stop + 1] - lo
        return _segment_sums(products, local_indptr, row_stop - row_start, out=out)

    def matmat(self, b: np.ndarray) -> np.ndarray:
        """Sparse-matrix × dense-block product ``R = A B`` (SpMM).

        Args:
            b: dense operand block of shape ``(n_cols, k)``.

        Returns:
            Dense result of shape ``(n_rows, k)``.

        Wide operands are processed in column chunks so the dense
        ``(nnz, chunk)`` scratch never exceeds
        :data:`MATMAT_CHUNK_ELEMENTS` elements; chunking is invisible
        numerically (each column reduces independently).
        """
        b = np.asarray(b, dtype=self.data.dtype)
        if b.ndim != 2 or b.shape[0] != self.n_cols:
            raise ShapeMismatchError(
                f"operand block has shape {b.shape}, expected ({self.n_cols}, k)"
            )
        out = np.zeros((self.n_rows, b.shape[1]), dtype=self.data.dtype)
        _spmm_chunked(self.data, self.indices, self.indptr, b, out)
        return out

    def matmat_rows(self, row_start: int, row_stop: int, b: np.ndarray) -> np.ndarray:
        """Partial SpMM over rows ``[row_start, row_stop)`` (correction kernel)."""
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        b = np.asarray(b, dtype=self.data.dtype)
        if b.ndim != 2 or b.shape[0] != self.n_cols:
            raise ShapeMismatchError(
                f"operand block has shape {b.shape}, expected ({self.n_cols}, k)"
            )
        lo, hi = self.indptr[row_start], self.indptr[row_stop]
        local_indptr = self.indptr[row_start : row_stop + 1] - lo
        out = np.zeros((row_stop - row_start, b.shape[1]), dtype=self.data.dtype)
        _spmm_chunked(self.data[lo:hi], self.indices[lo:hi], local_indptr, b, out)
        return out

    def rmatvec(self, w: np.ndarray) -> np.ndarray:
        """Transposed product ``A^T w`` (used to build dense checksum vectors)."""
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.n_rows,):
            raise ShapeMismatchError(
                f"operand has shape {w.shape}, expected ({self.n_rows},)"
            )
        weighted = self.data * w[self.entry_rows()]
        return np.bincount(self.indices, weights=weighted, minlength=self.n_cols)

    def row_norms(self) -> np.ndarray:
        """Euclidean norm of every row (the ``||a_i||_2`` of the error bound).

        Squared and summed in float64 regardless of the storage dtype:
        row norms feed the detection bound (the accumulation side of the
        pipeline), and float32 squares overflow at ``|a_ij| > ~1.8e19``.
        """
        squares = np.square(self.data, dtype=np.float64)
        return np.sqrt(_segment_sums(squares, self.indptr, self.n_rows))

    def diagonal(self) -> np.ndarray:
        """Main-diagonal entries as a dense vector (zeros where unstored)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=self.data.dtype)
        rows = self.entry_rows()
        on_diag = rows == self.indices
        diag_rows = rows[on_diag]
        keep = diag_rows < n
        diag[diag_rows[keep]] = self.data[on_diag][keep]
        return diag

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def _check_row_range(self, row_start: int, row_stop: int) -> Tuple[int, int]:
        row_start, row_stop = int(row_start), int(row_stop)
        if not (0 <= row_start <= row_stop <= self.n_rows):
            raise ShapeMismatchError(
                f"row range [{row_start}, {row_stop}) invalid for {self.n_rows} rows"
            )
        return row_start, row_stop

    def nnz_in_rows(self, row_start: int, row_stop: int) -> int:
        """Stored-entry count of the row range ``[row_start, row_stop)``."""
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        return int(self.indptr[row_stop] - self.indptr[row_start])

    def nonempty_columns(self, row_start: int, row_stop: int) -> np.ndarray:
        """Sorted unique column indices with at least one entry in the rows.

        This is the structural analysis of Figure 2 of the paper: the
        checksum matrix stores an element for block ``k`` and column ``j``
        only if some row of block ``k`` has an entry in column ``j``.
        """
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        lo, hi = self.indptr[row_start], self.indptr[row_stop]
        return np.unique(self.indices[lo:hi])

    def row_slice(self, row_start: int, row_stop: int) -> "CsrMatrix":
        """Extract rows ``[row_start, row_stop)`` as a new CSR matrix."""
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        lo, hi = self.indptr[row_start], self.indptr[row_stop]
        return CsrMatrix(
            (row_stop - row_start, self.n_cols),
            self.indptr[row_start : row_stop + 1] - lo,
            self.indices[lo:hi].copy(),
            self.data[lo:hi].copy(),
        )

    # ------------------------------------------------------------------
    # Conversions and algebra
    # ------------------------------------------------------------------
    def to_coo(self):
        """Convert to :class:`repro.sparse.coo.CooMatrix`."""
        from repro.sparse.coo import CooMatrix

        return CooMatrix(self.shape, self.entry_rows().copy(), self.indices.copy(), self.data.copy())

    def to_csr(self) -> "CsrMatrix":
        """Return self (completes the :class:`~repro.sparse.formats.SparseFormat`
        protocol; CSR is its own canonical form)."""
        return self

    def to_bsr(self, block_shape):
        """Convert to :class:`repro.sparse.bsr.BsrMatrix` at ``block_shape``."""
        from repro.sparse.bsr import BsrMatrix

        return BsrMatrix.from_csr(self, block_shape)

    def to_ell(self):
        """Convert to :class:`repro.sparse.ell.EllMatrix` (max-width padding)."""
        from repro.sparse.ell import EllMatrix

        return EllMatrix.from_csr(self)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array in the storage dtype."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        out[self.entry_rows(), self.indices] = self.data
        return out

    def transpose(self) -> "CsrMatrix":
        """Return ``A^T`` as a new CSR matrix."""
        return self.to_coo().transpose().to_csr()

    def astype(self, dtype: object) -> "CsrMatrix":
        """Return a matrix with values cast to a supported storage dtype.

        Returns ``self`` when the dtype already matches (the matrix is
        immutable, so sharing is safe); raises
        :class:`~repro.errors.SparseFormatError` for non-storage dtypes.
        """
        target = np.dtype(dtype)
        if target not in SUPPORTED_STORAGE_DTYPES:
            raise SparseFormatError(
                f"unsupported storage dtype {target.name!r}; expected one of "
                f"{tuple(d.name for d in SUPPORTED_STORAGE_DTYPES)}"
            )
        if self.data.dtype == target:
            return self
        return CsrMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.astype(target),
        )

    def scaled(self, factor: float) -> "CsrMatrix":
        """Return ``factor * A`` with the same sparsity structure."""
        return CsrMatrix(self.shape, self.indptr.copy(), self.indices.copy(), self.data * factor)

    def with_data(self, data: np.ndarray) -> "CsrMatrix":
        """Return a matrix with this structure but new entry values.

        The new values keep their own storage dtype (float32 stays
        float32); non-float input coerces to float64 as at construction.
        """
        data = np.asarray(data, dtype=storage_dtype(data))
        if data.shape != self.data.shape:
            raise ShapeMismatchError(
                f"data length {data.shape} does not match nnz {self.data.shape}"
            )
        return CsrMatrix(self.shape, self.indptr.copy(), self.indices.copy(), data)

    def is_symmetric(self, rtol: float = 1e-12) -> bool:
        """True if ``A`` equals ``A^T`` within a relative tolerance."""
        if self.shape[0] != self.shape[1]:
            return False
        at = self.transpose()
        if not np.array_equal(at.indptr, self.indptr) or not np.array_equal(
            at.indices, self.indices
        ):
            return False
        scale = np.abs(self.data).max(initial=0.0)
        return bool(np.allclose(at.data, self.data, rtol=rtol, atol=rtol * scale))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("CsrMatrix is not hashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"
