"""End-to-end: JSONL exporter → ``python -m repro.obs summarize``."""

import numpy as np
import pytest

from repro.obs import JsonlExporter, Telemetry
from repro.obs.cli import EXIT_OK, EXIT_USAGE, main
from repro.obs.summary import aggregate_events, read_events, render_summary
from repro.solvers.ft_pcg import run_pcg
from repro.sparse import banded_spd


@pytest.fixture
def event_log(tmp_path):
    """JSONL log of one injected-fault protected solve."""
    path = tmp_path / "events.jsonl"
    tel = Telemetry(exporter=JsonlExporter(path))
    matrix = banded_spd(300, half_bandwidth=3, seed=0)
    result = run_pcg(
        matrix, np.ones(matrix.n_rows), scheme="ours", error_rate=1e-6, seed=3,
        telemetry=tel,
    )
    tel.close()
    assert result.detections >= 1  # the campaign must actually trip the scheme
    return path, result


def test_summarize_reports_the_protocol(event_log, capsys):
    path, result = event_log
    assert main(["summarize", str(path)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "== counters ==" in out
    assert "abft.detections" in out
    assert "abft.corrections" in out
    assert "== histograms ==" in out
    assert "abft.syndrome_margin" in out
    assert "== spans ==" in out
    assert "pcg.iteration" in out and "abft.multiply" in out


def test_summary_is_consistent_with_the_run(event_log):
    path, result = event_log
    summary = aggregate_events(read_events(path))
    assert summary.counters["abft.detections"] == result.detections
    assert summary.counters["abft.corrections"] >= result.corrections
    assert summary.span_count("pcg.iteration") == result.iterations
    assert summary.span_count("pcg.solve") == 1
    assert summary.histogram_values["abft.syndrome_margin"]


def test_summarize_missing_file(tmp_path, capsys):
    assert main(["summarize", str(tmp_path / "nope.jsonl")]) == EXIT_USAGE
    assert "error:" in capsys.readouterr().err


def test_summarize_malformed_log(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "counter"}\nnot json\n')
    assert main(["summarize", str(bad)]) == EXIT_USAGE
    assert "not a JSON event" in capsys.readouterr().err


def test_exporters_subcommand_lists_builtins(capsys):
    assert main(["exporters"]) == EXIT_OK
    out = capsys.readouterr().out.split()
    for builtin in ("off", "memory", "jsonl", "text"):
        assert builtin in out


def test_render_summary_empty_stream():
    assert render_summary([]) == "(no events)"


def test_render_summary_survives_extreme_histogram_values():
    """Margins near the float64 extremes must not overflow the bucket edges."""
    events = [
        {"type": "hist", "name": "abft.syndrome_margin", "value": v, "attrs": {}}
        for v in (1e-310, 1e-9, 1.0, 1e308, float("inf"), float("nan"))
    ]
    text = render_summary(events)
    assert "abft.syndrome_margin" in text
    assert "inf" not in text.split("nan=")[0].split("max=")[0]  # edges stayed finite


def test_env_selected_jsonl_round_trip(tmp_path, monkeypatch):
    """REPRO_OBS=jsonl + REPRO_OBS_PATH: the acceptance-path selection."""
    from repro.obs import reset_telemetry_cache, resolve_telemetry

    path = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_OBS", "jsonl")
    monkeypatch.setenv("REPRO_OBS_PATH", str(path))
    reset_telemetry_cache()  # pick up the patched environment
    tel = resolve_telemetry(None)
    try:
        tel.count("abft.detections")
        tel.flush()
        events = read_events(path)
    finally:
        reset_telemetry_cache()
    assert events[0]["name"] == "abft.detections"
