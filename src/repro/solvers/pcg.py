"""Preconditioned Conjugate Gradient solver (paper Section VI-A).

A plain, fault-free PCG for SPD systems ``A x = b``.  The fault-tolerant
drivers in :mod:`repro.solvers.ft_pcg` reimplement the same loop around
protected SpMV operators; this module is the clean reference (and is what
examples use when fault tolerance is not the point).

Convergence follows the paper: iterate until the residual norm falls below
``tol`` (relative to ``||b||``), up to ``10 * N`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ShapeMismatchError
from repro.solvers.preconditioners import IdentityPreconditioner, Preconditioner
from repro.sparse.csr import CsrMatrix

#: The paper's error tolerance (Section VI-A, as proposed in [30]).
DEFAULT_TOLERANCE = 1e-6

#: The paper's iteration cap is 10 * N (Section VI).
MAX_ITERATION_FACTOR = 10


@dataclass(frozen=True)
class PcgResult:
    """Outcome of a PCG solve.

    Attributes:
        x: final iterate.
        iterations: iterations performed.
        converged: True if the residual criterion was met within the cap.
        residual_norm: final relative residual ``||b - A x|| / ||b||``
            (recomputed from scratch, not the recurrence value).
        residual_history: relative recurrence-residual norm per iteration.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: tuple

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PcgResult(iterations={self.iterations}, converged={self.converged}, "
            f"residual_norm={self.residual_norm:.3e})"
        )


def pcg(
    matrix: CsrMatrix,
    b: np.ndarray,
    preconditioner: Optional[Preconditioner] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = DEFAULT_TOLERANCE,
    max_iterations: Optional[int] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> PcgResult:
    """Solve ``A x = b`` for SPD ``A`` with preconditioned CG.

    Args:
        matrix: SPD system matrix.
        b: right-hand side.
        preconditioner: ``M^{-1}`` applicator; identity if omitted.
        x0: initial guess (zeros if omitted).
        tol: relative residual tolerance.
        max_iterations: iteration cap; defaults to ``10 * N``.
        callback: invoked as ``callback(iteration, x, relative_residual)``
            after every iteration.

    Returns:
        A :class:`PcgResult`; ``converged`` is False if the cap was hit.
    """
    n = matrix.n_rows
    if matrix.shape[0] != matrix.shape[1]:
        raise ShapeMismatchError(f"PCG needs a square matrix, got {matrix.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeMismatchError(f"rhs has shape {b.shape}, expected ({n},)")
    if preconditioner is None:
        preconditioner = IdentityPreconditioner(matrix)
    if max_iterations is None:
        max_iterations = MAX_ITERATION_FACTOR * n

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    if x.shape != (n,):
        raise ShapeMismatchError(f"x0 has shape {x.shape}, expected ({n},)")

    b_norm = float(np.linalg.norm(b))
    # reprolint: disable=ABFT003 -- exact-zero RHS short-circuit: x = 0 is the
    # exact solution only when b is identically zero
    if b_norm == 0.0:
        return PcgResult(
            x=np.zeros(n), iterations=0, converged=True,
            residual_norm=0.0, residual_history=(),
        )

    r = b - matrix.matvec(x)
    z = preconditioner.apply(r)
    p = z.copy()
    rz = float(np.dot(r, z))
    history: List[float] = []

    iterations = 0
    converged = float(np.linalg.norm(r)) / b_norm < tol
    while not converged and iterations < max_iterations:
        iterations += 1
        q = matrix.matvec(p)
        pq = float(np.dot(p, q))
        # reprolint: disable=ABFT003 -- CG breakdown guard: only an exactly
        # zero curvature p^T A p makes the alpha division undefined
        if pq == 0.0 or not np.isfinite(pq):
            break  # breakdown: direction became degenerate
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        relative = float(np.linalg.norm(r)) / b_norm
        history.append(relative)
        if callback is not None:
            callback(iterations, x, relative)
        if relative < tol:
            converged = True
            break
        z = preconditioner.apply(r)
        rz_next = float(np.dot(r, z))
        beta = rz_next / rz
        p = z + beta * p
        rz = rz_next

    true_residual = float(np.linalg.norm(b - matrix.matvec(x))) / b_norm
    return PcgResult(
        x=x,
        iterations=iterations,
        converged=converged and true_residual < 10 * tol,
        residual_norm=true_residual,
        residual_history=tuple(history),
    )
