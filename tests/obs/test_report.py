"""Markdown campaign reports (:mod:`repro.obs.report`)."""

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    InMemoryExporter,
    Telemetry,
    WorkerRecorder,
    aggregate_events,
    merge_delta,
    render_report,
)


def _campaign_summary():
    """A summary with counters, raw + worker histograms, spans, workers."""
    tel = Telemetry(exporter=InMemoryExporter())
    tel.count("abft.checks", 4.0)
    tel.count("abft.detections")
    tel.observe_many("abft.syndrome_margin", [1e-6, 1e-4, 1e-2, 0.5])
    tel.observe("abft.block_recompute_fraction", 0.125)
    with tel.span("abft.multiply"):
        with tel.span("abft.detect"):
            pass
    for worker in (0, 1):
        recorder = WorkerRecorder()
        recorder.telemetry.observe(
            "kernel.detect_shard.seconds",
            1e-3 * (worker + 1),
            buckets=DEFAULT_TIME_BUCKETS,
        )
        merge_delta(tel, worker, recorder.delta())
    return aggregate_events(tel.events())


def test_report_renders_every_section():
    summary = _campaign_summary()
    text = render_report([("ours.jsonl", summary)])
    assert text.startswith("# Telemetry campaign report")
    assert "## ours.jsonl" in text
    assert "### Protocol counters" in text
    assert "| abft.checks | 4 |" in text
    assert "### Distributions" in text
    assert "abft.syndrome_margin" in text
    assert "abft.block_recompute_fraction" in text
    assert "kernel.detect_shard.seconds (worker)" in text
    assert "### Span breakdown" in text
    assert "abft.multiply" in text
    assert "### Worker balance" in text
    # Both workers appear as rows.
    assert "\n| 0 | 1 | 1 |" in text
    assert "\n| 1 | 1 | 1 |" in text


def test_report_headline_counters_lead():
    summary = _campaign_summary()
    text = render_report([("run.jsonl", summary)])
    counters = text.split("### Protocol counters")[1]
    assert counters.index("abft.checks") < counters.index("abft.detections")


def test_report_multiple_sections_and_skipped_lines():
    summary = _campaign_summary()
    summary.skipped_lines = 3
    text = render_report([("a.jsonl", summary), ("b.jsonl", summary)])
    assert "## a.jsonl" in text and "## b.jsonl" in text
    assert "3 corrupt line(s) skipped" in text


def test_report_empty_summary_renders_header_only():
    text = render_report([("empty.jsonl", aggregate_events([]))])
    assert "## empty.jsonl" in text
    assert "0 events" in text
    assert "### " not in text
