"""Telemetry wired through the protected hot paths.

These tests drive the real protocol — protected multiplies, corrections,
fault injection — against an in-memory exporter and assert the advertised
instruments fire (and that the "off" path emits nothing at all).
"""

import numpy as np
import pytest

from repro.core import AbftConfig, BlockAbftDetector, FaultTolerantSpMV
from repro.core.detector import NearMiss
from repro.faults.injector import FaultInjector
from repro.obs import InMemoryExporter, Telemetry
from repro.sparse import banded_spd


@pytest.fixture
def matrix():
    return banded_spd(256, half_bandwidth=3, seed=7)


def corrupt_result_once(index=5, magnitude=1e8):
    """Tamper hook corrupting one result element on the first call."""
    state = {"done": False}

    def tamper(stage, data, work):
        if stage == "result" and not state["done"]:
            data[index] += magnitude
            state["done"] = True

    return tamper


def event_names(tel, kind):
    return [event["name"] for event in tel.events() if event["type"] == kind]


# ----------------------------------------------------------------------
# Protected multiply
# ----------------------------------------------------------------------
def test_clean_multiply_emits_checks_margins_and_spans(matrix):
    tel = Telemetry(exporter=InMemoryExporter())
    operator = FaultTolerantSpMV(matrix, block_size=32, telemetry=tel)
    assert operator.telemetry is tel
    result = operator.multiply(np.ones(matrix.n_rows))
    assert result.clean

    counters = event_names(tel, "counter")
    assert "abft.checks" in counters
    assert "abft.detections" not in counters  # nothing flagged
    margin_events = [
        event
        for event in tel.events()
        if event["type"] == "hist" and event["name"] == "abft.syndrome_margin"
    ]
    assert len(margin_events) == 1  # one batched event per invariant check
    margins = margin_events[0]["values"]
    assert len(margins) == operator.detector.n_blocks
    assert all(0.0 <= m < 1.0 for m in margins)  # clean run: all below bound

    spans = event_names(tel, "span")
    assert "checksum.build" in spans
    assert "abft.multiply" in spans and "abft.detect" in spans
    assert "abft.correct" not in spans
    assert tel.registry.gauge("abft.n_blocks").value == operator.detector.n_blocks


def test_corrected_multiply_counts_corrections(matrix):
    tel = Telemetry(exporter=InMemoryExporter())
    operator = FaultTolerantSpMV(matrix, block_size=32, telemetry=tel)
    result = operator.multiply(np.ones(matrix.n_rows), tamper=corrupt_result_once())
    assert result.corrected_blocks  # the fault was caught and fixed

    registry = tel.registry
    assert registry.counter("abft.detections").value >= 1
    assert registry.counter("abft.corrections").value >= 1
    assert registry.counter("abft.blocks_recomputed").value >= 1
    fraction = registry.histogram("abft.block_recompute_fraction")
    assert fraction.count >= 1
    assert 0.0 < fraction.max <= 1.0
    assert "abft.correct" in event_names(tel, "span")


def test_off_telemetry_emits_nothing(matrix):
    operator = FaultTolerantSpMV(matrix, block_size=32)  # default: off
    tel = operator.telemetry
    assert not tel.enabled
    operator.multiply(np.ones(matrix.n_rows), tamper=corrupt_result_once())
    assert tel.registry.names() == ()


# ----------------------------------------------------------------------
# Near-miss hook
# ----------------------------------------------------------------------
def test_near_miss_hook_fires_for_clean_blocks(matrix):
    seen = []
    config = AbftConfig(block_size=32, near_miss_fraction=0.0)
    detector = BlockAbftDetector(matrix, config, near_miss_hook=seen.append)
    b = np.ones(matrix.n_rows)
    detector.detect(b, matrix.matvec(b))
    # fraction 0.0 makes every clean finite-margin block a near miss.
    assert len(seen) == detector.n_blocks
    near = seen[0]
    assert isinstance(near, NearMiss)
    assert 0 <= near.block < detector.n_blocks
    assert near.margin == pytest.approx(abs(near.syndrome) / near.threshold)


def test_near_miss_hook_default_fraction_is_quiet(matrix):
    seen = []
    detector = BlockAbftDetector(
        matrix, AbftConfig(block_size=32), near_miss_hook=seen.append
    )
    b = np.ones(matrix.n_rows)
    detector.detect(b, matrix.matvec(b))
    assert seen == []  # clean syndromes sit far below 0.9 * bound


def test_near_miss_counter_tracks_candidates(matrix):
    tel = Telemetry(exporter=InMemoryExporter())
    config = AbftConfig(block_size=32, near_miss_fraction=0.0)
    detector = BlockAbftDetector(matrix, config, telemetry=tel)
    b = np.ones(matrix.n_rows)
    detector.detect(b, matrix.matvec(b))
    candidates = tel.registry.counter("abft.false_positive_candidates").value
    assert candidates == detector.n_blocks


# ----------------------------------------------------------------------
# Injector counters
# ----------------------------------------------------------------------
def test_injector_counts_attempts_and_injections():
    tel = Telemetry(exporter=InMemoryExporter())
    injector = FaultInjector.seeded(0, telemetry=tel)
    vec = np.ones(16)
    injector.corrupt_element(vec, 3, target="result")
    injector.corrupt_scalar(1.0, target="detection")
    registry = tel.registry
    assert registry.counter("faults.injection_attempts").value == 2
    assert registry.counter("faults.injections").value == 2
    targets = {
        event["attrs"]["target"]
        for event in tel.events()
        if event["name"] == "faults.injections"
    }
    assert targets == {"result", "detection"}


def test_injector_without_telemetry_stays_silent():
    injector = FaultInjector.seeded(0)
    injector.corrupt_element(np.ones(4), 0)
    assert injector.telemetry is None  # no stream attached, nothing to emit
