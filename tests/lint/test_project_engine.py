"""Project-engine behavior: ingestion hardening, linking, CLI integration.

The invalid-syntax and non-UTF-8 fixtures are generated into ``tmp_path``
at test time (committed fixtures would trip the repo-wide ruff syntax
gate); what matters is that one broken file yields an ABFT000 diagnostic
instead of blinding the whole analysis.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import analyze_project, lint_paths
from repro.lint.cli import main
from repro.lint.project.engine import DIAGNOSTIC_RULE

GOOD = (
    "import threading\n"
    "from concurrent.futures import ThreadPoolExecutor\n"
    "\n"
    "_STATE = {}\n"
    "\n"
    "\n"
    "def record(key):\n"
    "    _STATE[key] = 1\n"
    "\n"
    "\n"
    "def run(items):\n"
    "    with ThreadPoolExecutor() as pool:\n"
    "        for item in items:\n"
    "            pool.submit(record, item)\n"
)


def write_project(tmp_path: Path) -> Path:
    root = tmp_path / "proj"
    root.mkdir()
    (root / "good.py").write_text(GOOD, encoding="utf-8")
    (root / "broken.py").write_text("def broken(:\n    pass\n", encoding="utf-8")
    (root / "binary.py").write_bytes(b"\xff\xfe\x00not python\x00")
    return root


def test_broken_files_become_diagnostics_not_crashes(tmp_path):
    root = write_project(tmp_path)
    result = analyze_project([root], base=tmp_path)
    assert result.files_checked == 3
    diagnostics = [f for f in result.findings if f.rule == DIAGNOSTIC_RULE]
    assert sorted(f.path for f in diagnostics) == [
        "proj/binary.py",
        "proj/broken.py",
    ]
    messages = {f.path: f.message for f in diagnostics}
    assert "not valid UTF-8" in messages["proj/binary.py"]
    assert "does not parse" in messages["proj/broken.py"]


def test_healthy_files_are_still_analyzed_alongside_diagnostics(tmp_path):
    root = write_project(tmp_path)
    result = analyze_project([root], base=tmp_path)
    abft011 = [f for f in result.findings if f.rule == "ABFT011"]
    assert [f.path for f in abft011] == ["proj/good.py"]


def test_per_file_mode_survives_non_utf8_files(tmp_path):
    root = tmp_path / "proj"
    root.mkdir()
    (root / "binary.py").write_bytes(b"\xff\xfe\x00not python\x00")
    result = lint_paths([root], root=tmp_path)
    (finding,) = result.findings
    assert finding.rule == "E999"
    assert "not valid UTF-8" in finding.message


def test_missing_path_still_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        analyze_project([tmp_path / "nope"])


def test_package_trees_get_dotted_module_names(tmp_path):
    pkg = tmp_path / "pkg"
    (pkg / "sub").mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "sub" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "sub" / "mod.py").write_text(
        "class Widget:\n    def ping(self):\n        return 1\n", encoding="utf-8"
    )
    (pkg / "use.py").write_text(
        "from pkg.sub.mod import Widget\n"
        "\n"
        "\n"
        "def make():\n"
        "    return Widget()\n",
        encoding="utf-8",
    )
    # Resolution across the package boundary proves the module names and
    # import tables line up; no findings expected, just no blow-ups.
    result = analyze_project([tmp_path], base=tmp_path)
    assert result.files_checked == 4
    assert result.findings == []


def test_cli_project_mode_reports_cache_stats_in_json(tmp_path, capsys, monkeypatch):
    root = write_project(tmp_path)
    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "--project",
            "--no-cache",
            "--no-baseline",
            "--format",
            "json",
            str(root),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1  # diagnostics + the ABFT011 finding
    assert payload["project"] == {"cache_hits": 0, "reanalyzed": 3}
    rules = {entry["rule"] for entry in payload["findings"]}
    assert DIAGNOSTIC_RULE in rules and "ABFT011" in rules
    related = {
        entry["rule"]: entry["related"] for entry in payload["findings"]
    }
    assert related["ABFT011"] == []  # spawn site is the finding's own module


def test_cli_list_rules_includes_the_project_pack(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("ABFT008", "ABFT009", "ABFT010", "ABFT011", "ABFT012"):
        assert rule_id in out
