"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sparse import arrowhead_spd, banded_spd, poisson2d, poisson3d, random_spd


def _assert_spd_like(csr):
    """Check symmetry and strict diagonal dominance with positive diagonal."""
    assert csr.is_symmetric()
    dense = csr.to_dense()
    diag = np.diag(dense)
    off_row_sums = np.abs(dense).sum(axis=1) - np.abs(diag)
    assert (diag > 0).all()
    assert (diag >= off_row_sums).all()


def test_poisson2d_structure():
    a = poisson2d(3)
    assert a.shape == (9, 9)
    dense = a.to_dense()
    assert dense[0, 0] == 4.0
    assert dense[0, 1] == -1.0
    assert dense[0, 3] == -1.0
    assert dense[0, 2] == 0.0  # no wraparound across grid rows
    _assert_spd_like(a)


def test_poisson2d_rectangular_grid():
    a = poisson2d(4, 2)
    assert a.shape == (8, 8)
    _assert_spd_like(a)


def test_poisson2d_eigenvalues_positive():
    a = poisson2d(4)
    eigvals = np.linalg.eigvalsh(a.to_dense())
    assert eigvals.min() > 0


def test_poisson2d_single_cell():
    a = poisson2d(1)
    np.testing.assert_array_equal(a.to_dense(), [[4.0]])


def test_poisson2d_rejects_nonpositive_dims():
    with pytest.raises(ConfigurationError):
        poisson2d(0)
    with pytest.raises(ConfigurationError):
        poisson2d(3, -1)


def test_poisson3d_structure():
    a = poisson3d(2)
    assert a.shape == (8, 8)
    dense = a.to_dense()
    assert dense[0, 0] == 6.0
    # Node 0 neighbours in a 2x2x2 grid: +x (1), +y (2), +z (4).
    assert dense[0, 1] == -1.0
    assert dense[0, 2] == -1.0
    assert dense[0, 4] == -1.0
    _assert_spd_like(a)


def test_poisson3d_rejects_bad_dims():
    with pytest.raises(ConfigurationError):
        poisson3d(2, 0, 2)


def test_banded_spd_respects_bandwidth():
    a = banded_spd(50, half_bandwidth=3, in_band_density=1.0, seed=1)
    rows = a.entry_rows()
    assert np.abs(rows - a.indices).max() <= 3
    _assert_spd_like(a)


def test_banded_spd_density_zero_gives_diagonal():
    a = banded_spd(10, half_bandwidth=4, in_band_density=0.0, seed=2)
    assert a.nnz == 10
    assert (a.diagonal() > 0).all()


def test_banded_spd_deterministic_for_seed():
    a = banded_spd(30, 5, 0.5, seed=7)
    b = banded_spd(30, 5, 0.5, seed=7)
    assert a == b


def test_banded_spd_validation():
    with pytest.raises(ConfigurationError):
        banded_spd(0, 1)
    with pytest.raises(ConfigurationError):
        banded_spd(5, 5)
    with pytest.raises(ConfigurationError):
        banded_spd(5, 2, in_band_density=1.5)


def test_random_spd_hits_nnz_target_approximately():
    target = 5000
    a = random_spd(500, target, seed=3)
    assert a.shape == (500, 500)
    assert abs(a.nnz - target) / target < 0.25
    _assert_spd_like(a)


def test_random_spd_more_local_means_narrower_band():
    tight = random_spd(400, 4000, locality=0.01, seed=4)
    loose = random_spd(400, 4000, locality=0.2, seed=4)
    tight_spread = np.abs(tight.entry_rows() - tight.indices).mean()
    loose_spread = np.abs(loose.entry_rows() - loose.indices).mean()
    assert tight_spread < loose_spread


def test_random_spd_deterministic_for_seed():
    assert random_spd(100, 600, seed=5) == random_spd(100, 600, seed=5)


def test_random_spd_minimal_target_is_diagonal_dominated():
    a = random_spd(20, 20, seed=6)
    assert a.nnz >= 20
    _assert_spd_like(a)


def test_random_spd_validation():
    with pytest.raises(ConfigurationError):
        random_spd(0, 10)
    with pytest.raises(ConfigurationError):
        random_spd(10, 5)
    with pytest.raises(ConfigurationError):
        random_spd(10, 20, locality=0.0)


def test_arrowhead_structure():
    a = arrowhead_spd(6, seed=1)
    dense = a.to_dense()
    assert (dense[0, 1:] != 0).all()
    assert (dense[1:, 0] != 0).all()
    interior = dense[1:, 1:]
    assert np.count_nonzero(interior - np.diag(np.diag(interior))) == 0
    _assert_spd_like(a)


def test_arrowhead_rejects_tiny():
    with pytest.raises(ConfigurationError):
        arrowhead_spd(1)
