"""The telemetry facade: instruments + span tracer + exporter, one object.

A :class:`Telemetry` owns an instrument :class:`~repro.obs.instruments.Registry`
and one exporter; every counter increment, gauge set, histogram
observation and completed span both updates the in-process aggregate and
emits a structured event.  The hot paths hold a ``Telemetry`` reference
and guard every update with a single ``if telemetry.enabled`` check, so
the disabled path (the default) costs one attribute read.

Time comes from an injectable monotonic clock (``time.perf_counter`` by
default): tests inject a fake clock and get bit-identical event streams
from identical seeded runs.

Resolution mirrors :func:`repro.kernels.resolve_kernels`:

1. an explicit :class:`Telemetry` instance passes through untouched;
2. the ``REPRO_OBS`` environment variable overrides any *name*;
3. the name passed in (usually ``AbftConfig.telemetry``);
4. :data:`~repro.obs.exporters.DEFAULT_EXPORTER` (``"off"``).

Name-resolved telemetries are cached process-wide, so a detector, the
protected multiply around it and the PCG loop above both — all configured
``"jsonl"`` — share one event stream.
"""

from __future__ import annotations

import os
import threading
import time
from types import TracebackType
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.errors import ConfigurationError
from repro.kernels.base import KernelSet
from repro.obs.exporters import (
    DEFAULT_EXPORTER,
    OBS_ENV_VAR,
    Event,
    Exporter,
    InMemoryExporter,
    NullExporter,
    make_exporter,
)
from repro.obs.instruments import (
    DEFAULT_TIME_BUCKETS,
    Registry,
)

#: Injectable monotonic clock type.
Clock = Callable[[], float]

#: Attribute values accepted on events (JSON-scalar only).
AttrValue = Union[str, int, float, bool, None]


class _NullSpan:
    """Reusable no-op context manager returned by disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One in-flight traced region; created by :meth:`Telemetry.span`.

    On exit it records the wall time into the ``span.<name>.seconds``
    histogram and emits a ``span`` event carrying start/end times,
    nesting depth and the parent span's name.
    """

    __slots__ = ("_telemetry", "name", "attrs", "start", "depth", "parent")

    def __init__(
        self, telemetry: "Telemetry", name: str, attrs: Dict[str, AttrValue]
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.depth = 0
        self.parent: Optional[str] = None

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        stack = telemetry._span_stack
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        stack.append(self)
        self.start = telemetry._clock()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        telemetry = self._telemetry
        end = telemetry._clock()
        telemetry._span_stack.pop()
        telemetry.registry.histogram(
            f"span.{self.name}.seconds", DEFAULT_TIME_BUCKETS
        ).observe(end - self.start)
        event: Event = {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "end": end,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": self.attrs,
        }
        telemetry.exporter.emit(event)
        return False


class Telemetry:
    """Instruments, tracer and exporter bound together.

    Args:
        exporter: event sink (default: a fresh :class:`InMemoryExporter`,
            the most useful default for ad-hoc instrumentation).
        clock: monotonic clock; injected by tests for determinism.
        enabled: a telemetry constructed disabled never emits and never
            aggregates — it is the zero-cost stand-in the hot paths see
            by default (see :meth:`disabled`).
    """

    _disabled_singleton: Optional["Telemetry"] = None

    def __init__(
        self,
        exporter: Optional[Exporter] = None,
        clock: Optional[Clock] = None,
        enabled: bool = True,
    ) -> None:
        self.exporter: Exporter = exporter if exporter is not None else InMemoryExporter()
        self._clock: Clock = clock if clock is not None else time.perf_counter
        self._enabled = bool(enabled)
        self.registry = Registry()
        self._local = threading.local()

    @property
    def _span_stack(self) -> List[Span]:
        """The calling thread's span stack (spans nest per thread, so a
        worker's shard span never adopts another thread's parent)."""
        stack: Optional[List[Span]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The process-wide disabled telemetry (``"off"`` resolves here)."""
        if cls._disabled_singleton is None:
            cls._disabled_singleton = cls(exporter=NullExporter(), enabled=False)
        return cls._disabled_singleton

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """The hot-path guard: False means every update is skipped."""
        return self._enabled

    def now(self) -> float:
        """Current reading of the injected clock."""
        return self._clock()

    # ------------------------------------------------------------------
    # Instrument updates
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0, **attrs: AttrValue) -> None:
        """Increment the counter ``name`` and emit a ``counter`` event."""
        if not self._enabled:
            return
        self.registry.counter(name).add(value)
        self.exporter.emit(
            {"type": "counter", "name": name, "value": value, "attrs": attrs,
             "t": self._clock()}
        )

    def gauge(self, name: str, value: float, **attrs: AttrValue) -> None:
        """Set the gauge ``name`` and emit a ``gauge`` event."""
        if not self._enabled:
            return
        self.registry.gauge(name).set(value)
        self.exporter.emit(
            {"type": "gauge", "name": name, "value": float(value), "attrs": attrs,
             "t": self._clock()}
        )

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Tuple[float, ...]] = None,
        **attrs: AttrValue,
    ) -> None:
        """Record ``value`` into the histogram ``name``; emit a ``hist`` event."""
        if not self._enabled:
            return
        self.registry.histogram(name, buckets).observe(value)
        self.exporter.emit(
            {"type": "hist", "name": name, "value": float(value), "attrs": attrs,
             "t": self._clock()}
        )

    def observe_many(
        self,
        name: str,
        values: Sequence[float],
        buckets: Optional[Tuple[float, ...]] = None,
        **attrs: AttrValue,
    ) -> None:
        """Record a batch of values into ``name``; emit ONE ``hist`` event.

        The event carries the full value list under ``"values"`` (instead
        of a scalar ``"value"``), so downstream consumers lose nothing —
        but the hot path pays one event dict, one clock read and one
        vectorized bucket update for the whole batch instead of one of
        each per value.  An empty batch records and emits nothing.
        """
        if not self._enabled:
            return
        recorded = self.registry.histogram(name, buckets).observe_many(values)
        if not recorded:
            return
        self.exporter.emit(
            {"type": "hist", "name": name, "values": recorded, "attrs": attrs,
             "t": self._clock()}
        )

    def span(self, name: str, **attrs: AttrValue) -> Union[Span, _NullSpan]:
        """Context manager tracing one named region (nesting-aware)."""
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    # ------------------------------------------------------------------
    # Integration helpers
    # ------------------------------------------------------------------
    def wrap_kernels(self, kernels: KernelSet) -> KernelSet:
        """Wrap a kernel set with dispatch-level timing when enabled.

        Disabled telemetry returns the set untouched, so the kernel hot
        paths pay nothing; already-wrapped sets pass through.
        """
        from repro.obs.timing import TimedKernels

        if not self._enabled or isinstance(kernels, TimedKernels):
            return kernels
        return TimedKernels(kernels, self)

    def events(self) -> List[Event]:
        """Buffered events, when the exporter keeps them in memory.

        Raises:
            ConfigurationError: for exporters without an event buffer.
        """
        buffered = getattr(self.exporter, "events", None)
        if not isinstance(buffered, list):
            raise ConfigurationError(
                f"exporter {type(self.exporter).__name__} does not buffer events"
            )
        return buffered

    def flush(self) -> None:
        """Flush the exporter."""
        self.exporter.flush()

    def close(self) -> None:
        """Close the exporter (summaries render, files close)."""
        self.exporter.close()


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
_BY_NAME: Dict[str, Telemetry] = {}
_FLUSH_AT_EXIT_REGISTERED = False


def _flush_cached_telemetries() -> None:
    """Flush every name-resolved telemetry (atexit hook).

    Batched exporters (jsonl, ring) hold a partial batch in memory; a
    process that never calls ``close()`` would lose its tail without
    this.  Flush, not close: ``close()`` on the text exporter renders a
    summary, which an exiting process may not want twice.
    """
    for cached in list(_BY_NAME.values()):
        try:
            cached.flush()
        except (OSError, ValueError):  # pragma: no cover - teardown races
            pass


def _register_flush_at_exit() -> None:
    """Register the atexit flush once, lazily on the first cache insert
    (importing repro.obs must stay free of interpreter-level side
    effects)."""
    global _FLUSH_AT_EXIT_REGISTERED
    if not _FLUSH_AT_EXIT_REGISTERED:
        import atexit

        atexit.register(_flush_cached_telemetries)
        _FLUSH_AT_EXIT_REGISTERED = True


def resolve_telemetry(telemetry: object = None) -> Telemetry:
    """Resolve a telemetry selection to a concrete :class:`Telemetry`.

    ``telemetry`` may be a :class:`Telemetry` (returned as-is), a
    registered exporter name, or ``None``.  The :data:`OBS_ENV_VAR`
    environment variable overrides any *name* (but never an explicit
    instance).  Name resolutions are cached process-wide so every
    component configured with the same name shares one event stream.
    """
    if isinstance(telemetry, Telemetry):
        return telemetry
    env = os.environ.get(OBS_ENV_VAR)
    if env:
        name = env
    elif telemetry is None:
        name = DEFAULT_EXPORTER
    elif isinstance(telemetry, str):
        name = telemetry
    else:
        raise ConfigurationError(
            f"telemetry must be a name or Telemetry, got {type(telemetry).__name__}"
        )
    if name == "off":
        return Telemetry.disabled()
    cached = _BY_NAME.get(name)
    if cached is None:
        cached = Telemetry(exporter=make_exporter(name))
        _BY_NAME[name] = cached
        _register_flush_at_exit()
    return cached


def reset_telemetry_cache() -> None:
    """Close and drop every name-resolved telemetry (test isolation)."""
    for cached in _BY_NAME.values():
        cached.close()
    _BY_NAME.clear()
