"""Unit tests for algebraic (recomputation-free) single-error correction."""

import numpy as np
import pytest

from repro.core.algebraic import DualChecksumSpMV
from repro.errors import ConfigurationError
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def matrix():
    return random_spd(256, 2500, seed=91)


@pytest.fixture()
def b():
    return np.random.default_rng(91).standard_normal(256)


def one_shot(stage_name, mutate):
    state = {"done": False}

    def hook(stage, data, work):
        if stage == stage_name and not state["done"]:
            mutate(data)
            state["done"] = True

    return hook


def test_clean_multiply(matrix, b):
    scheme = DualChecksumSpMV(matrix, block_size=32)
    result = scheme.multiply(b)
    assert result.clean
    assert result.algebraic_repairs == ()
    assert result.recomputed_blocks == ()
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_single_error_repaired_without_recomputation(matrix, b):
    scheme = DualChecksumSpMV(matrix, block_size=32)
    result = scheme.multiply(
        b, tamper=one_shot("result", lambda d: d.__setitem__(70, d[70] + 2.5))
    )
    assert result.detected == (2,)
    assert result.recomputed_blocks == ()  # no recomputation at all
    assert len(result.algebraic_repairs) == 1
    row, correction = result.algebraic_repairs[0]
    assert row == 70
    assert correction == pytest.approx(-2.5, rel=1e-9)
    np.testing.assert_allclose(result.value, matrix.matvec(b), rtol=1e-12)


def test_repaired_value_is_near_exact(matrix, b):
    scheme = DualChecksumSpMV(matrix, block_size=32)
    reference = matrix.matvec(b)
    result = scheme.multiply(
        b, tamper=one_shot("result", lambda d: d.__setitem__(10, d[10] * 1.01))
    )
    # Algebraic repair reconstructs from checksums: exact up to rounding.
    assert abs(result.value[10] - reference[10]) <= 1e-10 * max(1.0, abs(reference[10]))


def test_two_errors_in_one_block_fall_back_to_recomputation(matrix, b):
    scheme = DualChecksumSpMV(matrix, block_size=32)

    def mutate(d):
        d[64] += 1.0
        d[70] += 2.0

    result = scheme.multiply(b, tamper=one_shot("result", mutate))
    assert 2 in result.recomputed_blocks
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_nan_error_falls_back_to_recomputation(matrix, b):
    scheme = DualChecksumSpMV(matrix, block_size=32)
    result = scheme.multiply(
        b, tamper=one_shot("result", lambda d: d.__setitem__(5, np.nan))
    )
    assert result.recomputed_blocks == (0,)
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_errors_in_distinct_blocks_all_repaired(matrix, b):
    scheme = DualChecksumSpMV(matrix, block_size=32)

    def mutate(d):
        d[1] += 3.0
        d[100] -= 4.0
        d[200] += 5.0

    result = scheme.multiply(b, tamper=one_shot("result", mutate))
    assert len(result.algebraic_repairs) == 3
    assert result.recomputed_blocks == ()
    np.testing.assert_allclose(result.value, matrix.matvec(b), rtol=1e-12)


def test_repair_cheaper_than_recompute_for_dense_blocks():
    """The extension's selling point: repair touches one row, not b_s rows.

    The gap only shows where a block's recompute work exceeds the kernel
    latency floor, i.e. for dense blocks — hence the fat matrix here.
    """
    from repro.core import FaultTolerantSpMV

    dense = random_spd(2048, 2_400_000, locality=0.5, seed=92)
    rhs = np.random.default_rng(92).standard_normal(2048)
    hook = lambda: one_shot("result", lambda d: d.__setitem__(70, d[70] + 2.5))  # noqa: E731
    algebraic = DualChecksumSpMV(dense, block_size=32).multiply(rhs, tamper=hook())
    recompute = FaultTolerantSpMV(dense, block_size=32).multiply(rhs, tamper=hook())
    # Same detection cost family; the correction phase differs.  The
    # algebraic scheme pays doubled checksum work up front, so compare the
    # *correction* deltas via a clean run of each.
    algebraic_clean = DualChecksumSpMV(dense, block_size=32).multiply(rhs)
    recompute_clean = FaultTolerantSpMV(dense, block_size=32).multiply(rhs)
    algebraic_delta = algebraic.seconds - algebraic_clean.seconds
    recompute_delta = recompute.seconds - recompute_clean.seconds
    assert len(algebraic.algebraic_repairs) == 1
    assert algebraic_delta < recompute_delta


def test_block_size_one(matrix, b):
    scheme = DualChecksumSpMV(matrix, block_size=1)
    result = scheme.multiply(
        b, tamper=one_shot("result", lambda d: d.__setitem__(9, d[9] + 1.0))
    )
    assert (9, pytest.approx(-1.0)) == result.algebraic_repairs[0]
    np.testing.assert_allclose(result.value, matrix.matvec(b), rtol=1e-12)


def test_validation():
    m = random_spd(16, 40, seed=1)
    with pytest.raises(ConfigurationError):
        DualChecksumSpMV(m, block_size=0)
    with pytest.raises(ConfigurationError):
        DualChecksumSpMV(m, max_rounds=0)


def test_persistent_corruption_exhausts(matrix, b):
    def hook(stage, data, work):
        if stage in ("result", "corrected"):
            data[0] = np.inf

    scheme = DualChecksumSpMV(matrix, block_size=32, max_rounds=2)
    result = scheme.multiply(b, tamper=hook)
    assert result.exhausted
