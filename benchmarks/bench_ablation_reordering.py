"""Ablation — matrix ordering vs checksum sparsity and format structure.

The checksum matrix ``C`` inherits sparsity from ``A`` only when rows
inside a block share columns, i.e. when the ordering is local.  This bench
scrambles a suite matrix with a random relabeling, restores locality with
reverse Cuthill-McKee, and measures the effect on ``nnz(C)`` and the
modeled detection overhead — quantifying how much the paper's scheme
depends on (and benefits from) good orderings.

Ordering also decides what the plan-time format heuristics see: BSR fill
ratio and ELL padding are properties of the *ordered* pattern, so each
ordering row additionally records the per-format structure (probed tile
fill, padding ratio, and what ``auto`` would select).  Results go to
``results/ablation_reordering.txt`` and machine-readable
``results/BENCH_reordering.json``.
"""

from conftest import bench_env, write_json, write_result

from repro.analysis import detection_overhead, format_table
from repro.core import ChecksumMatrix
from repro.sparse import (
    bandwidth,
    ell_padding_ratio,
    probe_block_shape,
    random_permutation,
    reverse_cuthill_mckee,
    select_format,
    suite_matrix,
    symmetric_permute,
)

BLOCK_SIZE = 32


def test_reordering_ablation(benchmark):
    original = suite_matrix("bcsstk13")
    scrambled = symmetric_permute(
        original, random_permutation(original.n_rows, seed=17)
    )
    restored = symmetric_permute(scrambled, reverse_cuthill_mckee(scrambled))

    rows = []
    stats = {}
    orderings = {}
    for label, matrix in (
        ("original (local)", original),
        ("scrambled", scrambled),
        ("scrambled + RCM", restored),
    ):
        checksum = ChecksumMatrix.build(matrix, block_size=BLOCK_SIZE)
        overhead = detection_overhead(matrix, "block")
        block_shape, fill = probe_block_shape(matrix)
        padding = ell_padding_ratio(matrix)
        choice, _ = select_format(matrix, "auto")
        stats[label] = (checksum.sparsity_gain, overhead)
        orderings[label] = {
            "bandwidth": int(bandwidth(matrix)),
            "checksum_sparsity_gain": checksum.sparsity_gain,
            "detection_overhead": overhead,
            "formats": {
                "bsr_fill_ratio": fill,
                "bsr_block_shape": list(block_shape),
                "ell_padding_ratio": padding,
                "auto_choice": choice.format,
                "auto_reason": choice.reason,
            },
        }
        rows.append(
            (
                label,
                bandwidth(matrix),
                f"{checksum.sparsity_gain:.3f}",
                f"{overhead:.1%}",
                f"{fill:.3f}",
                f"{padding:.2f}",
                choice.format,
            )
        )
    table = format_table(
        (
            "ordering",
            "bandwidth",
            "nnz(C)/nnz(A)",
            "detection overhead",
            "BSR fill",
            "ELL padding",
            "auto",
        ),
        rows,
        title="Ablation — ordering locality vs checksum sparsity (bcsstk13 analogue)",
    )
    write_result("ablation_reordering", table)

    # RCM's effect per format: relative change of the structure metrics
    # the plan-time heuristics key on, scrambled -> restored.
    fmt = {label: o["formats"] for label, o in orderings.items()}
    rcm_effect = {
        "bsr_fill_ratio": {
            "scrambled": fmt["scrambled"]["bsr_fill_ratio"],
            "restored": fmt["scrambled + RCM"]["bsr_fill_ratio"],
            "gain": (
                fmt["scrambled + RCM"]["bsr_fill_ratio"]
                / fmt["scrambled"]["bsr_fill_ratio"]
                if fmt["scrambled"]["bsr_fill_ratio"]
                else None
            ),
        },
        "ell_padding_ratio": {
            "scrambled": fmt["scrambled"]["ell_padding_ratio"],
            "restored": fmt["scrambled + RCM"]["ell_padding_ratio"],
        },
        "checksum_sparsity_gain": {
            "scrambled": stats["scrambled"][0],
            "restored": stats["scrambled + RCM"][0],
        },
    }
    write_json(
        "reordering",
        {
            "benchmark": "reordering",
            "config": {
                "matrix": "bcsstk13",
                "n_rows": original.n_rows,
                "nnz": original.nnz,
                "block_size": BLOCK_SIZE,
                "scramble_seed": 17,
            },
            "orderings": orderings,
            "rcm_effect": rcm_effect,
            "asserted": {
                "scramble_inflates_checksum": True,
                "rcm_recovers_checksum": True,
                "rcm_recovers_overhead": True,
                "rcm_recovers_bsr_fill": True,
            },
            "env": bench_env(),
        },
    )

    # Scrambling inflates C and the overhead; RCM recovers most of it.
    assert stats["scrambled"][0] > 2.0 * stats["original (local)"][0]
    assert stats["scrambled + RCM"][0] < stats["scrambled"][0]
    assert stats["scrambled + RCM"][1] < stats["scrambled"][1]
    # Scrambling also destroys tile density; RCM restores locality, so the
    # probed BSR fill must recover alongside the checksum sparsity.
    assert (
        fmt["scrambled + RCM"]["bsr_fill_ratio"]
        > fmt["scrambled"]["bsr_fill_ratio"]
    )

    benchmark(lambda: reverse_cuthill_mckee(scrambled))
