"""Property suite: storage dtype survives every format conversion.

The dtype-generic refactor made float32 a first-class storage dtype; the
invariant pinned here is that no conversion in the CSR/BSR/ELL/COO
square silently widens (or narrows) it — values round-trip bit for bit
in the dtype they started in, and ``astype`` is the only sanctioned
dtype change (exact in the widening direction, round-to-nearest when
narrowing).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SparseFormatError
from repro.sparse import CooMatrix
from repro.sparse.bsr import BsrMatrix
from repro.sparse.csr import SUPPORTED_STORAGE_DTYPES
from repro.sparse.ell import EllMatrix
from repro.sparse.generators import random_spd

storage_dtypes = st.sampled_from(["float64", "float32"])


@st.composite
def csr_matrices(draw, max_dim=24):
    n = draw(st.integers(2, max_dim))
    nnz = draw(st.integers(n, 4 * n))
    seed = draw(st.integers(0, 2**16))
    dtype = draw(storage_dtypes)
    return random_spd(n, nnz, seed=seed, dtype=np.dtype(dtype))


@settings(max_examples=60, deadline=None)
@given(csr_matrices())
def test_coo_round_trip_preserves_dtype_and_bits(csr):
    back = csr.to_coo().to_csr()
    assert back.dtype == csr.dtype
    np.testing.assert_array_equal(back.data, csr.data)
    np.testing.assert_array_equal(back.indices, csr.indices)


@settings(max_examples=60, deadline=None)
@given(csr_matrices(), st.integers(1, 5))
def test_bsr_round_trip_preserves_dtype_and_bits(csr, block):
    bsr = BsrMatrix.from_csr(csr, block)
    assert bsr.dtype == csr.dtype
    back = bsr.to_csr()
    assert back.dtype == csr.dtype
    np.testing.assert_array_equal(back.data, csr.data)


@settings(max_examples=60, deadline=None)
@given(csr_matrices())
def test_ell_round_trip_preserves_dtype_and_bits(csr):
    ell = EllMatrix.from_csr(csr)
    assert ell.dtype == csr.dtype
    back = ell.to_csr()
    assert back.dtype == csr.dtype
    np.testing.assert_array_equal(back.data, csr.data)


@settings(max_examples=40, deadline=None)
@given(csr_matrices())
def test_matvec_returns_storage_dtype(csr):
    b = np.ones(csr.n_cols, dtype=csr.dtype)
    assert csr.matvec(b).dtype == csr.dtype


@settings(max_examples=40, deadline=None)
@given(csr_matrices())
def test_astype_round_trip_widening_is_exact(csr):
    """f32 -> f64 -> f32 is lossless; f64 -> f32 -> f64 is the rounding
    the caller asked for (and stays on the float32 grid)."""
    if csr.dtype == np.float32:
        back = csr.astype(np.float64).astype(np.float32)
        np.testing.assert_array_equal(back.data, csr.data)
    else:
        narrowed = csr.astype(np.float32)
        np.testing.assert_array_equal(
            narrowed.data, csr.data.astype(np.float32)
        )
        widened = narrowed.astype(np.float64)
        np.testing.assert_array_equal(
            widened.data.astype(np.float32), narrowed.data
        )


def test_astype_rejects_unsupported_storage():
    csr = random_spd(8, 30, seed=0)
    with pytest.raises(SparseFormatError):
        csr.astype(np.float16)


def test_supported_storage_dtypes_are_the_two_float_carriers():
    assert SUPPORTED_STORAGE_DTYPES == (
        np.dtype(np.float64),
        np.dtype(np.float32),
    )


def test_coo_construction_keeps_float32():
    coo = CooMatrix(
        (3, 3),
        np.array([0, 1, 2], dtype=np.int64),
        np.array([0, 1, 2], dtype=np.int64),
        np.array([1.5, 2.5, 3.5], dtype=np.float32),
    )
    assert coo.dtype == np.float32
    assert coo.to_csr().dtype == np.float32
