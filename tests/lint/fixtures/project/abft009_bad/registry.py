"""Minimal runtime registry in the ABFT009 fixtures."""

_SCHEMES = {}


def register_scheme(name, cls):
    _SCHEMES[name] = cls


def unregister_scheme(name):
    _SCHEMES.pop(name, None)
