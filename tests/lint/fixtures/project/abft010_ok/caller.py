"""Callers that refresh checksums after the mutating helper returns."""

from matrix import ChecksumMatrix


def double(matrix: ChecksumMatrix):
    matrix.scale(2.0)
    matrix.refresh()
    return matrix


def halve(matrix: ChecksumMatrix):
    matrix.scale(0.5)
    matrix.refresh()
    return matrix
