"""Metrics exposition: render a registry in OpenMetrics text format.

Bridges the process-local instrument :class:`~repro.obs.instruments.Registry`
to the Prometheus/OpenMetrics text exposition format, either live (pass a
registry) or post-hoc (replay a JSONL event log through
:func:`registry_from_events` first — the path taken by
``python -m repro.obs expose events.jsonl``).

Only the format's stable core is produced: ``# TYPE`` metadata, counter
``_total`` samples, gauge samples, and histograms as cumulative
``_bucket{le="..."}`` series with ``_sum``/``_count``, terminated by
``# EOF``.  Instrument names are sanitized to the metric charset
(``[a-zA-Z0-9_:]``), so ``abft.syndrome_margin`` exposes as
``abft_syndrome_margin``.
"""

from __future__ import annotations

import math
import re
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.obs.exporters import Event
from repro.obs.instruments import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.obs.pipeline import apply_delta

_METRIC_CHARSET = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitize an instrument name to the OpenMetrics charset."""
    sanitized = _METRIC_CHARSET.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.17g}" if value != int(value) else str(int(value))


def _render_histogram(name: str, hist: Histogram) -> List[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for index, edge in enumerate(hist.edges):
        cumulative += hist.counts[index]
        lines.append(
            f'{name}_bucket{{le="{_format_value(edge)}"}} {cumulative}'
        )
    cumulative += hist.counts[-1]
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {_format_value(hist.sum)}")
    lines.append(f"{name}_count {hist.count}")
    return lines


def render_openmetrics(registry: Registry) -> str:
    """Render every instrument in ``registry`` as OpenMetrics text."""
    lines: List[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        exposed = metric_name(name)
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed}_total {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines += _render_histogram(exposed, instrument)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _default_buckets(name: str) -> Sequence[float]:
    """Edge heuristic for raw ``hist`` events (which don't carry edges):
    wall-time series end in ``.seconds``, fraction-valued series mention
    ``fraction``, everything else is ratio-like — mirroring the bucket
    choices of the emitting hot paths."""
    if name.endswith(".seconds"):
        return DEFAULT_TIME_BUCKETS
    if "fraction" in name:
        return DEFAULT_FRACTION_BUCKETS
    return DEFAULT_RATIO_BUCKETS


def registry_from_events(events: Sequence[Event]) -> Registry:
    """Replay an event stream into a fresh instrument registry.

    ``delta`` events restore worker histograms with their exact edges via
    :func:`repro.obs.pipeline.apply_delta`; raw ``hist`` events fall back
    to the :func:`_default_buckets` heuristic; spans rebuild their
    ``span.<name>.seconds`` wall-time histograms.
    """
    registry = Registry()
    for event in events:
        kind = event.get("type")
        if kind == "delta":
            apply_delta(
                registry,
                {
                    "counters": event.get("counters") or {},
                    "gauges": event.get("gauges") or {},
                    "hists": event.get("hists") or {},
                },
            )
            continue
        name = event.get("name")
        if not isinstance(name, str):
            continue
        if kind == "counter":
            registry.counter(name).add(float(event.get("value", 1.0)))  # type: ignore[arg-type]
        elif kind == "gauge":
            registry.gauge(name).set(float(event.get("value", math.nan)))  # type: ignore[arg-type]
        elif kind == "hist":
            hist = _replay_histogram(registry, name, _default_buckets(name))
            values = event.get("values")
            if isinstance(values, (list, tuple)):
                hist.observe_many(values)
            else:
                hist.observe(float(event.get("value", math.nan)))  # type: ignore[arg-type]
        elif kind == "span":
            start = float(event.get("start", 0.0))  # type: ignore[arg-type]
            end = float(event.get("end", start))  # type: ignore[arg-type]
            _replay_histogram(
                registry, f"span.{name}.seconds", DEFAULT_TIME_BUCKETS
            ).observe(end - start)
    return registry


def _replay_histogram(
    registry: Registry, name: str, buckets: Sequence[float]
) -> Histogram:
    """Get-or-create with heuristic edges, accepting existing ones.

    A delta event may already have created ``name`` with its exact worker
    edges; the heuristic must defer to those rather than reject the
    replay."""
    try:
        return registry.histogram(name, buckets)
    except ConfigurationError:
        return registry.histogram(name)
