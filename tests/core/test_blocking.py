"""Unit tests for the row-block partition."""

import numpy as np
import pytest

from repro.core import BlockPartition
from repro.errors import ConfigurationError


def test_even_partition():
    p = BlockPartition(n_rows=6, block_size=2)
    assert p.n_blocks == 3
    assert [p.bounds(k) for k in range(3)] == [(0, 2), (2, 4), (4, 6)]
    assert all(p.length(k) == 2 for k in range(3))


def test_ragged_last_block():
    p = BlockPartition(n_rows=7, block_size=3)
    assert p.n_blocks == 3
    assert p.bounds(2) == (6, 7)
    assert p.length(2) == 1
    np.testing.assert_array_equal(p.block_lengths(), [3, 3, 1])


def test_block_size_larger_than_rows():
    p = BlockPartition(n_rows=5, block_size=100)
    assert p.n_blocks == 1
    assert p.bounds(0) == (0, 5)


def test_block_size_one():
    p = BlockPartition(n_rows=4, block_size=1)
    assert p.n_blocks == 4
    assert [p.block_of_row(i) for i in range(4)] == [0, 1, 2, 3]


def test_empty_matrix():
    p = BlockPartition(n_rows=0, block_size=8)
    assert p.n_blocks == 0
    assert p.block_lengths().size == 0
    np.testing.assert_array_equal(p.block_starts(), [0])


def test_block_of_row():
    p = BlockPartition(n_rows=10, block_size=4)
    assert p.block_of_row(0) == 0
    assert p.block_of_row(3) == 0
    assert p.block_of_row(4) == 1
    assert p.block_of_row(9) == 2


def test_block_ids_of_rows_vectorized():
    p = BlockPartition(n_rows=10, block_size=4)
    np.testing.assert_array_equal(
        p.block_ids_of_rows(np.array([0, 5, 9])), [0, 1, 2]
    )


def test_iteration_covers_all_rows_disjointly():
    p = BlockPartition(n_rows=23, block_size=5)
    seen = []
    for block, start, stop in p:
        assert p.bounds(block) == (start, stop)
        seen.extend(range(start, stop))
    assert seen == list(range(23))


def test_block_starts_sentinel():
    p = BlockPartition(n_rows=10, block_size=4)
    np.testing.assert_array_equal(p.block_starts(), [0, 4, 8, 10])


def test_validation():
    with pytest.raises(ConfigurationError):
        BlockPartition(n_rows=-1, block_size=2)
    with pytest.raises(ConfigurationError):
        BlockPartition(n_rows=5, block_size=0)
    p = BlockPartition(n_rows=5, block_size=2)
    with pytest.raises(ConfigurationError):
        p.bounds(3)
    with pytest.raises(ConfigurationError):
        p.block_of_row(5)
