"""Bit-identity, caching and validation tests for the execution plans.

The contract under test: for any kernel set and any tamper sequence,
``ProtectedPlan.multiply`` is indistinguishable from
``FaultTolerantSpMV.multiply`` — same value bits, same detection /
correction history, same simulated cost, same telemetry — it just stops
allocating.
"""

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.errors import ConfigurationError, ShapeMismatchError
from repro.kernels.parallel import ParallelKernels
from repro.obs import InMemoryExporter, Telemetry
from repro.perf import ProtectedPlan, SpmvPlan
from repro.sparse import CooMatrix, random_spd

N = 256
BLOCK = 32


@pytest.fixture
def matrix():
    return random_spd(N, 2500, seed=21)


@pytest.fixture
def b():
    return np.random.default_rng(21).standard_normal(N)


def one_shot(stage_name, mutate):
    state = {"done": False}

    def hook(stage, data, work):
        if stage == stage_name and not state["done"]:
            mutate(data)
            state["done"] = True

    return hook


def recording(inner=None):
    """Tamper hook that logs every (stage, work) call it sees."""
    calls = []

    def hook(stage, data, work):
        calls.append((stage, float(work)))
        if inner is not None:
            inner(stage, data, work)

    return hook, calls


def parallel_operator(n_workers, telemetry=None, **config_kwargs):
    """Operator whose kernel backend is a sharded-at-any-size parallel set."""
    config = AbftConfig(block_size=BLOCK, kernel="parallel", **config_kwargs)
    op = FaultTolerantSpMV(
        random_spd(N, 2500, seed=21), config=config, telemetry=telemetry
    )
    kernels = ParallelKernels(n_workers=n_workers, serial_cutoff=0)
    op.detector.kernels = op.telemetry.wrap_kernels(kernels)
    return op


# ----------------------------------------------------------------------
# SpmvPlan
# ----------------------------------------------------------------------
def test_spmv_plan_matches_matvec_any_shard_count(matrix, b):
    expected = matrix.matvec(b)
    for n_shards in (1, 2, 3, 8, 64):
        plan = SpmvPlan(matrix, n_shards=n_shards)
        np.testing.assert_array_equal(plan.execute(b), expected)
        # Repeated execution reuses the same output buffer, same bits.
        out = plan.execute(b)
        assert out is plan.out
        np.testing.assert_array_equal(out, expected)


def test_spmv_plan_handles_empty_rows():
    csr = CooMatrix.from_entries(
        (6, 6), [(1, 1, 2.0), (1, 3, -1.0), (4, 0, 3.0)]
    ).to_csr()
    b = np.arange(1.0, 7.0)
    expected = csr.matvec(b)
    for n_shards in (1, 2, 3, 6):
        np.testing.assert_array_equal(
            SpmvPlan(csr, n_shards=n_shards).execute(b), expected
        )


def test_spmv_plan_all_empty_matrix():
    csr = CooMatrix.from_entries((4, 4), []).to_csr()
    plan = SpmvPlan(csr, n_shards=2)
    np.testing.assert_array_equal(plan.execute(np.ones(4)), np.zeros(4))


def test_spmv_plan_explicit_row_cuts(matrix, b):
    plan = SpmvPlan(matrix, row_cuts=np.array([0, 10, 200, N]))
    assert plan.n_shards == 3
    np.testing.assert_array_equal(plan.execute(b), matrix.matvec(b))


@pytest.mark.parametrize(
    "cuts",
    [
        [1, N],  # does not start at 0
        [0, N - 1],  # does not end at n_rows
        [0, 100, 100, N],  # not strictly increasing
        [0, 200, 100, N],  # decreasing
    ],
)
def test_spmv_plan_rejects_bad_row_cuts(matrix, cuts):
    with pytest.raises(ConfigurationError, match="row_cuts"):
        SpmvPlan(matrix, row_cuts=np.array(cuts))


def test_spmv_plan_rejects_bad_operand(matrix):
    with pytest.raises(ShapeMismatchError):
        SpmvPlan(matrix).execute(np.ones(N + 1))


# ----------------------------------------------------------------------
# ProtectedPlan vs FaultTolerantSpMV.multiply
# ----------------------------------------------------------------------
def _assert_results_identical(planned, unplanned):
    np.testing.assert_array_equal(planned.value, unplanned.value)
    assert planned.detected == unplanned.detected
    assert planned.corrected_blocks == unplanned.corrected_blocks
    assert planned.rounds == unplanned.rounds
    assert planned.exhausted == unplanned.exhausted
    assert planned.seconds == unplanned.seconds
    assert planned.flops == unplanned.flops


@pytest.mark.parametrize("kernel", ["naive", "vectorized"])
def test_clean_multiply_bit_identical(matrix, b, kernel):
    config = AbftConfig(block_size=BLOCK, kernel=kernel)
    op = FaultTolerantSpMV(matrix, config=config)
    # Bit-identity with the unplanned operator is the *CSR* contract;
    # pin it so a REPRO_FORMAT override doesn't change the storage under
    # test (format coverage lives in test_format_plan.py).
    plan = op.planned(sparse_format="csr")
    planned = plan.multiply(b)
    value = planned.value.copy()
    unplanned = op.multiply(b)
    np.testing.assert_array_equal(value, unplanned.value)
    _assert_results_identical(planned, unplanned)


@pytest.mark.parametrize("kernel", ["naive", "vectorized"])
def test_tampered_multiply_bit_identical(matrix, b, kernel):
    config = AbftConfig(block_size=BLOCK, kernel=kernel)
    op = FaultTolerantSpMV(matrix, config=config)
    plan = op.planned(sparse_format="csr")

    def mutate(d):
        d[0] += 1.0
        d[100] -= 2.0
        d[255] = np.nan

    hook_planned, calls_planned = recording(one_shot("result", mutate))
    hook_unplanned, calls_unplanned = recording(one_shot("result", mutate))
    planned = plan.multiply(b, tamper=hook_planned)
    value = planned.value.copy()
    unplanned = op.multiply(b, tamper=hook_unplanned)
    np.testing.assert_array_equal(value, unplanned.value)
    _assert_results_identical(planned, unplanned)
    assert planned.rounds == 1
    assert calls_planned == calls_unplanned  # same stages, same work charges


def test_persistent_tamper_exhausts_identically(matrix, b):
    """Every recomputation is re-corrupted: both paths burn the full
    round budget and report exhaustion with identical history."""
    config = AbftConfig(block_size=BLOCK, max_correction_rounds=3)
    op = FaultTolerantSpMV(matrix, config=config)
    plan = op.planned(sparse_format="csr")

    def persistent(stage, data, work):
        if stage in ("result", "corrected"):
            data[0] += 5.0

    planned = plan.multiply(b, tamper=persistent)
    value = planned.value.copy()
    unplanned = op.multiply(b, tamper=persistent)
    assert planned.exhausted and unplanned.exhausted
    assert planned.rounds == 3
    np.testing.assert_array_equal(value, unplanned.value)
    _assert_results_identical(planned, unplanned)


def test_plan_without_beta_coefficients_matches(matrix, b):
    """Bounds that expose no coefficients fall back to per-call
    thresholds — values must not change."""

    class _OpaqueBound:
        def __init__(self, inner):
            self._inner = inner

        def thresholds(self, beta, blocks):
            return self._inner.thresholds(beta, blocks)

    op = FaultTolerantSpMV(matrix, block_size=BLOCK)
    reference = op.multiply(b)
    op.detector.bound = _OpaqueBound(op.detector.bound)
    plan = ProtectedPlan(op, sparse_format="csr")
    assert plan._beta_coefficients is None
    planned = plan.multiply(b)
    np.testing.assert_array_equal(planned.value, reference.value)
    assert planned.detected == reference.detected


def test_result_value_is_the_plan_buffer(matrix, b):
    op = FaultTolerantSpMV(matrix, block_size=BLOCK)
    plan = op.planned(sparse_format="csr")
    first = plan.multiply(b).value
    second = plan.multiply(2.0 * b).value
    assert first is second  # documented buffer reuse
    np.testing.assert_array_equal(second, matrix.matvec(2.0 * b))


def test_protected_plan_rejects_bad_shards(matrix):
    op = FaultTolerantSpMV(matrix, block_size=BLOCK)
    with pytest.raises(ConfigurationError, match="n_shards"):
        ProtectedPlan(op, n_shards=0)


# ----------------------------------------------------------------------
# planned() cache
# ----------------------------------------------------------------------
def test_planned_caches_one_plan(matrix):
    telemetry = Telemetry(exporter=InMemoryExporter())
    op = FaultTolerantSpMV(matrix, block_size=BLOCK, telemetry=telemetry)
    first = op.planned()
    assert op.planned() is first
    assert op.planned() is first
    assert telemetry.registry.counter("plan.cache_hits").value == 2.0


def test_planned_rebuilds_on_shard_change(matrix):
    op = FaultTolerantSpMV(matrix, block_size=BLOCK)
    one = op.planned(n_shards=1)
    two = op.planned(n_shards=2)
    assert two is not one
    assert two.n_shards == 2
    assert op.planned(n_shards=2) is two


def test_planned_defaults_to_parallel_worker_count():
    op = parallel_operator(n_workers=3)
    plan = op.planned()
    assert plan.n_shards == 3
    assert plan.spmv.n_shards > 1


# ----------------------------------------------------------------------
# Threaded fused path
# ----------------------------------------------------------------------
def test_threaded_clean_multiply_matches_sequential(matrix, b):
    reference = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK, kernel="vectorized")
    ).multiply(b)
    op = parallel_operator(n_workers=3)
    plan = op.planned(sparse_format="csr")
    assert plan.spmv.n_shards > 1  # the fused path is actually exercised
    for _ in range(3):
        planned = plan.multiply(b)
        np.testing.assert_array_equal(planned.value, reference.value)
        assert planned.detected == reference.detected
        assert planned.seconds == reference.seconds
        assert planned.flops == reference.flops


def test_threaded_correction_matches_sequential(matrix, b):
    """A vanishing bound flags every block persistently; the threaded
    first round + sequential continuation must replay the sequential
    operator bit for bit, exhaustion included."""
    scaled = dict(block_size=BLOCK, bound_scale=1e-12, max_correction_rounds=3)
    reference = FaultTolerantSpMV(
        matrix, config=AbftConfig(kernel="vectorized", **scaled)
    ).multiply(b)
    assert reference.exhausted  # the scenario really does flag blocks
    op = parallel_operator(n_workers=3, **{k: v for k, v in scaled.items() if k != "block_size"})
    plan = op.planned(sparse_format="csr")
    assert plan.spmv.n_shards > 1
    planned = plan.multiply(b)
    _assert_results_identical(planned, reference)


def test_tamper_falls_back_to_sequential_path(matrix, b):
    """Fault campaigns must see the contractual stage sequence even on a
    parallel-kernel operator."""
    op = parallel_operator(n_workers=3)
    plan = op.planned()
    hook, calls = recording()
    plan.multiply(b, tamper=hook)
    assert [stage for stage, _ in calls] == ["result", "t1", "beta", "t2"]


# ----------------------------------------------------------------------
# Telemetry equivalence
# ----------------------------------------------------------------------
def _scrubbed(events):
    """Events with wall-clock noise removed (timestamps, timing values)."""
    drop = {"t", "start", "end"}
    scrubbed = []
    for event in events:
        clean = {k: v for k, v in event.items() if k not in drop}
        if str(clean.get("name", "")).endswith(".seconds"):
            clean.pop("value", None)
        scrubbed.append(clean)
    return scrubbed


def test_plan_telemetry_stream_matches_operator(matrix, b):
    config = AbftConfig(block_size=BLOCK, kernel="vectorized")
    tel_op = Telemetry(exporter=InMemoryExporter())
    tel_plan = Telemetry(exporter=InMemoryExporter())
    op = FaultTolerantSpMV(matrix, config=config, telemetry=tel_op)
    planned_op = FaultTolerantSpMV(matrix, config=config, telemetry=tel_plan)
    plan = planned_op.planned(sparse_format="csr")
    for _ in range(3):
        op.multiply(b)
        plan.multiply(b)
    assert _scrubbed(tel_plan.events()) == _scrubbed(tel_op.events())
