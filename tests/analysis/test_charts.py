"""Unit tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import bar_chart, column_curve, grouped_bar_chart
from repro.errors import ConfigurationError


def test_bar_chart_basic():
    chart = bar_chart(["alpha", "b"], [2.0, 1.0], width=10, title="T")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("alpha")
    # The larger value gets the full-width bar.
    assert lines[1].count("█") == 10
    assert lines[2].count("█") == 5


def test_bar_chart_formatter():
    chart = bar_chart(["x"], [0.437], formatter=lambda v: f"{v:.1%}")
    assert "43.7%" in chart


def test_bar_chart_empty_and_validation():
    assert bar_chart([], []) == "(empty chart)"
    with pytest.raises(ConfigurationError):
        bar_chart(["a"], [1.0, 2.0])
    with pytest.raises(ConfigurationError):
        bar_chart(["a"], [1.0], width=2)


def test_bar_chart_zero_values():
    chart = bar_chart(["a", "b"], [0.0, 0.0], width=8)
    assert "█" not in chart


def test_grouped_bar_chart():
    chart = grouped_bar_chart(
        ["m1", "m2"],
        {"ours": [1.0, 2.0], "dense": [3.0, 4.0]},
        width=8,
    )
    assert "m1:" in chart and "m2:" in chart
    assert chart.count("ours") == 2
    assert chart.count("dense") == 2


def test_grouped_bar_chart_validation():
    with pytest.raises(ConfigurationError):
        grouped_bar_chart(["a"], {"s": [1.0, 2.0]})
    assert grouped_bar_chart([], {}) == "(empty chart)"


def test_column_curve_marks_minimum():
    chart = column_curve([1, 2, 4, 8], [5.0, 2.0, 3.0, 6.0], height=4)
    lines = chart.splitlines()
    # Marker row has the arrow above the x=2 column.
    marker_row = lines[0]
    x_row = lines[-2]
    assert "▼" in marker_row
    assert marker_row.index("▼") // (len(x_row) // 4) == 1
    assert "min 2 at 2" in lines[-1]


def test_column_curve_validation():
    with pytest.raises(ConfigurationError):
        column_curve([1], [1.0, 2.0])
    with pytest.raises(ConfigurationError):
        column_curve([1], [1.0], height=1)
    assert column_curve([], []) == "(empty chart)"


def test_column_curve_peak_column_full_height():
    chart = column_curve(["a", "b"], [1.0, 4.0], height=4)
    body = chart.splitlines()[1:-2]
    # The peak column contains a block at every level.
    peak_cells = sum("█" in line for line in body)
    assert peak_cells == 4
