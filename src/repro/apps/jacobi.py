"""Protected Jacobi iteration (a second iterative-solver substrate).

The Jacobi method ``x <- D^{-1} (b - (A - D) x)`` is the simplest splitting
solver: one SpMV with the off-diagonal part per sweep, convergent for the
strictly diagonally dominant matrices our generators produce.  Like PCG it
reuses its matrix every iteration, so the block-ABFT encoding amortizes;
unlike PCG it has no Krylov state to poison, which makes it a useful
contrast case for fault studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.corrector import TamperHook
from repro.core.protected import FaultTolerantSpMV, plain_spmv
from repro.errors import ConfigurationError, ShapeMismatchError, SingularMatrixError
from repro.machine import ExecutionMeter, Machine
from repro.sparse.construct import diags, subtract
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class JacobiResult:
    """Outcome of a (possibly protected) Jacobi solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    detections: int
    seconds: float
    flops: float


def jacobi_solve(
    matrix: CsrMatrix,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iterations: int = 2000,
    protected: bool = True,
    block_size: int = 32,
    tamper: Optional[TamperHook] = None,
    machine: Optional[Machine] = None,
) -> JacobiResult:
    """Solve ``A x = b`` by Jacobi sweeps with optional ABFT protection.

    Args:
        matrix: square matrix with non-zero diagonal (convergence requires
            spectral radius of the iteration matrix < 1, e.g. strict
            diagonal dominance).
        b: right-hand side.
        tol: relative residual tolerance.
        max_iterations: sweep budget.
        protected: protect the off-diagonal SpMV with block ABFT.
        block_size: ABFT block size.
        tamper: fault hook forwarded to each multiply.
        machine: simulated device.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise ShapeMismatchError(f"need a square matrix, got {matrix.shape}")
    if tol <= 0:
        raise ConfigurationError(f"tol must be positive, got {tol}")
    if max_iterations < 1:
        raise ConfigurationError(f"max_iterations must be >= 1, got {max_iterations}")
    n = matrix.n_rows
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeMismatchError(f"rhs has shape {b.shape}, expected ({n},)")
    diagonal = matrix.diagonal()
    if (diagonal == 0).any():
        raise SingularMatrixError("Jacobi needs a zero-free diagonal")

    off_diagonal = subtract(matrix, diags(diagonal))
    machine = machine or Machine()
    meter = ExecutionMeter(machine=machine)
    operator = (
        FaultTolerantSpMV(off_diagonal, block_size=block_size, machine=machine)
        if protected
        else None
    )
    inverse_diagonal = 1.0 / diagonal
    b_norm = float(np.linalg.norm(b))
    # reprolint: disable=ABFT003 -- exact-zero RHS guard: a zero b is exactly
    # representable, and any other norm makes the relative residual valid
    if b_norm == 0.0:
        b_norm = 1.0

    x = np.zeros(n)
    detections = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if operator is not None:
            result = operator.multiply(x, tamper=tamper, meter=meter)
            detections += int(bool(result.detected[0]))
            coupled = result.value
        else:
            coupled = plain_spmv(off_diagonal, x, meter=meter, tamper=tamper)
        with np.errstate(invalid="ignore", over="ignore"):
            x = inverse_diagonal * (b - coupled)
            residual = float(np.linalg.norm(b - matrix.matvec(x))) / b_norm
        if residual < tol:
            converged = True
            break
        if not np.isfinite(residual):
            break  # poisoned state (only reachable unprotected)

    with np.errstate(invalid="ignore", over="ignore"):
        final_residual = float(np.linalg.norm(b - matrix.matvec(x))) / b_norm
    seconds, flops = meter.snapshot()
    return JacobiResult(
        x=x,
        iterations=iterations,
        converged=converged and np.isfinite(final_residual) and final_residual < 10 * tol,
        residual_norm=final_residual,
        detections=detections,
        seconds=seconds,
        flops=flops,
    )
