"""Error-injection campaigns for the SpMV experiments (paper Section V).

Two campaign kinds:

* **coverage** (Figure 7): per trial, one σ-significant burst corrupts a
  random result element; the detector's verdict is scored against ground
  truth.  Both the proposed block detector and the dense-check baseline run
  through the same trials.
* **correction** (Figure 6): per trial, an injected error triggers the
  full detect-locate-correct pipeline of each scheme, and the simulated
  runtime is recorded.

Schemes are resolved by name through the :mod:`repro.schemes` registry
(historic spellings like ``"block"``/``"dense"`` and ``"ours"`` resolve
via its aliases), so any registered scheme can run either campaign.

The paper runs 100 000 trials per matrix; the statistics here stabilize at
a few hundred, which is the default (`trials` is a knob everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.metrics import ConfusionCounts
from repro.core.config import AbftConfig
from repro.core.protected import plain_spmv
from repro.errors import ConfigurationError, InjectionError
from repro.faults.injector import FaultInjector
from repro.machine import ExecutionMeter, Machine
from repro.schemes import canonical_scheme_name, make_scheme
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of one coverage campaign."""

    counts: ConfusionCounts
    trials: int
    sigma: float
    detector: str

    @property
    def f1(self) -> float:
        return self.counts.f1


def _ranges_containing(
    ranges: Tuple[Tuple[int, int], ...], index: int
) -> Tuple[bool, int]:
    """(is the index covered by any range, number of ranges missing it)."""
    hit = False
    misses = 0
    for start, stop in ranges:
        if start <= index < stop:
            hit = True
        else:
            misses += 1
    return hit, misses


def run_coverage_campaign(
    matrix: CsrMatrix,
    detector: str,
    trials: int = 300,
    sigma: float = 1e-12,
    seed: int = 0,
    block_size: int = 32,
    bound: str = "sparse",
) -> CoverageResult:
    """Score a scheme's error coverage under σ-significant injections.

    Per trial: draw a fresh operand, compute the clean SpMV, first evaluate
    the scheme's verdict on the *clean* result (any implicated row range is
    a false positive), then corrupt one random element with a σ-significant
    burst and re-evaluate (a range covering the corrupted location is a
    true positive; ranges elsewhere are false positives; silence is a false
    negative).

    ``detector`` is a registered scheme name (``"block"`` and ``"dense"``
    resolve to ``"abft"`` and ``"dense_check"``); ``bound="empirical"``
    calibrates an :class:`~repro.core.calibration.EmpiricalBound` for the
    block scheme instead of an analytical bound family.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    canonical = canonical_scheme_name(detector)
    rng = np.random.default_rng(seed)
    injector = FaultInjector(rng=rng)
    counts = ConfusionCounts()

    if bound == "empirical":
        from repro.core.calibration import EmpiricalBound

        scheme = make_scheme(
            canonical,
            matrix,
            config=AbftConfig(block_size=block_size),
            bound_override=EmpiricalBound.calibrate(
                matrix, block_size=block_size, samples=40, seed=seed + 1
            ),
        )
    else:
        scheme = make_scheme(
            canonical, matrix, config=AbftConfig(block_size=block_size, bound=bound)
        )
    verdict = getattr(scheme, "verdict", None)
    if verdict is None:
        raise ConfigurationError(
            f"scheme {canonical!r} exposes no verdict(b, r) method; "
            "coverage campaigns need one to score detections"
        )

    for _ in range(trials):
        b = rng.standard_normal(matrix.n_cols) * 10.0 ** rng.integers(-2, 3)
        r = matrix.matvec(b)

        clean_ranges = verdict(b, r)
        counts.false_positives += len(clean_ranges)
        if not clean_ranges:
            counts.true_negatives += 1

        try:
            record = injector.corrupt_random_element(r, sigma=sigma)
        except InjectionError:
            continue  # pathological element; skip the trial
        ranges = verdict(b, r)
        hit, misses = _ranges_containing(ranges, record.index)
        if hit:
            counts.true_positives += 1
        else:
            counts.false_negatives += 1
        counts.false_positives += misses

    return CoverageResult(counts=counts, trials=trials, sigma=sigma, detector=detector)


@dataclass(frozen=True)
class CorrectionTiming:
    """Average simulated runtimes of one correction campaign."""

    scheme: str
    mean_protected_seconds: float
    plain_seconds: float
    trials: int

    @property
    def overhead(self) -> float:
        return self.mean_protected_seconds / self.plain_seconds - 1.0


def run_correction_campaign(
    matrix: CsrMatrix,
    scheme: str,
    trials: int = 50,
    seed: int = 0,
    block_size: int = 32,
    machine: Machine | None = None,
) -> CorrectionTiming:
    """Measure detection+correction overhead under guaranteed-visible errors.

    Every trial injects one error large enough that *all* compared methods
    detect it (the paper triggers corrections in every evaluated method),
    then runs the scheme's full pipeline and records simulated time.
    ``scheme`` is any registered scheme name (aliases accepted).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = machine or Machine()
    rng = np.random.default_rng(seed)

    canonical = canonical_scheme_name(scheme)
    operator = make_scheme(
        canonical, matrix, config=AbftConfig(block_size=block_size), machine=machine
    )

    total = 0.0
    for _ in range(trials):
        b = rng.standard_normal(matrix.n_cols)
        # An error above the norm bound so even the dense check fires.
        magnitude = 10.0 * float(np.linalg.norm(b)) * (1.0 + rng.random())
        index = int(rng.integers(0, matrix.n_rows))
        state = {"armed": True}

        def tamper(stage, data, work):
            if stage == "result" and state["armed"]:
                data[index] += magnitude
                state["armed"] = False

        result = operator.multiply(b, tamper=tamper)
        total += result.seconds

    plain_meter = ExecutionMeter(machine=machine)
    plain_spmv(matrix, rng.standard_normal(matrix.n_cols), meter=plain_meter)
    return CorrectionTiming(
        scheme=canonical,
        mean_protected_seconds=total / trials,
        plain_seconds=plain_meter.seconds,
        trials=trials,
    )
