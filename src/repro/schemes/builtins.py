"""Factories for the built-in protection schemes.

One factory per entry of :data:`repro.schemes.registry.BUILTIN_SCHEMES`.
Each threads the shared execution context (``AbftConfig``, machine model,
telemetry stream) into the scheme's constructor so every scheme runs
kernel-for-kernel on the same footing, and rejects options it does not
understand with :class:`~repro.errors.ConfigurationError`.

Imports of the scheme classes happen inside the factory bodies: the
registry must be importable from anywhere (including ``AbftConfig``
validation) without dragging in the core/baseline stacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.schemes.base import ProtectionScheme

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.config import AbftConfig
    from repro.machine import Machine
    from repro.obs import Telemetry
    from repro.sparse.csr import CsrMatrix


def _reject_unknown(
    scheme: str, options: Mapping[str, object], allowed: Tuple[str, ...] = ()
) -> None:
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"scheme {scheme!r} does not accept option(s) {unknown}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )


def make_abft(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """The paper's block-ABFT SpMV (:class:`repro.core.FaultTolerantSpMV`).

    Options: ``bound_override`` — an object exposing
    ``thresholds(beta, blocks)`` replacing the analytical bound.
    """
    _reject_unknown("abft", options, ("bound_override",))
    from repro.core.protected import FaultTolerantSpMV

    return FaultTolerantSpMV(
        matrix,
        config=config,
        machine=machine,
        telemetry=telemetry,
        bound_override=options.get("bound_override"),
    )


def make_vabft(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """Variance-adaptive block-ABFT
    (:class:`repro.schemes.vabft.VarianceAdaptiveSpMV`).

    Options: ``k_sigma`` (float), ``min_samples`` (int), ``warmup`` (int)
    — see the scheme class for semantics; defaults are the module
    constants in :mod:`repro.schemes.vabft`.
    """
    _reject_unknown("vabft", options, ("k_sigma", "min_samples", "warmup"))
    from repro.schemes.vabft import (
        DEFAULT_K_SIGMA,
        DEFAULT_MIN_SAMPLES,
        DEFAULT_WARMUP,
        VarianceAdaptiveSpMV,
    )

    k_sigma = options.get("k_sigma", DEFAULT_K_SIGMA)
    if not isinstance(k_sigma, (int, float)) or isinstance(k_sigma, bool):
        raise ConfigurationError(
            f"k_sigma must be a number, got {type(k_sigma).__name__}"
        )
    min_samples = options.get("min_samples", DEFAULT_MIN_SAMPLES)
    if not isinstance(min_samples, int) or isinstance(min_samples, bool):
        raise ConfigurationError(
            f"min_samples must be an int, got {type(min_samples).__name__}"
        )
    warmup = options.get("warmup", DEFAULT_WARMUP)
    if not isinstance(warmup, int) or isinstance(warmup, bool):
        raise ConfigurationError(
            f"warmup must be an int, got {type(warmup).__name__}"
        )
    return VarianceAdaptiveSpMV(
        matrix,
        config=config,
        machine=machine,
        telemetry=telemetry,
        k_sigma=float(k_sigma),
        min_samples=min_samples,
        warmup=warmup,
    )


def make_bisection(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """Dense check + bisection localization ([30]).

    Options: ``early_stop_fraction`` — fraction of the complete
    localization traversal to descend (default 0.4, the paper's setup).
    """
    _reject_unknown("bisection", options, ("early_stop_fraction",))
    from repro.baselines.bisection import DEFAULT_EARLY_STOP, PartialRecomputationSpMV

    early_stop = options.get("early_stop_fraction", DEFAULT_EARLY_STOP)
    if not isinstance(early_stop, float):
        raise ConfigurationError(
            f"early_stop_fraction must be a float, got {type(early_stop).__name__}"
        )
    return PartialRecomputationSpMV(
        matrix,
        machine=machine,
        max_rounds=config.max_correction_rounds,
        early_stop_fraction=early_stop,
        bound_scale=config.bound_scale,
        kernel=config.kernel,
        telemetry=telemetry,
    )


def make_complete(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """Dense check + complete recomputation ([31])."""
    _reject_unknown("complete", options)
    from repro.baselines.complete import CompleteRecomputationSpMV

    return CompleteRecomputationSpMV(
        matrix,
        machine=machine,
        max_rounds=config.max_correction_rounds,
        bound_scale=config.bound_scale,
        kernel=config.kernel,
        telemetry=telemetry,
    )


def make_dense_check(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """Detection-only dense check ([30]); cannot correct."""
    _reject_unknown("dense_check", options)
    from repro.baselines.dense_check import DenseCheckSpMV

    return DenseCheckSpMV(
        matrix,
        machine=machine,
        bound_scale=config.bound_scale,
        kernel=config.kernel,
        telemetry=telemetry,
    )


def make_checkpoint(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """Dense check + checkpoint/rollback signalling; the scheme's
    :class:`~repro.baselines.checkpoint.CheckpointStore` (``.store``)
    carries the snapshots the caller rolls back to."""
    _reject_unknown("checkpoint", options)
    from repro.baselines.checkpoint import CheckpointSpMV

    return CheckpointSpMV(
        matrix,
        machine=machine,
        bound_scale=config.bound_scale,
        kernel=config.kernel,
        telemetry=telemetry,
    )


def make_redundancy(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """Duplication with comparison (DWC)."""
    _reject_unknown("redundancy", options)
    from repro.baselines.redundancy import DwcSpMV

    return DwcSpMV(
        matrix,
        machine=machine,
        max_rounds=config.max_correction_rounds,
        kernel=config.kernel,
        telemetry=telemetry,
    )


def make_tmr(
    matrix: "CsrMatrix",
    *,
    config: "AbftConfig",
    machine: "Machine",
    telemetry: "Telemetry",
    **options: object,
) -> ProtectionScheme:
    """Triple modular redundancy."""
    _reject_unknown("tmr", options)
    from repro.baselines.redundancy import TmrSpMV

    return TmrSpMV(
        matrix,
        machine=machine,
        kernel=config.kernel,
        telemetry=telemetry,
    )
