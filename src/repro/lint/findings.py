"""Finding records and stable fingerprints.

A :class:`Finding` pins one rule violation to a ``file:line:column``
position.  Findings also carry a *fingerprint* — a content hash over the
rule id, the file path, and the offending source line (plus an ordinal for
repeated identical lines) — deliberately excluding line numbers, so a
committed baseline survives unrelated edits that shift code up or down.

Project-mode findings may additionally carry *evidence paths*
(:attr:`Finding.related`): files other than the primary location whose
content the finding depends on — the non-refreshing caller of a mutating
helper, the spawn site that makes a function a worker entry point.  The
fingerprint covers those paths too, so renaming an evidence file
invalidates the baseline entry even though the primary location did not
move.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source position.

    Attributes:
        path: file path (POSIX separators, relative to the lint root).
        line: 1-based line of the offending node.
        column: 1-based column of the offending node.
        rule: rule identifier (``"ABFT003"``).
        message: human-readable description of the violation.
        snippet: the stripped source line, used for fingerprinting and
            for context in reports.
        related: paths of *evidence* files a cross-module finding depends
            on (sorted, deduplicated, excluding :attr:`path`); part of
            the fingerprint so evidence renames invalidate baselines.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str
    snippet: str = field(default="", compare=False)
    related: Tuple[str, ...] = field(default=(), compare=False)

    def location(self) -> str:
        """``path:line:column`` (the clickable prefix of text reports)."""
        return f"{self.path}:{self.line}:{self.column}"


def fingerprint(finding: Finding, ordinal: int = 0) -> str:
    """Line-number-independent identity hash of a finding.

    ``ordinal`` disambiguates several identical violations (same rule,
    file, and source text) so a baseline tracks *how many* are accepted.
    Evidence paths (:attr:`Finding.related`) are hashed when present;
    findings without evidence keep their historical fingerprints.
    """
    payload = f"{finding.rule}|{finding.path}|{finding.snippet}|{ordinal}"
    if finding.related:
        payload += "|" + "|".join(finding.related)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def fingerprint_all(findings: Iterable[Finding]) -> List[Tuple[Finding, str]]:
    """Pair every finding with its fingerprint, assigning ordinals.

    Findings are processed in order; the n-th occurrence of an identical
    (rule, path, snippet, related) tuple gets ordinal n-1, making
    fingerprints unique within one run.
    """
    seen: Dict[Tuple[str, str, str, Tuple[str, ...]], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet, finding.related)
        ordinal = seen.get(key, 0)
        seen[key] = ordinal + 1
        out.append((finding, fingerprint(finding, ordinal)))
    return out
