"""Structured persistence for experiment results (JSON on disk).

The benchmark harness renders text tables; this module keeps the *data*:
each record stores the experiment id, its parameters, the values, and a
schema version, so longitudinal comparisons ("did the calibration change
Figure 5?") diff machine-readably instead of by eyeball.

Format: one JSON document per experiment, written atomically::

    {
      "schema": 1,
      "experiment": "fig5",
      "parameters": {...},
      "values": {...}
    }
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict

from repro.errors import ConfigurationError

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExperimentRecord:
    """One persisted experiment result."""

    experiment: str
    parameters: Dict[str, Any]
    values: Dict[str, Any]
    schema: int = SCHEMA_VERSION

    def to_json(self) -> str:
        """Serialize deterministically (sorted keys, stable separators)."""
        return json.dumps(
            {
                "schema": self.schema,
                "experiment": self.experiment,
                "parameters": self.parameters,
                "values": self.values,
            },
            sort_keys=True,
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        """Parse and validate a persisted record.

        Raises:
            ConfigurationError: on malformed documents or schema mismatch.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed experiment record: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("experiment record must be a JSON object")
        missing = {"schema", "experiment", "parameters", "values"} - set(payload)
        if missing:
            raise ConfigurationError(f"experiment record missing keys: {sorted(missing)}")
        if payload["schema"] > SCHEMA_VERSION:
            raise ConfigurationError(
                f"record schema {payload['schema']} is newer than supported "
                f"{SCHEMA_VERSION}"
            )
        return cls(
            experiment=str(payload["experiment"]),
            parameters=dict(payload["parameters"]),
            values=dict(payload["values"]),
            schema=int(payload["schema"]),
        )


class ResultStore:
    """Directory of experiment records, one file per experiment."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def _path_for(self, experiment: str) -> Path:
        if not experiment or "/" in experiment or experiment.startswith("."):
            raise ConfigurationError(f"invalid experiment name {experiment!r}")
        return self.directory / f"{experiment}.json"

    def save(
        self,
        experiment: str,
        values: Dict[str, Any],
        parameters: Dict[str, Any] | None = None,
    ) -> ExperimentRecord:
        """Persist a record atomically (write-to-temp + rename)."""
        record = ExperimentRecord(
            experiment=experiment,
            parameters=parameters or {},
            values=values,
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        target = self._path_for(experiment)
        handle, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=f".{experiment}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(record.to_json())
                stream.write("\n")
            os.replace(temp_path, target)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return record

    def load(self, experiment: str) -> ExperimentRecord:
        """Load one record.

        Raises:
            ConfigurationError: if the record does not exist or is invalid.
        """
        target = self._path_for(experiment)
        if not target.exists():
            raise ConfigurationError(f"no persisted record for {experiment!r}")
        return ExperimentRecord.from_json(target.read_text())

    def list_experiments(self) -> list[str]:
        """Names of all persisted experiments, sorted."""
        if not self.directory.exists():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def compare(
        self, experiment: str, fresh_values: Dict[str, Any], rel_tol: float = 0.05
    ) -> Dict[str, tuple]:
        """Diff freshly computed values against the stored record.

        Returns a map ``key -> (stored, fresh)`` for every numeric value
        that moved by more than ``rel_tol`` (relative), plus any keys that
        appear on only one side.
        """
        stored = self.load(experiment).values
        drifted: Dict[str, tuple] = {}
        for key in set(stored) | set(fresh_values):
            old = stored.get(key)
            new = fresh_values.get(key)
            if old is None or new is None:
                drifted[key] = (old, new)
                continue
            if isinstance(old, (int, float)) and isinstance(new, (int, float)):
                scale = max(abs(old), abs(new), 1e-300)
                if abs(old - new) / scale > rel_tol:
                    drifted[key] = (old, new)
            elif old != new:
                drifted[key] = (old, new)
        return drifted
