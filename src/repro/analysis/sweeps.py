"""Parameter sweeps behind each figure of the paper's evaluation.

Each function returns plain data (dataclasses over floats) so the benchmark
harness and the reporting module can render paper-style tables without
recomputing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.campaign import (
    CorrectionTiming,
    CoverageResult,
    run_correction_campaign,
    run_coverage_campaign,
)
from repro.analysis.metrics import mean, runtime_overhead, success_rate
from repro.core.config import AbftConfig
from repro.errors import ConfigurationError
from repro.machine import Machine, TaskGraph, spmv_cost
from repro.schemes import (
    DEFAULT_CORRECTION_SCHEMES,
    DEFAULT_PCG_SCHEMES,
    DEFAULT_SCHEME,
    canonical_scheme_name,
    make_scheme,
)
from repro.solvers.ft_pcg import FtPcgOptions, run_pcg
from repro.sparse.csr import CsrMatrix
from repro.sparse.suite import MatrixSpec

#: Block sizes swept in Figure 4.
FIGURE4_BLOCK_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Error rates swept in Figures 8-9.
PCG_ERROR_RATES: Tuple[float, ...] = (1e-8, 1e-7, 1e-6, 1e-5, 1e-4)

#: Minimal error significances of Figure 7.
FIGURE7_SIGMAS: Tuple[float, ...] = (1e-8, 1e-10, 1e-12)


def plain_spmv_time(matrix: CsrMatrix, machine: Machine) -> float:
    """Modeled runtime of one unprotected SpMV."""
    graph = TaskGraph()
    cost = spmv_cost(matrix.nnz, int(matrix.row_lengths().max(initial=1)))
    graph.add("spmv", cost.work, cost.span)
    return machine.makespan(graph)


def detection_overhead(
    matrix: CsrMatrix,
    method: str = "block",
    block_size: int = 32,
    machine: Machine | None = None,
) -> float:
    """Modeled error-detection overhead of one protected SpMV (Figures 4-5).

    ``method`` is a registered scheme name (``"block"``/``"dense"``
    resolve through the registry aliases); the scheme's own
    ``detection_graph`` provides the modeled cost.
    """
    machine = machine or Machine()
    scheme = make_scheme(
        canonical_scheme_name(method),
        matrix,
        config=AbftConfig(block_size=block_size),
        machine=machine,
    )
    graph = scheme.detection_graph()
    return runtime_overhead(machine.makespan(graph), plain_spmv_time(matrix, machine))


@dataclass(frozen=True)
class BlockSizeSweep:
    """Figure 4 data: detection overhead per (matrix, block size)."""

    block_sizes: Tuple[int, ...]
    per_matrix: Dict[str, Tuple[float, ...]]

    def average(self, block_size: int) -> float:
        index = self.block_sizes.index(block_size)
        return mean(values[index] for values in self.per_matrix.values())

    def averages(self) -> Tuple[float, ...]:
        return tuple(self.average(bs) for bs in self.block_sizes)

    def best_block_size(self) -> int:
        averages = self.averages()
        return self.block_sizes[int(np.argmin(averages))]


def sweep_block_sizes(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
    block_sizes: Sequence[int] = FIGURE4_BLOCK_SIZES,
    machine: Machine | None = None,
) -> BlockSizeSweep:
    """Figure 4: detection overhead as a function of the block size."""
    machine = machine or Machine()
    per_matrix: Dict[str, Tuple[float, ...]] = {}
    for spec, matrix in suite:
        per_matrix[spec.name] = tuple(
            detection_overhead(matrix, "block", bs, machine) for bs in block_sizes
        )
    return BlockSizeSweep(block_sizes=tuple(block_sizes), per_matrix=per_matrix)


@dataclass(frozen=True)
class DetectionComparison:
    """Figure 5 data: per-matrix detection overheads, ours vs dense check."""

    names: Tuple[str, ...]
    block: Tuple[float, ...]
    dense: Tuple[float, ...]

    @property
    def average_reduction(self) -> float:
        return mean(
            1.0 - ours / theirs for ours, theirs in zip(self.block, self.dense)
        )


def compare_detection_overheads(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
    block_size: int = 32,
    machine: Machine | None = None,
) -> DetectionComparison:
    """Figure 5: detection overhead, proposed scheme vs dense check."""
    machine = machine or Machine()
    names, block, dense = [], [], []
    for spec, matrix in suite:
        names.append(spec.name)
        block.append(detection_overhead(matrix, "block", block_size, machine))
        dense.append(detection_overhead(matrix, "dense", machine=machine))
    return DetectionComparison(tuple(names), tuple(block), tuple(dense))


@dataclass(frozen=True)
class CorrectionComparison:
    """Figure 6 data: detection+correction overheads per matrix and scheme."""

    names: Tuple[str, ...]
    timings: Dict[str, Tuple[CorrectionTiming, ...]]

    def _key(self, scheme: str) -> str:
        """Resolve a (possibly aliased) scheme name to a timings key."""
        try:
            resolved = canonical_scheme_name(scheme)
        except ConfigurationError:
            resolved = scheme  # comparisons may hold unregistered labels
        if resolved not in self.timings:
            raise ConfigurationError(
                f"unknown correction scheme {scheme!r}; "
                f"expected one of {tuple(sorted(self.timings))}"
            )
        return resolved

    # reprolint: disable=ABFT006 -- _key raises ConfigurationError on unknown schemes
    def overheads(self, scheme: str) -> Tuple[float, ...]:
        return tuple(t.overhead for t in self.timings[self._key(scheme)])

    def average_reduction_vs(self, baseline: str) -> float:
        ours_timings = self.timings[self._key(DEFAULT_SCHEME)]
        return mean(
            1.0 - ours.overhead / theirs.overhead
            for ours, theirs in zip(ours_timings, self.timings[self._key(baseline)])
        )


def compare_correction_overheads(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
    trials: int = 30,
    seed: int = 0,
    machine: Machine | None = None,
    schemes: Sequence[str] = DEFAULT_CORRECTION_SCHEMES,
) -> CorrectionComparison:
    """Figure 6: detection+correction overhead per scheme (default: the
    paper's abft/bisection/complete triple)."""
    machine = machine or Machine()
    names = tuple(spec.name for spec, _ in suite)
    timings: Dict[str, list] = {
        canonical_scheme_name(scheme): [] for scheme in schemes
    }
    for index, (spec, matrix) in enumerate(suite):
        for scheme in timings:
            timings[scheme].append(
                run_correction_campaign(
                    matrix, scheme, trials=trials, seed=seed + index, machine=machine
                )
            )
    return CorrectionComparison(
        names=names, timings={k: tuple(v) for k, v in timings.items()}
    )


@dataclass(frozen=True)
class CoverageComparison:
    """Figure 7 data: F1 per (matrix, sigma), ours vs dense check."""

    names: Tuple[str, ...]
    sigmas: Tuple[float, ...]
    block: Dict[float, Tuple[CoverageResult, ...]]
    dense: Dict[float, Tuple[CoverageResult, ...]]

    def average_f1(self, detector: str, sigma: float) -> float:
        by_scheme = {"abft": self.block, "dense_check": self.dense}
        resolved = canonical_scheme_name(detector)
        if resolved not in by_scheme:
            raise ConfigurationError(
                f"no coverage data for scheme {detector!r}; "
                f"expected one of {tuple(sorted(by_scheme))}"
            )
        return mean(result.f1 for result in by_scheme[resolved][sigma])


def compare_coverage(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
    sigmas: Sequence[float] = FIGURE7_SIGMAS,
    trials: int = 200,
    seed: int = 0,
) -> CoverageComparison:
    """Figure 7: F1 coverage, proposed bound vs dense check with norm bound."""
    names = tuple(spec.name for spec, _ in suite)
    block: Dict[float, list] = {sigma: [] for sigma in sigmas}
    dense: Dict[float, list] = {sigma: [] for sigma in sigmas}
    for index, (spec, matrix) in enumerate(suite):
        for sigma in sigmas:
            block[sigma].append(
                run_coverage_campaign(
                    matrix, "block", trials=trials, sigma=sigma, seed=seed + index
                )
            )
            dense[sigma].append(
                run_coverage_campaign(
                    matrix, "dense", trials=trials, sigma=sigma, seed=seed + index
                )
            )
    return CoverageComparison(
        names=names,
        sigmas=tuple(sigmas),
        block={k: tuple(v) for k, v in block.items()},
        dense={k: tuple(v) for k, v in dense.items()},
    )


@dataclass(frozen=True)
class PcgCell:
    """Aggregate of one (scheme, error-rate) cell of Figures 8-9."""

    scheme: str
    error_rate: float
    runs: int
    success_rate: float
    mean_overhead: float | None  # None when no run was correct
    mean_iterations: float


def sweep_pcg(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
    schemes: Sequence[str] = DEFAULT_PCG_SCHEMES,
    error_rates: Sequence[float] = PCG_ERROR_RATES,
    runs: int = 10,
    seed: int = 0,
    machine: Machine | None = None,
    options: FtPcgOptions | None = None,
) -> Dict[Tuple[str, float], PcgCell]:
    """Figures 8-9: PCG runtime overhead and success rate per error rate.

    Overhead of a cell is measured against the *fault-free unprotected*
    runtime of the same system (the paper's baseline), averaged over the
    runs that produced a correct result — exactly the paper's procedure.
    """
    machine = machine or Machine()
    options = options or FtPcgOptions()
    cells: Dict[Tuple[str, float], PcgCell] = {}

    baselines = {}
    rhs = {}
    for spec, matrix in suite:
        rng = np.random.default_rng(hash(spec.name) % 2**32)
        x_true = rng.standard_normal(matrix.n_rows)
        b = matrix.matvec(x_true)
        rhs[spec.name] = b
        clean = run_pcg(
            matrix, b, scheme="unprotected", error_rate=0.0,
            seed=seed, machine=machine, options=options,
        )
        baselines[spec.name] = clean.seconds

    for scheme in schemes:
        for rate in error_rates:
            outcomes = []
            overheads = []
            iterations = []
            for spec, matrix in suite:
                for run_index in range(runs):
                    result = run_pcg(
                        matrix,
                        rhs[spec.name],
                        scheme=scheme,
                        error_rate=rate,
                        seed=seed + 1000 * run_index + 7,
                        machine=machine,
                        options=options,
                    )
                    outcomes.append(result.correct)
                    iterations.append(result.iterations)
                    if result.correct:
                        overheads.append(
                            runtime_overhead(result.seconds, baselines[spec.name])
                        )
            cells[(scheme, rate)] = PcgCell(
                scheme=scheme,
                error_rate=rate,
                runs=len(outcomes),
                success_rate=success_rate(outcomes),
                mean_overhead=mean(overheads) if overheads else None,
                mean_iterations=mean(iterations),
            )
    return cells
