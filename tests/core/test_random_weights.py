"""Tests for the random-weight extension (anti-cancellation)."""

import numpy as np
import pytest

from repro.core import AbftConfig, BlockAbftDetector, make_weights
from repro.core.blocking import BlockPartition
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def matrix():
    return random_spd(200, 2000, seed=211)


def test_random_weights_deterministic():
    p = BlockPartition(64, 8)
    np.testing.assert_array_equal(make_weights("random", p), make_weights("random", p))
    w = make_weights("random", p)
    assert (w >= 0.5).all() and (w <= 1.5).all()


def test_random_weights_invariant_holds_clean(matrix):
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=32, weights="random"))
    rng = np.random.default_rng(212)
    for _ in range(15):
        b = rng.standard_normal(200) * 10.0 ** rng.integers(-2, 3)
        assert detector.detect(b, matrix.matvec(b)).clean


def test_random_weights_catch_cancelling_errors(matrix):
    """Exactly-cancelling corruptions defeat ones-weights but not random
    weights — the blind spot this extension closes."""
    ones = BlockAbftDetector(matrix, AbftConfig(block_size=32, weights="ones"))
    randomized = BlockAbftDetector(
        matrix, AbftConfig(block_size=32, weights="random")
    )
    rng = np.random.default_rng(213)
    b = rng.standard_normal(200)
    r = matrix.matvec(b)
    r[64] += 1.0
    r[65] -= 1.0  # sums to zero inside block 2
    assert ones.detect(b, r).clean  # missed
    assert 2 in randomized.detect(b, r).flagged  # caught


def test_random_weights_detect_single_errors(matrix):
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=32, weights="random"))
    rng = np.random.default_rng(214)
    b = rng.standard_normal(200)
    r = matrix.matvec(b)
    r[100] *= 1.001
    assert 100 // 32 in detector.detect(b, r).flagged


def test_full_scheme_with_random_weights(matrix):
    from repro.core import FaultTolerantSpMV

    ft = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=32, weights="random")
    )
    b = np.random.default_rng(215).standard_normal(200)
    state = {"armed": True}

    def tamper(stage, data, work):
        if stage == "result" and state["armed"]:
            data[64] += 1.0
            data[65] -= 1.0
            state["armed"] = False

    result = ft.multiply(b, tamper=tamper)
    assert 2 in result.corrected_blocks
    np.testing.assert_array_equal(result.value, matrix.matvec(b))
