"""The ABFT010_bad mutation, suppressed at the mutation site."""


class ChecksumMatrix:
    def __init__(self, data):
        self.data = list(data)
        self.checksums = [0.0]

    def scale(self, factor):
        self.data[0] = self.data[0] * factor  # reprolint: disable=ABFT010 -- checksums rebuilt by the sweep driver after batching

    def refresh(self):
        self.checksums = [float(len(self.data))]
