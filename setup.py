"""Setup shim so editable installs work offline with setuptools 65 (no wheel).

``pip install -e . --no-build-isolation`` on this toolchain requires the
``wheel`` package for PEP 660 builds; falling back to the legacy setup.py
path avoids that dependency.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
