"""Unit tests for the Table I synthetic suite."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sparse import QUICK_SUITE, SUITE_SPECS, iter_suite, spec_for, suite_matrix


def test_suite_has_25_matrices_in_nnz_order():
    assert len(SUITE_SPECS) == 25
    nnzs = [spec.nnz for spec in SUITE_SPECS]
    assert nnzs == sorted(nnzs)


def test_table1_metadata_matches_paper():
    nos3 = spec_for("nos3")
    assert (nos3.n, nos3.nnz) == (960, 15844)
    crank = spec_for("crankseg_1")
    assert (crank.n, crank.nnz) == (52804, 10614210)
    # Table I prints the zero portion; check one value (nos3: 98.28%).
    assert nos3.zero_fraction == pytest.approx(0.9828, abs=5e-4)


def test_reduced_scale_only_shrinks_largest():
    shrunk = [spec.name for spec in SUITE_SPECS if spec.reduced_n != spec.n]
    assert set(shrunk) <= {"bodyy6", "msc23052", "msc10848", "nd3k", "ship_001", "hood", "crankseg_1"}
    for spec in SUITE_SPECS:
        assert spec.reduced_n <= spec.n


def test_spec_for_unknown_name():
    with pytest.raises(ConfigurationError):
        spec_for("not-a-matrix")


def test_suite_matrix_matches_spec_dimensions():
    spec = spec_for("nos3")
    a = suite_matrix("nos3")
    assert a.shape == (spec.n, spec.n)
    assert abs(a.nnz - spec.nnz) / spec.nnz < 0.3
    assert a.is_symmetric()


def test_suite_matrix_is_deterministic():
    assert suite_matrix("bcsstk13") == suite_matrix("bcsstk13")


def test_suite_matrix_diagonally_dominant():
    a = suite_matrix("nos3")
    dense_diag = a.diagonal()
    abs_row_sums = a.with_data(np.abs(a.data)).matvec(np.ones(a.n_cols))
    assert (dense_diag > 0).all()
    assert (2 * dense_diag >= abs_row_sums - 1e-12).all()


def test_iter_suite_subset_preserves_order():
    names = [spec.name for spec, _ in iter_suite(names=["bcsstk13", "nos3"])]
    assert names == ["nos3", "bcsstk13"]


def test_iter_suite_rejects_unknown_subset():
    with pytest.raises(ConfigurationError):
        list(iter_suite(names=["bogus"]))


def test_quick_suite_is_subset():
    assert set(QUICK_SUITE) <= {spec.name for spec in SUITE_SPECS}


def test_nnz_at_preserves_row_degree():
    spec = spec_for("crankseg_1")
    reduced_nnz = spec.nnz_at(spec.reduced_n)
    assert reduced_nnz / spec.reduced_n == pytest.approx(spec.row_degree, rel=0.01)
