"""Incremental-cache behavior: cold, warm, and dependency invalidation."""

import shutil
from pathlib import Path

from repro.lint import analyze_project
from repro.lint.project.cache import SummaryCache, reverse_dependents

FIXTURES = Path(__file__).parent / "fixtures" / "project"


def copy_fixture(tmp_path: Path, name: str) -> Path:
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def run(root: Path, cache: Path, base: Path):
    return analyze_project(
        [root], select=("ABFT010",), cache_path=cache, base=base
    )


def test_cold_then_warm_run(tmp_path):
    root = copy_fixture(tmp_path, "abft010_bad")
    cache = tmp_path / ".reprolint-cache.json"

    cold = run(root, cache, tmp_path)
    assert (cold.cache_hits, cold.reanalyzed) == (0, 2)
    assert len(cold.findings) == 1

    warm = run(root, cache, tmp_path)
    assert (warm.cache_hits, warm.reanalyzed) == (2, 0)
    # Warm findings are bit-identical: same location, evidence, snippet.
    assert warm.findings == cold.findings
    assert warm.findings[0].related == cold.findings[0].related
    assert warm.findings[0].snippet == cold.findings[0].snippet


def test_changed_file_invalidates_reverse_import_dependents(tmp_path):
    root = copy_fixture(tmp_path, "abft010_bad")
    cache = tmp_path / ".reprolint-cache.json"
    run(root, cache, tmp_path)

    # caller.py imports matrix.py: editing matrix re-analyzes both.
    matrix = root / "matrix.py"
    matrix.write_text(
        matrix.read_text(encoding="utf-8") + "\n# trailing comment\n",
        encoding="utf-8",
    )
    result = run(root, cache, tmp_path)
    assert (result.cache_hits, result.reanalyzed) == (0, 2)


def test_leaf_change_reanalyzes_only_that_file(tmp_path):
    root = copy_fixture(tmp_path, "abft010_bad")
    cache = tmp_path / ".reprolint-cache.json"
    run(root, cache, tmp_path)

    # matrix.py imports nothing from the project: editing caller.py
    # leaves matrix.py's summary reusable.
    caller = root / "caller.py"
    caller.write_text(
        caller.read_text(encoding="utf-8") + "\n# trailing comment\n",
        encoding="utf-8",
    )
    result = run(root, cache, tmp_path)
    assert (result.cache_hits, result.reanalyzed) == (1, 1)
    assert len(result.findings) == 1


def test_corrupt_or_stale_cache_degrades_to_cold(tmp_path):
    root = copy_fixture(tmp_path, "abft010_bad")
    cache = tmp_path / ".reprolint-cache.json"
    cache.write_text("{definitely not json", encoding="utf-8")
    result = run(root, cache, tmp_path)
    assert (result.cache_hits, result.reanalyzed) == (0, 2)
    cache.write_text('{"version": -1, "files": {}}', encoding="utf-8")
    result = run(root, cache, tmp_path)
    assert result.cache_hits == 0


def test_vanished_files_are_pruned_from_the_cache(tmp_path):
    root = copy_fixture(tmp_path, "abft010_bad")
    cache = tmp_path / ".reprolint-cache.json"
    run(root, cache, tmp_path)
    (root / "caller.py").unlink()
    result = run(root, cache, tmp_path)
    assert result.files_checked == 1
    # Without the caller the mutation no longer escapes: no finding.
    assert result.findings == []
    loaded = SummaryCache.load(cache)
    assert loaded.lookup(f"{root.name}/matrix.py", "") is None  # wrong hash misses
    assert loaded.lookup("abft010_bad/caller.py", "") is None  # pruned entirely


def test_reverse_dependents_walks_transitively():
    deps = {"a": {"b"}, "b": {"c"}, "c": set(), "d": set()}
    assert reverse_dependents(deps, {"c"}) == {"a", "b"}
    assert reverse_dependents(deps, {"d"}) == set()
