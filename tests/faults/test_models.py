"""Unit tests for the alternative fault models."""

import math

import numpy as np
import pytest

from repro.errors import InjectionError
from repro.faults import FaultInjector
from repro.faults.bitflip import float_to_bits
from repro.faults.models import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    BurstModel,
    ExponentModel,
    MantissaModel,
    ScaledNoiseModel,
    SingleBitModel,
    StuckSignModel,
    make_fault_model,
    model_names,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_ieee_layout_constants():
    assert MANTISSA_BITS + EXPONENT_BITS + 1 == 64


def test_burst_model_matches_paper_default(rng):
    model = BurstModel()
    corrupted = model.corrupt(1.5, rng)
    assert corrupted != 1.5


def test_single_bit_model_flips_exactly_one_bit(rng):
    model = SingleBitModel()
    for _ in range(200):
        corrupted = model.corrupt(2.75, rng)
        diff = float_to_bits(2.75) ^ float_to_bits(corrupted)
        assert bin(diff).count("1") == 1


def test_exponent_model_changes_magnitude_drastically(rng):
    model = ExponentModel()
    big_changes = 0
    for _ in range(100):
        corrupted = model.corrupt(3.0, rng)
        if not math.isfinite(corrupted) or abs(corrupted) >= 6.0 or abs(corrupted) <= 1.5:
            big_changes += 1
    assert big_changes == 100  # every exponent flip at least doubles/halves


def test_mantissa_model_keeps_magnitude_close(rng):
    model = MantissaModel(width=2)
    for _ in range(200):
        corrupted = model.corrupt(3.0, rng)
        assert math.isfinite(corrupted)
        assert 1.5 <= abs(corrupted) < 6.0  # sign and exponent untouched


def test_mantissa_model_validation():
    with pytest.raises(InjectionError):
        MantissaModel(width=0)
    with pytest.raises(InjectionError):
        MantissaModel(width=53)


def test_scaled_noise_model_relative_and_finite(rng):
    model = ScaledNoiseModel(scale=1e-3)
    values = [model.corrupt(100.0, rng) for _ in range(300)]
    assert all(math.isfinite(v) for v in values)
    relative = [abs(v - 100.0) / 100.0 for v in values]
    assert max(relative) < 0.01
    assert model.corrupt(0.0, rng) != 0.0 or True  # zero gets additive noise


def test_scaled_noise_validation():
    with pytest.raises(InjectionError):
        ScaledNoiseModel(scale=0.0)


def test_stuck_sign_model(rng):
    model = StuckSignModel()
    assert model.corrupt(5.0, rng) == -5.0
    assert model.corrupt(-5.0, rng) == -5.0
    assert str(model.corrupt(0.0, rng)) == "-0.0"


def test_factory_and_names():
    assert set(model_names()) == {
        "burst", "single-bit", "exponent", "mantissa", "scaled-noise", "stuck-sign"
    }
    for name in model_names():
        model = make_fault_model(name)
        assert model.name == name
    with pytest.raises(InjectionError):
        make_fault_model("bogus")


def test_injector_uses_custom_model():
    injector = FaultInjector(
        rng=np.random.default_rng(1), model=make_fault_model("single-bit")
    )
    vec = np.array([4.0, 8.0])
    record = injector.corrupt_element(vec, 0)
    assert record.burst is None
    diff = float_to_bits(4.0) ^ float_to_bits(float(vec[0]))
    assert bin(diff).count("1") == 1


def test_injector_model_with_sigma_resampling():
    injector = FaultInjector(
        rng=np.random.default_rng(2), model=make_fault_model("mantissa", width=8)
    )
    vec = np.array([7.0])
    record = injector.corrupt_element(vec, 0, sigma=1e-10)
    assert abs(record.corrupted - 7.0) > 7.0 * 1e-10


def test_injector_model_scalar_corruption():
    injector = FaultInjector(
        rng=np.random.default_rng(3), model=make_fault_model("exponent")
    )
    corrupted = injector.corrupt_scalar(2.0)
    assert corrupted != 2.0
    assert injector.log[-1].burst is None


def test_stuck_sign_cannot_satisfy_impossible_resampling():
    # stuck-sign on a negative value is a no-op; resampling must give up.
    injector = FaultInjector(
        rng=np.random.default_rng(4), model=make_fault_model("stuck-sign")
    )
    vec = np.array([-1.0])
    with pytest.raises(InjectionError):
        injector.corrupt_element(vec, 0, sigma=1e-12)


def test_detection_still_works_under_each_model():
    """Integration: the block detector catches every model's errors that
    pass the significance filter."""
    from repro.core import BlockAbftDetector
    from repro.sparse import random_spd

    matrix = random_spd(128, 1200, seed=5)
    detector = BlockAbftDetector(matrix)
    rng = np.random.default_rng(5)
    b = rng.standard_normal(128)
    for name in ("burst", "single-bit", "exponent", "mantissa"):
        injector = FaultInjector(
            rng=np.random.default_rng(6), model=make_fault_model(name)
        )
        hits = 0
        trials = 40
        for _ in range(trials):
            r = matrix.matvec(b)
            record = injector.corrupt_random_element(r, sigma=1e-8)
            report = detector.detect(b, r)
            if record.index // 32 in report.flagged:
                hits += 1
        assert hits >= trials * 0.9, name
