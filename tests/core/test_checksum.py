"""Unit tests for the sparse checksum matrix (paper Sections III-B, III-D)."""

import numpy as np
import pytest

from repro.core import BlockPartition, ChecksumMatrix, make_weights
from repro.errors import ConfigurationError
from repro.sparse import CooMatrix


@pytest.fixture
def paper_matrix():
    """The 6x6 example of Section III-B."""
    dense = np.array(
        [
            [5.0, 0.0, 0.0, 4.0, 0.0, 0.0],
            [0.0, 3.0, 0.0, 0.0, 0.0, 2.0],
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [4.0, 0.0, 0.0, 6.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 8.0, 0.0],
            [0.0, 2.0, 0.0, 0.0, 0.0, 7.0],
        ]
    )
    return CooMatrix.from_dense(dense).to_csr()


def test_weights_ones():
    p = BlockPartition(6, 2)
    np.testing.assert_array_equal(make_weights("ones", p), np.ones(6))


def test_weights_linear_restart_per_block():
    p = BlockPartition(7, 3)
    np.testing.assert_array_equal(
        make_weights("linear", p), [1, 2, 3, 1, 2, 3, 1]
    )


def test_weights_unknown_kind():
    with pytest.raises(ConfigurationError):
        make_weights("bogus", BlockPartition(4, 2))


def test_checksum_matrix_matches_paper_example(paper_matrix):
    """With weights (1,1) and b_s=2, each C row holds the block column sums."""
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    assert cs.matrix.shape == (3, 6)
    dense_c = cs.matrix.to_dense()
    np.testing.assert_array_equal(dense_c[0], [5, 3, 0, 4, 0, 2])
    np.testing.assert_array_equal(dense_c[1], [4, 0, 1, 6, 0, 0])
    np.testing.assert_array_equal(dense_c[2], [0, 2, 0, 0, 8, 7])


def test_checksum_matrix_inherits_sparsity(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    # Stored entries = non-empty (block, column) pairs: 4 + 3 + 3.
    assert cs.nnz == 10
    np.testing.assert_array_equal(cs.nonempty_columns, [4, 3, 3])


def test_block_size_one_reproduces_input(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=1)
    np.testing.assert_array_equal(cs.matrix.to_dense(), paper_matrix.to_dense())
    assert cs.sparsity_gain == pytest.approx(1.0)


def test_single_block_gives_dense_column_sums(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=6)
    np.testing.assert_array_equal(
        cs.matrix.to_dense()[0], paper_matrix.to_dense().sum(axis=0)
    )


def test_checksum_invariant_holds_error_free(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    b = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    r = paper_matrix.matvec(b)
    t1 = cs.operand_checksums(b)
    t2 = cs.result_checksums(r)
    np.testing.assert_allclose(t1, t2, rtol=1e-13)


def test_checksum_invariant_with_linear_weights(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=2, weight_kind="linear")
    b = np.array([1.0, -2.0, 0.5, 4.0, -5.0, 6.0])
    r = paper_matrix.matvec(b)
    np.testing.assert_allclose(
        cs.operand_checksums(b), cs.result_checksums(r), rtol=1e-12
    )


def test_corruption_shows_in_exactly_one_block(paper_matrix):
    """The paper's worked example: corrupting r[3] flags only block 2."""
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    b = np.arange(1.0, 7.0)
    r = paper_matrix.matvec(b)
    r[3] += 2.0  # offset of 2 in the fourth element, as in the paper
    syndrome = cs.operand_checksums(b) - cs.result_checksums(r)
    assert syndrome[0] == 0.0
    assert syndrome[1] == pytest.approx(-2.0)
    assert syndrome[2] == 0.0


def test_result_checksums_for_blocks_matches_full(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    r = np.linspace(-1, 1, 6)
    full = cs.result_checksums(r)
    subset = cs.result_checksums_for_blocks(r, np.array([2, 0]))
    np.testing.assert_allclose(subset, full[[2, 0]])


def test_result_checksums_for_blocks_rejects_bad_ids(paper_matrix):
    """Out-of-range block ids fail loudly instead of wrapping (negatives
    would otherwise fancy-index from the end and mis-verify a wrong block)."""
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    r = np.zeros(6)
    with pytest.raises(ConfigurationError, match="out of range"):
        cs.result_checksums_for_blocks(r, np.array([-1]))
    with pytest.raises(ConfigurationError, match="out of range"):
        cs.result_checksums_for_blocks(r, np.array([0, 3]))
    with pytest.raises(ConfigurationError, match="must be integers"):
        cs.result_checksums_for_blocks(r, np.array([0.5]))


def test_ragged_last_block():
    dense = np.diag([1.0, 2.0, 3.0, 4.0, 5.0])
    csr = CooMatrix.from_dense(dense).to_csr()
    cs = ChecksumMatrix.build(csr, block_size=2)
    assert cs.n_blocks == 3
    np.testing.assert_array_equal(cs.matrix.to_dense()[2], [0, 0, 0, 0, 5.0])
    b = np.ones(5)
    np.testing.assert_allclose(
        cs.operand_checksums(b), cs.result_checksums(csr.matvec(b))
    )


def test_row_norm_sums_and_checksum_norms(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    dense = paper_matrix.to_dense()
    expected_first = np.linalg.norm(dense[0]) + np.linalg.norm(dense[1])
    assert cs.row_norm_sums[0] == pytest.approx(expected_first)
    assert cs.checksum_norms[0] == pytest.approx(
        np.linalg.norm([5, 3, 4, 2])
    )


def test_setup_cost_scales_with_nnz(paper_matrix):
    cs = ChecksumMatrix.build(paper_matrix, block_size=2)
    assert cs.setup_cost.work == pytest.approx(3.0 * paper_matrix.nnz)


def test_sparsity_gain_decreases_with_block_size(paper_matrix):
    gains = [
        ChecksumMatrix.build(paper_matrix, block_size=bs).sparsity_gain
        for bs in (1, 2, 3, 6)
    ]
    assert gains[0] == 1.0
    assert all(a >= b for a, b in zip(gains, gains[1:]))
