"""Project-mode orchestration: discover, cache, link, and run rules.

:func:`analyze_project` is the project-mode counterpart of
:func:`repro.lint.engine.lint_paths`.  It hashes every file, reuses
cached summaries for unchanged files (minus reverse-import dependents of
changed ones), extracts fresh summaries for the rest, links everything
into a :class:`~repro.lint.project.graph.ProjectContext`, and runs every
registered :class:`~repro.lint.rules.base.ProjectRule`.

Ingestion is total: a file that fails to decode or parse yields an
``ABFT000`` diagnostic finding instead of aborting the run — one broken
file must not blind the analysis to the other two hundred.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import iter_python_files
from repro.lint.findings import Finding
from repro.lint.project.cache import (
    CACHE_FILENAME,
    SummaryCache,
    file_digest,
    match_prefixes,
    plan_reuse,
)
from repro.lint.project.graph import ModuleRecord, ProjectContext
from repro.lint.project.summary import extract_summary
from repro.lint.registry import resolve_rules
from repro.lint.rules.base import ProjectRule
from repro.lint.suppressions import Suppression, parse_suppressions

#: Rule id for ingestion diagnostics (undecodable or unparsable files).
DIAGNOSTIC_RULE = "ABFT000"


@dataclass
class ProjectResult:
    """Outcome of one project-mode run.

    Attributes:
        findings: surviving findings, sorted by (path, line, column, rule).
        suppressed: count of findings silenced by inline directives.
        reasonless_suppressions: directives lacking a ``-- reason`` string
            (from files that carried candidate findings).
        files_checked: number of Python files considered.
        cache_hits: files whose summary was reused from the cache.
        reanalyzed: files parsed and re-extracted this run (changed files
            plus reverse-import dependents plus diagnostics).
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    reasonless_suppressions: List[Tuple[str, Suppression]] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    reanalyzed: int = 0


def _package_prefix(root: Path) -> Tuple[str, ...]:
    """Dotted-package prefix of ``root`` (walks up through ``__init__.py``)."""
    prefix: List[str] = []
    current = root.resolve()
    while (current / "__init__.py").is_file():
        prefix.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return tuple(reversed(prefix))


def _module_name(file: Path, root: Path, prefix: Tuple[str, ...]) -> str:
    """Importable module name of ``file`` relative to ``root``."""
    rel = file.resolve().relative_to(root.resolve())
    parts = list(prefix) + list(rel.parts)
    if parts and parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts) if parts else file.stem


def _display(path: Path, base: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def _discover(
    paths: Sequence[Path | str], base: Path
) -> List[Tuple[Path, str, str]]:
    """Expand ``paths`` to ``(file, display path, module name)`` triples."""
    out: List[Tuple[Path, str, str]] = []
    seen: Set[str] = set()
    for raw in paths:
        given = Path(raw)
        root = given if given.is_dir() else given.parent
        prefix = _package_prefix(root)
        for file in iter_python_files([given]):
            display = _display(file, base)
            if display in seen:
                continue
            seen.add(display)
            out.append((file, display, _module_name(file, root, prefix)))
    return out


def _ingest(
    path: Path, display: str, module: str
) -> Tuple[Optional[Dict[str, Any]], Optional[Finding]]:
    """Parse + summarize one file; diagnostic finding on ingest failure."""
    try:
        source = path.read_bytes().decode("utf-8")
    except OSError as exc:
        return None, Finding(
            path=display, line=1, column=1, rule=DIAGNOSTIC_RULE,
            message=f"file cannot be read: {exc}", snippet="",
        )
    except UnicodeDecodeError as exc:
        return None, Finding(
            path=display, line=1, column=1, rule=DIAGNOSTIC_RULE,
            message=f"file is not valid UTF-8 ({exc.reason} at byte {exc.start}); "
            "project analysis skipped this file", snippet="",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            path=display,
            line=exc.lineno or 1,
            column=(exc.offset or 0) + 1 if exc.offset is not None else 1,
            rule=DIAGNOSTIC_RULE,
            message=f"file does not parse: {exc.msg}; "
            "project analysis skipped this file",
            snippet=(exc.text or "").strip(),
        )
    return extract_summary(module, tree), None


def analyze_project(
    paths: Sequence[Path | str],
    select: Tuple[str, ...] | None = None,
    ignore: Tuple[str, ...] | None = None,
    cache_path: Optional[Path] = None,
    base: Optional[Path] = None,
) -> ProjectResult:
    """Run every registered project rule over the whole tree under ``paths``.

    Args:
        paths: directories (or files) forming the project.
        select/ignore: rule-id selection, as in per-file mode; non-project
            rules in the selection are simply inert here.
        cache_path: summary-cache file (:data:`CACHE_FILENAME`); ``None``
            disables caching (every file re-analyzed).
        base: directory findings' paths are reported relative to
            (defaults to the current working directory).

    Raises:
        ConfigurationError: unknown rule ids or missing paths.
    """
    rules = tuple(
        rule for rule in resolve_rules(select, ignore) if isinstance(rule, ProjectRule)
    )
    report_base = (base or Path.cwd()).resolve()
    entries = _discover(paths, report_base)
    result = ProjectResult(files_checked=len(entries))

    cache = SummaryCache.load(cache_path)
    hashes: Dict[str, Tuple[str, str]] = {}
    raw_bytes: Dict[str, bytes] = {}
    for file, display, module in entries:
        try:
            raw = file.read_bytes()
        except OSError:
            raw = b""
        raw_bytes[display] = raw
        hashes[display] = (file_digest(raw), module)

    # Pass 1: extract summaries for content-changed files right away.
    summaries: Dict[str, Optional[Dict[str, Any]]] = {}
    diagnostics: List[Finding] = []
    fresh: Set[str] = set()
    for file, display, module in entries:
        digest, _ = hashes[display]
        if cache.lookup(display, digest) is None:
            summary, diagnostic = _ingest(file, display, module)
            summaries[display] = summary
            fresh.add(display)
            if diagnostic is not None:
                diagnostics.append(diagnostic)
        else:
            cached = cache.lookup(display, digest)
            assert cached is not None
            summaries[display] = cached["summary"]

    # Pass 2: changed modules invalidate their reverse-import dependents.
    known_modules = {
        summary["module"] for summary in summaries.values() if summary is not None
    }
    deps: Dict[str, Set[str]] = {}
    for summary in summaries.values():
        if summary is not None:
            deps[summary["module"]] = match_prefixes(
                summary["module_deps"], known_modules
            )
    hits, stale = plan_reuse(hashes, cache, deps)
    for file, display, module in entries:
        if display in stale and display not in fresh:
            summary, diagnostic = _ingest(file, display, module)
            summaries[display] = summary
            fresh.add(display)
            if diagnostic is not None:
                diagnostics.append(diagnostic)
    result.cache_hits = len(hits)
    result.reanalyzed = len(fresh)

    # Link and run the project rules.
    records: Dict[str, ModuleRecord] = {}
    for file, display, module in entries:
        summary = summaries[display]
        if summary is not None:
            records[summary["module"]] = ModuleRecord(
                name=summary["module"],
                path=file,
                display_path=display,
                summary=summary,
                from_cache=display in hits,
            )
    project = ProjectContext(records)
    candidates: List[Finding] = list(diagnostics)
    for rule in rules:
        candidates.extend(rule.check_project(project))

    # Suppression filtering, tokenizing only files that carry findings.
    kept: List[Finding] = []
    suppression_cache: Dict[str, Any] = {}
    for finding in candidates:
        if finding.rule == DIAGNOSTIC_RULE:
            kept.append(finding)
            continue
        index = suppression_cache.get(finding.path)
        if index is None:
            source_path = next(
                (f for f, d, _m in entries if d == finding.path), None
            )
            try:
                source = (
                    source_path.read_text(encoding="utf-8") if source_path else ""
                )
            except (OSError, UnicodeDecodeError):
                source = ""
            index = parse_suppressions(source)
            suppression_cache[finding.path] = index
            result.reasonless_suppressions.extend(
                (finding.path, directive) for directive in index.reasonless()
            )
        if index.is_suppressed(finding.rule, finding.line):
            result.suppressed += 1
        else:
            kept.append(finding)
    result.findings = sorted(kept)

    # Persist the cache for the next (warm) run.
    if cache_path is not None:
        for file, display, module in entries:
            summary = summaries[display]
            if summary is not None and display in fresh:
                cache.store(display, hashes[display][0], module, summary)
            elif summary is None:
                # Diagnostic files must never produce stale cache hits.
                cache.store(display, "", module, {})
        cache.prune(hashes)
        cache.save(cache_path)
    return result


__all__ = [
    "CACHE_FILENAME",
    "DIAGNOSTIC_RULE",
    "ProjectResult",
    "analyze_project",
]
