"""Each ABFT rule flags its bad fixture (at the marked lines) and stays
silent on the clean one."""

from pathlib import Path

import pytest

from repro.lint import get_rule, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (bad fixture, clean fixture), relative to FIXTURES.
CORPUS = {
    "ABFT001": ("abft001_bad.py", "abft001_ok.py"),
    "ABFT002": ("kernels/abft002_bad.py", "kernels/abft002_ok.py"),
    "ABFT003": ("abft003_bad.py", "abft003_ok.py"),
    "ABFT004": ("abft004_bad.py", "abft004_ok.py"),
    "ABFT005": ("abft005_bad.py", "abft005_ok.py"),
    "ABFT006": ("abft006_bad.py", "abft006_ok.py"),
    "ABFT013": ("abft013_bad.py", "abft013_ok.py"),
    "ABFT014": ("core/abft014_bad.py", "core/abft014_ok.py"),
}


def run_rule(rule_id: str, relative: str):
    path = FIXTURES / relative
    source = path.read_text(encoding="utf-8")
    display = f"tests/lint/fixtures/{relative}"
    findings, suppressed, _ = lint_source(
        source, path, [get_rule(rule_id)], display_path=display
    )
    return source, display, findings, suppressed


def marked_lines(source: str, rule_id: str):
    return [
        i + 1
        for i, line in enumerate(source.splitlines())
        if f"MARK:{rule_id}" in line
    ]


@pytest.mark.parametrize("rule_id", sorted(CORPUS))
def test_bad_fixture_flags_marked_lines(rule_id):
    bad, _ = CORPUS[rule_id]
    source, display, findings, _ = run_rule(rule_id, bad)
    expected = marked_lines(source, rule_id)
    assert expected, f"fixture {bad} has no MARK:{rule_id} lines"
    assert sorted(f.line for f in findings) == expected
    for finding in findings:
        assert finding.rule == rule_id
        assert finding.path == display
        assert finding.column >= 1
        assert finding.snippet  # fingerprint input must not be empty
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(CORPUS))
def test_clean_fixture_is_silent(rule_id):
    _, ok = CORPUS[rule_id]
    _, _, findings, suppressed = run_rule(rule_id, ok)
    assert findings == []
    assert suppressed == 0


def run_abft007(relative: str, display: str):
    """ABFT007 is path-gated, so fixtures run under a simulated src path."""
    path = FIXTURES / relative
    source = path.read_text(encoding="utf-8")
    findings, suppressed, _ = lint_source(
        source, path, [get_rule("ABFT007")], display_path=display
    )
    return source, findings, suppressed


def test_abft007_bad_fixture_flags_marked_lines():
    source, findings, _ = run_abft007(
        "abft007_bad.py", "src/repro/analysis/abft007_bad.py"
    )
    expected = marked_lines(source, "ABFT007")
    assert expected, "fixture abft007_bad.py has no MARK:ABFT007 lines"
    assert sorted(f.line for f in findings) == expected
    for finding in findings:
        assert finding.rule == "ABFT007"
        assert finding.message and finding.snippet


def test_abft007_clean_fixture_is_silent():
    _, findings, suppressed = run_abft007(
        "abft007_ok.py", "src/repro/analysis/abft007_ok.py"
    )
    assert findings == []
    assert suppressed == 0


def test_abft007_exempts_registry_and_test_paths():
    for display in (
        "src/repro/schemes/builtins.py",
        "tests/schemes/test_registry.py",
    ):
        _, findings, _ = run_abft007("abft007_bad.py", display)
        assert findings == [], display


def test_abft004_exempts_the_dtype_policy_module():
    source = (FIXTURES / "abft004_bad.py").read_text(encoding="utf-8")
    findings, _, _ = lint_source(
        source,
        FIXTURES / "abft004_bad.py",
        [get_rule("ABFT004")],
        display_path="src/repro/core/dtypes.py",
    )
    assert findings == []


def test_abft014_only_applies_to_core_and_kernel_paths():
    source = (FIXTURES / "core/abft014_bad.py").read_text(encoding="utf-8")
    for display in (
        "src/repro/analysis/not_core.py",
        "src/repro/core/dtypes.py",
    ):
        findings, _, _ = lint_source(
            source,
            FIXTURES / "core/abft014_bad.py",
            [get_rule("ABFT014")],
            display_path=display,
        )
        assert findings == [], display


def test_abft002_only_applies_to_kernel_paths():
    source = (FIXTURES / "kernels/abft002_bad.py").read_text(encoding="utf-8")
    findings, _, _ = lint_source(
        source,
        FIXTURES / "kernels/abft002_bad.py",
        [get_rule("ABFT002")],
        display_path="src/repro/analysis/not_a_kernel.py",
    )
    assert findings == []


def test_syntax_error_becomes_e999_finding():
    findings, _, _ = lint_source(
        "def broken(:\n", Path("broken.py"), [get_rule("ABFT003")]
    )
    assert len(findings) == 1
    assert findings[0].rule == "E999"
    assert findings[0].line == 1
