"""Merge determinism of the cross-process telemetry pipeline.

The parent folds worker registry deltas in ascending worker order, so a
seeded workload must produce *identical merged totals* no matter how the
work is sharded: 1 worker (dormant serial path), 2 and 4 workers, and the
plain serial backend all agree bit for bit on protocol counters and on
the ``abft.syndrome_margin`` histogram (bucket counts AND float sums —
the per-block margins are computed from the same bytes in every
topology).  A forced worker crash + lazy respawn mid-campaign loses only
the in-flight dispatch, so a retried multiply restores exact equality.
"""

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.errors import WorkerCrashError
from repro.obs import InMemoryExporter, Telemetry
from repro.perf import ProtectedPlan
from repro.sparse import random_spd

N = 96
NNZ = 900
BLOCK = 16

#: Counters whose totals must be topology-independent (parent-side
#: protocol accounting driven by the merged detection results).
PROTOCOL_COUNTERS = ("abft.checks", "abft.detections", "abft.corrections")


def _campaign(n_shards, parallel, n_multiplies=3, crash_after=None):
    """Run a seeded multiply campaign; return the merged telemetry.

    ``crash_after=k`` kills one worker after the k-th multiply; the next
    multiply is expected to fail with :class:`WorkerCrashError` and is
    retried once on the lazily respawned pool, so every campaign completes
    exactly ``n_multiplies`` successful multiplies.
    """
    telemetry = Telemetry(exporter=InMemoryExporter())
    matrix = random_spd(N, NNZ, seed=7)
    operator = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK), telemetry=telemetry
    )
    plan = ProtectedPlan(
        operator,
        n_shards=n_shards,
        parallel=parallel,
        backend_options={"serial_cutoff": 0} if parallel == "processes" else None,
        # Cross-backend determinism is asserted on the CSR shard pipeline;
        # pin it against REPRO_FORMAT overrides (the processes backend
        # would coerce to CSR anyway, skewing the comparison).
        sparse_format="csr",
    )
    b = np.random.default_rng(123).standard_normal(N)
    with plan:
        successes = 0
        crashed = False
        while successes < n_multiplies:
            if crash_after is not None and not crashed and successes == crash_after:
                crashed = True
                pool = plan.backend._pool
                assert pool is not None
                victim = pool.workers[0].process
                victim.kill()
                victim.join(timeout=10.0)
                # The failed dispatch merges nothing; the pool respawns
                # lazily and the campaign continues to full length.
                with pytest.raises(WorkerCrashError):
                    plan.multiply(b.copy())
                continue
            result = plan.multiply(b.copy())
            assert result.clean
            successes += 1
    return telemetry


def _protocol_totals(telemetry):
    registry = telemetry.registry
    counters = {
        name: registry.get(name).value
        for name in PROTOCOL_COUNTERS
        if name in registry.names()
    }
    margins = registry.get("abft.syndrome_margin").snapshot()
    return counters, margins


def test_merged_totals_identical_across_1_2_4_workers():
    reference = _protocol_totals(_campaign(1, "processes"))
    for n_shards in (2, 4):
        totals = _protocol_totals(_campaign(n_shards, "processes"))
        assert totals == reference, f"n_shards={n_shards} diverged"


def test_merged_totals_match_serial_backend():
    serial = _protocol_totals(_campaign(4, "serial"))
    processes = _protocol_totals(_campaign(4, "processes"))
    assert processes == serial


def test_worker_kernel_counts_are_topology_scaled():
    # Worker-side shard timings scale with the shard count — sanity that
    # the 2- and 4-worker runs really crossed the process border.
    for n_shards in (2, 4):
        telemetry = _campaign(n_shards, "processes")
        detect = telemetry.registry.get("kernel.detect_shard.seconds")
        assert detect.count == 3 * n_shards


def test_crash_and_respawn_preserves_merged_totals():
    clean = _protocol_totals(_campaign(4, "processes"))
    crashed = _protocol_totals(_campaign(4, "processes", crash_after=2))
    assert crashed == clean
    # Worker-side merged counts agree too: the crashed dispatch merged
    # nothing, the respawned pool delivered the remaining deltas.
    telemetry = _campaign(4, "processes", crash_after=1)
    detect = telemetry.registry.get("kernel.detect_shard.seconds")
    assert detect.count == 3 * 4
