"""Dtype policies: working precision, accumulation precision, eps model.

The paper derives its detection bound for IEEE double precision
(``eps_M = 2^-53``, Section III-C), and historically that assumption was
hard-coded as ``np.float64`` coercions across the whole stack.  A
:class:`DtypePolicy` makes the precision contract explicit and
selectable:

* the **working dtype** is the precision of stored matrix values,
  operands and results (the memory-bandwidth-bound side of SpMV);
* the **accumulation dtype** is the precision of checksum rows,
  ``t1``/``t2`` and syndromes — every builtin policy accumulates in
  float64, mirroring the mixed-precision ABFT literature where the
  checksum side runs wider than the data side;
* the **epsilon model** maps a *storage* dtype to the unit roundoff the
  analytical bounds should assume for data held in it.  The model keys
  on the dtype of the data actually being protected, not on the policy
  name, so forcing ``REPRO_DTYPE=float32`` process-wide cannot loosen
  the bound of a float64 matrix that happens to be in the same process.

Resolution mirrors every other selector in the library (first match
wins): an explicit ``dtype=`` argument, the :data:`DTYPE_ENV_VAR`
environment variable (``REPRO_DTYPE``, overriding *configured*
selections only), ``AbftConfig.dtype``, then :data:`DEFAULT_DTYPE`
(``"float64"`` — existing callers see bit-identical results until they
opt in).

``bfloat16`` has no native NumPy dtype, so the builtin policy emulates
it *via float32 storage*: values are rounded to the bfloat16 grid
(:meth:`DtypePolicy.quantize`) and the epsilon model declares
float32-stored data to carry only bfloat16 precision (``2^-8``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs import Telemetry

#: Environment variable that overrides the configured dtype policy.
DTYPE_ENV_VAR = "REPRO_DTYPE"

#: Policy used when neither a name nor the environment selects one.
DEFAULT_DTYPE = "float64"

#: Dtype policies that ship with the library.
BUILTIN_DTYPES = ("float64", "float32", "bfloat16")

#: Accepted spellings for the builtin policies.
DTYPE_ALIASES = {
    "f64": "float64",
    "double": "float64",
    "fp64": "float64",
    "f32": "float32",
    "single": "float32",
    "fp32": "float32",
    "bf16": "bfloat16",
}

#: Unit roundoff of IEEE binary64 (the paper's ``eps_M``).
EPS_FLOAT64 = 2.0 ** -53

#: Unit roundoff of IEEE binary32.
EPS_FLOAT32 = 2.0 ** -24

#: Unit roundoff of bfloat16 (8-bit significand).
EPS_BFLOAT16 = 2.0 ** -8

#: Storage-dtype -> unit-roundoff model shared by the float64 and
#: float32 policies: eps tracks the precision values are actually held
#: in, so a policy can narrow storage but never loosen a wider matrix's
#: bound.
_NATIVE_EPSILONS: Mapping[str, float] = MappingProxyType(
    {"float64": EPS_FLOAT64, "float32": EPS_FLOAT32}
)

#: The bfloat16 emulation model: float32-stored data is declared to
#: carry only bfloat16 precision (values live on the bf16 grid).
_BFLOAT16_EPSILONS: Mapping[str, float] = MappingProxyType(
    {"float64": EPS_FLOAT64, "float32": EPS_BFLOAT16}
)


def _round_to_bfloat16(values: np.ndarray) -> np.ndarray:
    """Round float32 values to the nearest bfloat16 (ties to even).

    bfloat16 is float32 with the low 16 mantissa bits dropped, so the
    rounding is pure bit arithmetic on the float32 view; the result is
    returned as float32 (every bfloat16 value is exactly representable).
    """
    working = np.ascontiguousarray(values, dtype=np.float32)
    bits = working.view(np.uint32)
    rounded = (bits + np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1)))
    return (rounded & np.uint32(0xFFFF0000)).view(np.float32)


@dataclass(frozen=True)
class DtypePolicy:
    """One precision contract: storage, accumulation and eps model.

    Attributes:
        name: registry name (``"float64"``, ``"float32"``, ``"bfloat16"``).
        working: NumPy dtype name of stored values and operands.
        accumulation: NumPy dtype name of checksum rows and syndromes.
        epsilons: storage-dtype-name -> unit-roundoff map used by the
            analytical bounds (:meth:`epsilon_for`).
        quantized: True when working values live on a coarser grid than
            the working dtype represents (bfloat16-via-float32); such
            policies round through :meth:`quantize`.
    """

    name: str
    working: str
    accumulation: str
    epsilons: Mapping[str, float] = field(
        default_factory=lambda: _NATIVE_EPSILONS
    )
    quantized: bool = False

    def __post_init__(self) -> None:
        for label, dtype_name in (("working", self.working),
                                  ("accumulation", self.accumulation)):
            try:
                dtype = np.dtype(dtype_name)
            except TypeError as exc:
                raise ConfigurationError(
                    f"dtype policy {self.name!r}: invalid {label} dtype "
                    f"{dtype_name!r}"
                ) from exc
            if dtype.kind != "f":
                raise ConfigurationError(
                    f"dtype policy {self.name!r}: {label} dtype must be a "
                    f"float dtype, got {dtype_name!r}"
                )

    # ------------------------------------------------------------------
    # Dtype handles
    # ------------------------------------------------------------------
    @property
    def working_dtype(self) -> np.dtype:
        """The NumPy dtype of stored values and operands."""
        return np.dtype(self.working)

    @property
    def accumulation_dtype(self) -> np.dtype:
        """The NumPy dtype of checksum rows, ``t1``/``t2`` and syndromes."""
        return np.dtype(self.accumulation)

    # ------------------------------------------------------------------
    # Epsilon model
    # ------------------------------------------------------------------
    def epsilon_for(self, storage_dtype: object) -> float:
        """Unit roundoff the bounds should assume for ``storage_dtype`` data.

        Keys on the dtype of the data being protected: a float64 matrix
        always gets ``2^-53`` no matter which policy is active, while a
        float32 matrix gets ``2^-24`` (or ``2^-8`` under the bfloat16
        emulation policy, which declares float32 storage to hold only
        bfloat16-precision values).  Unknown storage dtypes fall back to
        NumPy's own ``finfo`` epsilon (``eps/2`` = unit roundoff).
        """
        name = np.dtype(storage_dtype).name
        known = self.epsilons.get(name)
        if known is not None:
            return float(known)
        return float(np.finfo(np.dtype(storage_dtype)).eps) / 2.0

    # ------------------------------------------------------------------
    # Value shaping
    # ------------------------------------------------------------------
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round ``values`` onto the policy's representable grid.

        Identity for the native policies; the bfloat16 policy rounds to
        the nearest bfloat16 and returns float32 (its storage carrier).
        """
        if not self.quantized:
            return np.asarray(values)
        return _round_to_bfloat16(values)

    def cast_working(self, values: np.ndarray) -> np.ndarray:
        """``values`` in the working dtype, quantized, copying only if needed."""
        working = np.asarray(values, dtype=self.working_dtype)
        return self.quantize(working)


#: The frozen-default policy: the paper's float64 contract, verbatim.
FLOAT64_POLICY = DtypePolicy(
    name="float64", working="float64", accumulation="float64",
    epsilons=_NATIVE_EPSILONS,
)

#: Narrow storage, float64 accumulation (the mixed-precision SpMV case).
FLOAT32_POLICY = DtypePolicy(
    name="float32", working="float32", accumulation="float64",
    epsilons=_NATIVE_EPSILONS,
)

#: bfloat16 emulated via float32 storage: values on the bf16 grid,
#: float32 carrier, float64 accumulation.
BFLOAT16_POLICY = DtypePolicy(
    name="bfloat16", working="float32", accumulation="float64",
    epsilons=_BFLOAT16_EPSILONS, quantized=True,
)

_POLICIES: Dict[str, DtypePolicy] = {
    policy.name: policy
    for policy in (FLOAT64_POLICY, FLOAT32_POLICY, BFLOAT16_POLICY)
}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def canonical_dtype_name(name: object) -> str:
    """Validate a dtype-policy selection, returning its canonical name.

    Accepts the builtin policy names, their aliases and any registered
    extension; anything else raises
    :class:`~repro.errors.ConfigurationError`.
    """
    if isinstance(name, DtypePolicy):
        name = name.name
    if not isinstance(name, str):
        raise ConfigurationError(
            f"dtype policy must be a name, got {type(name).__name__}"
        )
    canonical = DTYPE_ALIASES.get(name.strip().lower(), name.strip().lower())
    if canonical not in _POLICIES:
        raise ConfigurationError(
            f"unknown dtype policy {name!r}; expected one of "
            f"{available_dtypes()}"
        )
    return canonical


def available_dtypes() -> Tuple[str, ...]:
    """Registered dtype-policy names, sorted."""
    return tuple(sorted(_POLICIES))


def get_dtype_policy(name: object) -> DtypePolicy:
    """The registered policy for ``name`` (aliases accepted)."""
    return _POLICIES[canonical_dtype_name(name)]


def register_dtype_policy(policy: DtypePolicy, replace: bool = False) -> None:
    """Register an extension dtype policy under ``policy.name``.

    Builtin policies are protected: they can be neither replaced nor
    shadowed.  Re-registering an extension name requires
    ``replace=True``.
    """
    if not isinstance(policy, DtypePolicy):
        raise ConfigurationError(
            f"expected a DtypePolicy, got {type(policy).__name__}"
        )
    name = policy.name.strip().lower()
    if name in BUILTIN_DTYPES or name in DTYPE_ALIASES:
        raise ConfigurationError(
            f"cannot replace builtin dtype policy {name!r}"
        )
    if name in _POLICIES and not replace:
        raise ConfigurationError(
            f"dtype policy {name!r} already registered; pass replace=True"
        )
    _POLICIES[name] = policy


def unregister_dtype_policy(name: str) -> None:
    """Remove an extension policy; builtins are protected."""
    canonical = canonical_dtype_name(name)
    if canonical in BUILTIN_DTYPES:
        raise ConfigurationError(
            f"cannot unregister builtin dtype policy {canonical!r}"
        )
    del _POLICIES[canonical]


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def resolve_dtype_name(
    configured: Optional[str] = None,
    explicit: Optional[str] = None,
    default: str = DEFAULT_DTYPE,
) -> str:
    """Resolve a dtype-policy selection to a canonical name.

    ``explicit`` (a programmatic argument) beats everything; the
    :data:`DTYPE_ENV_VAR` environment variable beats the ``configured``
    name (usually ``AbftConfig.dtype``); ``default`` applies last.
    """
    if explicit is not None:
        return canonical_dtype_name(explicit)
    env = os.environ.get(DTYPE_ENV_VAR)
    if env:
        return canonical_dtype_name(env)
    if configured is not None:
        return canonical_dtype_name(configured)
    return canonical_dtype_name(default)


def resolve_dtype_policy(
    configured: Optional[str] = None,
    explicit: Optional[object] = None,
    default: str = DEFAULT_DTYPE,
) -> DtypePolicy:
    """Resolve a selection to a :class:`DtypePolicy` object.

    ``explicit`` may be a policy object (returned as-is) or a name; the
    remaining precedence matches :func:`resolve_dtype_name`.
    """
    if isinstance(explicit, DtypePolicy):
        return explicit
    name = resolve_dtype_name(
        configured=configured,
        explicit=explicit if explicit is None else canonical_dtype_name(explicit),
        default=default,
    )
    return _POLICIES[name]


# ----------------------------------------------------------------------
# Recorded coercion
# ----------------------------------------------------------------------
def coerce_array(
    values: object,
    dtype: object,
    site: str,
    telemetry: Optional["Telemetry"] = None,
    reason: str = "operand dtype does not match the protected pipeline",
) -> np.ndarray:
    """``values`` as an array of ``dtype``, with any copy *recorded*.

    The replacement for the bare ``np.asarray(..., dtype=np.float64)``
    idiom: when the input already has the target dtype this is the same
    zero-copy view, but a dtype change emits a ``dtype.coerced`` count
    (site, from/to dtypes and the reason) on ``telemetry`` instead of
    silently promoting.  Callers that cannot reach a telemetry stream
    still get the coercion — just unrecorded, exactly as explicit as
    before — so correctness never depends on observability.
    """
    target = np.dtype(dtype)
    source = np.asarray(values)
    if source.dtype == target:
        return source
    coerced = source.astype(target)
    if telemetry is not None and telemetry.enabled:
        telemetry.count(
            "dtype.coerced",
            1.0,
            site=site,
            from_dtype=source.dtype.name,
            to_dtype=target.name,
            reason=reason,
        )
    return coerced
