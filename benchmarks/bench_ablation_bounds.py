"""Ablation — rounding-error bound choice (DESIGN.md decision 1).

Swaps the bound family of the *same* block detector: the paper's per-block
sparse analytical bound vs the whole-matrix dense analytical bound
(Roy-Chowdhury & Banerjee) vs the norm heuristic ``tau = ||b||_2`` of
Sloan et al.  Coverage ordering expected: sparse > dense-analytical > norm,
which is exactly the argument of Section III-C.
"""

from conftest import write_result

from repro.analysis import run_coverage_campaign
from repro.analysis.ablations import ablate_bounds, render_bound_ablation
from repro.sparse import QUICK_SUITE

SIGMA = 1e-12
TRIALS = 120


def test_bound_ablation(benchmark, full_suite):
    subset = [(s, m) for s, m in full_suite if s.name in QUICK_SUITE]
    ablation = ablate_bounds(subset, trials=TRIALS, sigma=SIGMA)
    write_result("ablation_bounds", render_bound_ablation(ablation))

    # Section III-C's claim: tighter bounds -> better coverage.
    assert ablation.average("sparse") > ablation.average("dense") > ablation.average("norm")

    matrix = subset[0][1]
    benchmark.pedantic(
        lambda: run_coverage_campaign(
            matrix, "block", trials=30, sigma=SIGMA, seed=12, bound="sparse"
        ),
        rounds=1,
        iterations=1,
    )
