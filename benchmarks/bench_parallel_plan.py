"""Planned vs unplanned protected SpMV across the backend registry.

The steady-state scenario: one matrix, many clean protected multiplies
(the ft_pcg inner loop).  Contenders:

* ``unplanned``    — ``FaultTolerantSpMV.multiply`` with the vectorized
  kernels, allocating every temporary on every call;
* ``planned-1``    — ``operator.planned()`` with one shard: identical
  bits, zero steady-state allocations;
* ``threads-4``    — the planned fused path over 4 nnz-balanced shards
  on the ``threads`` backend (GIL-bound: NumPy releases it only inside
  individual kernel calls);
* ``processes-W``  — the shared-memory multicore backend for W in
  ``WORKER_COUNTS`` (1, 2, 4, 8): W shards served by W persistent
  workers mapping one SharedMemory arena.

Acceptance floors (checked where the hardware can express them, and
*failed* — not warned — when it can and the floor is unmet):

* at full scale the planned single-thread loop must beat the unplanned
  loop — the zero-allocation plan has to pay for itself;
* with >= 4 usable cores ``processes-4`` must reach 1.5x over the
  planned single-thread loop.

When a floor cannot be asserted (smoke run, too few cores) the JSON
records a machine-readable reason under ``skip_reasons`` so CI can
distinguish "passed" from "could not be measured here".

Results go to ``results/bench_parallel_plan.txt`` and machine-readable
``results/BENCH_parallel_plan.json`` (timings + ``worker_scaling`` +
env metadata including ``cpu_count``).  ``REPRO_BENCH_SMOKE=1`` shrinks
the problem to a CI-smoke size where only correctness, not the speedup
floors, is asserted.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_env, write_json, write_result
from repro.core import AbftConfig, FaultTolerantSpMV
from repro.kernels.parallel import ParallelKernels
from repro.machine import ExecutionMeter
from repro.perf import ProtectedPlan
from repro.sparse import random_spd

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_ROWS = 5_000 if SMOKE else 100_000
NNZ = 60_000 if SMOKE else 1_200_000
BLOCK_SIZE = 64
N_WORKERS = 4
WORKER_COUNTS = (1, 2, 4, 8)
MULTIPLIES = 5 if SMOKE else 20
REPEATS = 3
MIN_PLANNED_SPEEDUP = 1.0  # planned-1 must strictly beat unplanned
MIN_PARALLEL_SPEEDUP = 1.5  # processes-4 over planned-1, needs >= 4 cores


@pytest.fixture(scope="module")
def matrix():
    return random_spd(N_ROWS, NNZ, seed=42)


@pytest.fixture(scope="module")
def operand(matrix):
    return np.random.default_rng(43).standard_normal(matrix.n_cols)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _loop(multiply, operator, b):
    meter = ExecutionMeter(machine=operator.machine)

    def run():
        for _ in range(MULTIPLIES):
            multiply(b, meter=meter)

    return run


def test_planned_and_parallel_speedups(matrix, operand, benchmark):
    config = AbftConfig(block_size=BLOCK_SIZE, kernel="vectorized")
    unplanned_op = FaultTolerantSpMV(matrix, config=config)
    planned_op = FaultTolerantSpMV(matrix, config=config)
    plan_1 = planned_op.planned(n_shards=1)

    threads_op = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK_SIZE, kernel="parallel")
    )
    threads_op.detector.kernels = ParallelKernels(
        n_workers=N_WORKERS, serial_cutoff=0
    )
    plan_threads = threads_op.planned()
    assert plan_threads.spmv.n_shards > 1
    assert plan_threads.backend_name == "threads"

    process_ops = {
        w: FaultTolerantSpMV(matrix, config=config) for w in WORKER_COUNTS
    }
    process_plans = {
        w: ProtectedPlan(
            process_ops[w],
            n_shards=w,
            parallel="processes",
            backend_options={"serial_cutoff": 0},
        )
        for w in WORKER_COUNTS
    }

    try:
        variants = {
            "unplanned": (unplanned_op, unplanned_op.multiply),
            "planned-1": (planned_op, plan_1.multiply),
            f"threads-{N_WORKERS}": (threads_op, plan_threads.multiply),
        }
        for w in WORKER_COUNTS:
            variants[f"processes-{w}"] = (process_ops[w], process_plans[w].multiply)

        # Every variant is bit-identical to the raw matvec on clean data.
        reference = matrix.matvec(operand)
        for label, (_, multiply) in variants.items():
            value = multiply(operand).value
            np.testing.assert_array_equal(value, reference, err_msg=label)

        timings = {
            label: _best_of(_loop(multiply, operator, operand))
            for label, (operator, multiply) in variants.items()
        }
    finally:
        for plan in process_plans.values():
            plan.close()

    speedups = {
        "planned_vs_unplanned": timings["unplanned"] / timings["planned-1"],
        "threads_vs_planned": timings["planned-1"]
        / timings[f"threads-{N_WORKERS}"],
        "processes_vs_planned": timings["planned-1"]
        / timings[f"processes-{N_WORKERS}"],
    }
    worker_scaling = {
        str(w): {
            "loop_ms": 1e3 * timings[f"processes-{w}"],
            "speedup_vs_planned": timings["planned-1"] / timings[f"processes-{w}"],
        }
        for w in WORKER_COUNTS
    }
    cpu_count = os.cpu_count() or 1
    enough_cores = cpu_count >= N_WORKERS

    # Machine-readable reasons for every floor NOT asserted on this run.
    skip_reasons = {}
    if SMOKE:
        skip_reasons["planned_vs_unplanned"] = "smoke=1 (problem below full scale)"
        skip_reasons["processes_vs_planned"] = "smoke=1 (problem below full scale)"
    elif not enough_cores:
        skip_reasons["processes_vs_planned"] = f"cpu_count={cpu_count} < {N_WORKERS}"

    lines = [
        "Planned / sharded protected SpMV "
        f"(random SPD, n={N_ROWS}, nnz={NNZ}, block size {BLOCK_SIZE}, "
        f"{MULTIPLIES} multiplies per run, cpu_count={cpu_count})",
        "",
        f"{'variant':<12} {'loop [ms]':>12} {'per call [ms]':>14}",
    ]
    for label, seconds in timings.items():
        lines.append(
            f"{label:<12} {1e3 * seconds:>12.3f} "
            f"{1e3 * seconds / MULTIPLIES:>14.3f}"
        )
    lines += [
        "",
        f"planned-1 vs unplanned: {speedups['planned_vs_unplanned']:.2f}x",
        f"threads-{N_WORKERS} vs planned-1: "
        f"{speedups['threads_vs_planned']:.2f}x",
        f"processes-{N_WORKERS} vs planned-1: "
        f"{speedups['processes_vs_planned']:.2f}x"
        + (
            ""
            if "processes_vs_planned" not in skip_reasons
            else f"  [not asserted: {skip_reasons['processes_vs_planned']}]"
        ),
        "worker scaling (processes): "
        + ", ".join(
            f"{w}w={worker_scaling[str(w)]['speedup_vs_planned']:.2f}x"
            for w in WORKER_COUNTS
        ),
    ]
    write_result("bench_parallel_plan", "\n".join(lines))
    write_json(
        "parallel_plan",
        {
            "benchmark": "parallel_plan",
            "config": {
                "n_rows": N_ROWS,
                "nnz": NNZ,
                "block_size": BLOCK_SIZE,
                "n_workers": N_WORKERS,
                "worker_counts": list(WORKER_COUNTS),
                "multiplies_per_run": MULTIPLIES,
                "repeats": REPEATS,
                "smoke": SMOKE,
            },
            "timings_ms": {k: 1e3 * v for k, v in timings.items()},
            "speedups": speedups,
            "worker_scaling": worker_scaling,
            "floors": {
                "planned_vs_unplanned": MIN_PLANNED_SPEEDUP,
                "processes_vs_planned": MIN_PARALLEL_SPEEDUP,
            },
            "asserted": {
                "planned_vs_unplanned": not SMOKE,
                "processes_vs_planned": enough_cores and not SMOKE,
            },
            "skip_reasons": skip_reasons,
            "env": bench_env(),
        },
    )

    # Smoke runs only prove the harness executes end to end; the floors
    # are claims about steady-state sizes on real hardware.  Where the
    # hardware CAN express a floor, missing it is a hard failure.
    if "planned_vs_unplanned" not in skip_reasons:
        assert speedups["planned_vs_unplanned"] > MIN_PLANNED_SPEEDUP, (
            f"zero-allocation plan no faster than unplanned: "
            f"{speedups['planned_vs_unplanned']:.2f}x <= {MIN_PLANNED_SPEEDUP}x"
        )
    if "processes_vs_planned" not in skip_reasons:
        assert speedups["processes_vs_planned"] >= MIN_PARALLEL_SPEEDUP, (
            f"processes-{N_WORKERS} missed the {MIN_PARALLEL_SPEEDUP}x floor "
            f"over planned-1 on a {cpu_count}-core runner: "
            f"{speedups['processes_vs_planned']:.2f}x"
        )

    benchmark.pedantic(
        lambda: plan_1.multiply(operand), rounds=3, iterations=1
    )
