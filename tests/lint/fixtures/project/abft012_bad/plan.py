"""Allocation reachable from plan execution (ABFT012 must fire)."""

import numpy as np


class SpmvPlan:
    def __init__(self, n):
        self.out = np.zeros(n)

    def execute(self, x):
        return accumulate(x, self.out)


def accumulate(x, out):
    scratch = np.zeros(len(x))  # MARK:ABFT012
    history = []  # MARK:ABFT012
    history.append(scratch)
    out[0] = scratch[0]
    return out
