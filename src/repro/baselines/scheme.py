"""Common result type and protocol for baseline fault-tolerance schemes.

The baselines mirror :class:`repro.core.FaultTolerantSpMV`'s driver contract
— ``multiply(b, tamper=None, meter=None)`` with the same tamper-hook stages
— so campaigns can swap schemes freely.  Their result type differs in one
way: related-work schemes do not know *blocks*; corrections are recorded as
row ranges (complete recomputation reports the full range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple

import numpy as np

from repro.core.corrector import TamperHook
from repro.machine import ExecutionMeter


@dataclass(frozen=True)
class BaselineSpmvResult:
    """Outcome of one baseline protected multiply.

    Attributes:
        value: the (possibly corrected) result vector.
        detections: per check, True if the dense check fired.
        corrections: row ranges ``(start, stop)`` that were recomputed, in
            order.
        rounds: correction rounds performed.
        seconds: simulated time charged.
        flops: arithmetic operations charged.
        exhausted: True if the check still failed when the round budget ran
            out.
    """

    value: np.ndarray
    detections: Tuple[bool, ...]
    corrections: Tuple[Tuple[int, int], ...]
    rounds: int
    seconds: float
    flops: float
    exhausted: bool

    @property
    def clean(self) -> bool:
        """True when the initial check passed."""
        return not self.detections[0]


class SpmvScheme(Protocol):
    """Anything that can run one protected SpMV (ours or a baseline)."""

    def multiply(
        self,
        b: np.ndarray,
        tamper: TamperHook | None = None,
        meter: ExecutionMeter | None = None,
    ): ...
