"""OpenMetrics exposition and event-log replay (:mod:`repro.obs.expose`)."""

import math

from repro.obs import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    InMemoryExporter,
    Registry,
    Telemetry,
    WorkerRecorder,
    merge_delta,
    metric_name,
    registry_from_events,
    render_openmetrics,
)


def test_metric_name_sanitizes_to_charset():
    assert metric_name("abft.syndrome_margin") == "abft_syndrome_margin"
    assert metric_name("span.plan.shard.seconds") == "span_plan_shard_seconds"
    assert metric_name("9lives") == "_9lives"
    assert metric_name("a:b") == "a:b"


def test_render_openmetrics_counter_gauge_histogram():
    registry = Registry()
    registry.counter("abft.detections").add(3.0)
    registry.gauge("abft.n_blocks").set(12.0)
    hist = registry.histogram("margin", (1.0, 10.0))
    for value in (0.5, 2.0, 20.0):
        hist.observe(value)
    text = render_openmetrics(registry)
    lines = text.splitlines()
    assert "# TYPE abft_detections counter" in lines
    assert "abft_detections_total 3" in lines
    assert "# TYPE abft_n_blocks gauge" in lines
    assert "abft_n_blocks 12" in lines
    assert "# TYPE margin histogram" in lines
    # Cumulative buckets: <=1 holds the underflow, +Inf everything.
    assert 'margin_bucket{le="1"} 1' in lines
    assert 'margin_bucket{le="10"} 2' in lines
    assert 'margin_bucket{le="+Inf"} 3' in lines
    assert "margin_count 3" in lines
    assert lines[-1] == "# EOF"


def test_render_openmetrics_nan_gauge():
    registry = Registry()
    registry.gauge("g").set(math.nan)
    assert "g NaN" in render_openmetrics(registry)


def test_registry_from_events_replays_all_kinds():
    events = [
        {"type": "counter", "name": "abft.checks", "value": 2.0, "attrs": {}},
        {"type": "gauge", "name": "pcg.residual", "value": 0.5, "attrs": {}},
        {"type": "hist", "name": "abft.syndrome_margin", "value": 1e-4, "attrs": {}},
        {"type": "hist", "name": "kernel.spmv.seconds", "values": [1e-3, 2e-3],
         "attrs": {}},
        {"type": "span", "name": "abft.multiply", "start": 1.0, "end": 1.25,
         "depth": 0, "parent": None, "attrs": {}},
    ]
    registry = registry_from_events(events)
    assert registry.counter("abft.checks").value == 2.0
    assert registry.gauge("pcg.residual").value == 0.5
    margin = registry.get("abft.syndrome_margin")
    assert margin.count == 1
    assert margin.edges == DEFAULT_RATIO_BUCKETS  # ratio heuristic
    spmv = registry.get("kernel.spmv.seconds")
    assert spmv.count == 2
    assert spmv.edges == DEFAULT_TIME_BUCKETS  # .seconds heuristic
    span = registry.get("span.abft.multiply.seconds")
    assert span.count == 1 and span.sum == 0.25


def test_bucket_heuristic_fraction_names():
    events = [
        {"type": "hist", "name": "abft.block_recompute_fraction", "value": 0.25,
         "attrs": {}},
    ]
    registry = registry_from_events(events)
    hist = registry.get("abft.block_recompute_fraction")
    assert hist.edges == DEFAULT_FRACTION_BUCKETS


def test_registry_from_events_applies_worker_deltas():
    recorder = WorkerRecorder()
    recorder.telemetry.observe(
        "kernel.detect_shard.seconds", 1e-3, buckets=DEFAULT_TIME_BUCKETS
    )
    parent = Telemetry(exporter=InMemoryExporter())
    merge_delta(parent, 0, recorder.delta())
    registry = registry_from_events(parent.events())
    hist = registry.get("kernel.detect_shard.seconds")
    assert hist.count == 1
    assert hist.edges == DEFAULT_TIME_BUCKETS  # exact edges from the delta
    # Exposing the replayed registry includes the worker histogram.
    assert "kernel_detect_shard_seconds_count 1" in render_openmetrics(registry)
