"""Block-ABFT protection for SpMM (multi-vector SpMV) — an extension.

Applications like block-Krylov solvers, multiple-right-hand-side FEM
solves and SpMM-based graph kernels multiply one sparse matrix by a dense
*block* of operands.  The paper's per-block invariant extends columnwise
without new machinery: ``T1 = C B`` and ``T2[k, j] = w_k^T R[block_k, j]``
give an ``(n_blocks x k)`` syndrome whose violations localize errors to a
*(row block, column)* cell — correction recomputes that block's rows for
that column only.

The checksum matrix ``C`` (and therefore its setup) is shared with the
single-vector scheme; the per-column bound reuses the Section III-C
constants with ``beta_j = ||B[:, j]||_2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.blocking import BlockPartition
from repro.core.bounds import SparseBlockBound
from repro.core.checksum import ChecksumMatrix
from repro.core.corrector import TamperHook
from repro.core.dtypes import coerce_array, resolve_dtype_policy
from repro.errors import ConfigurationError, ShapeMismatchError
from repro.kernels import resolve_kernels
from repro.obs import resolve_telemetry
from repro.machine import (
    ExecutionMeter,
    Machine,
    TaskGraph,
    blocked_checksum_cost,
    checksum_matvec_cost,
    log2ceil,
    norm_cost,
    spmv_cost,
)
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class SpmmResult:
    """Outcome of one protected multi-vector multiply.

    Attributes:
        value: the (possibly corrected) result block, ``(n_rows, k)``.
        detected: ``(block, column)`` cells flagged by the initial check.
        corrected: ``(block, column)`` cells recomputed (over all rounds).
        rounds / seconds / flops / exhausted: as for the SpMV result.
    """

    value: np.ndarray
    detected: Tuple[Tuple[int, int], ...]
    corrected: Tuple[Tuple[int, int], ...]
    rounds: int
    seconds: float
    flops: float
    exhausted: bool

    @property
    def clean(self) -> bool:
        return not self.detected


class ProtectedSpMM:
    """Fault-tolerant ``R = A B`` for dense operand blocks.

    Args:
        matrix: the sparse input matrix ``A``.
        block_size: rows per checksum block.
        machine: simulated device.
        max_rounds: correction round budget.
        kernel: :mod:`repro.kernels` selection (name, instance, or None
            for the configured default).
        dtype: dtype-policy selection (name or policy); supplies the
            epsilon model of the per-block bound and the working dtype
            operands are coerced to.
        telemetry: :mod:`repro.obs` selection recording operand dtype
            coercions (None = default exporter).
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        block_size: int = 32,
        machine: Optional[Machine] = None,
        max_rounds: int = 8,
        kernel: object = None,
        dtype: object = None,
        telemetry: object = None,
    ) -> None:
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.matrix = matrix
        self.block_size = block_size
        self.machine = machine or Machine()
        self.max_rounds = max_rounds
        self.kernels = resolve_kernels(kernel)
        self.telemetry = resolve_telemetry(telemetry)
        self.dtype_policy = resolve_dtype_policy(explicit=dtype)
        self.checksum = ChecksumMatrix.build(matrix, block_size, "ones", self.kernels)
        self.bound = SparseBlockBound.from_checksum(
            self.checksum, epsilon=self.dtype_policy.epsilon_for(matrix.dtype)
        )

    @property
    def partition(self) -> BlockPartition:
        return self.checksum.partition

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def _result_checksums(self, r: np.ndarray) -> np.ndarray:
        """T2: segmented column sums of the result block, per row block."""
        return self.kernels.result_checksums_multi(r, self.partition)

    def _flags(
        self,
        t1: np.ndarray,
        t2: np.ndarray,
        betas: np.ndarray,
        blocks: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Boolean violation matrix for all blocks (or a ``blocks`` subset)."""
        with np.errstate(invalid="ignore", over="ignore"):
            thresholds = np.outer(self.bound.thresholds(1.0, blocks), betas)
        _, flags = self.kernels.compare_syndromes_multi(t1, t2, thresholds)
        return flags

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _detection_graph(self, k: int) -> TaskGraph:
        matrix = self.matrix
        graph = TaskGraph()
        max_row = int(matrix.row_lengths().max(initial=1))
        cost = spmv_cost(matrix.nnz, max_row)
        graph.add("spmm", k * cost.work, cost.span)
        c = self.checksum.matrix
        cost = checksum_matvec_cost(c.nnz, int(c.row_lengths().max(initial=1)))
        graph.add("t1", k * cost.work, cost.span)
        cost = norm_cost(matrix.n_cols)
        graph.add("betas", k * cost.work, cost.span)
        check = blocked_checksum_cost(
            matrix.n_rows, self.block_size, self.partition.n_blocks
        )
        graph.add("check", k * check.work, check.span, deps=["spmm", "t1", "betas"])
        return graph

    def _correction_graph(self, nnz_recomputed: int, cells: int) -> TaskGraph:
        graph = TaskGraph()
        max_row = int(self.matrix.row_lengths().max(initial=1))
        graph.add("recompute", 2.0 * nnz_recomputed, log2ceil(max_row))
        recheck = blocked_checksum_cost(
            cells * self.block_size, self.block_size, cells
        )
        graph.add("recheck", recheck.work, recheck.span, deps=["recompute"])
        return graph

    # ------------------------------------------------------------------
    # Protected multiply
    # ------------------------------------------------------------------
    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> SpmmResult:
        """Execute one protected SpMM.

        The tamper hook receives 2-D arrays for the block stages
        (``"result"``, ``"t1"``, ``"t2"``) and the recomputed column
        segments for ``"corrected"``.
        """
        matrix = self.matrix
        b = coerce_array(
            b,
            matrix.data.dtype,
            site="spmm.operand",
            telemetry=self.telemetry,
            reason="operand block joins the matrix storage dtype",
        )
        if b.ndim != 2 or b.shape[0] != matrix.n_cols:
            raise ShapeMismatchError(
                f"operand block has shape {b.shape}, expected ({matrix.n_cols}, k)"
            )
        k = b.shape[1]
        meter = meter if meter is not None else ExecutionMeter(machine=self.machine)
        start_seconds, start_flops = meter.snapshot()
        meter.run_graph(self._detection_graph(k))

        r = matrix.matmat(b)
        if tamper is not None:
            tamper("result", r, 2.0 * matrix.nnz * k)
        t1 = self.checksum.matrix.matmat(b)
        if tamper is not None:
            tamper("t1", t1, 2.0 * self.checksum.nnz * k)
        betas = np.linalg.norm(b, axis=0)
        t2 = self._result_checksums(r)
        if tamper is not None:
            tamper("t2", t2, 2.0 * matrix.n_rows * k)

        flags = self._flags(t1, t2, betas)
        detected = tuple(
            (int(block), int(col)) for block, col in np.argwhere(flags)
        )
        corrected: set[Tuple[int, int]] = set()
        rounds = 0
        exhausted = False
        while flags.any():
            if rounds >= self.max_rounds:
                exhausted = True
                break
            rounds += 1
            cells = np.argwhere(flags)
            _, nnz_recomputed = self.kernels.correct_cells(
                matrix, self.partition, b, r, cells, tamper
            )
            corrected.update((int(block), int(col)) for block, col in cells)
            meter.run_graph(self._correction_graph(nnz_recomputed, len(cells)))
            # Re-verify only the touched blocks' checksum rows — one fused
            # pass over all right-hand sides — then mask to touched cells.
            touched = np.unique(cells[:, 0])
            t2_rows = self.kernels.result_checksums_multi_for_blocks(
                r, self.partition, touched
            )
            if tamper is not None:
                tamper("t2", t2_rows, 2.0 * self.block_size * len(cells))
            flags = np.zeros_like(flags)
            flags[touched] = self._flags(t1[touched], t2_rows, betas, blocks=touched)
            mask = np.zeros_like(flags)
            mask[tuple(cells.T)] = True
            flags &= mask

        seconds, flops = meter.snapshot()
        return SpmmResult(
            value=r,
            detected=detected,
            corrected=tuple(sorted(corrected)),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )
