"""Minimal stand-in for repro.perf.shm in the ABFT008 fixtures."""


class Arena:
    """Named shared-memory arena with typed array views."""

    def __init__(self, size):
        self.size = size
        self.closed = False

    @classmethod
    def create(cls, size):
        return cls(size)

    @classmethod
    def attach(cls, size):
        return cls(size)

    def array(self, name):
        return [0.0] * self.size

    def close(self):
        self.closed = True
