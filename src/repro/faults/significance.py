"""Minimal error significance σ (Section V-B of the paper).

The coverage evaluation only injects errors that change a result element by
more than a relative significance σ::

    |r_err| > |r| (1 + σ)   or   |r_err| < |r| (1 - σ)

Errors below this magnitude are indistinguishable from rounding noise and
are excluded from the F1 statistics, for every compared method alike.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InjectionError
from repro.faults.bitflip import Burst, corrupt_value


def is_significant(original: float, corrupted: float, sigma: float) -> bool:
    """True if the corruption exceeds the minimal error significance σ."""
    if sigma < 0:
        raise InjectionError(f"significance must be >= 0, got {sigma}")
    if math.isnan(corrupted) or math.isinf(corrupted):
        return True
    magnitude = abs(original)
    return abs(corrupted) > magnitude * (1.0 + sigma) or abs(corrupted) < magnitude * (
        1.0 - sigma
    )


def corrupt_significantly(
    value: float,
    rng: np.random.Generator,
    sigma: float,
    max_attempts: int = 10_000,
) -> tuple[float, Burst]:
    """Sample bursts until one produces a σ-significant corruption.

    Mirrors the paper's campaign, which filters injections by significance.

    Raises:
        InjectionError: if no significant corruption is found within
            ``max_attempts`` (pathologically tight σ on special values).
    """
    for _ in range(max_attempts):
        corrupted, burst = corrupt_value(value, rng)
        if corrupted != value and is_significant(value, corrupted, sigma):
            return corrupted, burst
    raise InjectionError(
        f"no significant corruption of {value!r} found in {max_attempts} attempts "
        f"(sigma={sigma})"
    )
