"""Event-driven malleable-task scheduler for the simulated machine.

Scheduling model (per :mod:`repro.machine.params`):

* The device executes at most ``streams`` kernels concurrently; additional
  ready kernels queue FIFO.
* A kernel first pays ``launch_overhead`` seconds (not consuming
  throughput), then its *compute phase* starts.
* All kernels in their compute phase with work remaining share the device
  throughput equally; ``k`` concurrent kernels enjoy a combined rate of
  ``throughput * (1 + concurrency_boost * (k-1))`` because memory-bound
  kernels hide each other's latency (work-conserving equal split).
* A kernel finishes when its work is exhausted **and** its compute phase
  has lasted at least ``span * sync_time`` (the critical-path floor).

The resulting makespan respects both Brent bounds: it is at least
``total_work / throughput`` and at least the solo-duration critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SchedulerError
from repro.machine.graph import TaskGraph
from repro.machine.params import DeviceParams

_EPS = 1e-15  # seconds
_WORK_EPS = 1e-6  # FLOPs; work quantities are >= 1 when non-zero


@dataclass(frozen=True)
class TaskTiming:
    """Realized schedule of one task."""

    start: float
    compute_start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class Schedule:
    """Result of simulating a task graph on a device."""

    makespan: float
    timings: Dict[str, TaskTiming]

    def finish_of(self, name: str) -> float:
        return self.timings[name].finish


class Machine:
    """A simulated accelerator executing :class:`TaskGraph` instances."""

    def __init__(self, params: DeviceParams | None = None) -> None:
        self.params = params or DeviceParams()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(self, graph: TaskGraph) -> Schedule:
        """Simulate the graph and return per-task timings and the makespan."""
        tasks = graph.tasks()
        if not tasks:
            return Schedule(0.0, {})

        params = self.params
        successors = graph.successors()
        unmet = {task.name: len(task.deps) for task in tasks}
        by_name = {task.name: task for task in tasks}

        ready: List[str] = [task.name for task in tasks if unmet[task.name] == 0]
        if not ready:
            raise SchedulerError("task graph has no source task")

        launching: Dict[str, float] = {}  # name -> launch end time
        running: Dict[str, List[float]] = {}  # name -> [remaining_work, span_end]
        compute_started: Dict[str, float] = {}
        started: Dict[str, float] = {}
        finished: Dict[str, float] = {}

        now = 0.0
        in_flight = 0

        def admit() -> None:
            nonlocal in_flight
            while ready and in_flight < params.streams:
                name = ready.pop(0)
                started[name] = now
                launching[name] = now + params.launch_overhead
                in_flight += 1

        admit()

        for _ in range(4 * len(tasks) * (len(tasks) + 2)):
            if len(finished) == len(tasks):
                break
            active = [name for name, state in running.items() if state[0] > _WORK_EPS]
            if active:
                # Co-scheduled kernels hide each other's memory latency:
                # k kernels share throughput * (1 + boost * (k - 1)).
                effective = params.throughput * (
                    1.0 + params.concurrency_boost * (len(active) - 1)
                )
                share = effective / len(active)
            else:
                share = 0.0

            # Earliest next event: a launch ending, work running out, or a
            # span floor elapsing.
            next_time = None
            for end in launching.values():
                next_time = end if next_time is None else min(next_time, end)
            for name, (remaining, span_end) in running.items():
                if remaining > _WORK_EPS:
                    # Work exhaustion is an event of its own (shares must be
                    # recomputed) even if the span floor delays completion.
                    candidate = now + remaining / share
                else:
                    candidate = max(now, span_end)
                next_time = candidate if next_time is None else min(next_time, candidate)
            if next_time is None:
                raise SchedulerError("deadlock: tasks pending but nothing executing")
            next_time = max(next_time, now)

            # Advance work on active tasks.
            dt = next_time - now
            for name in active:
                running[name][0] = max(0.0, running[name][0] - share * dt)
            now = next_time

            # Launch completions -> compute phase begins.
            for name in [n for n, end in launching.items() if end <= now + _EPS]:
                del launching[name]
                task = by_name[name]
                compute_started[name] = now
                running[name] = [task.work, now + task.span * params.sync_time]

            # Task completions.
            completed = [
                name
                for name, (remaining, span_end) in running.items()
                if remaining <= _WORK_EPS and span_end <= now + _EPS
            ]
            for name in completed:
                del running[name]
                finished[name] = now
                in_flight -= 1
                for succ in successors[name]:
                    unmet[succ] -= 1
                    if unmet[succ] == 0:
                        ready.append(succ)
            admit()
        else:
            raise SchedulerError("scheduler failed to converge (internal error)")

        timings = {
            name: TaskTiming(started[name], compute_started[name], finished[name])
            for name in finished
        }
        return Schedule(max(finished.values()), timings)

    def makespan(self, graph: TaskGraph) -> float:
        """Makespan of the graph in simulated seconds."""
        return self.schedule(graph).makespan

    def serial_time(self, graph: TaskGraph) -> float:
        """Time if every task ran alone, back to back (no overlap)."""
        params = self.params
        return sum(
            task.solo_duration(params.throughput, params.launch_overhead, params.sync_time)
            for task in graph.tasks()
        )
