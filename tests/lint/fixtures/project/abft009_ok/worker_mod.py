"""A worker module that leaves registries alone (ABFT009 stays quiet)."""

from multiprocessing import Process


def _worker_main(queue):
    queue.put("ready")  # ok: no registry mutation on the worker path


def start(queue):
    process = Process(target=_worker_main, args=(queue,))
    process.start()
    return process
