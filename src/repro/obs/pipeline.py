"""Cross-process telemetry pipeline: worker-side capture, parent-side merge.

The ``processes`` plan backend (:mod:`repro.perf.process_backend`) runs
the fused detect/correct kernels in worker processes, where the parent's
:class:`~repro.obs.telemetry.Telemetry` cannot see them.  This module
closes that gap without any extra IPC machinery:

* each worker owns a :class:`WorkerRecorder` — an always-enabled
  telemetry writing to a :class:`~repro.obs.exporters.NullExporter`
  (aggregates only, no event buffering) whose instruments are diffed
  against a baseline snapshot after every command;
* the resulting :data:`RegistryDelta` — counter increments, gauge
  last-values and histogram bucket deltas — is a small picklable dict
  that rides back to the parent on the existing result pipe, piggybacked
  on the ``ok`` ack;
* the parent folds each delta into its own registry with
  :func:`apply_delta` and emits one ``delta`` event per worker via
  :func:`merge_delta`, always in ascending worker order, so merged
  aggregates and event streams stay deterministic regardless of which
  worker answered first.

Failure semantics fall out of the piggyback design: a crashed or timed
out worker never acks, so at most its in-flight delta is lost — already
merged history is never double counted, and a respawned worker starts
from a fresh (empty) baseline.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.exporters import Event, NullExporter
from repro.obs.instruments import Counter, Gauge, Histogram, Registry
from repro.obs.telemetry import Clock, Telemetry

#: One histogram delta: bucket-count increments plus summary increments
#: (``count``/``nan_count``/``sum``) and cumulative extrema (``min``/``max``).
HistogramDelta = Dict[str, object]

#: One registry delta: ``{"counters": {...}, "gauges": {...}, "hists": {...}}``.
RegistryDelta = Dict[str, Dict[str, object]]

#: Baseline snapshot value: counter value, gauge (value, updates) or a
#: histogram snapshot dict.
_BaselineValue = object


def _histogram_delta(
    snapshot: Dict[str, object], baseline: Optional[Dict[str, object]]
) -> Optional[HistogramDelta]:
    """Bucket/summary increments between two snapshots (None when empty)."""
    counts = list(snapshot["counts"])  # type: ignore[arg-type]
    count = int(snapshot["count"])  # type: ignore[arg-type]
    nan_count = int(snapshot["nan_count"])  # type: ignore[arg-type]
    total = float(snapshot["sum"])  # type: ignore[arg-type]
    if baseline is not None:
        previous = list(baseline["counts"])  # type: ignore[arg-type]
        counts = [now - then for now, then in zip(counts, previous)]
        count -= int(baseline["count"])  # type: ignore[arg-type]
        nan_count -= int(baseline["nan_count"])  # type: ignore[arg-type]
        total -= float(baseline["sum"])  # type: ignore[arg-type]
    if count == 0 and nan_count == 0:
        return None
    return {
        "edges": list(snapshot["edges"]),  # type: ignore[arg-type]
        "counts": counts,
        "count": count,
        "nan_count": nan_count,
        "sum": total,
        "min": snapshot["min"],
        "max": snapshot["max"],
    }


def capture_delta(
    registry: Registry, baseline: Dict[str, _BaselineValue]
) -> Tuple[Optional[RegistryDelta], Dict[str, _BaselineValue]]:
    """Diff ``registry`` against ``baseline``; return (delta, new baseline).

    The delta is ``None`` when nothing changed.  Gauges ship their last
    value whenever the update count moved (value comparison would miss a
    gauge re-set to NaN).  The returned baseline replaces the old one, so
    consecutive captures never re-ship history.
    """
    counters: Dict[str, object] = {}
    gauges: Dict[str, object] = {}
    hists: Dict[str, object] = {}
    fresh: Dict[str, _BaselineValue] = {}
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Counter):
            value = instrument.value
            previous = float(baseline.get(name, 0.0))  # type: ignore[arg-type]
            if value != previous:
                counters[name] = value - previous
            fresh[name] = value
        elif isinstance(instrument, Gauge):
            updates = instrument.updates
            previous_updates = int(baseline.get(name, 0))  # type: ignore[arg-type]
            if updates != previous_updates:
                gauges[name] = instrument.value
            fresh[name] = updates
        elif isinstance(instrument, Histogram):
            snapshot = instrument.snapshot()
            previous_snapshot = baseline.get(name)
            delta = _histogram_delta(
                snapshot,
                previous_snapshot if isinstance(previous_snapshot, dict) else None,
            )
            if delta is not None:
                hists[name] = delta
            fresh[name] = snapshot
    if not counters and not gauges and not hists:
        return None, fresh
    return {"counters": counters, "gauges": gauges, "hists": hists}, fresh


class WorkerRecorder:
    """Worker-local telemetry whose aggregates ship home as deltas.

    The recorder's :attr:`telemetry` is always enabled but exports to a
    :class:`~repro.obs.exporters.NullExporter`: instruments aggregate in
    the worker, nothing is buffered, and :meth:`delta` drains the change
    since the previous drain into one picklable dict.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.telemetry = Telemetry(exporter=NullExporter(), clock=clock)
        self._baseline: Dict[str, _BaselineValue] = {}

    def delta(self) -> Optional[RegistryDelta]:
        """Changes since the last call (None when nothing was recorded)."""
        delta, self._baseline = capture_delta(self.telemetry.registry, self._baseline)
        return delta


def apply_delta(registry: Registry, delta: Mapping[str, object]) -> None:
    """Fold one :data:`RegistryDelta` into ``registry`` (no events).

    Instruments are created on demand with the delta's own bucket edges;
    names are applied in sorted order so two registries fed the same
    deltas end up structurally identical.
    """
    counters = delta.get("counters") or {}
    gauges = delta.get("gauges") or {}
    hists = delta.get("hists") or {}
    if (
        not isinstance(counters, Mapping)
        or not isinstance(gauges, Mapping)
        or not isinstance(hists, Mapping)
    ):
        raise ConfigurationError(f"malformed registry delta: {delta!r}")
    for name in sorted(counters):
        registry.counter(str(name)).add(float(counters[name]))  # type: ignore[arg-type]
    for name in sorted(gauges):
        registry.gauge(str(name)).set(float(gauges[name]))  # type: ignore[arg-type]
    for name in sorted(hists):
        payload = hists[name]
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"malformed histogram delta for {name!r}: {payload!r}"
            )
        edges = payload["edges"]
        registry.histogram(str(name), edges).merge(  # type: ignore[arg-type]
            payload["counts"],  # type: ignore[arg-type]
            int(payload["count"]),  # type: ignore[arg-type]
            int(payload["nan_count"]),  # type: ignore[arg-type]
            float(payload["sum"]),  # type: ignore[arg-type]
            float(payload["min"]),  # type: ignore[arg-type]
            float(payload["max"]),  # type: ignore[arg-type]
        )


def merge_delta(
    telemetry: Telemetry, worker_id: int, delta: Optional[RegistryDelta]
) -> None:
    """Merge one worker's delta into ``telemetry`` and emit a ``delta`` event.

    No-op for ``None`` deltas or disabled telemetry.  Callers must invoke
    this in ascending worker order — the emitted event order (and the
    single clock read per event) is part of the deterministic-stream
    contract.
    """
    if delta is None or not telemetry.enabled:
        return
    apply_delta(telemetry.registry, delta)
    event: Event = {
        "type": "delta",
        "worker": int(worker_id),
        "counters": delta.get("counters") or {},
        "gauges": delta.get("gauges") or {},
        "hists": delta.get("hists") or {},
        "t": telemetry.now(),
    }
    telemetry.exporter.emit(event)
