"""The unified result type shared by every protection scheme.

Historically the repository carried two result types: the block scheme's
``SpmvResult`` (per-check flagged *block* tuples, corrected block ids) and
the related-work ``BaselineSpmvResult`` (per-check booleans, corrected row
ranges).  Campaigns comparing schemes had to know which one they were
holding.  :class:`ProtectedSpmvResult` merges the two: every scheme reports
boolean per-check detections and row-range corrections, and schemes that
localize to blocks (the paper's) additionally fill the block-id fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class ProtectedSpmvResult:
    """Outcome of one protected multiply, for any scheme.

    Attributes:
        value: the (possibly corrected) result vector.
        detections: per check, True if the check fired — index 0 is the
            initial detection, later entries are re-verifications after
            each correction round.
        corrections: row ranges ``(start, stop)`` that were recomputed, in
            correction order (complete recomputation reports the full
            range; block schemes report each corrected block's range).
        rounds: correction rounds performed.
        seconds: simulated time charged for this multiply.
        flops: arithmetic operations charged for this multiply.
        exhausted: True if the check still failed when the round budget ran
            out (or the scheme detects but cannot correct — e.g. the
            checkpoint baseline, which signals its caller to roll back).
        detected_blocks: per check, the flagged block indices — only block
            schemes fill this; range/scalar schemes leave it empty.
        corrected_blocks: sorted distinct block ids that were recomputed —
            only block schemes fill this.
    """

    value: np.ndarray
    detections: Tuple[bool, ...]
    corrections: Tuple[Tuple[int, int], ...]
    rounds: int
    seconds: float
    flops: float
    exhausted: bool
    detected_blocks: Tuple[Tuple[int, ...], ...] = ()
    corrected_blocks: Tuple[int, ...] = ()

    @property
    def clean(self) -> bool:
        """True when the initial check passed (vacuously for no checks).

        An empty ``detections`` tuple means the scheme ran no check at
        all; that multiply is clean by definition rather than an
        ``IndexError`` (regression: ``BaselineSpmvResult.clean`` raised).
        """
        return not self.detections or not self.detections[0]

    @property
    def detected(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-check flagged block tuples (legacy ``SpmvResult`` alias)."""
        return self.detected_blocks
