"""Error-injection campaigns for the SpMV experiments (paper Section V).

Two campaign kinds:

* **coverage** (Figure 7): per trial, one σ-significant burst corrupts a
  random result element; the detector's verdict is scored against ground
  truth.  Both the proposed block detector and the dense-check baseline run
  through the same trials.
* **correction** (Figure 6): per trial, an injected error triggers the
  full detect-locate-correct pipeline of each scheme, and the simulated
  runtime is recorded.

The paper runs 100 000 trials per matrix; the statistics here stabilize at
a few hundred, which is the default (`trials` is a knob everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.analysis.metrics import ConfusionCounts
from repro.baselines.bisection import PartialRecomputationSpMV
from repro.baselines.complete import CompleteRecomputationSpMV
from repro.baselines.dense_check import DenseChecksum
from repro.core.config import AbftConfig
from repro.core.detector import BlockAbftDetector
from repro.core.protected import FaultTolerantSpMV, plain_spmv
from repro.errors import ConfigurationError, InjectionError
from repro.faults.injector import FaultInjector
from repro.machine import ExecutionMeter, Machine
from repro.sparse.csr import CsrMatrix

DetectorKind = Literal["block", "dense"]
CorrectionScheme = Literal["ours", "partial", "complete"]


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of one coverage campaign."""

    counts: ConfusionCounts
    trials: int
    sigma: float
    detector: str

    @property
    def f1(self) -> float:
        return self.counts.f1


def run_coverage_campaign(
    matrix: CsrMatrix,
    detector: DetectorKind,
    trials: int = 300,
    sigma: float = 1e-12,
    seed: int = 0,
    block_size: int = 32,
    bound: str = "sparse",
) -> CoverageResult:
    """Score a detector's error coverage under σ-significant injections.

    Per trial: draw a fresh operand, compute the clean SpMV, first evaluate
    the detector on the *clean* result (any flag is a false positive), then
    corrupt one random element with a σ-significant burst and re-evaluate
    (flagging the corrupted location is a true positive; flags elsewhere
    are false positives; silence is a false negative).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = np.random.default_rng(seed)
    injector = FaultInjector(rng=rng)
    counts = ConfusionCounts()

    if detector == "block":
        if bound == "empirical":
            from repro.core.calibration import EmpiricalBound

            block_detector = BlockAbftDetector(
                matrix,
                AbftConfig(block_size=block_size),
                bound_override=EmpiricalBound.calibrate(
                    matrix, block_size=block_size, samples=40, seed=seed + 1
                ),
            )
        else:
            block_detector = BlockAbftDetector(
                matrix, AbftConfig(block_size=block_size, bound=bound)
            )
    else:
        block_detector = None
    dense_detector = DenseChecksum(matrix) if detector == "dense" else None
    if block_detector is None and dense_detector is None:
        raise ConfigurationError(f"unknown detector kind {detector!r}")

    for _ in range(trials):
        b = rng.standard_normal(matrix.n_cols) * 10.0 ** rng.integers(-2, 3)
        r = matrix.matvec(b)

        if block_detector is not None:
            t1 = block_detector.operand_checksums(b)
            beta = block_detector.operand_norm(b)
            clean_report = block_detector.compare(
                t1, block_detector.result_checksums(r), beta
            )
            counts.false_positives += int(clean_report.flagged.size)
            if clean_report.clean:
                counts.true_negatives += 1

            try:
                record = injector.corrupt_random_element(r, sigma=sigma)
            except InjectionError:
                continue  # pathological element; skip the trial
            target_block = record.index // block_size
            report = block_detector.compare(
                t1, block_detector.result_checksums(r), beta
            )
            flagged = set(int(x) for x in report.flagged)
            if target_block in flagged:
                counts.true_positives += 1
            else:
                counts.false_negatives += 1
            counts.false_positives += len(flagged - {target_block})
        else:
            clean_report = dense_detector.check(b, r)
            if clean_report.detected:
                counts.false_positives += 1
            else:
                counts.true_negatives += 1

            try:
                injector.corrupt_random_element(r, sigma=sigma)
            except InjectionError:
                continue
            report = dense_detector.check(b, r)
            if report.detected:
                counts.true_positives += 1
            else:
                counts.false_negatives += 1

    return CoverageResult(counts=counts, trials=trials, sigma=sigma, detector=detector)


@dataclass(frozen=True)
class CorrectionTiming:
    """Average simulated runtimes of one correction campaign."""

    scheme: str
    mean_protected_seconds: float
    plain_seconds: float
    trials: int

    @property
    def overhead(self) -> float:
        return self.mean_protected_seconds / self.plain_seconds - 1.0


def run_correction_campaign(
    matrix: CsrMatrix,
    scheme: CorrectionScheme,
    trials: int = 50,
    seed: int = 0,
    block_size: int = 32,
    machine: Machine | None = None,
) -> CorrectionTiming:
    """Measure detection+correction overhead under guaranteed-visible errors.

    Every trial injects one error large enough that *all* compared methods
    detect it (the paper triggers corrections in every evaluated method),
    then runs the scheme's full pipeline and records simulated time.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = machine or Machine()
    rng = np.random.default_rng(seed)

    if scheme == "ours":
        operator = FaultTolerantSpMV(
            matrix, config=AbftConfig(block_size=block_size), machine=machine
        )
    elif scheme == "partial":
        operator = PartialRecomputationSpMV(matrix, machine=machine)
    elif scheme == "complete":
        operator = CompleteRecomputationSpMV(matrix, machine=machine)
    else:
        raise ConfigurationError(f"unknown correction scheme {scheme!r}")

    total = 0.0
    for _ in range(trials):
        b = rng.standard_normal(matrix.n_cols)
        # An error above the norm bound so even the dense check fires.
        magnitude = 10.0 * float(np.linalg.norm(b)) * (1.0 + rng.random())
        index = int(rng.integers(0, matrix.n_rows))
        state = {"armed": True}

        def tamper(stage, data, work):
            if stage == "result" and state["armed"]:
                data[index] += magnitude
                state["armed"] = False

        result = operator.multiply(b, tamper=tamper)
        total += result.seconds

    plain_meter = ExecutionMeter(machine=machine)
    plain_spmv(matrix, rng.standard_normal(matrix.n_cols), meter=plain_meter)
    return CorrectionTiming(
        scheme=scheme,
        mean_protected_seconds=total / trials,
        plain_seconds=plain_meter.seconds,
        trials=trials,
    )
