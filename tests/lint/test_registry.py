"""Rule-registry behavior (mirrors the kernel-registry contract)."""

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    BUILTIN_RULES,
    LintRule,
    available_rules,
    get_rule,
    register_rule,
    resolve_rules,
    unregister_rule,
)


class DummyRule(LintRule):
    rule_id = "TEST901"
    title = "dummy"
    rationale = "test-only"

    def check(self, module):
        return iter(())


@pytest.fixture
def dummy():
    rule = register_rule(DummyRule())
    yield rule
    unregister_rule("TEST901")


def test_builtin_pack_is_registered():
    assert set(BUILTIN_RULES) <= set(available_rules())
    for rule_id in BUILTIN_RULES:
        rule = get_rule(rule_id)
        assert rule.rule_id == rule_id
        assert rule.title and rule.rationale


def test_register_and_unregister_custom_rule(dummy):
    assert "TEST901" in available_rules()
    assert get_rule("TEST901") is dummy


def test_duplicate_registration_requires_overwrite(dummy):
    with pytest.raises(ConfigurationError):
        register_rule(DummyRule())
    replacement = register_rule(DummyRule(), overwrite=True)
    assert get_rule("TEST901") is replacement


def test_builtins_cannot_be_unregistered():
    with pytest.raises(ConfigurationError):
        unregister_rule("ABFT001")
    assert "ABFT001" in available_rules()


def test_non_rule_rejected():
    with pytest.raises(ConfigurationError):
        register_rule(object())  # type: ignore[arg-type]


def test_unknown_rule_lookup_raises():
    with pytest.raises(ConfigurationError):
        get_rule("NOPE999")


def test_resolve_rules_select_and_ignore():
    ids = [rule.rule_id for rule in resolve_rules(select=("ABFT003", "ABFT001"))]
    assert ids == ["ABFT003", "ABFT001"]
    ids = [rule.rule_id for rule in resolve_rules(ignore=("ABFT002",))]
    assert "ABFT002" not in ids and "ABFT001" in ids


def test_resolve_rules_rejects_unknown_ids():
    with pytest.raises(ConfigurationError):
        resolve_rules(select=("ABFT003", "TYPO001"))
    with pytest.raises(ConfigurationError):
        resolve_rules(ignore=("TYPO001",))
