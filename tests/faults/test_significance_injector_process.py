"""Unit tests for significance filtering, the injector, and the error process."""

import math

import numpy as np
import pytest

from repro.errors import InjectionError
from repro.faults import (
    ErrorProcess,
    FaultInjector,
    corrupt_significantly,
    is_significant,
)


# ----------------------------------------------------------------------
# Significance
# ----------------------------------------------------------------------
def test_is_significant_detects_large_relative_change():
    assert is_significant(1.0, 1.1, sigma=1e-8)
    assert is_significant(1.0, 0.9, sigma=1e-8)


def test_is_significant_rejects_tiny_change():
    assert not is_significant(1.0, 1.0 + 1e-14, sigma=1e-8)


def test_is_significant_boundary():
    sigma = 1e-3
    assert not is_significant(1.0, 1.0 + 5e-4, sigma)
    assert is_significant(1.0, 1.0 + 2e-3, sigma)


def test_nonfinite_is_always_significant():
    assert is_significant(1.0, math.inf, sigma=1e-8)
    assert is_significant(1.0, math.nan, sigma=1e-8)


def test_zero_original_any_nonzero_is_significant():
    assert is_significant(0.0, 1e-300, sigma=1e-8)


def test_is_significant_rejects_negative_sigma():
    with pytest.raises(InjectionError):
        is_significant(1.0, 2.0, sigma=-1.0)


def test_corrupt_significantly_respects_sigma():
    rng = np.random.default_rng(0)
    for _ in range(200):
        corrupted, _ = corrupt_significantly(3.7, rng, sigma=1e-8)
        assert is_significant(3.7, corrupted, 1e-8)
        assert corrupted != 3.7


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
def test_corrupt_element_modifies_in_place_and_logs():
    injector = FaultInjector.seeded(1)
    vec = np.array([1.0, 2.0, 3.0])
    record = injector.corrupt_element(vec, 1)
    assert vec[1] == record.corrupted
    assert record.original == 2.0
    assert record.index == 1
    assert injector.log == [record]


def test_corrupt_element_with_sigma_is_significant():
    injector = FaultInjector.seeded(2)
    vec = np.array([5.0])
    record = injector.corrupt_element(vec, 0, sigma=1e-10)
    assert is_significant(5.0, record.corrupted, 1e-10)


def test_corrupt_element_validation():
    injector = FaultInjector.seeded(3)
    with pytest.raises(InjectionError):
        injector.corrupt_element(np.array([1.0]), 5)
    with pytest.raises(InjectionError):
        injector.corrupt_element(np.array([1], dtype=np.int64), 0)


def test_corrupt_element_float32_survives_storage_rounding():
    """Bursts into narrow-dtype vectors stay σ-significant *after* the
    write: the recorded corruption is exactly the stored float32 value."""
    injector = FaultInjector.seeded(4)
    rng = np.random.default_rng(9)
    for _ in range(200):
        vec = rng.standard_normal(8).astype(np.float32)
        original = float(vec[3])
        record = injector.corrupt_element(vec, 3, sigma=1e-5)
        # NaN/inf bursts are always significant; assert_array_equal is
        # NaN-aware where == is not.
        np.testing.assert_array_equal(record.corrupted, float(vec[3]))
        assert is_significant(original, float(vec[3]), 1e-5)


def test_corrupt_element_float64_is_single_draw():
    """float64 storage rounds nothing away, so the resample loop accepts
    the first draw — the RNG stream matches one direct burst draw."""
    injector = FaultInjector.seeded(5)
    vec = np.array([2.5, -1.0])
    record = injector.corrupt_element(vec, 0, sigma=1e-10)
    reference, _ = corrupt_significantly(2.5, np.random.default_rng(5), 1e-10)
    assert record.corrupted == reference
    assert vec[0] == reference


def test_corrupt_random_element_hits_all_positions():
    injector = FaultInjector.seeded(4)
    vec = np.ones(4)
    hits = set()
    for _ in range(200):
        fresh = np.ones(4)
        hits.add(injector.corrupt_random_element(fresh).index)
    assert hits == {0, 1, 2, 3}
    del vec


def test_corrupt_random_element_rejects_empty():
    with pytest.raises(InjectionError):
        FaultInjector.seeded(5).corrupt_random_element(np.empty(0))


def test_corrupt_scalar_logs_with_sentinel_index():
    injector = FaultInjector.seeded(6)
    corrupted = injector.corrupt_scalar(9.0, target="detection")
    record = injector.log[-1]
    assert record.index == -1
    assert record.target == "detection"
    assert record.corrupted == corrupted


def test_injections_into_filters_by_target():
    injector = FaultInjector.seeded(7)
    vec = np.ones(3)
    injector.corrupt_element(vec, 0, target="result")
    injector.corrupt_scalar(1.0, target="detection")
    assert len(injector.injections_into("result")) == 1
    assert len(injector.injections_into("detection")) == 1
    injector.clear()
    assert injector.log == []


# ----------------------------------------------------------------------
# Error process
# ----------------------------------------------------------------------
def test_zero_rate_never_fires():
    process = ErrorProcess(0.0, np.random.default_rng(0))
    assert process.events_in(1e12) == 0


def test_negative_rate_rejected():
    with pytest.raises(InjectionError):
        ErrorProcess(-1.0, np.random.default_rng(0))


def test_negative_advance_rejected():
    process = ErrorProcess(0.1, np.random.default_rng(0))
    with pytest.raises(InjectionError):
        process.events_in(-5)


def test_event_count_matches_poisson_mean():
    rng = np.random.default_rng(8)
    process = ErrorProcess(1e-3, rng)
    total = sum(process.events_in(10_000) for _ in range(100))
    # Expect 1e-3 * 1e6 = 1000 events; Poisson sd ~ 32.
    assert abs(total - 1000) < 150


def test_splitting_interval_preserves_state():
    rng_a = np.random.default_rng(9)
    rng_b = np.random.default_rng(9)
    whole = ErrorProcess(1e-2, rng_a)
    split = ErrorProcess(1e-2, rng_b)
    count_whole = whole.events_in(10_000)
    count_split = sum(split.events_in(100) for _ in range(100))
    assert count_whole == count_split


def test_position_advances():
    process = ErrorProcess(0.0, np.random.default_rng(0))
    process.events_in(500)
    assert process.position == 500


def test_expected_events():
    process = ErrorProcess(1e-4, np.random.default_rng(0))
    assert process.expected_events(1e6) == pytest.approx(100.0)
