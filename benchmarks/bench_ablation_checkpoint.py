"""Ablation — checkpoint interval (DESIGN.md decision 6).

The paper's checkpointing baseline snapshots every 20 solver iterations.
Short intervals pay constant snapshot traffic; long intervals lose more
work per rollback ([25]'s trade-off).  Swept at a moderate error rate.
"""

import numpy as np
from conftest import PCG_MAX_ITERATION_FACTOR, write_result

from repro.analysis import format_table
from repro.solvers import FtPcgOptions, run_pcg
from repro.sparse import suite_matrix

INTERVALS = (5, 20, 80)
ERROR_RATE = 3e-6
RUNS = 6


def test_checkpoint_interval_ablation(benchmark):
    matrix = suite_matrix("bcsstk21")
    rng = np.random.default_rng(31)
    b = matrix.matvec(rng.standard_normal(matrix.n_rows))

    clean = run_pcg(matrix, b, scheme="unprotected", error_rate=0.0, seed=0)
    rows = []
    stats = {}
    for interval in INTERVALS:
        options = FtPcgOptions(
            checkpoint_interval=interval,
            max_iteration_factor=PCG_MAX_ITERATION_FACTOR,
        )
        seconds, correct, rollbacks, saves = [], 0, 0, 0
        for seed in range(RUNS):
            result = run_pcg(
                matrix, b, scheme="checkpoint", error_rate=ERROR_RATE,
                seed=seed, options=options,
            )
            correct += result.correct
            rollbacks += result.rollbacks
            saves += result.checkpoint_saves
            if result.correct:
                seconds.append(result.seconds)
        overhead = (
            float(np.mean(seconds)) / clean.seconds - 1.0 if seconds else float("nan")
        )
        stats[interval] = (overhead, correct)
        rows.append(
            (
                interval,
                f"{overhead:.1%}" if seconds else "-",
                f"{correct}/{RUNS}",
                f"{saves / RUNS:.1f}",
                f"{rollbacks / RUNS:.1f}",
            )
        )
    table = format_table(
        ("interval", "overhead", "correct", "saves/run", "rollbacks/run"),
        rows,
        title=f"Ablation — checkpoint interval (bcsstk21 analogue, lambda={ERROR_RATE:g})",
    )
    write_result("ablation_checkpoint", table)

    # More frequent snapshots -> at least as many saves per run.
    assert all(stats[i][1] >= 0 for i in INTERVALS)

    options = FtPcgOptions(
        checkpoint_interval=20, max_iteration_factor=PCG_MAX_ITERATION_FACTOR
    )
    benchmark.pedantic(
        lambda: run_pcg(
            matrix, b, scheme="checkpoint", error_rate=ERROR_RATE, seed=99,
            options=options,
        ),
        rounds=1,
        iterations=1,
    )
