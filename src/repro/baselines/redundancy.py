"""Redundant-execution baselines: DWC and TMR (paper Section II).

The paper's related work opens with modular redundancy: "redundant
execution techniques such as triple modular redundancy (TMR) are applied
to provide fault tolerance for highly critical applications.  However,
duplication or even triplication of procedures induce high costs".  These
two schemes make that cost concrete on the same driver contract as the
ABFT schemes:

* **DWC** (duplication with comparison): run the SpMV twice, compare
  elementwise; a mismatch detects (and localizes) errors, corrected by a
  third tie-breaking execution per disagreeing element range.
* **TMR** (triple modular redundancy): run three times, take the
  elementwise majority; silent unless two copies disagree everywhere.

Both assume errors strike the two/three executions independently — the
transient-fault assumption the paper shares.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.scheme import BaselineContext
from repro.core.corrector import TamperHook
from repro.machine import ExecutionMeter, Machine, TaskGraph, pointwise_cost, spmv_cost
from repro.schemes.result import ProtectedSpmvResult
from repro.sparse.csr import CsrMatrix


def _contiguous_ranges(indices: np.ndarray) -> list[tuple[int, int]]:
    """Collapse sorted indices into maximal contiguous [start, stop) ranges."""
    if indices.size == 0:
        return []
    breaks = np.nonzero(np.diff(indices) > 1)[0]
    starts = np.concatenate([[0], breaks + 1])
    stops = np.concatenate([breaks, [indices.size - 1]])
    return [(int(indices[a]), int(indices[b]) + 1) for a, b in zip(starts, stops)]


class DwcSpMV(BaselineContext):
    """Duplication with comparison.

    Two executions on separate streams; elementwise disagreement both
    detects and localizes.  Disagreeing elements are settled by a third
    partial execution (two-out-of-three per element).
    """

    name = "redundancy"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        max_rounds: int = 8,
        kernel: object = None,
        telemetry: object = None,
    ) -> None:
        super().__init__(matrix, machine=machine, kernel=kernel, telemetry=telemetry)
        self.max_rounds = max_rounds

    def _duplicate_graph(self) -> TaskGraph:
        matrix = self.matrix
        cost = spmv_cost(matrix.nnz, int(matrix.row_lengths().max(initial=1)))
        graph = TaskGraph()
        graph.add("spmv-a", cost.work, cost.span)
        graph.add("spmv-b", cost.work, cost.span)
        compare = pointwise_cost(matrix.n_rows)
        graph.add("compare", compare.work, compare.span + 3.0, deps=["spmv-a", "spmv-b"])
        return graph

    def detection_graph(self) -> TaskGraph:
        """Task graph of one multiply's detection phase (the duplicate run)."""
        return self._duplicate_graph()

    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> ProtectedSpmvResult:
        """One protected multiply (tamper contract as the other schemes:
        each redundant execution's output passes through the hook)."""
        matrix = self.matrix
        meter = self._meter(meter)
        start_seconds, start_flops = meter.snapshot()
        work = 2.0 * matrix.nnz

        with self.telemetry.span(
            self._span_name, rows=matrix.n_rows, nnz=matrix.nnz
        ):
            meter.run_graph(self._duplicate_graph())
            first = matrix.matvec(b)
            if tamper is not None:
                tamper("result", first, work)
            second = matrix.matvec(b)
            if tamper is not None:
                tamper("result", second, work)

            with np.errstate(invalid="ignore"):
                disagree = ~(first == second)  # NaN != NaN -> flagged, as desired
            detections = [bool(disagree.any())]
            self._record_check(detections[0])
            corrections: list[tuple[int, int]] = []
            rounds = 0
            exhausted = False
            value = first
            while disagree.any():
                if rounds >= self.max_rounds:
                    exhausted = True
                    break
                rounds += 1
                self._record_correction()
                ranges = _contiguous_ranges(np.nonzero(disagree)[0])
                graph = TaskGraph()
                for index, (start, stop) in enumerate(ranges):
                    # Tie-breaking third execution of the disagreeing range,
                    # through the injected kernel set.
                    rows = np.arange(start, stop, dtype=np.int64)
                    third, nnz = self.kernels.row_checksums(matrix, rows, b)
                    cost = spmv_cost(
                        int(nnz), int(matrix.row_lengths().max(initial=1))
                    )
                    graph.add(f"tiebreak{index}", cost.work, cost.span)
                    if tamper is not None:
                        tamper("corrected", third, 2.0 * nnz)
                    # Majority vote per element among (first, second, third).
                    local = slice(start, stop)
                    agree_first = first[local] == third
                    agree_second = second[local] == third
                    settled = np.where(
                        agree_first | agree_second, third, first[local]
                    )
                    value[local] = settled
                    corrections.append((start, stop))
                meter.run_graph(graph)
                # Re-compare only where we intervened: accept majority outcomes.
                with np.errstate(invalid="ignore"):
                    still = np.zeros_like(disagree)
                    for start, stop in ranges:
                        seg = slice(start, stop)
                        still[seg] = ~np.isfinite(value[seg])
                disagree = still
                detections.append(bool(disagree.any()))
                self._record_check(detections[-1])

        seconds, flops = meter.snapshot()
        return ProtectedSpmvResult(
            value=value,
            detections=tuple(detections),
            corrections=tuple(corrections),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )


class TmrSpMV(BaselineContext):
    """Triple modular redundancy: three executions, elementwise majority."""

    name = "tmr"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        kernel: object = None,
        telemetry: object = None,
    ) -> None:
        super().__init__(matrix, machine=machine, kernel=kernel, telemetry=telemetry)

    def _triplicate_graph(self) -> TaskGraph:
        matrix = self.matrix
        cost = spmv_cost(matrix.nnz, int(matrix.row_lengths().max(initial=1)))
        graph = TaskGraph()
        for stream in ("a", "b", "c"):
            graph.add(f"spmv-{stream}", cost.work, cost.span)
        vote = pointwise_cost(matrix.n_rows)
        graph.add(
            "vote", 2.0 * vote.work, vote.span + 3.0,
            deps=["spmv-a", "spmv-b", "spmv-c"],
        )
        return graph

    def detection_graph(self) -> TaskGraph:
        """Task graph of one multiply's detection phase (the voted run)."""
        return self._triplicate_graph()

    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> ProtectedSpmvResult:
        """One voted multiply; a detection is any element without unanimity."""
        matrix = self.matrix
        meter = self._meter(meter)
        start_seconds, start_flops = meter.snapshot()
        work = 2.0 * matrix.nnz

        with self.telemetry.span(
            self._span_name, rows=matrix.n_rows, nnz=matrix.nnz
        ):
            meter.run_graph(self._triplicate_graph())
            copies = []
            for _ in range(3):
                copy = matrix.matvec(b)
                if tamper is not None:
                    tamper("result", copy, work)
                copies.append(copy)
            a, second, c = copies
            with np.errstate(invalid="ignore"):
                value = np.where(a == second, a, np.where(a == c, a, second))
                unanimous = (a == second) & (second == c)
            detected = bool((~unanimous).any())
            self._record_check(detected)
            if detected:
                self._record_correction()

        seconds, flops = meter.snapshot()
        return ProtectedSpmvResult(
            value=value,
            detections=(detected,),
            corrections=tuple(
                (int(i), int(i) + 1) for i in np.nonzero(~unanimous)[0][:64]
            ),
            rounds=1 if detected else 0,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=False,
        )
