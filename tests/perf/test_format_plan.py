"""Format-aware planned execution: selection, dispatch and correctness.

Complements ``test_plan.py`` (which pins the CSR bit-identity contract):
here the plan runs on BSR/ELL storage, where the value is bit-identical
to the *storage format's* own matvec (the shard executors replay its
summation) and bound-level close to the CSR reference.
"""

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.errors import ConfigurationError
from repro.obs import InMemoryExporter, Telemetry
from repro.perf import ProtectedPlan, SpmvPlan
from repro.solvers.ft_pcg import FtPcgOptions, run_pcg
from repro.sparse import (
    FORMAT_ENV_VAR,
    BsrMatrix,
    block_stencil_spd,
    build_format,
    random_spd,
)

BLOCK = 16


@pytest.fixture(autouse=True)
def _clean_format_env(monkeypatch):
    """Selection tests need a known baseline: no ambient REPRO_FORMAT."""
    monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)


@pytest.fixture
def blocky():
    """FEM-style block-structured matrix (BSR fill 1.0 at 8x8)."""
    return block_stencil_spd(48, 8, seed=31)


@pytest.fixture
def hostile():
    """Unstructured scatter: auto-selection must keep CSR."""
    return random_spd(256, 2500, seed=21)


def _operator(matrix, **config_kwargs):
    return FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK, **config_kwargs)
    )


def one_shot_burst(index=0):
    state = {"done": False}

    def hook(stage, data, work):
        if stage == "result" and not state["done"]:
            data[index] += 1e3
            state["done"] = True

    return hook


# ----------------------------------------------------------------------
# Selection plumbing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("requested", ["bsr", "ell"])
def test_explicit_format_request_builds_storage(blocky, requested):
    plan = _operator(blocky).planned(sparse_format=requested)
    assert plan.sparse_format == requested
    assert plan.format_choice.requested == requested
    assert plan.format_choice.reason == "requested explicitly"
    assert plan.spmv.storage is not None
    assert plan.spmv.storage.format_name == requested


def test_default_plan_stays_csr(blocky):
    plan = _operator(blocky).planned()
    assert plan.sparse_format == "csr"
    assert plan.spmv.storage is None


def test_auto_selects_bsr_on_block_structure(blocky):
    plan = _operator(blocky).planned(sparse_format="auto")
    assert plan.sparse_format == "bsr"
    assert plan.format_choice.fill_ratio == 1.0
    assert plan.format_choice.block_shape == (8, 8)


def test_auto_keeps_csr_on_hostile_input(hostile):
    plan = _operator(hostile).planned(sparse_format="auto")
    assert plan.sparse_format == "csr"
    assert plan.spmv.storage is None
    assert "safe default" in plan.format_choice.reason


def test_env_override_beats_config(blocky, monkeypatch):
    op = _operator(blocky, sparse_format="ell")
    assert op.planned().sparse_format == "ell"
    monkeypatch.setenv(FORMAT_ENV_VAR, "bsr")
    assert _operator(blocky, sparse_format="ell").planned().sparse_format == "bsr"


def test_explicit_argument_beats_env(blocky, monkeypatch):
    monkeypatch.setenv(FORMAT_ENV_VAR, "bsr")
    plan = _operator(blocky).planned(sparse_format="csr")
    assert plan.sparse_format == "csr"


def test_config_rejects_unknown_format():
    with pytest.raises(ConfigurationError, match="unknown sparse format"):
        AbftConfig(sparse_format="hypersparse")


def test_planned_cache_is_keyed_on_format(blocky):
    op = _operator(blocky)
    bsr_plan = op.planned(sparse_format="bsr")
    assert op.planned(sparse_format="bsr") is bsr_plan
    ell_plan = op.planned(sparse_format="ell")
    assert ell_plan is not bsr_plan
    assert ell_plan.sparse_format == "ell"


def test_processes_backend_coerces_to_csr(blocky):
    plan = ProtectedPlan(_operator(blocky), parallel="processes",
                         sparse_format="bsr")
    try:
        assert plan.sparse_format == "csr"
        assert plan.format_choice.requested == "bsr"
        assert "shared memory" in plan.format_choice.reason
    finally:
        plan.close()


def test_spmv_plan_rejects_workspace_with_storage(blocky):
    storage = BsrMatrix.from_csr(blocky, 8)
    with pytest.raises(ConfigurationError, match="workspace"):
        SpmvPlan(blocky, storage=storage, workspace=np.empty(blocky.nnz))


# ----------------------------------------------------------------------
# Execution: clean multiplies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("requested", ["bsr", "ell"])
@pytest.mark.parametrize("n_shards", [1, 3])
def test_clean_multiply_bit_identical_to_storage(blocky, requested, n_shards):
    op = _operator(blocky)
    plan = ProtectedPlan(op, n_shards=n_shards, sparse_format=requested)
    storage = build_format(blocky, requested)
    b = np.random.default_rng(1).standard_normal(blocky.n_cols)
    reference = op.multiply(b)
    for _ in range(3):
        result = plan.multiply(b)
        # Bit-identical to the storage format's own summation...
        np.testing.assert_array_equal(result.value, storage.matvec(b))
        # ...and bound-level close to the CSR reference.
        np.testing.assert_allclose(result.value, reference.value, rtol=1e-12)
        assert not any(result.detections)


@pytest.mark.parametrize("requested", ["bsr", "ell"])
def test_threaded_format_plan_matches_serial(blocky, requested):
    op = _operator(blocky)
    b = np.random.default_rng(2).standard_normal(blocky.n_cols)
    serial = ProtectedPlan(op, n_shards=3, parallel="serial",
                           sparse_format=requested).multiply(b).value.copy()
    with ProtectedPlan(op, n_shards=3, parallel="threads",
                       sparse_format=requested) as plan:
        np.testing.assert_array_equal(plan.multiply(b).value, serial)


# ----------------------------------------------------------------------
# Execution: detection and correction on format storage
# ----------------------------------------------------------------------
@pytest.mark.parametrize("requested", ["bsr", "ell"])
def test_tampered_multiply_corrects_on_format_storage(blocky, requested):
    """Tamper hooks route through the sequential fallback, whose
    correction kernels recompute flagged rows with the CSR reference:
    corrected rows carry CSR-recompute bits exactly, all other rows keep
    the storage pipeline's bits untouched."""
    op = _operator(blocky)
    plan = op.planned(sparse_format=requested)
    b = np.random.default_rng(3).standard_normal(blocky.n_cols)
    clean = plan.multiply(b).value.copy()
    result = plan.multiply(b, tamper=one_shot_burst(index=5))
    assert result.detections[0]
    assert result.corrected_blocks == (0,)
    # Block 0 (rows [0, BLOCK)) was recomputed through the CSR kernels...
    np.testing.assert_array_equal(
        result.value[:BLOCK], blocky.matvec(b)[:BLOCK]
    )
    np.testing.assert_allclose(result.value[:BLOCK], clean[:BLOCK], rtol=1e-12)
    # ...and every other row still holds the storage pipeline's bits.
    np.testing.assert_array_equal(result.value[BLOCK:], clean[BLOCK:])


@pytest.mark.parametrize("requested", ["bsr", "ell"])
def test_fused_threaded_correction_on_format_storage(blocky, requested):
    op = _operator(blocky, kernel="parallel")
    with ProtectedPlan(op, n_shards=3, parallel="threads",
                       sparse_format=requested) as plan:
        b = np.random.default_rng(4).standard_normal(blocky.n_cols)
        clean = plan.multiply(b).value.copy()
        result = plan.multiply(b, tamper=one_shot_burst(index=17))
        assert result.detections[0]
        assert result.corrected_blocks == (1,)
        np.testing.assert_array_equal(
            result.value[BLOCK : 2 * BLOCK],
            blocky.matvec(b)[BLOCK : 2 * BLOCK],
        )
        np.testing.assert_array_equal(result.value[: BLOCK], clean[: BLOCK])
        np.testing.assert_array_equal(
            result.value[2 * BLOCK :], clean[2 * BLOCK :]
        )


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_plan_format_span_emitted_for_non_csr(blocky):
    telemetry = Telemetry(exporter=InMemoryExporter())
    op = FaultTolerantSpMV(
        blocky, config=AbftConfig(block_size=BLOCK), telemetry=telemetry
    )
    op.planned(sparse_format="bsr")
    spans = [
        e for e in telemetry.events()
        if e["type"] == "span" and e["name"] == "plan.format"
    ]
    assert len(spans) == 1
    attrs = spans[0]["attrs"]
    assert attrs["format"] == "bsr"
    assert attrs["requested"] == "bsr"
    assert attrs["fill_ratio"] == 1.0
    assert "reason" in attrs


def test_no_format_span_for_default_csr(blocky):
    """Default-CSR plans keep their telemetry byte-identical to the
    unplanned operator (pinned by test_plan_telemetry_stream_matches_operator);
    the plan.format span only appears when a non-CSR format is requested."""
    telemetry = Telemetry(exporter=InMemoryExporter())
    op = FaultTolerantSpMV(
        blocky, config=AbftConfig(block_size=BLOCK), telemetry=telemetry
    )
    op.planned()
    assert not [
        e for e in telemetry.events()
        if e["type"] == "span" and e["name"] == "plan.format"
    ]


# ----------------------------------------------------------------------
# Solver integration
# ----------------------------------------------------------------------
def test_pcg_runs_on_bsr_storage(blocky):
    b = np.random.default_rng(5).standard_normal(blocky.n_cols)
    options = FtPcgOptions(block_size=BLOCK, sparse_format="bsr")
    result = run_pcg(blocky, b, scheme="abft", options=options)
    assert result.converged
    residual = b - blocky.matvec(result.x)
    assert np.linalg.norm(residual) <= options.tol * np.linalg.norm(b) * 10


def test_pcg_options_reject_unknown_format():
    with pytest.raises(ConfigurationError, match="unknown sparse format"):
        FtPcgOptions(sparse_format="dense")
