"""Simulated heterogeneous machine: task graphs, scheduler, kernel costs.

This package replaces the paper's CPU+GPU testbed with a deterministic
performance model (see DESIGN.md).  Runtime-overhead experiments are
*modeled* on this substrate; the real measured-time path is exercised by
the pytest-benchmark suite.
"""

from repro.machine.clock import ExecutionMeter
from repro.machine.costs import (
    BLOCKING_SYNC_SPAN,
    FLAG_SYNC_SPAN,
    HOST_SYNC_SPAN,
    blocking_norm_cost,
    KernelCost,
    axpy_cost,
    blocked_checksum_cost,
    checkpoint_restore_cost,
    compare_cost,
    result_checksum_cost,
    syndrome_cost,
    checkpoint_store_cost,
    checksum_matvec_cost,
    dense_check_cost,
    dot_cost,
    host_flag_cost,
    log2ceil,
    norm_cost,
    partial_spmv_cost,
    pointwise_cost,
    probe_cost,
    scale_cost,
    spmv_cost,
)
from repro.machine.graph import TaskGraph
from repro.machine.params import TESLA_K80, TESLA_K80_NO_OVERLAP, DeviceParams
from repro.machine.scheduler import Machine, Schedule, TaskTiming
from repro.machine.task import Task
from repro.machine.trace import render_gantt, utilization

__all__ = [
    "DeviceParams",
    "TESLA_K80",
    "TESLA_K80_NO_OVERLAP",
    "Task",
    "TaskGraph",
    "Machine",
    "Schedule",
    "TaskTiming",
    "ExecutionMeter",
    "render_gantt",
    "utilization",
    "KernelCost",
    "HOST_SYNC_SPAN",
    "BLOCKING_SYNC_SPAN",
    "FLAG_SYNC_SPAN",
    "blocking_norm_cost",
    "log2ceil",
    "spmv_cost",
    "partial_spmv_cost",
    "probe_cost",
    "dot_cost",
    "norm_cost",
    "axpy_cost",
    "scale_cost",
    "pointwise_cost",
    "blocked_checksum_cost",
    "result_checksum_cost",
    "syndrome_cost",
    "compare_cost",
    "checksum_matvec_cost",
    "dense_check_cost",
    "host_flag_cost",
    "checkpoint_store_cost",
    "checkpoint_restore_cost",
]
