"""Suppression-directive parsing and engine filtering."""

from pathlib import Path

from repro.lint import get_rule, lint_source, parse_suppressions

BAD_COMPARE = "flag = syndrome == 0.0"


def test_trailing_comment_covers_its_own_line():
    index = parse_suppressions(
        f"{BAD_COMPARE}  # reprolint: disable=ABFT003 -- exact-zero guard\n"
    )
    assert index.is_suppressed("ABFT003", 1)
    assert not index.is_suppressed("ABFT001", 1)
    assert not index.is_suppressed("ABFT003", 2)
    assert index.reasonless() == []


def test_standalone_comment_covers_next_code_line():
    source = (
        "x = 1\n"
        "# reprolint: disable=ABFT003 -- guard\n"
        "\n"
        f"{BAD_COMPARE}\n"
    )
    index = parse_suppressions(source)
    assert index.is_suppressed("ABFT003", 4)
    assert not index.is_suppressed("ABFT003", 1)


def test_disable_all_and_multiple_rules():
    source = (
        "a = 1  # reprolint: disable=all -- whatever\n"
        "b = 2  # reprolint: disable=ABFT003,ABFT004 -- both\n"
    )
    index = parse_suppressions(source)
    assert index.is_suppressed("ABFT001", 1)
    assert index.is_suppressed("ABFT006", 1)
    assert index.is_suppressed("ABFT003", 2)
    assert index.is_suppressed("ABFT004", 2)
    assert not index.is_suppressed("ABFT005", 2)


def test_disable_file_covers_every_line():
    source = (
        "# reprolint: disable-file=ABFT003 -- fixture corpus\n"
        f"{BAD_COMPARE}\n"
        f"{BAD_COMPARE}\n"
    )
    index = parse_suppressions(source)
    assert index.is_suppressed("ABFT003", 2)
    assert index.is_suppressed("ABFT003", 3)
    assert not index.is_suppressed("ABFT004", 2)


def test_reasonless_directives_are_tracked():
    index = parse_suppressions(f"{BAD_COMPARE}  # reprolint: disable=ABFT003\n")
    assert len(index.reasonless()) == 1
    assert index.is_suppressed("ABFT003", 1)


def test_directives_inside_string_literals_are_ignored():
    source = 's = "# reprolint: disable=ABFT003"\n' + BAD_COMPARE + "\n"
    index = parse_suppressions(source)
    assert not index.is_suppressed("ABFT003", 1)
    assert not index.is_suppressed("ABFT003", 2)


def test_engine_counts_suppressed_findings():
    source = (
        f"{BAD_COMPARE}  # reprolint: disable=ABFT003 -- guard\n"
        f"{BAD_COMPARE}\n"
    )
    findings, suppressed, reasonless = lint_source(
        source, Path("mod.py"), [get_rule("ABFT003")]
    )
    assert suppressed == 1
    assert [f.line for f in findings] == [2]
    assert reasonless == []
