"""Iterative-solver substrate: PCG, preconditioners, fault-tolerant drivers."""

from repro.solvers.ft_pcg import SCHEMES, FtPcgOptions, FtPcgResult, run_pcg
from repro.solvers.pcg import (
    DEFAULT_TOLERANCE,
    MAX_ITERATION_FACTOR,
    PcgResult,
    pcg,
)
from repro.solvers.preconditioners import (
    IdentityPreconditioner,
    IncompleteCholeskyPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    SsorPreconditioner,
    make_preconditioner,
)

__all__ = [
    "pcg",
    "PcgResult",
    "DEFAULT_TOLERANCE",
    "MAX_ITERATION_FACTOR",
    "run_pcg",
    "FtPcgOptions",
    "FtPcgResult",
    "SCHEMES",
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "SsorPreconditioner",
    "IncompleteCholeskyPreconditioner",
    "make_preconditioner",
]
