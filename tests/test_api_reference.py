"""Guard: docs/api_reference.md must match the live public API."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_api_reference_is_current():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from gen_api_reference import OUTPUT, generate
    finally:
        sys.path.pop(0)
    assert OUTPUT.exists(), "run: python tools/gen_api_reference.py"
    assert OUTPUT.read_text() == generate(), (
        "docs/api_reference.md is stale; run: python tools/gen_api_reference.py"
    )
