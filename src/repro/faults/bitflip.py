"""Bit-level fault model: bursts of bidirectional bit flips on float64.

Implements the paper's error model (Section IV-A): a transient event
corrupts the output of a floating-point instruction by XOR-ing a *burst* of
consecutive bits.  The burst position is uniform over the 64 bits of the
IEEE-754 double; the burst width is drawn from a normal distribution with
mean 3 and variance 2 (rounded, clipped to [1, 64]); flips are bidirectional
(XOR, so set bits clear and cleared bits set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InjectionError

#: Paper's burst-width distribution parameters (Section IV-A).
BURST_MEAN_BITS = 3.0
BURST_VARIANCE_BITS = 2.0


def float_to_bits(value: float) -> int:
    """Reinterpret a float64 as its 64-bit integer representation."""
    return int(np.float64(value).view(np.uint64))


def bits_to_float(bits: int) -> float:
    """Reinterpret a 64-bit integer as a float64."""
    if not 0 <= bits < 2**64:
        raise InjectionError(f"bit pattern out of 64-bit range: {bits:#x}")
    return float(np.uint64(bits).view(np.float64))


def apply_bitmask(value: float, mask: int) -> float:
    """XOR a float64's bit pattern with ``mask`` (bidirectional flips)."""
    if not 0 <= mask < 2**64:
        raise InjectionError(f"mask out of 64-bit range: {mask:#x}")
    return bits_to_float(float_to_bits(value) ^ mask)


@dataclass(frozen=True)
class Burst:
    """A contiguous burst of bit flips.

    Attributes:
        position: index of the least-significant flipped bit (0 = LSB of
            the mantissa, 63 = sign bit).
        width: number of consecutive flipped bits; the burst is clipped at
            bit 63 rather than wrapping.
    """

    position: int
    width: int

    def __post_init__(self) -> None:
        if not 0 <= self.position < 64:
            raise InjectionError(f"burst position must be in [0, 64), got {self.position}")
        if self.width < 1:
            raise InjectionError(f"burst width must be >= 1, got {self.width}")

    @property
    def mask(self) -> int:
        """The 64-bit XOR mask of this burst."""
        top = min(64, self.position + self.width)
        return ((1 << top) - 1) ^ ((1 << self.position) - 1)

    def apply(self, value: float) -> float:
        """Corrupt a float64 with this burst."""
        return apply_bitmask(value, self.mask)


def sample_burst(
    rng: np.random.Generator,
    mean_bits: float = BURST_MEAN_BITS,
    variance_bits: float = BURST_VARIANCE_BITS,
) -> Burst:
    """Draw a burst per the paper's distribution.

    Position ~ U{0..63}; width ~ round(N(mean, sqrt(variance))) clipped to
    [1, 64].
    """
    if variance_bits < 0:
        raise InjectionError(f"variance must be >= 0, got {variance_bits}")
    position = int(rng.integers(0, 64))
    width = int(round(rng.normal(mean_bits, np.sqrt(variance_bits))))
    width = max(1, min(64, width))
    return Burst(position=position, width=width)


def corrupt_value(
    value: float,
    rng: np.random.Generator,
    mean_bits: float = BURST_MEAN_BITS,
    variance_bits: float = BURST_VARIANCE_BITS,
) -> tuple[float, Burst]:
    """Corrupt one float64 with a sampled burst; returns (corrupted, burst).

    The corrupted value may be non-finite (a burst through the exponent can
    produce inf/NaN), exactly as on real hardware; detectors must cope.
    """
    burst = sample_burst(rng, mean_bits, variance_bits)
    return burst.apply(value), burst
