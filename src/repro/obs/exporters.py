"""Telemetry exporters and their pluggable registry.

An exporter receives one structured event dict per instrument update or
span completion.  Five ship built in:

* ``"off"`` — the :class:`NullExporter`; resolves to the process-wide
  disabled telemetry (the hot paths' zero-cost default);
* ``"memory"`` — :class:`InMemoryExporter`, buffers events in a list
  (the test exporter, and the substrate of determinism checks);
* ``"jsonl"`` — :class:`JsonlExporter`, appends one JSON object per line
  to the path named by :data:`OBS_PATH_ENV_VAR` (default
  ``obs-events.jsonl``), consumable by ``python -m repro.obs summarize``;
  emission is batched (encode + one ``O_APPEND`` write per
  :data:`DEFAULT_FLUSH_EVERY` events) so the per-event hot-path cost is
  a list append, and concurrent writers never interleave mid-line;
* ``"ring"`` — :class:`RingBufferExporter`, a bounded ring buffer: with
  a downstream sink it streams batches through a background writer
  thread (encode + write off the hot thread), without one it is a
  flight recorder keeping the newest :data:`DEFAULT_RING_CAPACITY`
  events and counting what it dropped (``events_dropped``);
* ``"text"`` — :class:`TextSummaryExporter`, buffers like ``"memory"``
  and renders the human-readable summary on :meth:`close`.

The registry mirrors :mod:`repro.kernels` / :mod:`repro.lint`: built-ins
are protected, custom exporters register a *factory* under a name and are
selectable through ``AbftConfig.telemetry`` or the ``REPRO_OBS``
environment override.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.errors import ConfigurationError

#: Environment variable overriding the configured exporter name.
OBS_ENV_VAR = "REPRO_OBS"

#: Environment variable naming the JSONL event-log path.
OBS_PATH_ENV_VAR = "REPRO_OBS_PATH"

#: Exporter selected when neither a name nor the environment picks one.
DEFAULT_EXPORTER = "off"

#: One telemetry event: flat JSON-serializable dict (see Telemetry).
Event = Dict[str, object]

#: Ring capacity when the ring exporter runs as a flight recorder.
DEFAULT_RING_CAPACITY = 4096

#: Batch size: buffered events per downstream write.
DEFAULT_FLUSH_EVERY = 128

#: Synthetic counter name reporting ring-buffer drops downstream.
EVENTS_DROPPED_COUNTER = "obs.events_dropped"


class Exporter:
    """Base class for event sinks; subclasses override :meth:`emit`."""

    #: Registry key of the built-in factories; informational for customs.
    name: str = "abstract"

    def emit(self, event: Event) -> None:
        """Receive one telemetry event."""
        raise NotImplementedError

    def emit_batch(self, events: Sequence[Event]) -> None:
        """Receive many events at once (default: emit one by one).

        Batch-aware sinks override this to amortize per-event costs —
        :class:`JsonlExporter` encodes and writes a whole batch with one
        system call.
        """
        for event in events:
            self.emit(event)

    def flush(self) -> None:
        """Push buffered events to their destination (no-op by default)."""

    def close(self) -> None:
        """Release resources; the exporter must tolerate repeated calls."""


class NullExporter(Exporter):
    """Discards every event (the ``"off"`` built-in)."""

    name = "off"

    def emit(self, event: Event) -> None:
        pass


class InMemoryExporter(Exporter):
    """Buffers events in :attr:`events` (the ``"memory"`` built-in)."""

    name = "memory"

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        """Drop all buffered events."""
        self.events.clear()


class JsonlExporter(Exporter):
    """Appends one JSON object per event to a log file.

    Events buffer in memory and hit the disk in batches: every
    ``flush_every`` events the pending batch is JSON-encoded in one pass
    and written with a *single* ``os.write`` on an ``O_APPEND`` file
    descriptor.  That keeps the per-event hot-path cost at a list append,
    and — because POSIX append writes are atomic per call — concurrent
    processes sharing one log (``REPRO_OBS_PATH``) never interleave
    mid-line.  The file opens lazily on the first write (selecting the
    exporter must not create files in runs that emit nothing); call
    :meth:`flush` (or :meth:`close`) to persist a partial batch.
    """

    name = "jsonl"

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        if path is None:
            path = os.environ.get(OBS_PATH_ENV_VAR) or "obs-events.jsonl"
        if int(flush_every) < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every!r}"
            )
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self._pending: List[Event] = []
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        with self._lock:
            self._pending.append(event)
            if len(self._pending) >= self.flush_every:
                self._write_pending()

    def emit_batch(self, events: Sequence[Event]) -> None:
        with self._lock:
            self._pending.extend(events)
            self._write_pending()

    def _write_pending(self) -> None:
        """Encode + append the pending batch (caller holds the lock)."""
        if not self._pending:
            return
        # Plain json.dumps reuses the module-cached C encoder; passing
        # separators= would build a fresh JSONEncoder per event and
        # nearly double the encode cost.
        data = b"".join(
            json.dumps(event).encode("utf-8") + b"\n" for event in self._pending
        )
        self._pending.clear()
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        os.write(self._fd, data)

    def flush(self) -> None:
        with self._lock:
            self._write_pending()

    def close(self) -> None:
        with self._lock:
            self._write_pending()
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


class RingBufferExporter(Exporter):
    """Bounded ring buffer: streaming front-end or standalone flight recorder.

    With a downstream ``sink`` the ring streams: :meth:`emit` is a list
    append plus a threshold check, and once ``flush_every`` events have
    buffered, a lazily started daemon *writer thread* drains the batch
    and hands it to ``sink.emit_batch`` — JSON encoding and file writes
    leave the hot thread entirely (``background=False`` keeps the drain
    synchronous on the emitting thread instead).  If the writer falls
    behind ``capacity`` buffered events, the oldest are dropped and
    counted rather than blocking the hot path.

    Without a sink it is a flight recorder: the newest ``capacity``
    events are kept for :meth:`drain`, older ones are dropped
    oldest-first and counted in :attr:`events_dropped`.  Either way the
    next drain or batch reports new drops as a synthetic
    :data:`EVENTS_DROPPED_COUNTER` counter event, so downstream
    summaries surface the loss instead of silently under-counting.
    """

    name = "ring"

    def __init__(
        self,
        sink: Optional[Exporter] = None,
        capacity: int = DEFAULT_RING_CAPACITY,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        background: bool = True,
    ) -> None:
        if int(capacity) < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity!r}")
        if int(flush_every) < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every!r}"
            )
        self.sink = sink
        self.capacity = int(capacity)
        self.flush_every = int(flush_every)
        self.background = bool(background)
        self.events_dropped = 0
        self._reported_drops = 0
        self._buffer: List[Event] = []
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._writer: Optional[threading.Thread] = None
        self._writing = False
        self._flush_requested = False
        self._stop = False

    def emit(self, event: Event) -> None:
        with self._lock:
            self._buffer.append(event)
            if len(self._buffer) > self.capacity:
                overflow = len(self._buffer) - self.capacity
                del self._buffer[0:overflow]
                self.events_dropped += overflow
            if self.sink is not None and len(self._buffer) >= self.flush_every:
                if self.background:
                    self._ensure_writer()
                    self._cond.notify()
                else:
                    batch = self._take_batch()
                    if batch:
                        self.sink.emit_batch(batch)

    def _drop_report(self) -> List[Event]:
        """Synthetic counter events for drops not yet reported."""
        new_drops = self.events_dropped - self._reported_drops
        if new_drops <= 0:
            return []
        self._reported_drops = self.events_dropped
        return [
            {
                "type": "counter",
                "name": EVENTS_DROPPED_COUNTER,
                "value": float(new_drops),
                "attrs": {},
                "t": 0.0,
            }
        ]

    def _take_batch(self) -> List[Event]:
        """Steal the buffer + drop report (caller holds the lock)."""
        batch = self._drop_report() + self._buffer
        self._buffer = []
        return batch

    # -- background writer -------------------------------------------------
    def _ensure_writer(self) -> None:
        """Start the writer thread (caller holds the lock)."""
        if self._writer is None or not self._writer.is_alive():
            self._writer = threading.Thread(
                target=self._writer_loop, name="repro-obs-ring-writer", daemon=True
            )
            self._writer.start()

    def _writer_loop(self) -> None:
        """Drain batches to the sink until :meth:`close` stops the loop.

        The periodic timeout also drains stragglers below the threshold,
        so a live-tailed log never lags more than a fraction of a second
        behind a quiescent producer.
        """
        while True:
            with self._cond:
                while (
                    not self._stop
                    and not self._flush_requested
                    and len(self._buffer) < self.flush_every
                ):
                    signaled = self._cond.wait(0.2)
                    if not signaled and self._buffer:
                        break  # straggler timeout: drain what we have
                self._flush_requested = False
                batch = self._take_batch()
                self._writing = bool(batch)
                stopping = self._stop
            if batch and self.sink is not None:
                self.sink.emit_batch(batch)
                with self._cond:
                    self._writing = False
                    self._cond.notify_all()
            if stopping and not batch:
                return

    @property
    def events(self) -> List[Event]:
        """Snapshot of the buffered events (flight-recorder reads)."""
        with self._lock:
            return list(self._buffer)

    def drain(self) -> List[Event]:
        """Remove and return the buffered events (drop report included)."""
        with self._lock:
            return self._take_batch()

    def flush(self) -> None:
        if self.sink is None:
            return
        with self._cond:
            if self.background and self._writer is not None and self._writer.is_alive():
                # Preserve strict FIFO order: let the writer drain, wait.
                self._flush_requested = True
                self._cond.notify_all()
                deadline = time.monotonic() + 5.0
                while (self._buffer or self._writing) and time.monotonic() < deadline:
                    self._cond.wait(0.02)
                batch: List[Event] = self._take_batch()  # writer died mid-wait?
            else:
                batch = self._take_batch()
        if batch:
            self.sink.emit_batch(batch)
        self.sink.flush()

    def close(self) -> None:
        writer = self._writer
        if writer is not None and writer.is_alive():
            with self._cond:
                self._stop = True
                self._cond.notify_all()
            if writer is not threading.current_thread():
                writer.join(timeout=5.0)
        self.flush()
        if self.sink is not None:
            self.sink.close()


class TextSummaryExporter(Exporter):
    """Buffers events and prints a rendered summary when closed.

    ``stream=None`` writes to stderr at close time (not at construction,
    so pytest capture and redirections are honoured).
    """

    name = "text"

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.events: List[Event] = []
        self._stream = stream

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def render(self, width: int = 48) -> str:
        """Render the buffered events as the human-readable summary."""
        from repro.obs.summary import render_summary

        return render_summary(self.events, width=width)

    def close(self) -> None:
        if not self.events:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            stream.write(self.render() + "\n")
        except (ValueError, io.UnsupportedOperation):  # closed stream at exit
            pass
        self.events = []


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
ExporterFactory = Callable[[], Exporter]

#: Exporter names that ship with the package and cannot be unregistered.
BUILTIN_EXPORTERS = ("off", "memory", "jsonl", "ring", "text")

_REGISTRY: Dict[str, ExporterFactory] = {
    "off": NullExporter,
    "memory": InMemoryExporter,
    "jsonl": JsonlExporter,
    "ring": RingBufferExporter,
    "text": TextSummaryExporter,
}


def register_exporter(
    name: str, factory: ExporterFactory, overwrite: bool = False
) -> ExporterFactory:
    """Register an exporter factory under ``name``; returns the factory."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"exporter name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ConfigurationError(
            f"exporter factory for {name!r} must be callable, got {type(factory).__name__}"
        )
    if name in BUILTIN_EXPORTERS:
        raise ConfigurationError(f"built-in exporter {name!r} cannot be replaced")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"exporter {name!r} already registered (pass overwrite=True)"
        )
    _REGISTRY[name] = factory
    return factory


def unregister_exporter(name: str) -> None:
    """Remove a registered exporter (primarily for test isolation)."""
    if name in BUILTIN_EXPORTERS:
        raise ConfigurationError(f"built-in exporter {name!r} cannot be removed")
    _REGISTRY.pop(name, None)


def available_exporters() -> Tuple[str, ...]:
    """Registered exporter names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_exporter(name: str) -> Exporter:
    """Instantiate the exporter registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown exporter {name!r}; expected one of {available_exporters()}"
        ) from None
    exporter = factory()
    if not isinstance(exporter, Exporter):
        raise ConfigurationError(
            f"exporter factory {name!r} returned {type(exporter).__name__}, "
            f"which is not an Exporter"
        )
    return exporter
