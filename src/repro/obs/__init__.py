"""repro.obs — ABFT protocol telemetry: counters, histograms, span tracing.

The paper's value proposition is quantitative (syndromes against
analytical bounds, partial instead of full recomputation); this subsystem
records the numbers the protected hot paths would otherwise discard:

* typed instruments in a process-local :class:`Registry` — monotonic
  :class:`Counter`\\ s (``abft.detections``, ``abft.corrections``,
  ``abft.blocks_recomputed``, ``abft.false_positive_candidates``,
  ``pcg.rollbacks``, ``faults.injections``), :class:`Gauge`\\ s and
  fixed log-bucket :class:`Histogram`\\ s (``abft.syndrome_margin``,
  ``abft.block_recompute_fraction``, per-span wall time);
* a :meth:`Telemetry.span` context-manager tracer with nesting and an
  injectable monotonic clock (deterministic event streams under test);
* pluggable exporters — in-memory, JSONL event log, text summary —
  selected via ``AbftConfig.telemetry`` or the ``REPRO_OBS`` environment
  override, with the registry contract of :mod:`repro.kernels`;
* a cross-process pipeline (:mod:`repro.obs.pipeline`): process-backend
  workers record into local registries and ship compact deltas back with
  each result, merged deterministically into the parent registry;
* ``python -m repro.obs`` tooling: ``summarize`` (text or ``--json``)
  renders a recorded run, ``report`` writes a markdown campaign report,
  ``expose`` prints OpenMetrics exposition text.

Telemetry is off by default and the disabled path costs a single
``if telemetry.enabled`` guard per update site (verified by
``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.exporters import (
    BUILTIN_EXPORTERS,
    DEFAULT_EXPORTER,
    DEFAULT_FLUSH_EVERY,
    DEFAULT_RING_CAPACITY,
    EVENTS_DROPPED_COUNTER,
    OBS_ENV_VAR,
    OBS_PATH_ENV_VAR,
    Event,
    Exporter,
    InMemoryExporter,
    JsonlExporter,
    NullExporter,
    RingBufferExporter,
    TextSummaryExporter,
    available_exporters,
    make_exporter,
    register_exporter,
    unregister_exporter,
)
from repro.obs.instruments import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    log_buckets,
)
from repro.obs.expose import (
    metric_name,
    registry_from_events,
    render_openmetrics,
)
from repro.obs.pipeline import (
    WorkerRecorder,
    apply_delta,
    capture_delta,
    merge_delta,
)
from repro.obs.report import render_report
from repro.obs.summary import (
    BucketedHistogram,
    EventSummary,
    SpanStats,
    WorkerStats,
    aggregate_events,
    load_events,
    read_events,
    render_summary,
    summary_as_dict,
)
from repro.obs.telemetry import (
    Span,
    Telemetry,
    reset_telemetry_cache,
    resolve_telemetry,
)
from repro.obs.timing import TimedKernels

__all__ = [
    # selection
    "OBS_ENV_VAR",
    "OBS_PATH_ENV_VAR",
    "DEFAULT_EXPORTER",
    "BUILTIN_EXPORTERS",
    "resolve_telemetry",
    "reset_telemetry_cache",
    # facade
    "Telemetry",
    "Span",
    "TimedKernels",
    # instruments
    "Registry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "DEFAULT_RATIO_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_FRACTION_BUCKETS",
    # exporters
    "Event",
    "Exporter",
    "NullExporter",
    "InMemoryExporter",
    "JsonlExporter",
    "RingBufferExporter",
    "TextSummaryExporter",
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_FLUSH_EVERY",
    "EVENTS_DROPPED_COUNTER",
    "register_exporter",
    "unregister_exporter",
    "available_exporters",
    "make_exporter",
    # cross-process pipeline
    "WorkerRecorder",
    "capture_delta",
    "apply_delta",
    "merge_delta",
    # summaries
    "EventSummary",
    "SpanStats",
    "BucketedHistogram",
    "WorkerStats",
    "aggregate_events",
    "load_events",
    "read_events",
    "render_summary",
    "summary_as_dict",
    # exposition + reports
    "metric_name",
    "registry_from_events",
    "render_openmetrics",
    "render_report",
]
