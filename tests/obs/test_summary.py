"""Summary aggregation: delta folding, bucketed quantiles, worker stats."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    BucketedHistogram,
    DEFAULT_TIME_BUCKETS,
    InMemoryExporter,
    Telemetry,
    WorkerRecorder,
    aggregate_events,
    load_events,
    merge_delta,
    read_events,
    render_summary,
    summary_as_dict,
)


def _delta_event(worker, seconds):
    """A realistic delta event: one worker kernel timing."""
    recorder = WorkerRecorder()
    recorder.telemetry.observe(
        "kernel.detect_shard.seconds", seconds, buckets=DEFAULT_TIME_BUCKETS
    )
    recorder.telemetry.count("abft.shard_checks")
    parent = Telemetry(exporter=InMemoryExporter())
    merge_delta(parent, worker, recorder.delta())
    return parent.events()[0]


# ----------------------------------------------------------------------
# Delta folding
# ----------------------------------------------------------------------
def test_delta_events_fold_into_histograms_and_workers():
    events = [_delta_event(0, 1e-3), _delta_event(1, 2e-3), _delta_event(0, 3e-3)]
    summary = aggregate_events(events)
    assert summary.n_events == 3
    assert summary.counters["abft.shard_checks"] == 3.0
    hist = summary.histograms["kernel.detect_shard.seconds"]
    assert hist.count == 3
    assert hist.sum == pytest.approx(6e-3)
    assert hist.min == pytest.approx(1e-3)
    assert hist.max == pytest.approx(3e-3)
    workers = summary.workers
    assert sorted(workers) == [0, 1]
    assert workers[0].deltas == 2 and workers[1].deltas == 1
    assert workers[0].kernel_count == 2 and workers[1].kernel_count == 1
    assert workers[0].kernel_seconds == pytest.approx(4e-3)


def test_batched_hist_events_aggregate_all_values():
    events = [
        {"type": "hist", "name": "m", "values": [0.1, 0.2], "attrs": {}},
        {"type": "hist", "name": "m", "value": 0.3, "attrs": {}},
    ]
    summary = aggregate_events(events)
    assert summary.histogram_values["m"] == [0.1, 0.2, 0.3]


def test_render_summary_includes_worker_sections():
    events = [_delta_event(0, 1e-3), _delta_event(1, 2e-3)]
    text = render_summary(events)
    assert "== worker histograms ==" in text
    assert "kernel.detect_shard.seconds" in text
    assert "== workers ==" in text


# ----------------------------------------------------------------------
# BucketedHistogram
# ----------------------------------------------------------------------
def test_bucketed_quantile_clamps_to_observed_extremes():
    hist = BucketedHistogram(edges=(1.0, 10.0, 100.0))
    for value in (2.0, 3.0, 50.0):
        hist.observe(value)
    # p50 bucket is (1, 10]; its upper edge 10 exceeds the observed max of
    # that data region but stays within [min, max] overall.
    assert hist.quantile(0.5) == 10.0
    assert hist.quantile(1.0) == 50.0  # clamped to the observed max
    assert hist.quantile(0.0) >= hist.min


def test_bucketed_quantile_empty_and_invalid():
    hist = BucketedHistogram(edges=(1.0, 2.0))
    assert math.isnan(hist.quantile(0.5))
    with pytest.raises(ConfigurationError):
        hist.quantile(1.5)


def test_bucketed_merge_rejects_wrong_width():
    hist = BucketedHistogram(edges=(1.0, 2.0))
    with pytest.raises(ConfigurationError):
        hist.merge_delta({"counts": [1, 2]})  # needs len(edges) + 1 slots


# ----------------------------------------------------------------------
# load_events
# ----------------------------------------------------------------------
def test_load_events_skips_and_counts_corrupt_lines(tmp_path):
    log = tmp_path / "events.jsonl"
    log.write_text(
        '{"type": "counter", "name": "c", "value": 1.0}\n'
        "garbage\n"
        '{"type": "counter", "name": "c", "va'  # torn mid-line
    )
    events, skipped = load_events(log)
    assert len(events) == 1 and skipped == 2
    with pytest.raises(ConfigurationError, match="not a JSON event"):
        read_events(log)


def test_load_events_missing_file_always_raises(tmp_path):
    with pytest.raises(ConfigurationError, match="does not exist"):
        load_events(tmp_path / "nope.jsonl")


# ----------------------------------------------------------------------
# summary_as_dict
# ----------------------------------------------------------------------
def test_summary_as_dict_round_trips_through_json():
    import json

    events = [
        _delta_event(0, 1e-3),
        {"type": "counter", "name": "abft.checks", "value": 2.0, "attrs": {}},
        {"type": "hist", "name": "m", "values": [0.1, 0.9], "attrs": {}},
        {"type": "span", "name": "s", "start": 0.0, "end": 0.5, "depth": 0},
    ]
    summary = aggregate_events(events)
    summary.skipped_lines = 1
    payload = json.loads(json.dumps(summary_as_dict(summary)))
    assert payload["skipped_lines"] == 1
    assert payload["counters"]["abft.checks"] == 2.0
    assert payload["histogram_values"]["m"]["count"] == 2
    assert payload["histograms"]["kernel.detect_shard.seconds"]["count"] == 1
    assert payload["workers"]["0"]["kernel_count"] == 1
    assert payload["spans"]["s"]["total"] == 0.5
