"""Complete-recomputation baseline (Shantharam et al. [31]).

Detection is the dense check; on error the *entire* SpMV is recomputed and
re-checked.  Correction cost therefore equals a full multiply plus another
dense check per round — the upper baseline of the paper's Figure 6.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.dense_check import DenseChecksum
from repro.baselines.scheme import BaselineContext
from repro.core.corrector import TamperHook
from repro.machine import ExecutionMeter, Machine, TaskGraph
from repro.schemes.result import ProtectedSpmvResult
from repro.sparse.csr import CsrMatrix


class CompleteRecomputationSpMV(BaselineContext):
    """Dense check + full recomputation on error."""

    name = "complete"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        max_rounds: int = 8,
        bound_scale: float = 1.0,
        kernel: object = None,
        telemetry: object = None,
    ) -> None:
        super().__init__(matrix, machine=machine, kernel=kernel, telemetry=telemetry)
        self.max_rounds = max_rounds
        self.checker = DenseChecksum(matrix, bound_scale=bound_scale)

    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> ProtectedSpmvResult:
        """One protected multiply (same driver contract as the core scheme)."""
        matrix = self.matrix
        meter = self._meter(meter)
        start_seconds, start_flops = meter.snapshot()

        with self.telemetry.span(
            self._span_name, rows=matrix.n_rows, nnz=matrix.nnz
        ):
            meter.run_graph(self.checker.detection_graph())
            r = matrix.matvec(b)
            if tamper is not None:
                tamper("result", r, 2.0 * matrix.nnz)
            report = self.checker.check(b, r, tamper)
            self._record_check(report.detected)

            detections = [report.detected]
            corrections: list[tuple[int, int]] = []
            rounds = 0
            exhausted = False
            while report.detected:
                if rounds >= self.max_rounds:
                    exhausted = True
                    break
                rounds += 1
                self._record_correction()
                # Full recomputation plus a complete re-check, routed through
                # the injected kernel set (bit-identical across kernels).
                meter.run_graph(self.checker.detection_graph())
                self._recompute_rows(b, r, 0, matrix.n_rows, tamper)
                corrections.append((0, matrix.n_rows))
                report = self.checker.check(b, r, tamper)
                detections.append(report.detected)
                self._record_check(report.detected)

        seconds, flops = meter.snapshot()
        return ProtectedSpmvResult(
            value=r,
            detections=tuple(detections),
            corrections=tuple(corrections),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )

    def detection_graph(self) -> TaskGraph:
        """Task graph of one multiply's detection phase."""
        return self.checker.detection_graph()
