"""Fixture: guarded telemetry writes and non-telemetry receivers."""


def multiply(telemetry, result):
    if telemetry.enabled:
        telemetry.count("abft.checks")
        telemetry.observe("abft.syndrome_margin", 0.5)
    return result


def early_return(telemetry, margins):
    if not telemetry.enabled:
        return
    telemetry.observe_many("abft.syndrome_margin", margins)


def early_return_guards_the_rest(tel, result):
    if not tel.enabled:
        return result
    tel.count("abft.checks")
    tel.gauge("pcg.residual", 0.5)
    return result


def enabled_branch_of_negated_test(telemetry, result):
    if not telemetry.enabled:
        pass
    else:
        telemetry.count("abft.checks")
    return result


def registry_observe_is_not_an_event(registry, margin):
    # Registry/instrument updates emit no events; only the Telemetry
    # facade methods pay the event-dict + clock cost.
    registry.histogram("abft.syndrome_margin").observe(margin)


def other_receivers_are_fine(recorder, margin):
    recorder.observe("abft.syndrome_margin", margin)
    recorder.count()


def span_needs_no_guard(telemetry):
    with telemetry.span("abft.multiply"):
        return 1
