"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation.  Results (paper-style text tables) are written to
``results/<experiment>.txt`` so EXPERIMENTS.md can reference them, and the
pytest-benchmark fixture times a representative unit of each harness.

Campaign sizes are scaled down from the paper's 100 000 trials (the
statistics converge far earlier); the knobs live here in one place.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import numpy as np
import pytest

from repro.sparse import SUITE_SPECS, iter_suite

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Trials per matrix for injection campaigns (paper: 100 000).
CORRECTION_TRIALS = 12
COVERAGE_TRIALS = 120

#: PCG case-study scale: matrices small enough that tens of full solves per
#: cell stay fast, runs per (scheme, rate) cell, and the iteration cap
#: factor (the paper's 10 never binds for convergent runs; 3 shortens the
#: doomed ones).
PCG_MATRICES = ("nos3", "bcsstk21", "bcsstk11", "ex3")
PCG_RUNS_PER_CELL = 4
PCG_MAX_ITERATION_FACTOR = 3


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under results/ (and echo it to stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[written to results/{name}.txt]")


def bench_env() -> dict:
    """Environment metadata embedded in every machine-readable result.

    Timings are meaningless without the hardware context — above all
    ``cpu_count``, which decides whether the parallel speedup targets are
    even achievable on the box that produced the numbers.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def write_json(name: str, payload: dict) -> None:
    """Persist machine-readable benchmark output as results/BENCH_<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[written to results/BENCH_{name}.json]")


@pytest.fixture(scope="session")
def full_suite():
    """All 25 Table I matrices (reduced-scale for the largest)."""
    return list(iter_suite())


@pytest.fixture(scope="session")
def pcg_suite():
    """The case-study subset used by the Figure 8/9 campaigns."""
    return list(iter_suite(names=PCG_MATRICES))


@pytest.fixture(scope="session")
def suite_specs():
    return SUITE_SPECS
