"""Unit tests for tasks and task graphs."""

import pytest

from repro.errors import SchedulerError
from repro.machine import Task, TaskGraph


def test_task_validation():
    with pytest.raises(SchedulerError):
        Task(name="", work=1.0)
    with pytest.raises(SchedulerError):
        Task(name="t", work=-1.0)
    with pytest.raises(SchedulerError):
        Task(name="t", span=-1.0)


def test_task_solo_duration_work_bound():
    task = Task("t", work=100.0, span=1.0)
    # throughput 10 flop/s, launch 1s, sync 0.1s: work bound dominates.
    assert task.solo_duration(10.0, 1.0, 0.1) == pytest.approx(1.0 + 10.0)


def test_task_solo_duration_span_bound():
    task = Task("t", work=1.0, span=50.0)
    assert task.solo_duration(1e9, 0.5, 0.1) == pytest.approx(0.5 + 5.0)


def test_task_zero_work_pays_launch_only():
    task = Task("t")
    assert task.solo_duration(1e9, 2.0, 0.1) == pytest.approx(2.0)


def test_graph_add_and_lookup():
    g = TaskGraph()
    g.add("a", work=1.0)
    g.add("b", work=2.0, deps=["a"])
    assert len(g) == 2
    assert "a" in g and "c" not in g
    assert g["b"].deps == ("a",)
    assert g.total_work() == 3.0


def test_graph_rejects_duplicate_names():
    g = TaskGraph()
    g.add("a")
    with pytest.raises(SchedulerError):
        g.add("a")


def test_graph_rejects_unknown_dependency():
    g = TaskGraph()
    with pytest.raises(SchedulerError):
        g.add("b", deps=["missing"])


def test_graph_add_task_object():
    g = TaskGraph()
    g.add_task(Task("x", work=5.0))
    with pytest.raises(SchedulerError):
        g.add_task(Task("x"))
    with pytest.raises(SchedulerError):
        g.add_task(Task("y", deps=("nope",)))


def test_successors():
    g = TaskGraph()
    g.add("a")
    g.add("b", deps=["a"])
    g.add("c", deps=["a", "b"])
    succ = g.successors()
    assert succ["a"] == ["b", "c"]
    assert succ["b"] == ["c"]
    assert succ["c"] == []


def test_critical_path_linear_chain():
    g = TaskGraph()
    g.add("a", work=10.0)
    g.add("b", work=20.0, deps=["a"])
    g.add("c", work=30.0, deps=["b"])
    # throughput 1 flop/s, no launch/sync: path = total work along chain.
    length, path = g.critical_path(1.0, 0.0, 0.0)
    assert length == pytest.approx(60.0)
    assert path == ["a", "b", "c"]


def test_critical_path_picks_longest_branch():
    g = TaskGraph()
    g.add("src", work=1.0)
    g.add("short", work=5.0, deps=["src"])
    g.add("long", work=50.0, deps=["src"])
    g.add("sink", work=1.0, deps=["short", "long"])
    length, path = g.critical_path(1.0, 0.0, 0.0)
    assert length == pytest.approx(52.0)
    assert path == ["src", "long", "sink"]


def test_critical_path_empty_graph():
    assert TaskGraph().critical_path(1.0, 0.0, 0.0) == (0.0, [])
