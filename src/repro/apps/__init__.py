"""Protected applications built on the core scheme (paper Section III-E).

Each application's inner loop multiplies a fixed sparse matrix every step,
the data-reuse pattern under which the checksum-matrix setup amortizes:

* :func:`power_iteration` / :func:`pagerank` — graph analytics;
* :func:`jacobi_solve` — a splitting solver counterpart to PCG.
"""

from repro.apps.jacobi import JacobiResult, jacobi_solve
from repro.apps.power import (
    PowerIterationResult,
    build_link_matrix,
    pagerank,
    power_iteration,
)

__all__ = [
    "power_iteration",
    "pagerank",
    "build_link_matrix",
    "PowerIterationResult",
    "jacobi_solve",
    "JacobiResult",
]
