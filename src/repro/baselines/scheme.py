"""Baseline plumbing: the shared result type and execution context.

The baselines mirror :class:`repro.core.FaultTolerantSpMV`'s driver contract
— ``multiply(b, tamper=None, meter=None)`` with the same tamper-hook stages
— so campaigns can swap schemes freely through :mod:`repro.schemes`.  Since
the registry refactor all schemes return the same unified
:class:`~repro.schemes.result.ProtectedSpmvResult`; ``BaselineSpmvResult``
remains as a compatibility alias (same field order, plus the block-id
fields the related-work schemes leave empty).
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.core.corrector import TamperHook
from repro.kernels import KernelSet, resolve_kernels
from repro.machine import ExecutionMeter, Machine
from repro.obs import Telemetry, resolve_telemetry
from repro.schemes.result import ProtectedSpmvResult
from repro.sparse.csr import CsrMatrix

#: Compatibility alias — the unified result type fixed the historical
#: ``clean``-on-empty-detections ``IndexError`` of the baseline-only type.
BaselineSpmvResult = ProtectedSpmvResult


class SpmvScheme(Protocol):
    """Anything that can run one protected SpMV (ours or a baseline).

    Superseded by the richer :class:`repro.schemes.ProtectionScheme`;
    kept because the narrower surface (just ``multiply``) is all some
    campaign code needs.
    """

    def multiply(
        self,
        b: np.ndarray,
        tamper: TamperHook | None = None,
        meter: ExecutionMeter | None = None,
    ) -> ProtectedSpmvResult: ...


class BaselineContext:
    """Injected execution context shared by every baseline scheme.

    Resolves the machine model, kernel set and telemetry stream once at
    construction so baseline hot paths (range recomputation, checksum
    refreshes) dispatch through the same registered kernels — and emit
    into the same telemetry stream — as the block-ABFT scheme, making
    overhead comparisons kernel-for-kernel.
    """

    #: Registry name; subclasses override.
    name: str = "baseline"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        kernel: object = None,
        telemetry: object = None,
    ) -> None:
        self.matrix = matrix
        self.machine = machine or Machine()
        self.telemetry: Telemetry = resolve_telemetry(telemetry)
        self.kernels: KernelSet = self.telemetry.wrap_kernels(resolve_kernels(kernel))
        self._span_name = f"scheme.{self.name}.multiply"

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _meter(self, meter: Optional[ExecutionMeter]) -> ExecutionMeter:
        return meter if meter is not None else ExecutionMeter(machine=self.machine)

    def _recompute_rows(
        self,
        b: np.ndarray,
        r: np.ndarray,
        start: int,
        stop: int,
        tamper: Optional[TamperHook],
    ) -> int:
        """Recompute result rows ``[start, stop)`` in place via the
        injected kernel set; returns the nnz touched.

        ``row_checksums`` dots each selected CSR row with ``b`` — the
        same left-to-right per-row reduction as ``matvec_rows``, so the
        recomputed segment is bit-identical under every kernel set.
        """
        rows = np.arange(start, stop, dtype=np.int64)
        segment, nnz = self.kernels.row_checksums(self.matrix, rows, b)
        if tamper is not None:
            tamper("corrected", segment, 2.0 * nnz)
        r[start:stop] = segment
        return nnz

    def _record_check(self, detected: bool) -> None:
        """Scheme-tagged detection telemetry (``abft.*`` counter family)."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        telemetry.count("abft.checks", scheme=self.name)
        if detected:
            telemetry.count("abft.detections", scheme=self.name)

    def _record_correction(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.count("abft.corrections", scheme=self.name)
