"""Precision study: float32 storage throughput and the ``vabft`` win.

Three legs, one results file (``results/BENCH_precision.json``):

* **throughput** — the planned protected multiply (detect+multiply) on a
  FEM-style 16x16-tile matrix in BSR storage, float64 vs float32.  BSR
  amortizes index traffic across dense tiles, so the data dtype sets the
  memory-bound roofline: float32 halves it (~2x expected).  Floor: the
  float32 detect+multiply loop must reach >= 1.3x over float64.
* **f1** — the fig7 coverage harness per storage precision.  On float64
  the analytical bound is tight and ``abft`` ~= ``vabft``; on float32
  (and bfloat16-via-float32) the worst-case bound overshoots the
  observed rounding noise by orders of magnitude, and the
  variance-adaptive thresholds must win: ``vabft`` F1 > ``abft`` F1 at
  every float32 sigma.  Paper sigmas (1e-8..1e-12) sit below the
  float32 noise floor, so the narrow-dtype sweeps use proportionally
  larger significance levels.
* **fp_rate** — ``vabft`` false-positive rate over multiply streams at
  the paper's λ sweep (Figure 8 error rates).  Flagged blocks never
  enter the noise model, so the FP rate must stay at zero no matter how
  often real errors fire.

Floors that cannot be asserted on a run (``REPRO_BENCH_SMOKE=1``) are
recorded under ``skip_reasons`` as in ``bench_formats``.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import COVERAGE_TRIALS, bench_env, write_json, write_result
from repro.analysis import run_coverage_campaign
from repro.analysis.metrics import ConfusionCounts
from repro.analysis.sweeps import FIGURE7_SIGMAS, PCG_ERROR_RATES
from repro.core import AbftConfig
from repro.core.dtypes import BFLOAT16_POLICY, DTYPE_ENV_VAR
from repro.faults import FaultInjector
from repro.schemes import make_scheme
from repro.sparse import banded_spd, block_stencil_spd, random_spd

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

BLOCK_SIZE = 64
MULTIPLIES = 3 if SMOKE else 5
REPEATS = 3 if SMOKE else 4
MIN_F32_SPEEDUP = 1.3  # float32 over float64, planned detect+multiply loop
MAX_FP_RATE = 0.01  # vabft false positives per clean multiply, any λ

#: Coverage-campaign significance sweeps per storage precision.  The
#: paper's float64 sigmas are below the float32/bfloat16 rounding noise
#: (a 1e-12-relative burst does not survive the float32 write), so the
#: narrow dtypes sweep proportionally larger errors.
SIGMA_SWEEPS = {
    "float64": FIGURE7_SIGMAS,
    "float32": (1e-2, 1e-3, 1e-4, 1e-5),
    "bfloat16": (1.0, 1e-1, 1e-2),
}
F1_TRIALS = 20 if SMOKE else COVERAGE_TRIALS
FP_STEPS = 40 if SMOKE else 300
FP_INJECTION_SIGMA = 1e-3  # visibly significant on float32 storage

if SMOKE:
    THROUGHPUT_MATRIX = lambda: block_stencil_spd(512, 16, seed=42)  # noqa: E731
else:
    THROUGHPUT_MATRIX = lambda: block_stencil_spd(12_000, 16, seed=42)  # noqa: E731


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# Leg 1: float32 vs float64 planned detect+multiply throughput
# ----------------------------------------------------------------------
def _bench_throughput():
    from repro.core import FaultTolerantSpMV

    m64 = THROUGHPUT_MATRIX()
    m32 = m64.astype(np.float32)
    config = AbftConfig(block_size=BLOCK_SIZE, kernel="vectorized")
    plans, operands, staged = {}, {}, {}
    for tag, matrix in (("float64", m64), ("float32", m32)):
        plan = FaultTolerantSpMV(matrix, config=config).planned(sparse_format="bsr")
        b = np.random.default_rng(7).standard_normal(matrix.n_cols)
        operands[tag] = np.asarray(b, dtype=matrix.data.dtype)
        plans[tag] = plan
        staged[tag] = plan.spmv.prepare_operand(operands[tag])
    # float32 must agree with float64 to storage precision (correctness
    # gate even in smoke runs).
    reference = plans["float64"].multiply(operands["float64"]).value
    got = plans["float32"].multiply(operands["float32"]).value
    scale = float(np.abs(reference).max())
    np.testing.assert_allclose(got, reference, atol=1e-4 * max(scale, 1.0))

    best_loop = {tag: float("inf") for tag in plans}
    best_raw = {tag: float("inf") for tag in plans}
    for _ in range(REPEATS):
        # interleave the dtypes so clock drift hits both equally
        for tag in ("float64", "float32"):
            plan, b = plans[tag], operands[tag]
            loop = _timed(lambda: [plan.multiply(b) for _ in range(MULTIPLIES)])
            best_loop[tag] = min(best_loop[tag], loop)
            raw = _timed(
                lambda s=staged[tag]: [plan.spmv.execute(s) for _ in range(MULTIPLIES)]
            )
            best_raw[tag] = min(best_raw[tag], raw)
    return {
        "suite": "fem_bs16",
        "storage_format": "bsr",
        "n_rows": m64.n_rows,
        "nnz": m64.nnz,
        "float64": {
            "loop_ms": 1e3 * best_loop["float64"],
            "raw_spmv_ms": 1e3 * best_raw["float64"],
        },
        "float32": {
            "loop_ms": 1e3 * best_loop["float32"],
            "raw_spmv_ms": 1e3 * best_raw["float32"],
        },
        "speedup": {
            "detect_multiply": best_loop["float64"] / best_loop["float32"],
            "raw_spmv": best_raw["float64"] / best_raw["float32"],
        },
    }


# ----------------------------------------------------------------------
# Leg 2: fig7 F1 per storage precision, abft vs vabft
# ----------------------------------------------------------------------
def _f1_matrices(dtype_leg):
    base = (
        random_spd(512, 5_000, seed=3),
        banded_spd(768, half_bandwidth=6, seed=5),
    )
    if dtype_leg == "float64":
        return base
    narrowed = tuple(m.astype(np.float32) for m in base)
    if dtype_leg == "float32":
        return narrowed
    return tuple(m.with_data(BFLOAT16_POLICY.quantize(m.data)) for m in narrowed)


def _bench_f1():
    legs = {}
    for dtype_leg, sigmas in SIGMA_SWEEPS.items():
        matrices = _f1_matrices(dtype_leg)
        previous = os.environ.get(DTYPE_ENV_VAR)
        # bfloat16 shares float32 storage; the policy (and with it the
        # bfloat16 epsilon model) is selected through the environment,
        # exactly as the precision-matrix CI job does.
        if dtype_leg == "bfloat16":
            os.environ[DTYPE_ENV_VAR] = "bfloat16"
        try:
            rows = {"sigmas": list(sigmas), "abft": [], "vabft": []}
            for sigma in sigmas:
                for scheme_name in ("abft", "vabft"):
                    counts = ConfusionCounts()
                    for seed, matrix in enumerate(matrices):
                        result = run_coverage_campaign(
                            matrix,
                            scheme_name,
                            trials=F1_TRIALS,
                            sigma=sigma,
                            seed=seed,
                            block_size=32,
                        )
                        counts = counts.merge(result.counts)
                    rows[scheme_name].append(counts.f1)
            legs[dtype_leg] = rows
        finally:
            if dtype_leg == "bfloat16":
                if previous is None:
                    os.environ.pop(DTYPE_ENV_VAR, None)
                else:
                    os.environ[DTYPE_ENV_VAR] = previous
    return legs


# ----------------------------------------------------------------------
# Leg 3: vabft false-positive rate at the paper's λ sweep
# ----------------------------------------------------------------------
def _bench_fp_rate():
    matrix = random_spd(512, 5_000, seed=3, dtype=np.float32)
    flops = 2.0 * matrix.nnz
    cells = []
    for lam in PCG_ERROR_RATES:
        scheme = make_scheme("vabft", matrix, config=AbftConfig(block_size=32))
        injector = FaultInjector.seeded(11)
        rng = np.random.default_rng(13)
        p_error = min(1.0, lam * flops)
        clean = false_positives = injected = detected = 0
        for _ in range(FP_STEPS):
            b = np.asarray(
                rng.standard_normal(matrix.n_cols) * 10.0 ** rng.integers(-2, 3),
                dtype=np.float32,
            )
            fired = {"hit": False}

            def tamper(stage, data, work, fired=fired):
                if stage == "result" and not fired["hit"] and rng.random() < p_error:
                    injector.corrupt_random_element(data, sigma=FP_INJECTION_SIGMA)
                    fired["hit"] = True

            result = scheme.multiply(b, tamper=tamper)
            if fired["hit"]:
                injected += 1
                detected += int(any(result.detections))
            else:
                clean += 1
                false_positives += int(any(result.detections))
        cells.append(
            {
                "lambda": lam,
                "p_error_per_multiply": p_error,
                "clean_multiplies": clean,
                "false_positives": false_positives,
                "fp_rate": false_positives / clean if clean else None,
                "injected": injected,
                "detection_rate": detected / injected if injected else None,
            }
        )
    return {"steps": FP_STEPS, "injection_sigma": FP_INJECTION_SIGMA, "cells": cells}


def test_precision_benchmarks():
    throughput = _bench_throughput()
    f1 = _bench_f1()
    fp = _bench_fp_rate()

    f32_gap = min(
        v - a for v, a in zip(f1["float32"]["vabft"], f1["float32"]["abft"])
    )
    skip_reasons = {}
    if SMOKE:
        skip_reasons["f32_detect_multiply_speedup"] = (
            "smoke=1 (problem below full scale)"
        )
        skip_reasons["vabft_minus_abft_f1_float32"] = (
            "smoke=1 (trials below statistical floor)"
        )
        skip_reasons["vabft_fp_rate"] = "smoke=1 (stream below statistical floor)"

    lines = [
        "Precision study: float32 storage vs float64, abft vs vabft",
        "",
        f"throughput ({throughput['suite']}, bsr, n={throughput['n_rows']}, "
        f"nnz={throughput['nnz']}, {MULTIPLIES} multiplies x {REPEATS} repeats)",
        f"  {'dtype':<8} {'loop [ms]':>11} {'raw spmv [ms]':>14}",
    ]
    for tag in ("float64", "float32"):
        row = throughput[tag]
        lines.append(
            f"  {tag:<8} {row['loop_ms']:>11.3f} {row['raw_spmv_ms']:>14.3f}"
        )
    speedup = throughput["speedup"]
    lines += [
        f"  f32 speedup: detect+multiply {speedup['detect_multiply']:.2f}x"
        f"  raw spmv {speedup['raw_spmv']:.2f}x  (floor {MIN_F32_SPEEDUP}x"
        + (
            ")"
            if "f32_detect_multiply_speedup" not in skip_reasons
            else f", not asserted: {skip_reasons['f32_detect_multiply_speedup']})"
        ),
        "",
        "coverage F1 (fig7 harness, merged over 2 matrices, "
        f"{F1_TRIALS} trials each)",
    ]
    for dtype_leg, rows in f1.items():
        lines.append(f"  {dtype_leg}")
        lines.append(f"    {'sigma':>8} {'abft':>7} {'vabft':>7}")
        for sigma, abft_f1, vabft_f1 in zip(
            rows["sigmas"], rows["abft"], rows["vabft"]
        ):
            lines.append(f"    {sigma:>8.0e} {abft_f1:>7.3f} {vabft_f1:>7.3f}")
    lines += [
        f"  float32: min(vabft - abft) = {f32_gap:+.3f}"
        + (
            "  (must be > 0)"
            if "vabft_minus_abft_f1_float32" not in skip_reasons
            else f"  (not asserted: {skip_reasons['vabft_minus_abft_f1_float32']})"
        ),
        "",
        f"vabft false positives over {FP_STEPS}-multiply float32 streams "
        f"(injection sigma {FP_INJECTION_SIGMA:.0e})",
        f"    {'lambda':>8} {'clean':>6} {'fp':>4} {'injected':>9} {'detected':>9}",
    ]
    for cell in fp["cells"]:
        lines.append(
            f"    {cell['lambda']:>8.0e} {cell['clean_multiplies']:>6}"
            f" {cell['false_positives']:>4} {cell['injected']:>9}"
            f" {cell['detection_rate'] if cell['detection_rate'] is not None else '-':>9}"
        )
    write_result("bench_precision", "\n".join(lines))
    write_json(
        "precision",
        {
            "benchmark": "precision",
            "config": {
                "block_size": BLOCK_SIZE,
                "multiplies_per_run": MULTIPLIES,
                "repeats": REPEATS,
                "f1_trials": F1_TRIALS,
                "fp_steps": FP_STEPS,
                "sigma_sweeps": {k: list(v) for k, v in SIGMA_SWEEPS.items()},
                "lambda_sweep": list(PCG_ERROR_RATES),
                "smoke": SMOKE,
            },
            "throughput": throughput,
            "f1": f1,
            "f32_f1_gap": f32_gap,
            "fp_rate": fp,
            "floors": {
                "f32_detect_multiply_speedup": MIN_F32_SPEEDUP,
                "vabft_minus_abft_f1_float32": 0.0,
                "vabft_fp_rate": MAX_FP_RATE,
            },
            "asserted": {
                "f32_detect_multiply_speedup": not SMOKE,
                "vabft_minus_abft_f1_float32": not SMOKE,
                "vabft_fp_rate": not SMOKE,
            },
            "skip_reasons": skip_reasons,
            "env": bench_env(),
        },
    )

    if SMOKE:
        pytest.skip(
            "smoke run: harness + correctness only, floors not asserted "
            "(see skip_reasons in results/BENCH_precision.json)"
        )
    assert speedup["detect_multiply"] >= MIN_F32_SPEEDUP, (
        f"float32 reached only {speedup['detect_multiply']:.2f}x over float64 "
        f"on the planned detect+multiply loop (floor {MIN_F32_SPEEDUP}x)"
    )
    assert f32_gap > 0.0, (
        "vabft failed to beat the analytical bound on float32: "
        f"min F1 gap {f32_gap:+.3f} over sigmas {SIGMA_SWEEPS['float32']}"
    )
    # On float64 the analytical bound is already tight; vabft must not
    # regress coverage there (small statistical slack).
    for abft_f1, vabft_f1 in zip(f1["float64"]["abft"], f1["float64"]["vabft"]):
        assert vabft_f1 >= abft_f1 - 0.02
    for cell in fp["cells"]:
        if cell["clean_multiplies"] >= 50:
            assert cell["fp_rate"] <= MAX_FP_RATE, (
                f"vabft flagged {cell['false_positives']} clean multiplies "
                f"at lambda={cell['lambda']:.0e}"
            )
        if cell["injected"] >= 20:
            assert cell["detection_rate"] >= 0.9
