"""Property-based detection-invariant tests, run under every kernel set.

Two invariants, for each registered kernel implementation:

* clean runs never flag — on an error-free SpMV no block's syndrome
  exceeds the sparse per-block bound (zero false positives);
* flagged blocks == injected blocks — corrupting arbitrary result
  elements by well over the per-block threshold flags exactly the blocks
  containing them, no more and no fewer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AbftConfig, BlockAbftDetector
from repro.kernels import available_kernels
from repro.sparse import random_spd

KERNELS = available_kernels()


@st.composite
def detection_cases(draw):
    n = draw(st.integers(8, 100))
    nnz = draw(st.integers(n, 5 * n))
    seed = draw(st.integers(0, 2**16))
    block_size = draw(st.sampled_from([1, 2, 4, 8, 16, 32]))
    scale = 10.0 ** draw(st.integers(-3, 3))
    n_errors = draw(st.integers(1, 4))
    return n, nnz, seed, block_size, scale, n_errors


def _setup(kernel, n, nnz, seed, block_size, scale):
    matrix = random_spd(n, nnz, seed=seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal(n) * scale
    detector = BlockAbftDetector(
        matrix, AbftConfig(block_size=block_size, kernel=kernel)
    )
    return matrix, b, detector, rng


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=40, deadline=None)
@given(detection_cases())
def test_clean_runs_never_flag(kernel, case):
    n, nnz, seed, block_size, scale, _ = case
    matrix, b, detector, _ = _setup(kernel, n, nnz, seed, block_size, scale)
    report = detector.detect(b, matrix.matvec(b))
    assert report.clean
    assert report.flagged.size == 0


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=40, deadline=None)
@given(detection_cases())
def test_flagged_blocks_equal_injected_blocks(kernel, case):
    n, nnz, seed, block_size, scale, n_errors = case
    matrix, b, detector, rng = _setup(kernel, n, nnz, seed, block_size, scale)
    r = matrix.matvec(b)
    beta = detector.operand_norm(b)
    thresholds = detector.bound.thresholds(beta)

    injected = set()
    target_blocks = rng.choice(
        detector.n_blocks, size=min(n_errors, detector.n_blocks), replace=False
    )
    for block in target_blocks:
        start, stop = detector.partition.bounds(int(block))
        row = int(rng.integers(start, stop))
        # Far above both the block's detection threshold and the value's
        # own magnitude, with a random sign — unambiguously detectable.
        delta = 1e3 * thresholds[block] + 1e-3 * (1.0 + abs(r[row]))
        r[row] += delta if rng.random() < 0.5 else -delta
        injected.add(int(block))

    report = detector.detect(b, r)
    assert set(report.flagged.tolist()) == injected
