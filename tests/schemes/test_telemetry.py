"""Scheme-tagged telemetry: spans and counters from every registered scheme."""

import numpy as np
import pytest

from repro.obs import InMemoryExporter, Telemetry
from repro.schemes import BUILTIN_SCHEMES, make_scheme
from repro.sparse import random_spd

# abft and its variance-adaptive subclass share the untagged ``abft.*``
# span/counter family; only the related-work baselines tag by scheme.
BASELINE_SCHEMES = tuple(
    name for name in BUILTIN_SCHEMES if name not in ("abft", "vabft")
)


@pytest.fixture(scope="module")
def corpus():
    matrix = random_spd(64, 600, seed=9)
    b = np.random.default_rng(17).standard_normal(64)
    return matrix, b


def one_shot_burst(index=21, magnitude=1e4):
    state = {"armed": True}

    def hook(stage, data, work):
        if stage == "result" and state["armed"]:
            data[index] += magnitude
            state["armed"] = False

    return hook


@pytest.mark.parametrize("name", BASELINE_SCHEMES)
def test_baseline_schemes_emit_tagged_multiply_span(corpus, name):
    matrix, b = corpus
    telemetry = Telemetry(exporter=InMemoryExporter())
    make_scheme(name, matrix, telemetry=telemetry).multiply(b)
    spans = [e for e in telemetry.events() if e["type"] == "span"]
    assert f"scheme.{name}.multiply" in [s["name"] for s in spans]


@pytest.mark.parametrize("name", BASELINE_SCHEMES)
def test_baseline_schemes_count_checks_by_scheme(corpus, name):
    matrix, b = corpus
    telemetry = Telemetry(exporter=InMemoryExporter())
    make_scheme(name, matrix, telemetry=telemetry).multiply(b)
    checks = [
        e
        for e in telemetry.events()
        if e["type"] == "counter" and e["name"] == "abft.checks"
    ]
    assert checks, f"{name} recorded no abft.checks counter"
    assert all(e["attrs"].get("scheme") == name for e in checks)


@pytest.mark.parametrize("name", BASELINE_SCHEMES)
def test_burst_runs_count_detections_by_scheme(corpus, name):
    matrix, b = corpus
    telemetry = Telemetry(exporter=InMemoryExporter())
    make_scheme(name, matrix, telemetry=telemetry).multiply(
        b.copy(), tamper=one_shot_burst()
    )
    detections = [
        e
        for e in telemetry.events()
        if e["type"] == "counter" and e["name"] == "abft.detections"
    ]
    assert detections, f"{name} detected nothing under a visible burst"
    assert all(e["attrs"].get("scheme") == name for e in detections)


def test_abft_scheme_keeps_its_span_names(corpus):
    matrix, b = corpus
    telemetry = Telemetry(exporter=InMemoryExporter())
    make_scheme("abft", matrix, telemetry=telemetry).multiply(b)
    span_names = [
        e["name"] for e in telemetry.events() if e["type"] == "span"
    ]
    assert "abft.multiply" in span_names


def test_vabft_scheme_keeps_abft_spans_and_adds_warmup(corpus):
    matrix, b = corpus
    telemetry = Telemetry(exporter=InMemoryExporter())
    make_scheme("vabft", matrix, telemetry=telemetry).multiply(b)
    span_names = [
        e["name"] for e in telemetry.events() if e["type"] == "span"
    ]
    assert "vabft.warmup" in span_names
    assert "abft.multiply" in span_names
