"""Fixture: comparisons that are not exact float equality."""


def classify(flag, label, count):
    if flag is None:
        return "missing"
    if label == "done":
        return "done"
    if flag is True:
        return "flagged"
    return "waiting" if count == 3 else "other"


def compare_bounded(syndrome, threshold):
    return abs(syndrome) > threshold
