"""Unit tests for detection (with localization) and partial correction."""

import numpy as np
import pytest

from repro.core import (
    AbftConfig,
    BlockAbftDetector,
    correct_blocks,
)
from repro.errors import ShapeMismatchError
from repro.sparse import random_spd


@pytest.fixture
def setup():
    a = random_spd(300, 3000, seed=11)
    detector = BlockAbftDetector(a, AbftConfig(block_size=32))
    rng = np.random.default_rng(11)
    b = rng.standard_normal(300)
    return a, detector, b


def test_clean_multiply_detects_nothing(setup):
    a, detector, b = setup
    report = detector.detect(b, a.matvec(b))
    assert report.clean
    assert report.flagged.size == 0


def test_single_error_localized_to_its_block(setup):
    a, detector, b = setup
    r = a.matvec(b)
    r[130] *= 1.001
    report = detector.detect(b, r)
    np.testing.assert_array_equal(report.flagged, [130 // 32])


def test_multiple_errors_flag_multiple_blocks(setup):
    a, detector, b = setup
    r = a.matvec(b)
    r[3] += 1.0
    r[299] -= 2.0
    report = detector.detect(b, r)
    np.testing.assert_array_equal(report.flagged, [0, 299 // 32])


def test_two_errors_in_same_block_flag_once(setup):
    a, detector, b = setup
    r = a.matvec(b)
    r[64] += 1.0
    r[65] += 1.0
    report = detector.detect(b, r)
    np.testing.assert_array_equal(report.flagged, [2])


def test_cancelling_errors_in_one_block_are_missed(setup):
    """Exactly offsetting corruptions inside one block defeat the checksum —
    the known ABFT aliasing limitation; documents expected behaviour."""
    a, detector, b = setup
    r = a.matvec(b)
    r[64] += 1.0
    r[65] -= 1.0
    report = detector.detect(b, r)
    assert report.clean


def test_nonfinite_result_flags(setup):
    a, detector, b = setup
    r = a.matvec(b)
    r[10] = np.inf
    report = detector.detect(b, r)
    assert 0 in report.flagged
    r[10] = np.nan
    report = detector.detect(b, r)
    assert 0 in report.flagged


def test_detect_rejects_wrong_result_shape(setup):
    _, detector, b = setup
    with pytest.raises(ShapeMismatchError):
        detector.result_checksums(np.ones(5))


def test_compare_subset(setup):
    a, detector, b = setup
    r = a.matvec(b)
    r[130] += 5.0
    t1 = detector.operand_checksums(b)
    blocks = np.array([2, 4, 6])
    t2 = detector.checksum.result_checksums_for_blocks(r, blocks)
    report = detector.compare(t1[blocks], t2, detector.operand_norm(b), blocks=blocks)
    np.testing.assert_array_equal(report.flagged, [4])


def test_detection_graph_structure(setup):
    _, detector, _ = setup
    graph = detector.detection_graph()
    assert set(t.name for t in graph.tasks()) == {"spmv", "t1", "beta", "check"}
    assert graph["check"].deps == ("spmv", "t1", "beta")
    no_spmv = detector.detection_graph(include_spmv=False)
    assert "spmv" not in no_spmv


def test_detection_graph_t1_cheaper_than_spmv(setup):
    graph = setup[1].detection_graph()
    assert graph["t1"].work < graph["spmv"].work


def test_correct_blocks_restores_exact_result(setup):
    a, detector, b = setup
    r = a.matvec(b)
    reference = r.copy()
    r[130] += 7.0
    r[131] = np.nan
    flagged = detector.detect(b, r).flagged
    outcome = correct_blocks(a, detector.partition, b, r, flagged)
    np.testing.assert_array_equal(r, reference)
    assert outcome.rows_recomputed == 32
    assert outcome.nnz_recomputed == a.nnz_in_rows(128, 160)


def test_correct_blocks_touches_only_flagged_rows(setup):
    a, detector, b = setup
    r = a.matvec(b)
    r[0] += 1.0  # corrupt block 0 but "forget" to flag it
    correct_blocks(a, detector.partition, b, r, np.array([5]))
    assert r[0] != a.matvec(b)[0]  # untouched: correction is truly partial


def test_correct_blocks_tamper_hook_sees_segments(setup):
    a, detector, b = setup
    r = a.matvec(b)
    calls = []

    def tamper(stage, data, work):
        calls.append((stage, data.shape, work))

    correct_blocks(a, detector.partition, b, r, np.array([0, 9]), tamper=tamper)
    assert [c[0] for c in calls] == ["corrected", "corrected"]
    assert calls[0][1] == (32,)
    assert calls[1][1] == (300 - 9 * 32,)


def test_correction_outcome_cost(setup):
    a, detector, b = setup
    r = a.matvec(b)
    outcome = correct_blocks(a, detector.partition, b, r, np.array([1]))
    assert outcome.cost.work == pytest.approx(2.0 * outcome.nnz_recomputed)
