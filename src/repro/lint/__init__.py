"""reprolint — AST-based static analysis of the repo's ABFT invariants.

The runtime cannot see protocol slips that only manifest as *missing*
protection: a mutated matrix whose checksums were never rebuilt still
detects nothing, a wrong comparison still returns a boolean, and a
swallowed injection error still looks like a clean trial.  This subsystem
closes that gap statically with a pluggable rule registry (mirroring
:mod:`repro.kernels`), an initial pack of six ABFT rules (ABFT001-006),
inline ``# reprolint: disable=RULE -- reason`` suppressions, a committed
baseline so pre-existing findings warn instead of fail, and text / JSON /
SARIF reporters.

A second, project-wide generation of rules (ABFT008-012) lives in
:mod:`repro.lint.project`: the whole tree is parsed once into per-file
summaries, linked into a symbol table / import graph / call graph, and
checked for cross-module hazards — arena-protocol violations, registry
mutation in workers, interprocedural checksum staleness, unsynchronized
shared state, hot-path allocation — with a content-hash incremental
cache so warm runs re-analyze only changed files and their
reverse-import dependents.

Run it as ``python -m repro.lint src/`` (per-file rules) or
``python -m repro.lint --project src/`` (project rules); see
:mod:`repro.lint.cli` for exit codes.  Programmatic entry points:
:func:`lint_paths` and :func:`analyze_project`.
"""

from repro.lint.baseline import (
    BaselineComparison,
    compare_with_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.findings import Finding, fingerprint, fingerprint_all
from repro.lint.project import (
    PROJECT_RULES,
    ProjectContext,
    ProjectResult,
    analyze_project,
)
from repro.lint.registry import (
    BUILTIN_RULES,
    available_rules,
    get_rule,
    register_rule,
    resolve_rules,
    unregister_rule,
)
from repro.lint.reporters import FORMATS, render, render_json, render_sarif, render_text
from repro.lint.rules import ABFT_RULES, LintRule, ModuleContext
from repro.lint.rules.base import ProjectRule
from repro.lint.suppressions import SuppressionIndex, parse_suppressions

for _rule in (*ABFT_RULES, *PROJECT_RULES):
    register_rule(_rule, overwrite=True)

__all__ = [
    "Finding",
    "fingerprint",
    "fingerprint_all",
    "LintRule",
    "ProjectRule",
    "ModuleContext",
    "ABFT_RULES",
    "PROJECT_RULES",
    "BUILTIN_RULES",
    "register_rule",
    "unregister_rule",
    "available_rules",
    "get_rule",
    "resolve_rules",
    "LintResult",
    "lint_paths",
    "lint_source",
    "analyze_project",
    "ProjectResult",
    "ProjectContext",
    "SuppressionIndex",
    "parse_suppressions",
    "BaselineComparison",
    "load_baseline",
    "render_baseline",
    "write_baseline",
    "compare_with_baseline",
    "FORMATS",
    "render",
    "render_text",
    "render_json",
    "render_sarif",
]
