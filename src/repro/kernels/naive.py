"""Reference kernel set: one Python iteration per block/cell.

These are the pre-registry hot-path loops, kept verbatim as the semantic
baseline the vectorized set is differentially tested against.  Per-block
work is still NumPy (a slice dot product, a partial SpMV), but control
flow iterates blocks in the interpreter — exactly the overhead the
vectorized set removes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.kernels.base import (
    ACCUMULATION_DTYPE,
    KernelSet,
    Tamper,
    validate_blocks,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.core.blocking import BlockPartition
    from repro.sparse.csr import CsrMatrix


class NaiveKernels(KernelSet):
    """Per-block loop implementations (reference semantics)."""

    name = "naive"

    # -- weights / encoding ------------------------------------------------
    def linear_weights(self, partition: "BlockPartition") -> np.ndarray:
        weights = np.empty(partition.n_rows, dtype=ACCUMULATION_DTYPE)
        for _, start, stop in partition:
            weights[start:stop] = np.arange(1, stop - start + 1, dtype=ACCUMULATION_DTYPE)
        return weights

    def encode(
        self,
        source: "CsrMatrix",
        partition: "BlockPartition",
        weights: np.ndarray,
    ) -> "CsrMatrix":
        from repro.sparse.csr import CsrMatrix

        indptr = np.zeros(partition.n_blocks + 1, dtype=np.int64)
        columns = []
        values = []
        for block, start, stop in partition:
            lo, hi = source.indptr[start], source.indptr[stop]
            block_cols = source.indices[lo:hi]
            # Column j of c_k exists iff some row of A_k stores column j
            # (Figure 2's structure pass), even when values cancel to 0.
            present = np.unique(block_cols)
            indptr[block + 1] = indptr[block] + present.size
            if present.size == 0:
                continue
            accumulator = np.zeros(source.n_cols, dtype=ACCUMULATION_DTYPE)
            entry_rows = np.repeat(
                np.arange(start, stop, dtype=np.int64),
                np.diff(source.indptr[start : stop + 1]),
            )
            np.add.at(accumulator, block_cols, source.data[lo:hi] * weights[entry_rows])
            columns.append(present)
            values.append(accumulator[present])
        return CsrMatrix(
            (partition.n_blocks, source.n_cols),
            indptr,
            np.concatenate(columns) if columns else np.empty(0, dtype=np.int64),
            np.concatenate(values) if values else np.empty(0, dtype=ACCUMULATION_DTYPE),
        )

    # -- detection ---------------------------------------------------------
    def result_checksums(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        # The per-block dots need no scratch vector; ``workspace`` is
        # accepted for interface parity and ignored.
        if out is None:
            out = np.empty(partition.n_blocks, dtype=ACCUMULATION_DTYPE)
        with np.errstate(invalid="ignore", over="ignore"):
            for block, start, stop in partition:
                # reprolint: disable=ABFT002 -- this dot IS the reference
                # reduction the differential suite holds other kernels to
                out[block] = float(np.dot(weights[start:stop], r[start:stop]))
        return out

    def result_checksums_for_blocks(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        blocks = validate_blocks(blocks, partition.n_blocks)
        if out is None:
            out = np.empty(blocks.size, dtype=ACCUMULATION_DTYPE)
        with np.errstate(invalid="ignore", over="ignore"):
            for i, block in enumerate(blocks):
                start, stop = partition.bounds(int(block))
                # reprolint: disable=ABFT002 -- same per-block dot as the full
                # detection pass; re-verification must match it bit-for-bit
                out[i] = float(np.dot(weights[start:stop], r[start:stop]))
        return out

    def compare_syndromes(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(t1)
        syndrome = np.empty(n, dtype=ACCUMULATION_DTYPE)
        exceeded = np.zeros(n, dtype=bool)
        for i in range(n):
            s = float(t1[i]) - float(t2[i])
            syndrome[i] = s
            exceeded[i] = abs(s) > float(thresholds[i]) or not math.isfinite(s)
        return syndrome, exceeded

    # -- correction --------------------------------------------------------
    def correct_blocks(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        blocks: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        blocks = validate_blocks(blocks, partition.n_blocks)
        rows = 0
        nnz = 0
        for block in blocks:
            start, stop = partition.bounds(int(block))
            segment = matrix.matvec_rows(start, stop, b)
            block_nnz = matrix.nnz_in_rows(start, stop)
            if tamper is not None:
                tamper("corrected", segment, 2.0 * block_nnz)
            r[start:stop] = segment
            rows += stop - start
            nnz += block_nnz
        return rows, nnz

    def row_checksums(
        self, csr: "CsrMatrix", rows: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        rows = validate_blocks(rows, csr.n_rows)
        values = np.empty(rows.size, dtype=ACCUMULATION_DTYPE)
        nnz = 0
        for i, row in enumerate(rows):
            row = int(row)
            values[i] = csr.matvec_rows(row, row + 1, b)[0]
            nnz += csr.nnz_in_rows(row, row + 1)
        return values, nnz

    # -- multi-RHS (SpMM) --------------------------------------------------
    def result_checksums_multi(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        out = np.empty((partition.n_blocks, r.shape[1]), dtype=ACCUMULATION_DTYPE)
        with np.errstate(invalid="ignore", over="ignore"):
            for block, start, stop in partition:
                segment = r[start:stop]
                if weights is None:
                    # reprolint: disable=ABFT002 -- reference column reduction
                    out[block] = segment.sum(axis=0)
                else:
                    # reprolint: disable=ABFT002 -- reference weighted reduction
                    out[block] = weights[start:stop] @ segment
        return out

    def result_checksums_multi_for_blocks(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        blocks = validate_blocks(blocks, partition.n_blocks)
        out = np.empty((blocks.size, r.shape[1]), dtype=ACCUMULATION_DTYPE)
        with np.errstate(invalid="ignore", over="ignore"):
            for i, block in enumerate(blocks):
                start, stop = partition.bounds(int(block))
                segment = r[start:stop]
                if weights is None:
                    # reprolint: disable=ABFT002 -- reference column reduction
                    out[i] = segment.sum(axis=0)
                else:
                    # reprolint: disable=ABFT002 -- reference weighted reduction
                    out[i] = weights[start:stop] @ segment
        return out

    def compare_syndromes_multi(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n_blocks, k = np.shape(t1)
        syndrome = np.empty((n_blocks, k), dtype=ACCUMULATION_DTYPE)
        flags = np.zeros((n_blocks, k), dtype=bool)
        for i in range(n_blocks):
            for j in range(k):
                s = float(t1[i, j]) - float(t2[i, j])
                syndrome[i, j] = s
                flags[i, j] = abs(s) > float(thresholds[i, j]) or not math.isfinite(s)
        return syndrome, flags

    def correct_cells(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        cells: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        rows = 0
        nnz = 0
        for block, col in np.asarray(cells, dtype=np.int64).reshape(-1, 2):
            block, col = int(block), int(col)
            start, stop = partition.bounds(block)
            segment = matrix.matvec_rows(start, stop, b[:, col])
            cell_nnz = matrix.nnz_in_rows(start, stop)
            if tamper is not None:
                tamper("corrected", segment, 2.0 * cell_nnz)
            r[start:stop, col] = segment
            rows += stop - start
            nnz += cell_nnz
        return rows, nnz
