"""Baseline round trip and line-shift-stable fingerprints."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    compare_with_baseline,
    fingerprint_all,
    get_rule,
    lint_source,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.baseline import find_default_baseline

SOURCE = (
    "def detect(syndrome, threshold):\n"
    "    if syndrome == 0.0:\n"
    "        return False\n"
    "    return syndrome != threshold\n"
)


def findings_for(source: str):
    findings, _, _ = lint_source(source, Path("mod.py"), [get_rule("ABFT003")])
    return findings


def test_round_trip(tmp_path):
    findings = findings_for(SOURCE)
    assert findings
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    comparison = compare_with_baseline(findings, baseline)
    assert comparison.new == []
    assert len(comparison.known) == len(findings)
    assert comparison.stale == []


def test_fingerprints_survive_line_shifts(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(SOURCE))
    shifted = "# a new leading comment\n\n\n" + SOURCE
    comparison = compare_with_baseline(findings_for(shifted), load_baseline(path))
    assert comparison.new == []
    assert comparison.stale == []


def test_repeated_identical_lines_get_distinct_fingerprints():
    doubled = SOURCE + "\n\n" + SOURCE.replace("detect", "detect_again")
    findings = findings_for(doubled)
    prints = [p for _, p in fingerprint_all(findings)]
    assert len(prints) == len(set(prints)) == len(findings)


def test_fixed_findings_show_up_as_stale(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(SOURCE))
    remaining = findings_for(SOURCE.splitlines()[0] + "\n    return False\n")
    comparison = compare_with_baseline(remaining, load_baseline(path))
    assert comparison.new == []
    assert comparison.stale  # both old fingerprints are gone


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ConfigurationError):
        load_baseline(path)


def test_future_version_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": {}}), encoding="utf-8")
    with pytest.raises(ConfigurationError):
        load_baseline(path)


def test_render_is_deterministic():
    findings = findings_for(SOURCE)
    assert render_baseline(findings) == render_baseline(list(findings))


def test_find_default_baseline_walks_upward(tmp_path):
    (tmp_path / ".reprolint-baseline.json").write_text(
        json.dumps({"version": 1, "findings": {}}), encoding="utf-8"
    )
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    found, exists = find_default_baseline(nested)
    assert exists
    assert found == tmp_path / ".reprolint-baseline.json"


def test_committed_repo_baseline_loads_and_is_empty():
    repo_root = Path(__file__).resolve().parents[2]
    baseline = load_baseline(repo_root / ".reprolint-baseline.json")
    assert baseline == {}


# ----------------------------------------------------------------------
# Cross-module evidence paths in fingerprints (project-mode findings)
# ----------------------------------------------------------------------
def cross_module_finding(**overrides):
    from dataclasses import replace

    from repro.lint import Finding

    finding = Finding(
        path="src/a.py",
        line=10,
        column=5,
        rule="ABFT010",
        message="mutation escapes without refresh",
        snippet="self.data[0] = v",
        related=("src/b.py",),
    )
    return replace(finding, **overrides) if overrides else finding


def test_evidence_paths_enter_the_fingerprint():
    from repro.lint import fingerprint

    base = cross_module_finding()
    renamed_evidence = cross_module_finding(related=("src/renamed.py",))
    assert fingerprint(base) != fingerprint(renamed_evidence)
    # A finding without evidence hashes differently from one with it.
    assert fingerprint(base) != fingerprint(cross_module_finding(related=()))


def test_evidence_fingerprints_still_survive_line_shifts():
    from repro.lint import fingerprint

    base = cross_module_finding()
    shifted = cross_module_finding(line=99)
    assert fingerprint(base) == fingerprint(shifted)


def test_findings_without_evidence_keep_historical_fingerprints():
    """The seed fingerprint format must not change for per-file findings:
    committed baselines from earlier revisions stay valid."""
    import hashlib

    from repro.lint import fingerprint

    plain = cross_module_finding(related=())
    payload = f"{plain.rule}|{plain.path}|{plain.snippet}|0"
    expected = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]
    assert fingerprint(plain) == expected


def test_renaming_an_evidence_file_invalidates_the_baseline_entry(tmp_path):
    """End to end: baseline an ABFT010 finding whose evidence lives in
    caller.py, rename caller.py, and the baseline entry must go stale."""
    import shutil

    from repro.lint import analyze_project

    fixture = Path(__file__).parent / "fixtures" / "project" / "abft010_bad"
    root = tmp_path / "proj"
    shutil.copytree(fixture, root)

    def findings():
        result = analyze_project([root], select=("ABFT010",), base=tmp_path)
        return result.findings

    before = findings()
    assert len(before) == 1 and before[0].related
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, before)
    comparison = compare_with_baseline(findings(), load_baseline(baseline_path))
    assert comparison.new == [] and comparison.stale == []

    (root / "caller.py").rename(root / "renamed_caller.py")
    after = findings()
    assert len(after) == 1  # same primary location in matrix.py...
    comparison = compare_with_baseline(after, load_baseline(baseline_path))
    assert len(comparison.new) == 1  # ...but the evidence path changed
    assert len(comparison.stale) == 1
