"""Table I — the 25-matrix benchmark suite.

Regenerates the paper's Table I from the synthetic suite: name, dimension
N, nonzero count NNZ and the portion of zeros, for both the paper's
metadata and the realized synthetic analogue.  The timed unit is the
generation of one mid-sized suite matrix.
"""

from conftest import write_result

from repro.analysis import format_table
from repro.sparse import suite_matrix


def test_table1_suite(benchmark, full_suite, suite_specs):
    rows = []
    for (spec, matrix) in full_suite:
        rows.append(
            (
                spec.name,
                spec.n,
                spec.nnz,
                f"{100.0 * spec.zero_fraction:.2f}%",
                matrix.n_rows,
                matrix.nnz,
                f"{100.0 * (1.0 - matrix.density):.2f}%",
            )
        )
    table = format_table(
        ("name", "N (paper)", "NNZ (paper)", "zeros (paper)",
         "N (ours)", "NNZ (ours)", "zeros (ours)"),
        rows,
        title="Table I — evaluated matrices (paper metadata vs synthetic analogue)",
    )
    write_result("table1_suite", table)

    # Realized structure must track the spec where dimensions match.
    for spec, matrix in full_suite:
        assert matrix.shape == (matrix.n_rows, matrix.n_rows)
        if spec.reduced_n == spec.n:
            assert matrix.n_rows == spec.n
            assert abs(matrix.nnz - spec.nnz) / spec.nnz < 0.05
        assert matrix.is_symmetric()

    benchmark(lambda: suite_matrix("bcsstk13", seed=123))
