"""Property-based tests for the protected SpMM extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multivector import ProtectedSpMM
from repro.sparse import random_spd


@st.composite
def spmm_cases(draw):
    n = draw(st.integers(8, 96))
    k = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**16))
    block_size = draw(st.sampled_from([1, 4, 8, 16, 32]))
    matrix = random_spd(n, draw(st.integers(n, 5 * n)), seed=seed)
    rng = np.random.default_rng(seed + 1)
    operands = rng.standard_normal((n, k)) * 10.0 ** draw(st.integers(-2, 2))
    return matrix, operands, block_size, seed


@settings(max_examples=40, deadline=None)
@given(spmm_cases())
def test_clean_spmm_never_flags(case):
    matrix, operands, block_size, _ = case
    scheme = ProtectedSpMM(matrix, block_size=block_size)
    result = scheme.multiply(operands)
    assert result.clean
    np.testing.assert_array_equal(result.value, matrix.matmat(operands))


@settings(max_examples=40, deadline=None)
@given(spmm_cases(), st.integers(0, 10_000), st.floats(0.5, 50.0))
def test_single_cell_error_repaired(case, position, magnitude):
    matrix, operands, block_size, seed = case
    n, k = operands.shape
    row = position % n
    col = (position // n) % k
    scheme = ProtectedSpMM(matrix, block_size=block_size)
    reference = matrix.matmat(operands)
    state = {"armed": True}

    def tamper(stage, data, work):
        if stage == "result" and state["armed"]:
            data[row, col] += magnitude * (1.0 + abs(data[row, col]))
            state["armed"] = False

    result = scheme.multiply(operands, tamper=tamper)
    assert (row // block_size, col) in result.detected
    assert not result.exhausted
    np.testing.assert_array_equal(result.value, reference)
