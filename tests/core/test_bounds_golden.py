"""Golden-value regression tests for the analytical rounding-error bounds.

The per-block constants of :class:`SparseBlockBound` (and the whole-matrix
constant of :class:`DenseAnalyticalBound`) are pure functions of the input
matrix's sparsity structure, norms and the block size.  These tests pin
their exact values on a small hand-written matrix so that any change to
the bound formula — accidental or deliberate — shows up as a diff against
literals rather than as silently shifted detection thresholds.

Golden values were produced by evaluating the current implementation; the
formula itself is checked against the paper in ``tests/core/test_bounds``.
"""

import numpy as np
import pytest

from repro.core import ChecksumMatrix
from repro.core.bounds import DenseAnalyticalBound, NormBound, SparseBlockBound
from repro.sparse.coo import CooMatrix


def _fixed_matrix():
    """Hand-written 8x8 matrix with ragged row sparsity (1-2 nnz per row)."""
    rows = np.array([0, 0, 1, 2, 2, 3, 4, 4, 5, 6, 6, 7], dtype=np.int64)
    cols = np.array([0, 3, 1, 2, 5, 3, 0, 4, 5, 1, 6, 7], dtype=np.int64)
    data = np.array(
        [4.0, -1.0, 3.0, 2.5, 0.5, 1.5, -2.0, 5.0, 1.0, 0.25, 2.0, -3.5]
    )
    return CooMatrix((8, 8), rows, cols, data).to_csr()


GOLDEN_SPARSE_CONSTANTS = {
    1: [
        1.831026719408895e-15,
        6.661338147750939e-16,
        1.1322097734007351e-15,
        3.3306690738754696e-16,
        2.3914935841127266e-15,
        2.220446049250313e-16,
        8.95090418262362e-16,
        7.771561172376096e-16,
    ],
    2: [
        5.652432596299956e-15,
        3.233154683827276e-15,
        5.368761075799922e-15,
        4.406968456985385e-15,
    ],
    4: [
        1.677239884540118e-14,
        2.0388215970718968e-14,
    ],
    8: [
        6.349301268145514e-14,
    ],
}

GOLDEN_DENSE_CONSTANTS = {
    1: 6.435311774657246e-14,
    2: 6.435311774657246e-14,
    4: 6.420375009130724e-14,
    8: 6.349301268145514e-14,
}

BLOCK_SIZES = sorted(GOLDEN_SPARSE_CONSTANTS)


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_sparse_block_bound_constants(block_size):
    checksum = ChecksumMatrix.build(_fixed_matrix(), block_size)
    bound = SparseBlockBound.from_checksum(checksum)
    np.testing.assert_allclose(
        bound.constants, GOLDEN_SPARSE_CONSTANTS[block_size], rtol=1e-13
    )


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_sparse_block_bound_thresholds_scale_with_beta(block_size):
    checksum = ChecksumMatrix.build(_fixed_matrix(), block_size)
    bound = SparseBlockBound.from_checksum(checksum)
    expected = np.asarray(GOLDEN_SPARSE_CONSTANTS[block_size])
    np.testing.assert_allclose(bound.thresholds(2.0), 2.0 * expected, rtol=1e-13)
    np.testing.assert_allclose(bound.thresholds(0.0), np.zeros_like(expected))
    # Subset evaluation indexes the same constants.
    blocks = np.array([0], dtype=np.int64)
    np.testing.assert_allclose(
        bound.thresholds(2.0, blocks), 2.0 * expected[:1], rtol=1e-13
    )


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_sparse_bound_scale_multiplies(block_size):
    checksum = ChecksumMatrix.build(_fixed_matrix(), block_size)
    base = SparseBlockBound.from_checksum(checksum)
    scaled = SparseBlockBound.from_checksum(checksum, scale=4.0)
    np.testing.assert_allclose(
        scaled.thresholds(1.0), 4.0 * base.thresholds(1.0), rtol=1e-13
    )


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_dense_analytical_bound_constant(block_size):
    checksum = ChecksumMatrix.build(_fixed_matrix(), block_size)
    bound = DenseAnalyticalBound.from_checksum(checksum)
    np.testing.assert_allclose(
        bound.constant, GOLDEN_DENSE_CONSTANTS[block_size], rtol=1e-13
    )
    # One identical threshold per block, scaled by beta.
    thresholds = bound.thresholds(2.0)
    assert thresholds.shape == (checksum.n_blocks,)
    np.testing.assert_allclose(
        thresholds, 2.0 * GOLDEN_DENSE_CONSTANTS[block_size], rtol=1e-13
    )


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_sparse_bound_tighter_than_dense(block_size):
    """The paper's point: per-block constants never exceed the dense one."""
    checksum = ChecksumMatrix.build(_fixed_matrix(), block_size)
    sparse = SparseBlockBound.from_checksum(checksum)
    dense = DenseAnalyticalBound.from_checksum(checksum)
    assert np.all(sparse.constants <= dense.constant * (1.0 + 1e-12))


def test_norm_bound_is_beta():
    bound = NormBound(n_blocks=2)
    np.testing.assert_allclose(bound.thresholds(3.5), [3.5, 3.5])
    np.testing.assert_allclose(NormBound(n_blocks=2, scale=0.5).thresholds(3.5), [1.75, 1.75])
