"""Unit tests for the fault-tolerant PCG drivers (the case-study engine)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solvers import FtPcgOptions, run_pcg
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def system():
    a = random_spd(300, 3600, seed=71)
    x_true = np.random.default_rng(71).standard_normal(300)
    return a, a.matvec(x_true)


ALL_SCHEMES = ("unprotected", "ours", "partial", "checkpoint")


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_fault_free_runs_converge_correctly(system, scheme):
    a, b = system
    result = run_pcg(a, b, scheme=scheme, error_rate=0.0, seed=1)
    assert result.converged and result.correct
    assert result.injections == 0
    assert result.residual_norm < 1e-5


def test_unknown_scheme_rejected(system):
    a, b = system
    with pytest.raises(ConfigurationError):
        run_pcg(a, b, scheme="bogus")


def test_options_validation():
    with pytest.raises(ConfigurationError):
        FtPcgOptions(tol=0.0)
    with pytest.raises(ConfigurationError):
        FtPcgOptions(max_iteration_factor=0)
    with pytest.raises(ConfigurationError):
        FtPcgOptions(checkpoint_interval=0)


def test_protected_schemes_cost_more_than_unprotected(system):
    a, b = system
    base = run_pcg(a, b, scheme="unprotected", seed=2).seconds
    for scheme in ("ours", "partial", "checkpoint"):
        assert run_pcg(a, b, scheme=scheme, seed=2).seconds > base


def test_low_rate_overhead_ordering_matches_figure8(system):
    """Ours < partial < checkpoint on fault-free runtime (Figure 8 left)."""
    a, b = system
    ours = run_pcg(a, b, scheme="ours", seed=3).seconds
    partial = run_pcg(a, b, scheme="partial", seed=3).seconds
    checkpoint = run_pcg(a, b, scheme="checkpoint", seed=3).seconds
    assert ours < partial
    assert ours < checkpoint


def test_ours_survives_moderate_error_rate(system):
    a, b = system
    correct = 0
    for seed in range(8):
        result = run_pcg(a, b, scheme="ours", error_rate=3e-7, seed=seed)
        correct += result.correct
        if result.injections:
            assert result.detections >= 0
    assert correct >= 7  # the proposed scheme rides through these rates


def test_unprotected_fails_more_often_than_ours(system):
    a, b = system
    seeds = range(10)
    rate = 1e-6
    ours = sum(run_pcg(a, b, "ours", rate, s).correct for s in seeds)
    bare = sum(run_pcg(a, b, "unprotected", rate, s).correct for s in seeds)
    assert ours >= bare
    assert ours >= 8


def test_checkpoint_scheme_saves_and_rolls_back(system):
    a, b = system
    # High enough rate that detection fires at least once across seeds.
    rolled = saved = 0
    for seed in range(6):
        result = run_pcg(a, b, scheme="checkpoint", error_rate=3e-6, seed=seed)
        rolled += result.rollbacks
        saved += result.checkpoint_saves
    assert saved >= 6  # at least the initial snapshot each run
    assert rolled >= 1


def test_iteration_cap_counts_executed_iterations(system):
    a, b = system
    options = FtPcgOptions(max_iteration_factor=1)
    result = run_pcg(a, b, scheme="ours", error_rate=0.0, seed=4, options=options)
    assert result.iterations <= a.n_rows


def test_deterministic_for_seed(system):
    a, b = system
    r1 = run_pcg(a, b, scheme="ours", error_rate=1e-6, seed=9)
    r2 = run_pcg(a, b, scheme="ours", error_rate=1e-6, seed=9)
    assert r1.iterations == r2.iterations
    assert r1.seconds == r2.seconds
    assert r1.injections == r2.injections
    np.testing.assert_array_equal(r1.x, r2.x)


def test_detection_counts_tracked(system):
    a, b = system
    result = run_pcg(a, b, scheme="ours", error_rate=1e-5, seed=10)
    assert result.injections > 0
    assert result.detections > 0
    assert result.corrections == result.detections


def test_preconditioner_choice_flows_through(system):
    a, b = system
    options = FtPcgOptions(preconditioner="identity")
    result = run_pcg(a, b, scheme="ours", seed=11, options=options)
    assert result.converged
