"""Tests for the format registry, resolution order and auto-selection.

The heuristic thresholds asserted here (BSR_MIN_FILL, ELL_MAX_PADDING,
the candidate tile edges) are part of the documented contract in
``repro.sparse.formats`` — a threshold change must update both.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sparse import (
    BSR_BLOCK_CANDIDATES,
    BSR_MIN_FILL,
    ELL_MAX_PADDING,
    FORMAT_ENV_VAR,
    BsrMatrix,
    CooMatrix,
    CsrMatrix,
    EllMatrix,
    SparseFormat,
    available_formats,
    banded_spd,
    block_stencil_spd,
    bsr_fill_ratio,
    build_format,
    canonical_format_name,
    ell_padding_ratio,
    poisson2d,
    probe_block_shape,
    random_spd,
    resolve_format_name,
    select_format,
)


# ----------------------------------------------------------------------
# Names and resolution order
# ----------------------------------------------------------------------
def test_canonical_format_name():
    assert canonical_format_name("csr") == "csr"
    assert canonical_format_name(" BSR ") == "bsr"
    assert canonical_format_name("auto") == "auto"
    with pytest.raises(ConfigurationError, match="unknown sparse format"):
        canonical_format_name("coo")
    with pytest.raises(ConfigurationError, match="must be a name"):
        canonical_format_name(42)


def test_available_formats_sorted():
    assert available_formats() == ("auto", "bsr", "csr", "ell")


def test_resolution_order(monkeypatch):
    monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
    assert resolve_format_name() == "csr"
    assert resolve_format_name(configured="bsr") == "bsr"
    monkeypatch.setenv(FORMAT_ENV_VAR, "ell")
    assert resolve_format_name(configured="bsr") == "ell"  # env beats configured
    assert resolve_format_name(configured="bsr", explicit="auto") == "auto"  # explicit beats env
    monkeypatch.setenv(FORMAT_ENV_VAR, "bogus")
    with pytest.raises(ConfigurationError, match="unknown sparse format"):
        resolve_format_name()


def test_all_formats_satisfy_the_protocol():
    csr = random_spd(20, 80, seed=1)
    for matrix in (csr, BsrMatrix.from_csr(csr, 4), EllMatrix.from_csr(csr)):
        assert isinstance(matrix, SparseFormat)
        assert matrix.to_csr() == csr


# ----------------------------------------------------------------------
# Structural probes
# ----------------------------------------------------------------------
def test_bsr_fill_ratio_matches_materialized_fill():
    csr = random_spd(96, 900, seed=7)
    for edge in (4, 8, 16):
        assert bsr_fill_ratio(csr, edge) == pytest.approx(
            BsrMatrix.from_csr(csr, edge).fill_ratio
        )


def test_ell_padding_ratio_matches_materialized_padding():
    csr = poisson2d(9)
    assert ell_padding_ratio(csr) == pytest.approx(
        EllMatrix.from_csr(csr).padding_ratio
    )


def test_probe_block_shape_ties_break_toward_larger_edge():
    dense = CooMatrix.from_dense(np.ones((16, 16))).to_csr()
    shape, fill = probe_block_shape(dense)
    assert fill == 1.0
    assert shape == (16, 16)  # both candidates reach 1.0; larger wins


def test_probe_block_shape_prefers_the_denser_edge():
    csr = block_stencil_spd(36, 8, seed=2)
    shape, fill = probe_block_shape(csr)
    assert shape == (8, 8) and fill == 1.0


# ----------------------------------------------------------------------
# build_format / select_format
# ----------------------------------------------------------------------
def test_build_format():
    csr = random_spd(24, 100, seed=3)
    assert build_format(csr, "csr") is csr
    assert isinstance(build_format(csr, "bsr"), BsrMatrix)
    assert isinstance(build_format(csr, "ell"), EllMatrix)
    assert build_format(csr, "bsr", block_shape=4).block_shape == (4, 4)
    with pytest.raises(ConfigurationError, match="not a storage format"):
        build_format(csr, "auto")


def test_select_format_honors_explicit_requests():
    csr = random_spd(24, 100, seed=4)
    for name, cls in (("csr", CsrMatrix), ("bsr", BsrMatrix), ("ell", EllMatrix)):
        choice, matrix = select_format(csr, name)
        assert choice.format == name and choice.requested == name
        assert choice.reason == "requested explicitly"
        assert isinstance(matrix, cls)


def test_auto_picks_bsr_on_block_structured_matrix():
    csr = block_stencil_spd(36, 8, seed=5)
    choice, matrix = select_format(csr, "auto")
    assert choice.format == "bsr"
    assert isinstance(matrix, BsrMatrix)
    assert choice.fill_ratio >= BSR_MIN_FILL
    assert choice.block_shape in {(e, e) for e in BSR_BLOCK_CANDIDATES}
    assert "fill" in choice.reason


def test_auto_picks_ell_on_regular_rows():
    csr = banded_spd(120, half_bandwidth=4, seed=6)
    assert bsr_fill_ratio(csr, 8) < BSR_MIN_FILL  # BSR leg really rejected
    choice, matrix = select_format(csr, "auto")
    assert choice.format == "ell"
    assert isinstance(matrix, EllMatrix)
    assert choice.padding_ratio <= ELL_MAX_PADDING
    assert "padding" in choice.reason


def test_auto_rejects_ell_above_padding_threshold():
    # One dense row among short ones: the padded slots would dominate.
    entries = [(0, j, 1.0) for j in range(40)] + [(i, i, 1.0) for i in range(1, 40)]
    csr = CooMatrix.from_entries((40, 40), entries).to_csr()
    assert ell_padding_ratio(csr) > ELL_MAX_PADDING
    choice, matrix = select_format(csr, "auto")
    assert choice.format == "csr"
    assert matrix is csr
    assert "padding" in choice.reason and "safe default" in choice.reason


def test_auto_falls_back_to_csr_on_hostile_matrix():
    csr = random_spd(256, 2500, seed=21)  # unstructured scatter
    choice, matrix = select_format(csr, "auto")
    assert choice.format == "csr"
    assert matrix is csr
    assert np.isnan(choice.measured_gain)  # structural rejection, no probe


def test_auto_on_empty_matrix():
    csr = CooMatrix.from_entries((8, 8), []).to_csr()
    choice, matrix = select_format(csr, "auto")
    assert choice.format == "csr"
    assert "empty matrix" in choice.reason


def test_measured_fallback_skipped_below_nnz_floor():
    # Small matrices skip the timed probe: the structural decision stands
    # and measured_gain stays NaN.
    csr = block_stencil_spd(36, 8, seed=8)
    choice, _ = select_format(csr, "auto", measure=True)
    assert choice.format == "bsr"
    assert np.isnan(choice.measured_gain)
