"""Minimal MatrixMarket I/O for sparse matrices.

Supports the ``matrix coordinate real {general,symmetric}`` flavour used by
the SuiteSparse / University of Florida collection from which the paper draws
its benchmark set.  Reading a symmetric file expands the stored lower (or
upper) triangle to the full matrix, which is the convention the collection
uses.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix

_HEADER_PREFIX = "%%MatrixMarket"


def read_matrix_market(source: Union[str, Path, TextIO]) -> CsrMatrix:
    """Read a MatrixMarket coordinate-real file into a CSR matrix.

    Args:
        source: path to a ``.mtx`` file or an open text stream.

    Returns:
        The matrix in CSR form, with symmetric storage expanded.

    Raises:
        SparseFormatError: on malformed headers, unsupported qualifiers,
            or entry counts that disagree with the header.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return read_matrix_market(handle)

    header = source.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise SparseFormatError(f"not a MatrixMarket file: {header!r}")
    fields = header.strip().split()
    if len(fields) != 5:
        raise SparseFormatError(f"malformed MatrixMarket header: {header!r}")
    _, obj, fmt, field, symmetry = (f.lower() for f in fields)
    if obj != "matrix" or fmt != "coordinate":
        raise SparseFormatError(f"unsupported MatrixMarket object/format: {header!r}")
    if field not in ("real", "integer"):
        raise SparseFormatError(f"unsupported field type {field!r} (only real/integer)")
    if symmetry not in ("general", "symmetric"):
        raise SparseFormatError(f"unsupported symmetry {symmetry!r}")

    size_line = ""
    for line in source:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if not size_line:
        raise SparseFormatError("missing size line")
    try:
        n_rows, n_cols, n_entries = (int(tok) for tok in size_line.split())
    except ValueError as exc:
        raise SparseFormatError(f"malformed size line: {size_line!r}") from exc

    rows = np.empty(n_entries, dtype=np.int64)
    cols = np.empty(n_entries, dtype=np.int64)
    vals = np.empty(n_entries, dtype=np.float64)
    count = 0
    for line in source:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        tokens = stripped.split()
        if len(tokens) != 3:
            raise SparseFormatError(f"malformed entry line: {stripped!r}")
        if count >= n_entries:
            raise SparseFormatError("more entries than declared in the size line")
        rows[count] = int(tokens[0]) - 1
        cols[count] = int(tokens[1]) - 1
        vals[count] = float(tokens[2])
        count += 1
    if count != n_entries:
        raise SparseFormatError(
            f"expected {n_entries} entries, found {count}"
        )

    if symmetry == "symmetric":
        off_diag = rows != cols
        rows = np.concatenate([rows, cols[off_diag]])
        cols = np.concatenate([cols, rows[: count][off_diag]])
        vals = np.concatenate([vals, vals[off_diag]])

    return CooMatrix((n_rows, n_cols), rows, cols, vals).to_csr()


def write_matrix_market(
    matrix: CsrMatrix, target: Union[str, Path, TextIO], symmetric: bool = False
) -> None:
    """Write a CSR matrix as a MatrixMarket coordinate-real file.

    Args:
        matrix: the matrix to serialize.
        target: path or open text stream.
        symmetric: if True, store only the lower triangle with a
            ``symmetric`` qualifier (the matrix must actually be symmetric;
            this is not verified here for speed).
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as handle:
            write_matrix_market(matrix, handle, symmetric=symmetric)
        return

    coo = matrix.to_coo()
    rows, cols, vals = coo.row, coo.col, coo.data
    if symmetric:
        keep = rows >= cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    qualifier = "symmetric" if symmetric else "general"
    target.write(f"%%MatrixMarket matrix coordinate real {qualifier}\n")
    target.write(f"{matrix.n_rows} {matrix.n_cols} {vals.size}\n")
    for i, j, v in zip(rows, cols, vals):
        target.write(f"{i + 1} {j + 1} {float(v)!r}\n")


def matrix_market_string(matrix: CsrMatrix, symmetric: bool = False) -> str:
    """Serialize a matrix to a MatrixMarket string (round-trip helper)."""
    buffer = io.StringIO()
    write_matrix_market(matrix, buffer, symmetric=symmetric)
    return buffer.getvalue()
