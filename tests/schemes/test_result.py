"""Unified result-type invariants shared by every scheme."""

import dataclasses

import numpy as np
import pytest

from repro.schemes import ProtectedSpmvResult


def _result(**overrides):
    fields = dict(
        value=np.zeros(4),
        detections=(False,),
        corrections=(),
        rounds=0,
        seconds=0.0,
        flops=0.0,
        exhausted=False,
    )
    fields.update(overrides)
    return ProtectedSpmvResult(**fields)


def test_clean_reflects_first_check():
    assert _result(detections=(False,)).clean
    assert not _result(detections=(True,)).clean
    assert not _result(detections=(True, False), rounds=1).clean


def test_clean_on_empty_detections_regression():
    # Historic BaselineSpmvResult.clean raised IndexError on an empty
    # detections tuple; the unified type must treat "never checked" as clean.
    assert _result(detections=()).clean is True


def test_detected_aliases_detected_blocks():
    result = _result(
        detections=(True, False),
        corrections=((0, 16),),
        rounds=1,
        detected_blocks=((0,), ()),
        corrected_blocks=(0,),
    )
    assert result.detected == ((0,), ())
    assert result.corrected_blocks == (0,)


def test_result_is_frozen():
    result = _result()
    with pytest.raises(dataclasses.FrozenInstanceError):
        result.rounds = 3
