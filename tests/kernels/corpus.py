"""Generated matrix corpus for the kernel differential-testing suite.

Every case is a ``(name, matrix, block_size)`` triple chosen to stress a
specific structural edge: random sparsity patterns, blocks whose rows are
all empty, single-row blocks, ragged last blocks, rectangular shapes,
structurally-stored zeros from exact cancellation, and the degenerate
zero-row matrix.  All generation is seeded — the corpus is identical on
every run.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sparse import CooMatrix, CsrMatrix, random_spd


def _random_rectangular(
    n_rows: int, n_cols: int, nnz: int, seed: int
) -> CsrMatrix:
    """Random rectangular CSR; duplicate COO draws merge on conversion."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, size=nnz).astype(np.int64)
    cols = rng.integers(0, n_cols, size=nnz).astype(np.int64)
    data = rng.standard_normal(nnz)
    return CooMatrix((n_rows, n_cols), rows, cols, data).to_csr()


def _empty_block_matrix(block_size: int = 8) -> CsrMatrix:
    """40 rows where rows 8..23 store nothing: blocks 1 and 2 are empty."""
    rng = np.random.default_rng(99)
    rows = np.concatenate(
        [rng.integers(0, 8, size=30), rng.integers(24, 40, size=40)]
    ).astype(np.int64)
    cols = rng.integers(0, 40, size=rows.size).astype(np.int64)
    data = rng.standard_normal(rows.size)
    assert block_size == 8  # the row gap above is sized for 8-row blocks
    return CooMatrix((40, 40), rows, cols, data).to_csr()


def _cancellation_matrix() -> CsrMatrix:
    """Duplicate COO entries that sum to exactly zero.

    Deduplication keeps the cancelled entry as a *structural* zero, so the
    checksum structure pass must still see the column as occupied.
    """
    rows = np.array([0, 0, 1, 2, 2, 3, 3, 3], dtype=np.int64)
    cols = np.array([1, 1, 0, 3, 3, 2, 2, 4], dtype=np.int64)
    data = np.array([2.5, -2.5, 1.0, 4.0, -4.0, 1.5, 2.5, -3.0])
    return CooMatrix((4, 5), rows, cols, data).to_csr()


def _zero_rows_matrix() -> CsrMatrix:
    """Every row empty (nnz = 0) — all checksum rows are empty too."""
    return CsrMatrix(
        (12, 7),
        np.zeros(13, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )


def _no_rows_matrix() -> CsrMatrix:
    """Zero-row matrix: the partition has no blocks at all."""
    return CsrMatrix(
        (0, 5),
        np.zeros(1, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )


def corpus() -> List[Tuple[str, CsrMatrix, int]]:
    """The full differential-testing corpus."""
    return [
        ("spd-small", random_spd(57, 300, seed=0), 8),
        ("spd-mid", random_spd(130, 900, seed=1), 32),
        ("spd-single-row-blocks", random_spd(19, 80, seed=2), 1),
        ("spd-one-block", random_spd(24, 120, seed=5), 32),
        ("rect-wide", _random_rectangular(24, 80, 150, seed=3), 8),
        ("rect-tall-ragged", _random_rectangular(45, 10, 120, seed=4), 7),
        ("empty-blocks", _empty_block_matrix(), 8),
        ("cancellation-zeros", _cancellation_matrix(), 2),
        ("all-rows-empty", _zero_rows_matrix(), 4),
        ("no-rows", _no_rows_matrix(), 4),
    ]


def corpus_ids() -> List[str]:
    return [name for name, _, _ in corpus()]
