"""Unguarded shared-state write on a concurrent path (ABFT011 must fire)."""

import threading
from concurrent.futures import ThreadPoolExecutor

_CACHE = {}
_LOCK = threading.Lock()


def record(key, value):
    _CACHE[key] = value  # MARK:ABFT011


def run_all(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        for item in items:
            pool.submit(record, item, 1)
