"""CLI exit codes, baseline workflow, and report plumbing."""

import json

from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

BAD = (
    "def detect(syndrome, threshold):\n"
    "    return syndrome == 0.0\n"
)
CLEAN = "def detect(syndrome, threshold):\n    return abs(syndrome) > threshold\n"


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "mod.py", CLEAN)
    assert main([str(path), "--no-baseline"]) == EXIT_CLEAN
    assert "0 new finding(s)" in capsys.readouterr().out


def test_findings_exit_one(tmp_path, capsys):
    path = write(tmp_path, "mod.py", BAD)
    assert main([str(path), "--no-baseline"]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "ABFT003" in out and "mod.py:2:" in out


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = write(tmp_path, "mod.py", CLEAN)
    assert main([str(path), "--select", "TYPO001"]) == EXIT_USAGE
    assert "error" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "absent")]) == EXIT_USAGE


def test_select_and_ignore_narrow_the_run(tmp_path):
    path = write(tmp_path, "mod.py", BAD)
    assert main([str(path), "--no-baseline", "--select", "ABFT005"]) == EXIT_CLEAN
    assert main([str(path), "--no-baseline", "--ignore", "ABFT003"]) == EXIT_CLEAN


def test_write_baseline_then_rerun_is_clean(tmp_path, capsys):
    path = write(tmp_path, "mod.py", BAD)
    baseline = tmp_path / "baseline.json"
    assert main([str(path), "--write-baseline", "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "wrote baseline with 1 finding(s)" in capsys.readouterr().err
    assert main([str(path), "--baseline", str(baseline)]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "[baseline]" in out and "1 baselined" in out


def test_stale_baseline_warns_and_strict_fails(tmp_path, capsys):
    path = write(tmp_path, "mod.py", BAD)
    baseline = tmp_path / "baseline.json"
    assert main([str(path), "--write-baseline", "--baseline", str(baseline)]) == EXIT_CLEAN
    path.write_text(CLEAN, encoding="utf-8")
    assert main([str(path), "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "stale baseline" in capsys.readouterr().err
    assert (
        main([str(path), "--baseline", str(baseline), "--strict-baseline"])
        == EXIT_FINDINGS
    )


def test_sarif_output_to_file(tmp_path):
    path = write(tmp_path, "mod.py", BAD)
    report = tmp_path / "report.sarif"
    code = main(
        [str(path), "--no-baseline", "--format", "sarif", "--output", str(report)]
    )
    assert code == EXIT_FINDINGS
    document = json.loads(report.read_text(encoding="utf-8"))
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"]


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("ABFT001", "ABFT006"):
        assert rule_id in out


def test_module_entry_point(tmp_path):
    import subprocess
    import sys
    from pathlib import Path

    path = write(tmp_path, "mod.py", CLEAN)
    repo_src = Path(__file__).resolve().parents[2] / "src"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(path), "--no-baseline"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == EXIT_CLEAN, proc.stderr
