"""Rule interface and shared AST helpers for reprolint."""

from __future__ import annotations

import abc
import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.lint.project.graph import ProjectContext


class ModuleContext:
    """Everything a rule may inspect about one source file.

    Attributes:
        path: filesystem path of the module.
        display_path: POSIX-style path used in findings (relative to the
            lint root when one is given).
        tree: the parsed :class:`ast.Module`.
        source: full source text.
        lines: source split into lines (no terminators).
    """

    def __init__(
        self,
        path: Path,
        tree: ast.Module,
        source: str,
        display_path: Optional[str] = None,
    ) -> None:
        self.path = path
        self.display_path = display_path or path.as_posix()
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()

    def snippet(self, line: int) -> str:
        """Stripped source text of a 1-based line (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s position."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.display_path,
            line=line,
            column=column,
            rule=rule,
            message=message,
            snippet=self.snippet(line),
        )

    def functions(self) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
        """Yield ``(function_node, ancestor_stack)`` for every function.

        The stack holds the enclosing ``ClassDef``/function nodes, outermost
        first — rules use it to tell methods from free functions.
        """
        stack: List[ast.AST] = []

        def walk(node: ast.AST) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, list(stack)
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    stack.append(child)
                    yield from walk(child)
                    stack.pop()
                else:
                    yield from walk(child)

        yield from walk(self.tree)


class LintRule(abc.ABC):
    """One static check over a parsed module.

    Subclasses define the identifying metadata and implement :meth:`check`;
    instances are stateless and shared across files.
    """

    #: Rule identifier, e.g. ``"ABFT003"``; registry key.
    rule_id: str = "ABFT000"

    #: One-line summary shown by ``--list-rules`` and in SARIF metadata.
    title: str = ""

    #: Which protocol invariant of the paper the rule protects (docs/SARIF).
    rationale: str = ""

    @abc.abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield a finding for every violation in ``module``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LintRule {self.rule_id}>"


class ProjectRule(LintRule):
    """A rule that needs the whole-project view (symbol table, call graph).

    Project rules participate in the ordinary registry — ``--select``,
    ``--ignore``, ``--list-rules`` and SARIF metadata all work — but they
    only produce findings in project mode (:mod:`repro.lint.project`).
    The per-file :meth:`check` is a deliberate no-op: a single module
    does not contain the cross-module facts these rules reason about.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Per-file pass: project rules have nothing to say about one file."""
        return iter(())

    @abc.abstractmethod
    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield a finding for every violation visible in the project graph."""


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """Textual dotted name of a Name/Attribute chain (``"np.add.reduceat"``).

    Chains that pass through calls or subscripts collapse those hops to
    ``()``/``[]`` markers; anything unresolvable yields ``""``.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        elif isinstance(node, ast.Call):
            parts.append("()")
            node = node.func
        elif isinstance(node, ast.Subscript):
            parts.append("[]")
            node = node.value
        else:
            return ""
    return ".".join(reversed(parts))


def terminal_name(node: ast.AST) -> str:
    """Last identifier of a Name/Attribute chain (``a.b.c`` -> ``"c"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def call_names(body: List[ast.stmt]) -> set[str]:
    """Terminal names of every call made anywhere inside ``body``."""
    names: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name:
                    names.add(name)
    return names


def contains_raise(body: List[ast.stmt]) -> bool:
    """True when any statement in ``body`` (recursively) raises."""
    return any(
        isinstance(node, ast.Raise) for stmt in body for node in ast.walk(stmt)
    )
