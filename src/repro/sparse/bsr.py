"""Block Compressed Sparse Row (BSR) matrices.

BSR stores a matrix as a CSR-like structure over dense ``(br, bc)`` tiles:
``indptr``/``indices`` index *block* rows and *block* columns, and every
stored block carries a dense tile of values.  For matrices whose nonzeros
cluster into dense blocks (FEM with multiple degrees of freedom per node,
structured-sparsity ML operands), the tile layout replaces the per-entry
``np.take`` gather of CSR SpMV with one contiguous gather per tile and a
batched ``(br, bc) @ (bc,)`` product — the format-aware kernel engine's
main speed lever.

BSR is also the natural ABFT format: checksum blocks align with storage
block rows, so block recomputation (the correction kernel) operates on
whole dense tiles.  The tile pipeline is deliberately shared between
:meth:`BsrMatrix.matvec`, :meth:`BsrMatrix.matvec_rows` and the planned
shard executors in :mod:`repro.perf.plan` — each output row is reduced
over its block row's tiles in storage order, so a partial recomputation
reproduces the full multiply's bits row for row.

Fill slots (tile positions with no underlying entry) hold exact zeros and
are tracked in :attr:`BsrMatrix.mask`, which makes CSR round trips exact
(explicit stored zeros survive) and keeps nnz accounting honest:
:attr:`BsrMatrix.fill_ratio` is the fraction of tile slots holding real
entries — the number the plan-time format heuristics key on.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix, storage_dtype

BlockShape = Union[int, Tuple[int, int]]


def _normalize_block_shape(block_shape: BlockShape) -> Tuple[int, int]:
    if isinstance(block_shape, int):
        shape = (block_shape, block_shape)
    else:
        shape = (int(block_shape[0]), int(block_shape[1]))
    if shape[0] < 1 or shape[1] < 1:
        raise SparseFormatError(
            f"block shape must be >= 1 in both dimensions, got {shape}"
        )
    return shape


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class BsrMatrix:
    """An immutable sparse matrix in block compressed sparse row format.

    Attributes:
        shape: logical ``(n_rows, n_cols)`` (need not be block-aligned;
            ragged edges are padded inside the boundary tiles).
        block_shape: ``(br, bc)`` tile dimensions.
        indptr: int64 array of length ``n_block_rows + 1``; block row ``i``
            owns the tile range ``[indptr[i], indptr[i+1])``.
        indices: int64 array of block-column ids, sorted within each block
            row.
        data: float64 or float32 tile array of shape ``(n_tiles, br, bc)``;
            fill slots hold 0.0 (the storage dtype round-trips through
            CSR/COO conversions).
        mask: bool array of shape ``(n_tiles, br, bc)``; True where the
            slot holds a real (stored) entry — including explicit zeros,
            so CSR round trips are exact.
    """

    __slots__ = (
        "shape", "block_shape", "indptr", "indices", "data", "mask",
        "_row_nnz", "_tile_rows",
    )

    def __init__(
        self,
        shape: Tuple[int, int],
        block_shape: BlockShape,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_shape = _normalize_block_shape(block_shape)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=storage_dtype(data))
        if mask is None:
            # reprolint: disable=ABFT003 -- structural default: without an
            # explicit mask, exactly the nonzero slots count as entries
            mask = self.data != 0.0
        self.mask = np.ascontiguousarray(mask, dtype=bool)
        self._row_nnz: Optional[np.ndarray] = None
        self._tile_rows: Optional[np.ndarray] = None
        self._validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        br, bc = self.block_shape
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"negative dimension in shape {self.shape}")
        nbr = self.n_block_rows
        if self.indptr.shape != (nbr + 1,):
            raise SparseFormatError(
                f"indptr must have length n_block_rows+1={nbr + 1}, "
                f"got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if self.indptr[-1] != self.indices.size:
            raise SparseFormatError(
                f"indptr[-1]={self.indptr[-1]} does not match tile count "
                f"{self.indices.size}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.data.shape != (self.indices.size, br, bc):
            raise SparseFormatError(
                f"data must have shape (n_tiles, {br}, {bc})="
                f"({self.indices.size}, {br}, {bc}), got {self.data.shape}"
            )
        if self.mask.shape != self.data.shape:
            raise SparseFormatError("mask must have the same shape as data")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n_block_cols:
                raise SparseFormatError("block-column index out of range")
            # reprolint: disable=ABFT003 -- structural invariant: BSR fill
            # slots must hold literal 0.0 (they are never computed values)
            if (self.data[~self.mask] != 0.0).any():
                raise SparseFormatError("fill slots must hold 0.0")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    #: Registry / dispatch name of this storage format.
    format_name = "bsr"

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def n_block_rows(self) -> int:
        return _ceil_div(self.shape[0], self.block_shape[0])

    @property
    def n_block_cols(self) -> int:
        return _ceil_div(self.shape[1], self.block_shape[1])

    @property
    def n_tiles(self) -> int:
        """Number of stored dense tiles."""
        return int(self.indices.size)

    @property
    def nnz(self) -> int:
        """Real (non-fill) entries."""
        return int(self.mask.sum())

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the tile values (the pipeline's working dtype)."""
        return self.data.dtype

    @property
    def fill_ratio(self) -> float:
        """Fraction of stored tile slots holding real entries (1.0 = dense
        tiles, the regime where BSR beats CSR)."""
        slots = self.mask.size
        return self.nnz / slots if slots else 0.0

    def tile_rows(self) -> np.ndarray:
        """Block-row id of every stored tile (cached; read-only)."""
        if self._tile_rows is None:
            rows = np.repeat(
                np.arange(self.n_block_rows, dtype=np.int64),
                np.diff(self.indptr),
            )
            rows.flags.writeable = False
            self._tile_rows = rows
        return self._tile_rows

    def row_nnz(self) -> np.ndarray:
        """Real entries per logical row (cached; read-only)."""
        if self._row_nnz is None:
            br = self.block_shape[0]
            padded = np.zeros(self.n_block_rows * br, dtype=np.int64)
            if self.n_tiles:
                per_tile_row = self.mask.sum(axis=2)  # (n_tiles, br)
                np.add.at(padded.reshape(self.n_block_rows, br),
                          self.tile_rows(), per_tile_row)
            counts = padded[: self.n_rows]
            counts.flags.writeable = False
            self._row_nnz = counts
        return self._row_nnz

    def nnz_in_rows(self, row_start: int, row_stop: int) -> int:
        """Real-entry count of the row range ``[row_start, row_stop)``."""
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        return int(self.row_nnz()[row_start:row_stop].sum())

    def _check_row_range(self, row_start: int, row_stop: int) -> Tuple[int, int]:
        row_start, row_stop = int(row_start), int(row_stop)
        if not (0 <= row_start <= row_stop <= self.n_rows):
            raise ShapeMismatchError(
                f"row range [{row_start}, {row_stop}) invalid for {self.n_rows} rows"
            )
        return row_start, row_stop

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CsrMatrix, block_shape: BlockShape) -> "BsrMatrix":
        """Convert a CSR matrix, materializing every touched tile densely."""
        br, bc = _normalize_block_shape(block_shape)
        n_rows, n_cols = csr.shape
        nbc = _ceil_div(n_cols, bc)
        rows = csr.entry_rows()
        cols = csr.indices
        brow = rows // br
        bcol = cols // bc
        key = brow * max(nbc, 1) + bcol
        uniq = np.unique(key)
        n_tiles = int(uniq.size)
        data = np.zeros((n_tiles, br, bc), dtype=csr.data.dtype)
        mask = np.zeros((n_tiles, br, bc), dtype=bool)
        if n_tiles:
            tile_id = np.searchsorted(uniq, key)
            data[tile_id, rows % br, cols % bc] = csr.data
            mask[tile_id, rows % br, cols % bc] = True
        tile_brow = uniq // max(nbc, 1)
        tile_bcol = uniq % max(nbc, 1)
        nbr = _ceil_div(n_rows, br)
        indptr = np.zeros(nbr + 1, dtype=np.int64)
        if n_tiles:
            np.cumsum(np.bincount(tile_brow, minlength=nbr), out=indptr[1:])
        return cls(csr.shape, (br, bc), indptr, tile_bcol, data, mask)

    @classmethod
    def from_coo(cls, coo: CooMatrix, block_shape: BlockShape) -> "BsrMatrix":
        """Convert a COO matrix (duplicates summed, as in COO→CSR)."""
        return cls.from_csr(coo.to_csr(), block_shape)

    def to_csr(self) -> CsrMatrix:
        """Convert back to CSR exactly (fill dropped, explicit zeros kept)."""
        return self.to_coo().to_csr()

    def to_coo(self) -> CooMatrix:
        """Extract the real (masked) entries as a COO matrix."""
        br, bc = self.block_shape
        tile_id, tile_r, tile_c = np.nonzero(self.mask)
        rows = self.tile_rows()[tile_id] * br + tile_r
        cols = self.indices[tile_id] * bc + tile_c
        return CooMatrix(self.shape, rows, cols, self.data[tile_id, tile_r, tile_c])

    def to_dense(self) -> np.ndarray:
        """Materialize the real entries as a dense float64 array."""
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def padded_operand(self, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy ``b`` into a ``(n_block_cols * bc,)`` zero-padded buffer.

        ``out``, when given, must be in the storage dtype, of exactly that
        length, with its tail already zeroed; it is the planned path's
        reusable buffer.
        """
        b = np.asarray(b, dtype=self.data.dtype)
        if b.shape != (self.n_cols,):
            raise ShapeMismatchError(
                f"operand has shape {b.shape}, expected ({self.n_cols},)"
            )
        padded = self.n_block_cols * self.block_shape[1]
        if out is None:
            out = np.zeros(padded, dtype=self.data.dtype)
        out[: self.n_cols] = b
        return out

    def matvec(self, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """SpMV through the tile pipeline (gather → einsum → reduceat).

        Fill slots contribute exact zeros, so the value differs from the
        CSR multiply only by summation association — bound-level, never
        bit-level equal in general.
        """
        value2d = self._block_rows_matvec(
            0, self.n_block_rows, self.padded_operand(b)
        )
        flat = value2d.reshape(-1)[: self.n_rows]
        if out is None:
            return flat.copy()
        out[:] = flat
        return out

    def __matmul__(self, b: np.ndarray) -> np.ndarray:
        return self.matvec(b)

    def matvec_rows(
        self, row_start: int, row_stop: int, b: np.ndarray
    ) -> np.ndarray:
        """Partial SpMV over rows ``[row_start, row_stop)``.

        Bit-identical, row for row, to the corresponding slice of
        :meth:`matvec`: each output row reduces over its own block row's
        tiles in storage order regardless of which rows are requested.
        """
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        br, _ = self.block_shape
        b0, b1 = row_start // br, _ceil_div(row_stop, br)
        value2d = self._block_rows_matvec(b0, b1, self.padded_operand(b))
        offset = row_start - b0 * br
        return value2d.reshape(-1)[offset : offset + (row_stop - row_start)].copy()

    def _block_rows_matvec(
        self, block_row_start: int, block_row_stop: int, padded_b: np.ndarray
    ) -> np.ndarray:
        """Tile pipeline over block rows ``[block_row_start, block_row_stop)``.

        This is the one place the BSR summation association is defined:
        per tile, ``einsum("nij,nj->ni")`` dots each tile row with its
        operand slice; per block row, ``np.add.reduceat`` accumulates the
        tile partials left to right in storage order.  The planned shard
        executors (:mod:`repro.perf.plan`) and the block-correction
        kernels (:mod:`repro.kernels.bsr`) replay exactly these ops so
        partial recomputation reproduces the full multiply bit for bit.
        """
        br, bc = self.block_shape
        lo = int(self.indptr[block_row_start])
        hi = int(self.indptr[block_row_stop])
        n_local = block_row_stop - block_row_start
        out2d = np.zeros((n_local, br), dtype=self.data.dtype)
        if hi == lo or n_local == 0:
            return out2d
        bview = padded_b.reshape(self.n_block_cols, bc)
        tiles = bview[self.indices[lo:hi]]
        prod = np.empty((hi - lo, br), dtype=self.data.dtype)
        np.einsum("nij,nj->ni", self.data[lo:hi], tiles, out=prod)
        local_ptr = self.indptr[block_row_start : block_row_stop + 1] - lo
        lengths = np.diff(local_ptr)
        nonempty = lengths > 0
        starts = local_ptr[:-1][nonempty]
        out2d[nonempty] = np.add.reduceat(prod, starts, axis=0)
        return out2d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BsrMatrix(shape={self.shape}, block_shape={self.block_shape}, "
            f"tiles={self.n_tiles}, nnz={self.nnz}, fill={self.fill_ratio:.2f})"
        )
