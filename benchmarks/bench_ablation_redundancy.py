"""Ablation — ABFT vs brute-force redundancy (paper Section II).

"Duplication or even triplication of procedures induce high costs in
power, energy, and throughput" — this bench quantifies the throughput half
against the proposed scheme across matrix sizes, and exposes the crossover
the machine model predicts: on latency-dominated (tiny) multiplies an idle
device absorbs a duplicate execution almost for free, while at real sizes
redundancy pays its full 2x / 3x work.
"""

import numpy as np
from conftest import write_result

from repro.analysis.ablations import ablate_redundancy, render_redundancy_ablation
from repro.baselines import TmrSpMV
from repro.machine import Machine

MATRICES = ("nos3", "bcsstk13", "s3rmt3m3", "msc10848", "crankseg_1")


def test_redundancy_ablation(benchmark, full_suite):
    subset = [(s, m) for s, m in full_suite if s.name in MATRICES]
    machine = Machine()
    ablation = ablate_redundancy(subset, machine=machine)
    write_result("ablation_redundancy", render_redundancy_ablation(ablation))

    by_name = {
        name: {k: ablation.overheads[k][i] for k in ablation.overheads}
        for i, name in enumerate(ablation.names)
    }
    # At real sizes ABFT wins decisively and TMR costs ~2x extra.
    for name in ("msc10848", "crankseg_1"):
        assert by_name[name]["ours"] < by_name[name]["dwc"]
        assert by_name[name]["tmr"] > 1.0
    # TMR is never cheaper than DWC.
    for cells in by_name.values():
        assert cells["tmr"] >= cells["dwc"]

    matrix = subset[1][1]
    b = np.random.default_rng(72).standard_normal(matrix.n_cols)
    benchmark(lambda: TmrSpMV(matrix, machine=machine).multiply(b))
