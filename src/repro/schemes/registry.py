"""Process-wide registry of protection schemes.

Mirrors the :mod:`repro.kernels` registry: named factories, protected
built-ins, and an environment override.  Entries are *factories* rather
than instances because a scheme is bound to one matrix — campaigns build
a fresh scheme object per matrix via :func:`make_scheme`.

Selection order for :func:`resolve_scheme` (first match wins):

1. an explicit :class:`~repro.schemes.base.ProtectionScheme` instance is
   returned as-is;
2. the :data:`SCHEME_ENV_VAR` environment variable (``REPRO_SCHEME``)
   overrides a *defaulted* selection — it fills in when no name was
   requested, so CI can steer whole runs without breaking call sites
   that ask for a specific scheme by name;
3. the name passed in (usually ``AbftConfig.scheme``);
4. :data:`DEFAULT_SCHEME`.

Explicit lookups (:func:`make_scheme`) never consult the environment.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Protocol, Tuple, Union

from repro.errors import ConfigurationError
from repro.schemes.base import ProtectionScheme

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.config import AbftConfig
    from repro.machine import Machine
    from repro.obs import Telemetry
    from repro.sparse.csr import CsrMatrix

#: Environment variable that overrides the *default* scheme selection.
SCHEME_ENV_VAR = "REPRO_SCHEME"

#: Scheme used when neither a name, the config, nor the environment selects one.
DEFAULT_SCHEME = "abft"

#: Schemes that ship with the library and can never be unregistered.
BUILTIN_SCHEMES = (
    "abft",
    "bisection",
    "checkpoint",
    "complete",
    "dense_check",
    "redundancy",
    "tmr",
    "vabft",
)

#: Scheme triple of the paper's correction comparison (Figure 6):
#: block-ABFT vs bisection partial recomputation vs complete recomputation.
DEFAULT_CORRECTION_SCHEMES = ("abft", "bisection", "complete")

#: Scheme triple of the paper's PCG case study (Figures 8-9).
DEFAULT_PCG_SCHEMES = ("abft", "bisection", "checkpoint")

#: Historic spellings accepted anywhere a scheme name is (campaign scripts,
#: figure tables and old configs predate the registry).
SCHEME_ALIASES: Mapping[str, str] = {
    "ours": "abft",
    "block": "abft",
    "partial": "bisection",
    "partial-recomputation": "bisection",
    "dense": "dense_check",
    "dwc": "redundancy",
}


class SchemeFactory(Protocol):
    """Builds a scheme instance bound to ``matrix``.

    Factories receive the shared execution context by keyword so every
    scheme runs kernel-for-kernel on the same machine model and telemetry
    stream; unknown extra keywords must be rejected, scheme-specific
    options (e.g. the checkpoint interval) accepted.
    """

    def __call__(
        self,
        matrix: "CsrMatrix",
        *,
        config: "AbftConfig",
        machine: "Machine",
        telemetry: "Telemetry",
        **options: object,
    ) -> ProtectionScheme: ...


_REGISTRY: Dict[str, SchemeFactory] = {}


def register_scheme(
    name: str, factory: SchemeFactory, overwrite: bool = False
) -> SchemeFactory:
    """Register ``factory`` under ``name``; returns it for chaining."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"scheme name must be a non-empty string, got {name!r}")
    if name in SCHEME_ALIASES:
        raise ConfigurationError(
            f"scheme name {name!r} is reserved as an alias for "
            f"{SCHEME_ALIASES[name]!r}"
        )
    if not callable(factory):
        raise ConfigurationError(
            f"scheme factory for {name!r} must be callable, got {type(factory).__name__}"
        )
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"scheme {name!r} already registered (pass overwrite=True)"
        )
    _REGISTRY[name] = factory
    return factory


def unregister_scheme(name: str) -> None:
    """Remove a registered scheme (primarily for test isolation)."""
    if name in BUILTIN_SCHEMES:
        raise ConfigurationError(f"built-in scheme {name!r} cannot be removed")
    _REGISTRY.pop(name, None)


def available_schemes() -> Tuple[str, ...]:
    """Registered scheme names, sorted (aliases not included)."""
    return tuple(sorted(_REGISTRY))


def canonical_scheme_name(name: str) -> str:
    """Resolve aliases and validate that ``name`` is registered."""
    if not isinstance(name, str):
        raise ConfigurationError(
            f"scheme must be a name or ProtectionScheme, got {type(name).__name__}"
        )
    resolved = SCHEME_ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        raise ConfigurationError(
            f"unknown scheme {name!r}; expected one of {available_schemes()}"
        )
    return resolved


def get_scheme_factory(name: str) -> SchemeFactory:
    """Look up a scheme factory by (possibly aliased) name."""
    return _REGISTRY[canonical_scheme_name(name)]


def make_scheme(
    name: str,
    matrix: "CsrMatrix",
    *,
    config: Optional["AbftConfig"] = None,
    machine: Optional["Machine"] = None,
    telemetry: Optional["Telemetry"] = None,
    **options: object,
) -> ProtectionScheme:
    """Build the named scheme for ``matrix`` (explicit — no env override).

    ``config``/``machine``/``telemetry`` default to ``AbftConfig()``, a
    fresh :class:`~repro.machine.Machine`, and the telemetry the config
    resolves to; ``options`` are passed through to the factory.
    """
    factory = get_scheme_factory(name)
    if config is None:
        from repro.core.config import AbftConfig

        config = AbftConfig()
    if machine is None:
        from repro.machine import Machine

        machine = Machine()
    if telemetry is None:
        from repro.obs import resolve_telemetry

        telemetry = resolve_telemetry(config.telemetry)
    scheme = factory(
        matrix, config=config, machine=machine, telemetry=telemetry, **options
    )
    if not isinstance(scheme, ProtectionScheme):
        raise ConfigurationError(
            f"scheme factory {canonical_scheme_name(name)!r} produced "
            f"{type(scheme).__name__}, which does not satisfy ProtectionScheme"
        )
    return scheme


def resolve_scheme(
    matrix: "CsrMatrix",
    scheme: Union[str, ProtectionScheme, None] = None,
    *,
    config: Optional["AbftConfig"] = None,
    machine: Optional["Machine"] = None,
    telemetry: Optional["Telemetry"] = None,
    **options: object,
) -> ProtectionScheme:
    """Resolve a scheme selection to a concrete instance for ``matrix``.

    ``scheme`` may be a :class:`ProtectionScheme` (returned as-is), a
    registered name, or ``None`` — in which case ``REPRO_SCHEME``, then
    ``config.scheme``, then :data:`DEFAULT_SCHEME` decide.
    """
    if isinstance(scheme, ProtectionScheme) and not isinstance(scheme, str):
        return scheme
    if scheme is None:
        env = os.environ.get(SCHEME_ENV_VAR)
        if env:
            scheme = env
        elif config is not None and config.scheme is not None:
            scheme = config.scheme
        else:
            scheme = DEFAULT_SCHEME
    if not isinstance(scheme, str):
        raise ConfigurationError(
            f"scheme must be a name or ProtectionScheme, got {type(scheme).__name__}"
        )
    return make_scheme(
        scheme,
        matrix,
        config=config,
        machine=machine,
        telemetry=telemetry,
        **options,
    )
