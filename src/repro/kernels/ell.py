"""ELL kernel sets: fixed-width padded-row recompute.

The ``("ell", ...)`` registry entries.  Structure mirrors
:mod:`repro.kernels.bsr`: detection-side kernels operate on the result
vector and the CSR checksum matrix and are inherited unchanged; the
source-matrix kernels come from the shared format-protocol mixin, whose
recompute path is :meth:`repro.sparse.ell.EllMatrix.matvec_rows` — the
row-wise pairwise reduction over the fixed width, bit-identical to any
slice of the full :meth:`~repro.sparse.ell.EllMatrix.matvec`.
"""

from __future__ import annotations

from repro.kernels.bsr import _FormatRecomputeMixin
from repro.kernels.naive import NaiveKernels
from repro.kernels.vectorized import VectorizedKernels


class EllNaiveKernels(_FormatRecomputeMixin, NaiveKernels):
    """Reference ELL set: per-block loops over padded-row slices."""

    name = "naive"
    sparse_format = "ell"


class EllVectorizedKernels(_FormatRecomputeMixin, VectorizedKernels):
    """Batched ELL set: detection inherits the fused CSR reductions;
    recompute is one padded-row reduction per corrected block."""

    name = "vectorized"
    sparse_format = "ell"
