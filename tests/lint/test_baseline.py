"""Baseline round trip and line-shift-stable fingerprints."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    compare_with_baseline,
    fingerprint_all,
    get_rule,
    lint_source,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.baseline import find_default_baseline

SOURCE = (
    "def detect(syndrome, threshold):\n"
    "    if syndrome == 0.0:\n"
    "        return False\n"
    "    return syndrome != threshold\n"
)


def findings_for(source: str):
    findings, _, _ = lint_source(source, Path("mod.py"), [get_rule("ABFT003")])
    return findings


def test_round_trip(tmp_path):
    findings = findings_for(SOURCE)
    assert findings
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    comparison = compare_with_baseline(findings, baseline)
    assert comparison.new == []
    assert len(comparison.known) == len(findings)
    assert comparison.stale == []


def test_fingerprints_survive_line_shifts(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(SOURCE))
    shifted = "# a new leading comment\n\n\n" + SOURCE
    comparison = compare_with_baseline(findings_for(shifted), load_baseline(path))
    assert comparison.new == []
    assert comparison.stale == []


def test_repeated_identical_lines_get_distinct_fingerprints():
    doubled = SOURCE + "\n\n" + SOURCE.replace("detect", "detect_again")
    findings = findings_for(doubled)
    prints = [p for _, p in fingerprint_all(findings)]
    assert len(prints) == len(set(prints)) == len(findings)


def test_fixed_findings_show_up_as_stale(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(SOURCE))
    remaining = findings_for(SOURCE.splitlines()[0] + "\n    return False\n")
    comparison = compare_with_baseline(remaining, load_baseline(path))
    assert comparison.new == []
    assert comparison.stale  # both old fingerprints are gone


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ConfigurationError):
        load_baseline(path)


def test_future_version_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": {}}), encoding="utf-8")
    with pytest.raises(ConfigurationError):
        load_baseline(path)


def test_render_is_deterministic():
    findings = findings_for(SOURCE)
    assert render_baseline(findings) == render_baseline(list(findings))


def test_find_default_baseline_walks_upward(tmp_path):
    (tmp_path / ".reprolint-baseline.json").write_text(
        json.dumps({"version": 1, "findings": {}}), encoding="utf-8"
    )
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    found, exists = find_default_baseline(nested)
    assert exists
    assert found == tmp_path / ".reprolint-baseline.json"


def test_committed_repo_baseline_loads_and_is_empty():
    repo_root = Path(__file__).resolve().parents[2]
    baseline = load_baseline(repo_root / ".reprolint-baseline.json")
    assert baseline == {}
