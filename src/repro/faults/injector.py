"""Fault injector: applies the bit-flip model to vectors and scalars.

The injector is the single gateway through which experiments corrupt data.
It records every injection (target, index, original/corrupted values,
burst) so campaigns can score detection outcomes, and it supports the two
target classes the paper exercises:

* result-vector elements of the SpMV (Section IV-A), and
* the operations performed by the *error detection itself* ("Bit flips were
  also injected into operations that perform error detection").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import InjectionError
from repro.faults.bitflip import BURST_MEAN_BITS, BURST_VARIANCE_BITS, Burst, corrupt_value
from repro.faults.significance import corrupt_significantly, is_significant
from repro.obs import Telemetry


@dataclass(frozen=True)
class Injection:
    """Record of one injected error.

    ``burst`` is None when a non-burst fault model produced the error.
    """

    target: str
    index: int
    original: float
    corrupted: float
    burst: Optional[Burst]


@dataclass
class FaultInjector:
    """Stateful injector shared by one experiment run.

    Attributes:
        rng: NumPy generator driving all randomness.
        mean_bits / variance_bits: burst-width distribution.
        log: chronological list of performed injections.
        telemetry: optional :class:`repro.obs.Telemetry`; when enabled,
            every corruption attempt bumps ``faults.injection_attempts``
            and every recorded injection ``faults.injections`` (tagged
            with its target), so live campaign coverage is computable as
            ``abft.detections / faults.injections``.
    """

    #: Redraws allowed before giving up on a burst that keeps rounding
    #: away in the target vector's storage dtype (narrow-dtype targets
    #: only; float64 storage never redraws).
    MAX_STORAGE_ATTEMPTS = 100

    rng: np.random.Generator
    mean_bits: float = BURST_MEAN_BITS
    variance_bits: float = BURST_VARIANCE_BITS
    #: Optional alternative fault model (see :mod:`repro.faults.models`);
    #: None selects the paper's burst model.
    model: Optional[object] = None
    log: List[Injection] = field(default_factory=list)
    telemetry: Optional[Telemetry] = None

    @classmethod
    def seeded(cls, seed: int, telemetry: Optional[Telemetry] = None) -> "FaultInjector":
        """Convenience constructor with a fresh seeded generator."""
        return cls(rng=np.random.default_rng(seed), telemetry=telemetry)

    def _observe_injection(self, target: str, attempted_only: bool = False) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.count("faults.injection_attempts", target=target)
        if not attempted_only:
            telemetry.count("faults.injections", target=target)

    # ------------------------------------------------------------------
    # Vector targets
    # ------------------------------------------------------------------
    def corrupt_element(
        self,
        vector: np.ndarray,
        index: int,
        target: str = "result",
        sigma: Optional[float] = None,
    ) -> Injection:
        """Corrupt ``vector[index]`` in place; returns the injection record.

        Args:
            vector: float vector to corrupt (modified in place; any float
                storage dtype — the burst is drawn in float64 and resampled
                until it survives rounding into the vector's dtype).
            index: element to hit.
            target: label stored in the record (e.g. ``"result"``).
            sigma: if given, resample bursts until the corruption exceeds
                the minimal error significance σ.
        """
        if not np.issubdtype(vector.dtype, np.floating):
            raise InjectionError(f"can only corrupt float vectors, got {vector.dtype}")
        if not 0 <= index < vector.size:
            raise InjectionError(f"index {index} out of range for size {vector.size}")
        original = float(vector[index])
        burst: Optional[Burst]
        for _ in range(self.MAX_STORAGE_ATTEMPTS):
            if self.model is not None:
                corrupted, burst = self._corrupt_with_model(original, sigma)
            elif sigma is None:
                corrupted, burst = corrupt_value(
                    original, self.rng, self.mean_bits, self.variance_bits
                )
            else:
                corrupted, burst = corrupt_significantly(original, self.rng, sigma)
            # What lands in the vector is the burst *after* storage
            # rounding; on narrow dtypes a float64-significant burst can
            # round back to the original (or lose its significance), which
            # would charge the detector with a miss for an error that never
            # existed.  float64 storage keeps the value bit-identical, so
            # the first draw always passes and the RNG stream is unchanged.
            with np.errstate(over="ignore"):  # f32 overflow -> inf is a visible burst
                stored = float(np.asarray(corrupted, dtype=vector.dtype))
            if stored != original and (
                sigma is None or is_significant(original, stored, sigma)
            ):
                break
        else:
            self._observe_injection(target, attempted_only=True)
            raise InjectionError(
                f"no burst on {original!r} survived rounding into "
                f"{vector.dtype} in {self.MAX_STORAGE_ATTEMPTS} attempts"
            )
        vector[index] = stored
        record = Injection(target, index, original, stored, burst)
        self.log.append(record)
        self._observe_injection(target)
        return record

    def corrupt_random_element(
        self, vector: np.ndarray, target: str = "result", sigma: Optional[float] = None
    ) -> Injection:
        """Corrupt a uniformly random element of ``vector`` in place."""
        if vector.size == 0:
            raise InjectionError("cannot corrupt an empty vector")
        index = int(self.rng.integers(0, vector.size))
        return self.corrupt_element(vector, index, target=target, sigma=sigma)

    def _corrupt_with_model(
        self, original: float, sigma: Optional[float], max_attempts: int = 10_000
    ) -> tuple[float, None]:
        """Corrupt via the configured fault model (σ-resampled if asked)."""
        for _ in range(max_attempts):
            corrupted = float(self.model.corrupt(original, self.rng))
            if corrupted == original:
                continue
            if sigma is None or is_significant(original, corrupted, sigma):
                return corrupted, None
        self._observe_injection("model", attempted_only=True)
        raise InjectionError(
            f"fault model {getattr(self.model, 'name', self.model)!r} produced no "
            f"suitable corruption of {original!r} in {max_attempts} attempts"
        )

    # ------------------------------------------------------------------
    # Scalar targets (detection-operation faults)
    # ------------------------------------------------------------------
    def corrupt_scalar(self, value: float, target: str = "detection") -> float:
        """Corrupt a scalar produced by a detection operation; returns it.

        The record's index is -1 (scalars have no position).
        """
        burst: Optional[Burst]
        if self.model is not None:
            corrupted, burst = self._corrupt_with_model(float(value), None)
        else:
            corrupted, burst = corrupt_value(
                float(value), self.rng, self.mean_bits, self.variance_bits
            )
        self.log.append(Injection(target, -1, float(value), corrupted, burst))
        self._observe_injection(target)
        return corrupted

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def injections_into(self, target: str) -> List[Injection]:
        """All recorded injections whose target label matches."""
        return [record for record in self.log if record.target == target]

    def clear(self) -> None:
        """Drop the injection log (the RNG state is preserved)."""
        self.log.clear()
