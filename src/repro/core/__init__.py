"""Core contribution: block-ABFT for sparse matrix operations (DSN 2016).

Public surface:

* :class:`AbftConfig` — scheme parameters (block size, bound, weights);
* :class:`ChecksumMatrix` — the sparse checksum encoding (Figures 2-3);
* :class:`BlockAbftDetector` — detect *and locate* errors per block;
* :class:`FaultTolerantSpMV` — the end-to-end protected multiply
  (Figure 1) with partial recomputation and re-verification;
* the rounding-error bounds of Section III-C.
"""

from repro.core.algebraic import AlgebraicSpmvResult, DualChecksumSpMV
from repro.core.autotune import DEFAULT_CANDIDATES, TuningResult, choose_block_size
from repro.core.blocking import BlockPartition
from repro.core.calibration import EmpiricalBound
from repro.core.bounds import (
    Bound,
    DenseAnalyticalBound,
    NormBound,
    SparseBlockBound,
    make_bound,
)
from repro.core.checksum import ChecksumMatrix, make_weights
from repro.core.config import (
    BOUND_KINDS,
    DEFAULT_BLOCK_SIZE,
    MACHINE_EPSILON,
    WEIGHT_KINDS,
    AbftConfig,
)
from repro.core.corrector import CorrectionOutcome, TamperHook, correct_blocks
from repro.core.detector import (
    BlockAbftDetector,
    DetectionReport,
    NearMiss,
    NearMissHook,
    ReportHook,
)
from repro.core.dtypes import (
    BUILTIN_DTYPES,
    DEFAULT_DTYPE,
    DTYPE_ENV_VAR,
    DtypePolicy,
    available_dtypes,
    canonical_dtype_name,
    coerce_array,
    get_dtype_policy,
    register_dtype_policy,
    resolve_dtype_name,
    resolve_dtype_policy,
    unregister_dtype_policy,
)
from repro.core.multivector import ProtectedSpMM, SpmmResult
from repro.core.triangular import ProtectedTriangularSolve, TriangularSolveResult
from repro.core.protected import FaultTolerantSpMV, SpmvResult, plain_spmv

__all__ = [
    "AbftConfig",
    "DualChecksumSpMV",
    "AlgebraicSpmvResult",
    "EmpiricalBound",
    "choose_block_size",
    "TuningResult",
    "DEFAULT_CANDIDATES",
    "ProtectedSpMM",
    "SpmmResult",
    "ProtectedTriangularSolve",
    "TriangularSolveResult",
    "MACHINE_EPSILON",
    "DEFAULT_BLOCK_SIZE",
    "BOUND_KINDS",
    "WEIGHT_KINDS",
    "BlockPartition",
    "ChecksumMatrix",
    "make_weights",
    "Bound",
    "SparseBlockBound",
    "DenseAnalyticalBound",
    "NormBound",
    "make_bound",
    "BlockAbftDetector",
    "DetectionReport",
    "NearMiss",
    "NearMissHook",
    "ReportHook",
    "BUILTIN_DTYPES",
    "DEFAULT_DTYPE",
    "DTYPE_ENV_VAR",
    "DtypePolicy",
    "available_dtypes",
    "canonical_dtype_name",
    "coerce_array",
    "get_dtype_policy",
    "register_dtype_policy",
    "resolve_dtype_name",
    "resolve_dtype_policy",
    "unregister_dtype_policy",
    "CorrectionOutcome",
    "TamperHook",
    "correct_blocks",
    "FaultTolerantSpMV",
    "SpmvResult",
    "plain_spmv",
]
