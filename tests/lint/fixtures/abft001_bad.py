"""Fixture: protected-matrix internals mutated without a checksum refresh."""


def tamper(matrix, value):
    matrix.data[0] = value  # MARK:ABFT001
    return matrix


def shift_structure(matrix):
    matrix.indptr += 1  # MARK:ABFT001
    matrix.indices[2] = 0  # MARK:ABFT001
