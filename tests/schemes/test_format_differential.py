"""The scheme × format differential matrix.

Two contracts, one per execution path:

* **Unplanned multiplies are format-blind.** Every registered scheme
  resolves its numerics on the CSR matrix regardless of ``REPRO_FORMAT``
  — a format override must not move a single bit of any scheme's value,
  detections, corrections or simulated cost.  (Formats engage on planned
  paths only; this is what keeps the golden snapshots stable.)

* **Planned ABFT multiplies are bound-level equivalent across formats.**
  The planned operator run on BSR/ELL storage must agree with the CSR
  reference within the paper's rounding regime (the storage formats
  re-associate the row sums), with identical detection/correction
  bookkeeping — and bit-for-bit when the requested format resolves back
  to CSR.
"""

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.machine import Machine
from repro.schemes import BUILTIN_SCHEMES, make_scheme
from repro.sparse import FORMAT_ENV_VAR, BUILTIN_FORMATS, random_spd

N, NNZ, MATRIX_SEED, RHS_SEED = 96, 900, 7, 123
BLOCK_SIZE = 16
FORMATS = BUILTIN_FORMATS + ("auto",)


@pytest.fixture(scope="module")
def corpus():
    matrix = random_spd(N, NNZ, seed=MATRIX_SEED)
    b = np.random.default_rng(RHS_SEED).standard_normal(N)
    return matrix, b


def one_shot_burst(index=33, magnitude=1e4):
    state = {"armed": True}

    def hook(stage, data, work):
        if stage == "result" and state["armed"]:
            data[index] += magnitude
            state["armed"] = False

    return hook


def _run_scheme(corpus, name, tampered):
    matrix, b = corpus
    scheme = make_scheme(
        name, matrix, config=AbftConfig(block_size=BLOCK_SIZE), machine=Machine()
    )
    tamper = one_shot_burst() if tampered else None
    return scheme.multiply(b.copy(), tamper=tamper)


@pytest.mark.parametrize("sparse_format", FORMATS)
@pytest.mark.parametrize("scenario", ("clean", "burst"))
@pytest.mark.parametrize("name", BUILTIN_SCHEMES)
def test_unplanned_schemes_ignore_format_override(
    corpus, monkeypatch, name, scenario, sparse_format
):
    monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
    reference = _run_scheme(corpus, name, scenario == "burst")
    monkeypatch.setenv(FORMAT_ENV_VAR, sparse_format)
    result = _run_scheme(corpus, name, scenario == "burst")
    np.testing.assert_array_equal(result.value, reference.value)
    assert result.detections == reference.detections
    assert result.corrections == reference.corrections
    assert result.rounds == reference.rounds
    assert result.seconds == reference.seconds
    assert result.flops == reference.flops


@pytest.mark.parametrize("sparse_format", FORMATS)
@pytest.mark.parametrize("scenario", ("clean", "burst"))
def test_planned_abft_matches_csr_across_formats(
    corpus, monkeypatch, scenario, sparse_format
):
    matrix, b = corpus
    monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
    config = AbftConfig(block_size=BLOCK_SIZE)

    def run(fmt):
        op = FaultTolerantSpMV(matrix, config=config, machine=Machine())
        tamper = one_shot_burst() if scenario == "burst" else None
        return op.planned(sparse_format=fmt).multiply(b.copy(), tamper=tamper)

    reference = run("csr")
    ref_value = reference.value.copy()
    result = run(sparse_format)
    # Detection/correction bookkeeping is format-invariant.
    assert result.detections == reference.detections
    assert result.corrections == reference.corrections
    assert result.rounds == reference.rounds
    assert result.exhausted == reference.exhausted
    if sparse_format in ("csr", "auto"):
        # auto keeps CSR on this unstructured corpus: exact equality.
        np.testing.assert_array_equal(result.value, ref_value)
    else:
        # BSR/ELL re-associate row sums: bound-level, never exact.
        np.testing.assert_allclose(result.value, ref_value, rtol=1e-12)
