"""Block-ABFT protection for sparse triangular solves (extension).

Section III-E argues the scheme "can be applied to any application that
relies on associative linear operations which are decomposable"; triangular
solvers are the paper's own example from related work ([31]).  For a lower
triangular system ``L x = rhs`` the per-block invariant mirrors the SpMV
one::

    (w_k^T L_k) x  ≈  w_k^T rhs_k

so the *same* sparse checksum matrix machinery encodes ``L`` once, and a
violated block both detects and bounds the error location.  One twist is
specific to solves: forward substitution consumes earlier results, so an
error in ``x_j`` poisons everything downstream.  Correction therefore
re-solves the *suffix* starting at the first flagged block (the prefix
before it is provably untouched by the detected errors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.blocking import BlockPartition
from repro.core.bounds import SparseBlockBound
from repro.core.checksum import ChecksumMatrix
from repro.core.corrector import TamperHook
from repro.core.dtypes import coerce_array, resolve_dtype_policy
from repro.errors import ConfigurationError, ShapeMismatchError, SingularMatrixError
from repro.obs import resolve_telemetry
from repro.machine import (
    ExecutionMeter,
    Machine,
    TaskGraph,
    blocked_checksum_cost,
    checksum_matvec_cost,
    log2ceil,
    norm_cost,
)
from repro.sparse.csr import CsrMatrix

#: The solve's rounding error grows with the substitution chain, so the
#: SpMV-derived bound is widened by this factor (validated empirically by
#: the no-false-positive tests).
DEFAULT_BOUND_SCALE = 16.0


@dataclass(frozen=True)
class TriangularSolveResult:
    """Outcome of one protected triangular solve."""

    value: np.ndarray
    detected: Tuple[int, ...]
    resolved_from: Tuple[int, ...]
    rounds: int
    seconds: float
    flops: float
    exhausted: bool

    @property
    def clean(self) -> bool:
        return not self.detected


def forward_substitution(
    lower: CsrMatrix, rhs: np.ndarray, x: np.ndarray, start_row: int = 0
) -> None:
    """Solve ``L x = rhs`` in place for rows ``start_row..n`` (prefix of
    ``x`` below ``start_row`` is taken as already solved)."""
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    with np.errstate(invalid="ignore", over="ignore"):
        for i in range(start_row, lower.n_rows):
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo:hi]
            vals = data[lo:hi]
            # The stored diagonal is the last in-row entry of a sorted
            # lower-triangular row.
            acc = rhs[i] - np.dot(vals[:-1], x[cols[:-1]])
            x[i] = acc / vals[-1]


class ProtectedTriangularSolve:
    """Fault-tolerant forward solve for a sparse lower-triangular matrix.

    Args:
        lower: square lower-triangular CSR matrix with a full non-zero
            diagonal (e.g. an IC(0) factor).
        block_size: rows per checksum block.
        machine: simulated device.
        bound_scale: widening factor on the SpMV-derived rounding bound.
        max_rounds: re-solve round budget.
        dtype: dtype-policy selection (name or policy); supplies the
            epsilon model of the bound and the dtype the rhs joins.
        telemetry: :mod:`repro.obs` selection recording rhs dtype
            coercions (None = default exporter).
    """

    def __init__(
        self,
        lower: CsrMatrix,
        block_size: int = 32,
        machine: Optional[Machine] = None,
        bound_scale: float = DEFAULT_BOUND_SCALE,
        max_rounds: int = 8,
        dtype: object = None,
        telemetry: object = None,
    ) -> None:
        if lower.shape[0] != lower.shape[1]:
            raise ShapeMismatchError(f"need a square matrix, got {lower.shape}")
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        rows = lower.entry_rows()
        if rows.size and (lower.indices > rows).any():
            raise ConfigurationError("matrix has entries above the diagonal")
        diag = lower.diagonal()
        if (diag == 0).any():
            raise SingularMatrixError("triangular solve needs a non-zero diagonal")
        self.lower = lower
        self.block_size = block_size
        self.machine = machine or Machine()
        self.max_rounds = max_rounds
        self.telemetry = resolve_telemetry(telemetry)
        self.dtype_policy = resolve_dtype_policy(explicit=dtype)
        self.checksum = ChecksumMatrix.build(lower, block_size, "ones")
        self.bound = SparseBlockBound.from_checksum(
            self.checksum,
            scale=bound_scale,
            epsilon=self.dtype_policy.epsilon_for(lower.dtype),
        )

    @property
    def partition(self) -> BlockPartition:
        return self.checksum.partition

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _solve_graph(self, include_detection: bool = True) -> TaskGraph:
        """Solve kernel (level-scheduled substitution) plus detection.

        The rhs-side checksums ``t2`` overlap the solve (they need only the
        input); ``t1 = C x`` and the norm must wait for ``x``.
        """
        lower = self.lower
        graph = TaskGraph()
        solve_span = 4.0 * log2ceil(max(2, lower.n_rows))
        graph.add("solve", 2.0 * lower.nnz, solve_span)
        if not include_detection:
            return graph
        n_blocks = self.partition.n_blocks
        cost = blocked_checksum_cost(lower.n_rows, self.block_size, n_blocks)
        graph.add("t2", cost.work, cost.span)  # over rhs; overlaps the solve
        c = self.checksum.matrix
        cost = checksum_matvec_cost(c.nnz, int(c.row_lengths().max(initial=1)))
        graph.add("t1", cost.work, cost.span, deps=["solve"])
        cost = norm_cost(lower.n_cols)
        graph.add("beta", cost.work, cost.span, deps=["solve"])
        check = blocked_checksum_cost(n_blocks, self.block_size, n_blocks)
        graph.add("check", check.work, 5.0, deps=["t1", "t2", "beta"])
        return graph

    def _resolve_graph(self, nnz_tail: int, n_rows_tail: int) -> TaskGraph:
        graph = TaskGraph()
        span = 4.0 * log2ceil(max(2, n_rows_tail))
        graph.add("re-solve", 2.0 * nnz_tail, span)
        cost = checksum_matvec_cost(
            self.checksum.nnz, int(self.checksum.matrix.row_lengths().max(initial=1))
        )
        graph.add("recheck-t1", cost.work, cost.span, deps=["re-solve"])
        graph.add("recompare", 2.0 * self.partition.n_blocks, 5.0, deps=["recheck-t1"])
        return graph

    # ------------------------------------------------------------------
    # Protected solve
    # ------------------------------------------------------------------
    def solve(
        self,
        rhs: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> TriangularSolveResult:
        """Execute one protected forward solve (tamper contract as SpMV)."""
        lower = self.lower
        rhs = coerce_array(
            rhs,
            lower.data.dtype,
            site="trisolve.rhs",
            telemetry=self.telemetry,
            reason="rhs joins the matrix storage dtype",
        )
        if rhs.shape != (lower.n_rows,):
            raise ShapeMismatchError(
                f"rhs has shape {rhs.shape}, expected ({lower.n_rows},)"
            )
        meter = meter if meter is not None else ExecutionMeter(machine=self.machine)
        start_seconds, start_flops = meter.snapshot()
        meter.run_graph(self._solve_graph())

        x = np.empty(lower.n_rows, dtype=lower.data.dtype)
        forward_substitution(lower, rhs, x)
        if tamper is not None:
            tamper("result", x, 2.0 * lower.nnz)
        t2 = self.checksum.result_checksums(rhs)
        if tamper is not None:
            tamper("t2", t2, 2.0 * lower.n_rows)

        flagged = self._check(x, t2, tamper)
        detected = tuple(int(k) for k in flagged)
        resolved_from: list[int] = []
        rounds = 0
        exhausted = False
        while flagged.size:
            if rounds >= self.max_rounds:
                exhausted = True
                break
            rounds += 1
            if rounds >= 2:
                # A block that stays flagged may be the victim of a fault in
                # the rhs checksums themselves; refresh them (cf. the SpMV
                # driver's t1 refresh).
                t2 = self.checksum.result_checksums(rhs)
                if tamper is not None:
                    tamper("t2", t2, 2.0 * lower.n_rows)
            first_block = int(flagged.min())
            start_row, _ = self.partition.bounds(first_block)
            forward_substitution(lower, rhs, x, start_row=start_row)
            if tamper is not None:
                tail = x[start_row:]
                tamper("corrected", tail, 2.0 * lower.nnz_in_rows(start_row, lower.n_rows))
                x[start_row:] = tail
            resolved_from.append(first_block)
            meter.run_graph(
                self._resolve_graph(
                    lower.nnz_in_rows(start_row, lower.n_rows),
                    lower.n_rows - start_row,
                )
            )
            flagged = self._check(x, t2, tamper)

        seconds, flops = meter.snapshot()
        return TriangularSolveResult(
            value=x,
            detected=detected,
            resolved_from=tuple(resolved_from),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check(
        self, x: np.ndarray, t2: np.ndarray, tamper: Optional[TamperHook]
    ) -> np.ndarray:
        t1 = self.checksum.operand_checksums(x)
        if tamper is not None:
            tamper("t1", t1, 2.0 * self.checksum.nnz)
        beta = float(np.linalg.norm(x))
        with np.errstate(invalid="ignore", over="ignore"):
            syndrome = t1 - t2
            thresholds = self.bound.thresholds(beta)
            exceeded = (np.abs(syndrome) > thresholds) | ~np.isfinite(syndrome)
        return np.nonzero(exceeded)[0].astype(np.int64)
