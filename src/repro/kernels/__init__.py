"""Named, registry-dispatched implementations of the ABFT hot-path kernels.

Three kernel sets ship built in:

* ``"naive"`` — the reference per-block Python loops;
* ``"vectorized"`` — batched segment-sum versions of the same kernels
  (the default);
* ``"parallel"`` — the vectorized kernels sharded nnz-balanced across a
  thread pool (bit-identical results; worker count via
  ``REPRO_KERNEL_WORKERS``).

Selection: ``AbftConfig(kernel="...")`` (or the ``kernel=`` argument the
core entry points accept), overridden process-wide by the
``REPRO_KERNELS`` environment variable.  ``tests/kernels`` differentially
tests every registered pair over a corpus of edge-case matrices.
"""

from repro.kernels.base import (
    BUILTIN_KERNELS,
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    KernelSet,
    available_kernels,
    flat_segment_indices,
    get_kernels,
    register_kernels,
    resolve_kernels,
    segment_sums,
    unregister_kernels,
    validate_blocks,
)
from repro.kernels.naive import NaiveKernels
from repro.kernels.parallel import ParallelKernels
from repro.kernels.vectorized import VectorizedKernels

register_kernels(NaiveKernels())
register_kernels(VectorizedKernels())
register_kernels(ParallelKernels())

__all__ = [
    "BUILTIN_KERNELS",
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "KernelSet",
    "NaiveKernels",
    "ParallelKernels",
    "VectorizedKernels",
    "available_kernels",
    "get_kernels",
    "register_kernels",
    "unregister_kernels",
    "resolve_kernels",
    "flat_segment_indices",
    "segment_sums",
    "validate_blocks",
]
