"""Fixture: public selector-taking functions with no validation path."""


def make_detector(matrix, kind="block"):  # MARK:ABFT006
    if kind == "block":
        return ("block", matrix)
    return ("dense", matrix)


def pick_scheme(matrix, scheme: str = "abft"):  # MARK:ABFT006
    return {"abft": matrix, "dense": None}.get(scheme)


def stage_matrix(matrix, sparse_format="csr"):  # MARK:ABFT006
    if sparse_format == "bsr":
        return ("bsr", matrix)
    return ("csr", matrix)  # unknown names silently fall through to CSR
