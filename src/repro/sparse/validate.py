"""Matrix inspection and validation utilities.

The PCG case study, the preconditioners and the generators all carry
structural preconditions (symmetry, positive diagonals, dominance).  This
module centralizes checking them and produces a human-readable structure
report — useful before pointing a solver at a matrix loaded from disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SingularMatrixError, SparseFormatError
from repro.sparse.csr import CsrMatrix
from repro.sparse.reordering import bandwidth as matrix_bandwidth
from repro.sparse.reordering import profile as matrix_profile


@dataclass(frozen=True)
class MatrixReport:
    """Structural summary of a sparse matrix."""

    shape: tuple
    nnz: int
    density: float
    symmetric: bool
    positive_diagonal: bool
    weakly_diagonally_dominant: bool
    bandwidth: int
    profile: int
    min_row_degree: int
    mean_row_degree: float
    max_row_degree: int
    empty_rows: int


def inspect_matrix(matrix: CsrMatrix) -> MatrixReport:
    """Compute the structural summary (square matrices only for symmetry).

    ``symmetric`` / dominance fields are False for rectangular matrices
    rather than raising, so the report is universally applicable.
    """
    lengths = matrix.row_lengths()
    square = matrix.shape[0] == matrix.shape[1]
    diag = matrix.diagonal() if min(matrix.shape) else np.empty(0)
    positive_diag = bool(square and diag.size and (diag > 0).all())
    dominant = False
    if square and matrix.n_rows:
        abs_row_sums = matrix.with_data(np.abs(matrix.data)).matvec(
            np.ones(matrix.n_cols)
        )
        dominant = bool((2 * np.abs(diag) >= abs_row_sums - 1e-12).all())
    return MatrixReport(
        shape=matrix.shape,
        nnz=matrix.nnz,
        density=matrix.density,
        symmetric=bool(square and matrix.is_symmetric()),
        positive_diagonal=positive_diag,
        weakly_diagonally_dominant=dominant,
        bandwidth=matrix_bandwidth(matrix),
        profile=matrix_profile(matrix),
        min_row_degree=int(lengths.min()) if lengths.size else 0,
        mean_row_degree=float(lengths.mean()) if lengths.size else 0.0,
        max_row_degree=int(lengths.max()) if lengths.size else 0,
        empty_rows=int((lengths == 0).sum()),
    )


def assert_spd_like(matrix: CsrMatrix) -> None:
    """Validate the properties the PCG case study relies on.

    Checks square shape, symmetry, a strictly positive diagonal and weak
    diagonal dominance (a practical sufficient condition for SPD used by
    the generators).

    Raises:
        SparseFormatError: non-square or non-symmetric.
        SingularMatrixError: diagonal or dominance violations.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise SparseFormatError(f"matrix is not square: {matrix.shape}")
    report = inspect_matrix(matrix)
    if not report.symmetric:
        raise SparseFormatError("matrix is not symmetric")
    if not report.positive_diagonal:
        raise SingularMatrixError("matrix diagonal is not strictly positive")
    if not report.weakly_diagonally_dominant:
        raise SingularMatrixError(
            "matrix is not weakly diagonally dominant; SPD not guaranteed"
        )


def render_report(report: MatrixReport) -> str:
    """Human-readable multi-line rendering of a :class:`MatrixReport`."""
    yes_no = {True: "yes", False: "no"}
    return "\n".join(
        [
            f"shape                {report.shape[0]} x {report.shape[1]}",
            f"nnz                  {report.nnz} (density {report.density:.3%})",
            f"symmetric            {yes_no[report.symmetric]}",
            f"positive diagonal    {yes_no[report.positive_diagonal]}",
            f"diagonally dominant  {yes_no[report.weakly_diagonally_dominant]}",
            f"bandwidth            {report.bandwidth}",
            f"profile              {report.profile}",
            (
                f"row degree           min {report.min_row_degree} / "
                f"mean {report.mean_row_degree:.1f} / max {report.max_row_degree}"
            ),
            f"empty rows           {report.empty_rows}",
        ]
    )
