"""Property-based tests (hypothesis) for the sparse substrate.

These pin down the algebraic invariants the ABFT layer depends on:
linearity of SpMV, consistency of partial products with the full product,
and structural round trips.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CooMatrix


@st.composite
def coo_matrices(draw, max_dim=12, max_entries=40):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    n_entries = draw(st.integers(0, max_entries))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=n_entries, max_size=n_entries)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=n_entries, max_size=n_entries)
    )
    finite = st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    vals = draw(st.lists(finite, min_size=n_entries, max_size=n_entries))
    return CooMatrix(
        (n_rows, n_cols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )


@st.composite
def matrix_and_vector(draw):
    coo = draw(coo_matrices())
    finite = st.floats(
        min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
    )
    vec = draw(
        st.lists(finite, min_size=coo.shape[1], max_size=coo.shape[1])
    )
    return coo.to_csr(), np.asarray(vec, dtype=np.float64)


@settings(max_examples=60, deadline=None)
@given(matrix_and_vector())
def test_matvec_matches_dense_reference(mv):
    csr, b = mv
    np.testing.assert_allclose(
        csr.matvec(b), csr.to_dense() @ b, rtol=1e-9, atol=1e-6
    )


@settings(max_examples=60, deadline=None)
@given(matrix_and_vector(), st.floats(-100, 100, allow_nan=False))
def test_matvec_is_homogeneous(mv, scale):
    csr, b = mv
    np.testing.assert_allclose(
        csr.matvec(scale * b), scale * csr.matvec(b), rtol=1e-9, atol=1e-6
    )


@settings(max_examples=60, deadline=None)
@given(matrix_and_vector(), st.integers(0, 11), st.integers(0, 11))
def test_partial_product_consistent_with_full(mv, a, b_idx):
    csr, vec = mv
    start, stop = sorted((min(a, csr.n_rows), min(b_idx, csr.n_rows)))
    np.testing.assert_allclose(
        csr.matvec_rows(start, stop, vec),
        csr.matvec(vec)[start:stop],
        rtol=1e-12,
        atol=0,
    )


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_csr_round_trip_through_coo(coo):
    csr = coo.to_csr()
    np.testing.assert_allclose(csr.to_coo().to_csr().to_dense(), csr.to_dense())


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_transpose_is_involution(coo):
    csr = coo.to_csr()
    np.testing.assert_array_equal(
        csr.transpose().transpose().to_dense(), csr.to_dense()
    )


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_dedup_preserves_dense_value(coo):
    np.testing.assert_allclose(
        coo.deduplicated().to_dense(), coo.to_dense(), rtol=1e-12, atol=1e-9
    )


@settings(max_examples=60, deadline=None)
@given(matrix_and_vector())
def test_rmatvec_agrees_with_transpose_matvec(mv):
    csr, _ = mv
    w = np.linspace(-1.0, 1.0, csr.n_rows)
    np.testing.assert_allclose(
        csr.rmatvec(w), csr.transpose().matvec(w), rtol=1e-9, atol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(coo_matrices())
def test_row_norms_nonnegative_and_zero_iff_empty_row(coo):
    csr = coo.to_csr()
    norms = csr.row_norms()
    assert (norms >= 0).all()
    lengths = csr.row_lengths()
    empty = lengths == 0
    assert (norms[empty] == 0).all()
