"""Clean: resolves every protection scheme through the registry."""

from repro.schemes import make_scheme, resolve_scheme


def compare_overheads(matrix, machine, b):
    dense = make_scheme("dense_check", matrix, machine=machine)
    partial = make_scheme("bisection", matrix, machine=machine)
    defaulted = resolve_scheme(matrix, machine=machine)
    return [s.multiply(b).seconds for s in (dense, partial, defaulted)]
