"""Property-based tests for the fault models and bit-flip machinery."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import apply_bitmask, bits_to_float, float_to_bits, make_fault_model
from repro.faults.models import model_names

finite_floats = st.floats(
    min_value=-1e300, max_value=1e300, allow_nan=False, allow_infinity=False
)


@settings(max_examples=150, deadline=None)
@given(finite_floats)
def test_bit_round_trip(value):
    assert bits_to_float(float_to_bits(value)) == value


@settings(max_examples=150, deadline=None)
@given(finite_floats, st.integers(0, 2**64 - 1))
def test_xor_mask_is_involution(value, mask):
    once = apply_bitmask(value, mask)
    twice = apply_bitmask(once, mask)
    # NaN payloads survive the round trip bit-exactly.
    assert float_to_bits(twice) == float_to_bits(value)


@settings(max_examples=100, deadline=None)
@given(finite_floats, st.integers(0, 2**32))
def test_single_bit_model_changes_exactly_one_bit(value, seed):
    model = make_fault_model("single-bit")
    corrupted = model.corrupt(value, np.random.default_rng(seed))
    diff = float_to_bits(value) ^ float_to_bits(corrupted)
    assert bin(diff).count("1") == 1


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=1e-100, max_value=1e100, allow_nan=False),
    st.integers(0, 2**32),
)
def test_mantissa_model_preserves_sign_and_exponent(value, seed):
    model = make_fault_model("mantissa", width=3)
    corrupted = model.corrupt(value, np.random.default_rng(seed))
    assert math.isfinite(corrupted)
    assert corrupted > 0
    # Mantissa flips change the value by strictly less than a factor of 2.
    assert value / 2 < corrupted < value * 2


@settings(max_examples=60, deadline=None)
@given(finite_floats, st.integers(0, 2**32))
def test_every_model_returns_a_float(value, seed):
    rng = np.random.default_rng(seed)
    for name in model_names():
        result = make_fault_model(name).corrupt(value, rng)
        assert isinstance(result, float)


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=-1e300, max_value=-1e-300), st.integers(0, 2**32))
def test_stuck_sign_idempotent_on_negative(value, seed):
    model = make_fault_model("stuck-sign")
    rng = np.random.default_rng(seed)
    assert model.corrupt(value, rng) == value
