"""Ablation — block size under load (extension of the Figure 4 study).

Figure 4 picks b_s = 32 from *detection* overhead alone.  Once errors
actually arrive, larger blocks recompute more rows per correction, so the
optimum drifts toward smaller blocks as the error frequency grows.  This
bench sweeps block size × per-multiply error probability and reports the
total (detection + correction) overhead.
"""

import numpy as np
from conftest import write_result

from repro.analysis import format_table
from repro.core import FaultTolerantSpMV
from repro.machine import ExecutionMeter
from repro.sparse import suite_matrix

BLOCK_SIZES = (8, 16, 32, 64, 128, 256)
ERROR_PROBABILITIES = (0.0, 0.5, 1.0)
MULTIPLIES = 24


def _mean_overhead(matrix, block_size: int, probability: float, seed: int) -> float:
    ft = FaultTolerantSpMV(matrix, block_size=block_size)
    rng = np.random.default_rng(seed)
    plain_meter = ExecutionMeter()
    ft.plain_multiply(rng.standard_normal(matrix.n_cols), meter=plain_meter)
    total = 0.0
    for _ in range(MULTIPLIES):
        b = rng.standard_normal(matrix.n_cols)
        inject = rng.random() < probability
        index = int(rng.integers(0, matrix.n_rows))
        magnitude = 10.0 * float(np.linalg.norm(b))
        state = {"armed": inject}

        def tamper(stage, data, work):
            if stage == "result" and state["armed"]:
                data[index] += magnitude
                state["armed"] = False

        total += ft.multiply(b, tamper=tamper).seconds
    return total / MULTIPLIES / plain_meter.seconds - 1.0


def test_block_size_under_load(benchmark):
    matrix = suite_matrix("msc10848")
    rows = []
    optima = {}
    for probability in ERROR_PROBABILITIES:
        overheads = [
            _mean_overhead(matrix, bs, probability, seed=51) for bs in BLOCK_SIZES
        ]
        optima[probability] = BLOCK_SIZES[int(np.argmin(overheads))]
        rows.append(
            (f"p={probability:g}",)
            + tuple(f"{o:.1%}" for o in overheads)
        )
    table = format_table(
        ("error prob / multiply",) + tuple(str(bs) for bs in BLOCK_SIZES),
        rows,
        title="Ablation — total overhead by block size and error frequency (msc10848)",
    )
    write_result(
        "ablation_blocksize_vs_rate",
        f"{table}\noptimal block size per error probability: {optima}",
    )

    # The optimum never moves toward larger blocks as errors get frequent.
    assert optima[1.0] <= optima[0.0]

    benchmark.pedantic(
        lambda: _mean_overhead(matrix, 32, 1.0, seed=52), rounds=1, iterations=1
    )
