"""Unit tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_mean_interval,
    summarize,
    wilson_interval,
)
from repro.errors import ConfigurationError


def test_wilson_interval_contains_point_estimate():
    low, high = wilson_interval(80, 100)
    assert low < 0.8 < high
    assert 0.0 <= low and high <= 1.0


def test_wilson_interval_edge_cases():
    low, high = wilson_interval(0, 50)
    assert low == pytest.approx(0.0, abs=1e-12)
    assert high > 0.01  # zero successes still admit a nonzero true rate
    low, high = wilson_interval(50, 50)
    assert high == pytest.approx(1.0, abs=1e-12)
    assert low < 0.99


def test_wilson_narrows_with_more_trials():
    narrow = wilson_interval(800, 1000)
    wide = wilson_interval(8, 10)
    assert narrow[1] - narrow[0] < wide[1] - wide[0]


def test_wilson_confidence_levels_ordered():
    i90 = wilson_interval(40, 100, confidence=0.90)
    i99 = wilson_interval(40, 100, confidence=0.99)
    assert i99[0] < i90[0] and i90[1] < i99[1]


def test_wilson_validation():
    with pytest.raises(ConfigurationError):
        wilson_interval(1, 0)
    with pytest.raises(ConfigurationError):
        wilson_interval(5, 3)
    with pytest.raises(ConfigurationError):
        wilson_interval(1, 10, confidence=0.8)


def test_bootstrap_interval_contains_true_mean():
    rng = np.random.default_rng(0)
    sample = rng.normal(10.0, 2.0, size=200)
    low, high = bootstrap_mean_interval(sample, seed=1)
    assert low < sample.mean() < high
    assert low < 10.3 and high > 9.7


def test_bootstrap_deterministic_for_seed():
    sample = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert bootstrap_mean_interval(sample, seed=7) == bootstrap_mean_interval(
        sample, seed=7
    )


def test_bootstrap_validation():
    with pytest.raises(ConfigurationError):
        bootstrap_mean_interval([])
    with pytest.raises(ConfigurationError):
        bootstrap_mean_interval([1.0], confidence=1.0)
    with pytest.raises(ConfigurationError):
        bootstrap_mean_interval([1.0], resamples=0)


def test_summarize():
    summary = summarize([4.0, 1.0, 3.0, 2.0])
    assert summary.count == 4
    assert summary.mean == 2.5
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.median == 2.5
    assert summary.q25 == pytest.approx(1.75)
    assert summary.q75 == pytest.approx(3.25)


def test_summarize_single_value_has_zero_std():
    summary = summarize([3.0])
    assert summary.std == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ConfigurationError):
        summarize([])
