"""Reusable ablation studies (shared by the benches and the CLI).

Each function computes one of DESIGN.md's ablation targets and returns
plain data; ``render_*`` companions produce the text tables the benches
persist under ``results/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.campaign import run_coverage_campaign
from repro.analysis.metrics import mean
from repro.analysis.reporting import format_table, percent
from repro.analysis.sweeps import detection_overhead, plain_spmv_time
from repro.machine import TESLA_K80_NO_OVERLAP, Machine
from repro.schemes import make_scheme
from repro.sparse.csr import CsrMatrix
from repro.sparse.suite import MatrixSpec

#: Bound families compared by the bound ablation.
BOUND_FAMILIES: Tuple[str, ...] = ("sparse", "empirical", "dense", "norm")


@dataclass(frozen=True)
class BoundAblation:
    """F1 per (matrix, bound family) at one significance level."""

    names: Tuple[str, ...]
    sigma: float
    f1: Dict[str, Tuple[float, ...]]

    def average(self, bound: str) -> float:
        return mean(self.f1[bound])


def ablate_bounds(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
    trials: int = 120,
    sigma: float = 1e-12,
    seed: int = 11,
) -> BoundAblation:
    """Coverage of the same block detector under each bound family."""
    names = tuple(spec.name for spec, _ in suite)
    f1: Dict[str, list] = {bound: [] for bound in BOUND_FAMILIES}
    for spec, matrix in suite:
        for bound in BOUND_FAMILIES:
            result = run_coverage_campaign(
                matrix, "block", trials=trials, sigma=sigma, seed=seed, bound=bound
            )
            f1[bound].append(result.f1)
    return BoundAblation(
        names=names, sigma=sigma, f1={k: tuple(v) for k, v in f1.items()}
    )


def render_bound_ablation(ablation: BoundAblation) -> str:
    """Text table for the bound-family coverage ablation."""
    rows = [
        (name,) + tuple(f"{ablation.f1[b][i]:.3f}" for b in BOUND_FAMILIES)
        for i, name in enumerate(ablation.names)
    ]
    table = format_table(
        ("matrix", "sparse (paper)", "empirical", "dense analytical", "norm ||b||"),
        rows,
        title=f"Ablation — F1 coverage by bound family (sigma={ablation.sigma:g})",
    )
    averages = ", ".join(
        f"{b} {ablation.average(b):.3f}" for b in BOUND_FAMILIES
    )
    return f"{table}\naverages: {averages}"


@dataclass(frozen=True)
class OverlapAblation:
    """Detection overhead with 4 streams vs 1 stream, per matrix."""

    names: Tuple[str, ...]
    overlapped: Tuple[float, ...]
    serialized: Tuple[float, ...]

    @property
    def mean_increase(self) -> float:
        return mean(s - o for o, s in zip(self.overlapped, self.serialized))


def ablate_overlap(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
) -> OverlapAblation:
    """Quantify the stream-overlap contribution (DESIGN.md decision 4)."""
    overlapped_machine = Machine()
    serial_machine = Machine(TESLA_K80_NO_OVERLAP)
    names, overlapped, serialized = [], [], []
    for spec, matrix in suite:
        names.append(spec.name)
        overlapped.append(detection_overhead(matrix, "block", machine=overlapped_machine))
        serialized.append(detection_overhead(matrix, "block", machine=serial_machine))
    return OverlapAblation(tuple(names), tuple(overlapped), tuple(serialized))


def render_overlap_ablation(ablation: OverlapAblation) -> str:
    """Text table for the stream-overlap ablation."""
    rows = [
        (name, percent(o), percent(s))
        for name, o, s in zip(ablation.names, ablation.overlapped, ablation.serialized)
    ]
    table = format_table(
        ("matrix", "4 streams (paper)", "1 stream (serialized)"),
        rows,
        title="Ablation — detection overhead with and without stream overlap",
    )
    return (
        f"{table}\nmean overhead increase without overlap: "
        f"{ablation.mean_increase:+.1%}"
    )


@dataclass(frozen=True)
class RedundancyAblation:
    """Fault-free overhead of ABFT vs DWC vs TMR, per matrix."""

    names: Tuple[str, ...]
    nnz: Tuple[int, ...]
    overheads: Dict[str, Tuple[float, ...]]


def ablate_redundancy(
    suite: Sequence[Tuple[MatrixSpec, CsrMatrix]],
    seed: int = 71,
    machine: Machine | None = None,
) -> RedundancyAblation:
    """ABFT vs duplication/triplication (paper Section II's cost claim)."""
    machine = machine or Machine()
    names, nnz = [], []
    overheads: Dict[str, list] = {"ours": [], "dwc": [], "tmr": []}
    for spec, matrix in suite:
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(matrix.n_cols)
        plain = plain_spmv_time(matrix, machine)
        names.append(spec.name)
        nnz.append(matrix.nnz)
        overheads["ours"].append(
            make_scheme("abft", matrix, machine=machine)
            .multiply(b).seconds / plain - 1.0
        )
        overheads["dwc"].append(
            make_scheme("redundancy", matrix, machine=machine)
            .multiply(b).seconds / plain - 1.0
        )
        overheads["tmr"].append(
            make_scheme("tmr", matrix, machine=machine)
            .multiply(b).seconds / plain - 1.0
        )
    return RedundancyAblation(
        names=tuple(names),
        nnz=tuple(nnz),
        overheads={k: tuple(v) for k, v in overheads.items()},
    )


def render_redundancy_ablation(ablation: RedundancyAblation) -> str:
    """Text table for the ABFT-vs-redundancy comparison."""
    rows = [
        (
            name,
            nnz,
            percent(ablation.overheads["ours"][i]),
            percent(ablation.overheads["dwc"][i]),
            percent(ablation.overheads["tmr"][i]),
        )
        for i, (name, nnz) in enumerate(zip(ablation.names, ablation.nnz))
    ]
    return format_table(
        ("matrix", "nnz", "ours (ABFT)", "DWC (2x)", "TMR (3x)"),
        rows,
        title="Ablation — ABFT vs redundant execution (fault-free overhead)",
    )
