"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output targets the subset GitHub code scanning ingests: one run,
one driver, rule metadata with help text, and per-result partial
fingerprints (reprolint's line-independent hashes).  Cross-module
findings carry their evidence files — as an ``[evidence: ...]`` suffix in
text, a ``related`` array in JSON, and ``relatedLocations`` in SARIF —
and project-mode runs report their incremental-cache statistics so CI can
assert that a warm run only re-analyzed changed files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, fingerprint_all
from repro.lint.registry import available_rules, get_rule

#: Reporter names accepted by the CLI.
FORMATS = ("text", "json", "sarif")

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "reprolint"
TOOL_VERSION = "1.1.0"

#: Cache statistics attached to project-mode reports.
ProjectStats = Mapping[str, int]


def render_text(
    findings: Sequence[Finding],
    known: Sequence[Finding] = (),
    files_checked: int = 0,
    suppressed: int = 0,
    project: Optional[ProjectStats] = None,
) -> str:
    """The default terminal report: one line per finding plus a summary."""
    lines: List[str] = []

    def line_for(finding: Finding, tag: str) -> str:
        evidence = (
            f" [evidence: {', '.join(finding.related)}]" if finding.related else ""
        )
        return f"{finding.location()}: {finding.rule} {tag}{finding.message}{evidence}"

    for finding in findings:
        lines.append(line_for(finding, ""))
    for finding in known:
        lines.append(line_for(finding, "[baseline] "))
    summary = (
        f"{len(findings)} new finding(s), {len(known)} baselined, "
        f"{suppressed} suppressed across {files_checked} file(s)"
    )
    if project is not None:
        summary += (
            f" (project mode: {project.get('cache_hits', 0)} cache hit(s), "
            f"{project.get('reanalyzed', 0)} re-analyzed)"
        )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(
    findings: Sequence[Finding],
    known: Sequence[Finding] = (),
    files_checked: int = 0,
    suppressed: int = 0,
    project: Optional[ProjectStats] = None,
) -> str:
    """Machine-readable report (stable key order)."""

    def encode(finding: Finding, print_: str, baselined: bool) -> Dict[str, object]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "column": finding.column,
            "message": finding.message,
            "snippet": finding.snippet,
            "related": list(finding.related),
            "fingerprint": print_,
            "baselined": baselined,
        }

    payload: Dict[str, object] = {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "files_checked": files_checked,
        "suppressed": suppressed,
        "findings": [
            *(encode(f, p, False) for f, p in fingerprint_all(findings)),
            *(encode(f, p, True) for f, p in fingerprint_all(known)),
        ],
    }
    if project is not None:
        payload["project"] = dict(project)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_rules(rule_ids: Sequence[str]) -> List[Dict[str, object]]:
    descriptors: List[Dict[str, object]] = []
    for rule_id in rule_ids:
        try:
            rule = get_rule(rule_id)
            title, rationale = rule.title, rule.rationale
        except ConfigurationError:
            # Synthetic rules (parse/ingest diagnostics) have no registry entry.
            title, rationale = "file does not parse", ""
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {"text": title or rule_id},
                "help": {"text": rationale or title or rule_id},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def render_sarif(
    findings: Sequence[Finding],
    known: Sequence[Finding] = (),
    files_checked: int = 0,
    suppressed: int = 0,
    project: Optional[ProjectStats] = None,
) -> str:
    """SARIF 2.1.0 report; baselined findings carry level ``note``."""
    rule_ids = sorted(
        set(available_rules())
        | {f.rule for f in findings}
        | {f.rule for f in known}
    )
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    def result(finding: Finding, print_: str, baselined: bool) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "note" if baselined else "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reprolint/v1": print_},
        }
        if finding.related:
            entry["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": path},
                        "region": {"startLine": 1},
                    },
                    "message": {"text": "evidence for this cross-module finding"},
                }
                for path in finding.related
            ]
        return entry

    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri": "https://example.invalid/reprolint",
                "rules": _sarif_rules(rule_ids),
            }
        },
        "results": [
            *(result(f, p, False) for f, p in fingerprint_all(findings)),
            *(result(f, p, True) for f, p in fingerprint_all(known)),
        ],
    }
    if project is not None:
        run["properties"] = {"reprolint/project": dict(project)}
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(document, indent=2) + "\n"


#: Reporter dispatch used by the CLI.
RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def render(
    format_name: str,
    findings: Sequence[Finding],
    known: Sequence[Finding] = (),
    files_checked: int = 0,
    suppressed: int = 0,
    project: Optional[ProjectStats] = None,
) -> str:
    """Render with the named reporter.

    Raises:
        ConfigurationError: unknown format names.
    """
    try:
        renderer = RENDERERS[format_name]
    except KeyError:
        raise ConfigurationError(
            f"unknown report format {format_name!r}; expected one of {FORMATS}"
        ) from None
    return renderer(
        findings,
        known=known,
        files_checked=files_checked,
        suppressed=suppressed,
        project=project,
    )
