"""Pluggable rule registry (mirrors the :mod:`repro.kernels` registry).

Rules are registered under their rule id; the engine runs every registered
rule unless the caller selects or ignores a subset.  Like kernel sets, the
built-in rule pack cannot be unregistered — test isolation removes only
rules it added itself.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.lint.rules.base import LintRule

_REGISTRY: Dict[str, LintRule] = {}

#: Rule ids that ship with the package and cannot be unregistered.
#: ABFT001-007 are per-file rules; ABFT008-012 are project rules that
#: only fire in project mode (:mod:`repro.lint.project`).
BUILTIN_RULES = (
    "ABFT001",
    "ABFT002",
    "ABFT003",
    "ABFT004",
    "ABFT005",
    "ABFT006",
    "ABFT007",
    "ABFT008",
    "ABFT009",
    "ABFT010",
    "ABFT011",
    "ABFT012",
    "ABFT013",
)


def register_rule(rule: LintRule, overwrite: bool = False) -> LintRule:
    """Register ``rule`` under ``rule.rule_id``; returns it for chaining."""
    if not isinstance(rule, LintRule):
        raise ConfigurationError(
            f"lint rules must subclass LintRule, got {type(rule).__name__}"
        )
    if rule.rule_id in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"lint rule {rule.rule_id!r} already registered (pass overwrite=True)"
        )
    _REGISTRY[rule.rule_id] = rule
    return rule


def unregister_rule(rule_id: str) -> None:
    """Remove a registered rule (primarily for test isolation)."""
    if rule_id in BUILTIN_RULES:
        raise ConfigurationError(f"built-in lint rule {rule_id!r} cannot be removed")
    _REGISTRY.pop(rule_id, None)


def available_rules() -> Tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(_REGISTRY))


def get_rule(rule_id: str) -> LintRule:
    """Look up a rule by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r}; expected one of {available_rules()}"
        ) from None


def resolve_rules(
    select: Tuple[str, ...] | None = None, ignore: Tuple[str, ...] | None = None
) -> Tuple[LintRule, ...]:
    """Resolve a rule selection to concrete rule instances.

    ``select`` limits the run to the named rules (all registered rules if
    None); ``ignore`` then removes rules from that set.  Unknown ids in
    either tuple raise :class:`~repro.errors.ConfigurationError` — a typo
    in a CI configuration must fail loudly, not silently lint nothing.
    """
    for rule_id in (select or ()) + (ignore or ()):
        get_rule(rule_id)
    chosen = select if select else available_rules()
    ignored = set(ignore or ())
    return tuple(get_rule(rule_id) for rule_id in chosen if rule_id not in ignored)
