"""Worker-delta merges are deterministic and survive crash + respawn.

The parent merges per-dispatch deltas in ascending worker order, so two
identical seeded campaigns produce the same merged stream shape for any
worker count — and the merged registry holds *exact* dispatch counts
even when a worker is killed mid-campaign and the pool respawns it.
Deltas ride the dispatch replies all-or-nothing: a crashed dispatch
merges nothing, so counts never drift by partial increments.
"""

import time

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.errors import WorkerCrashError
from repro.obs import InMemoryExporter, Telemetry
from repro.perf import ProtectedPlan
from repro.perf.process_backend import ProcessBackend

from .conftest import FakeClock

N = 96
NNZ = 900
BLOCK = 16

WORKER_COUNTS = (1, 2, 4)


def make_plan(n_shards, telemetry=None, timeout=None):
    matrix = random_matrix()
    operator = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK), telemetry=telemetry
    )
    options = {"serial_cutoff": 0}
    if timeout is not None:
        options["timeout"] = timeout
    return ProtectedPlan(
        operator, n_shards=n_shards, parallel="processes", backend_options=options
    )


def random_matrix():
    from repro.sparse import random_spd

    return random_spd(N, NNZ, seed=7)


def operand():
    return np.random.default_rng(123).standard_normal(N)


def run_campaign(n_shards, multiplies=3):
    telemetry = Telemetry(exporter=InMemoryExporter(), clock=FakeClock())
    with make_plan(n_shards, telemetry=telemetry) as plan:
        b = operand()
        for _ in range(multiplies):
            plan.multiply(b.copy())
    return telemetry


def normalized(event):
    """Strip real wall-clock payloads; keep merge order and shape."""
    if event.get("type") != "delta":
        return event
    return {
        "type": "delta",
        "worker": event["worker"],
        "counters": event["counters"],
        "gauges": sorted(event["gauges"]),
        "hists": {name: hist["count"] for name, hist in event["hists"].items()},
        "t": event["t"],
    }


@pytest.mark.parametrize("n_shards", WORKER_COUNTS)
def test_merged_stream_is_deterministic(n_shards):
    first = run_campaign(n_shards)
    second = run_campaign(n_shards)
    assert [normalized(e) for e in first.events()] == [
        normalized(e) for e in second.events()
    ]
    deltas = [e for e in first.events() if e["type"] == "delta"]
    if n_shards == 1:
        # A single shard keeps the process backend dormant: the serial
        # path emits no deltas, and the stream is bit-identical outright.
        assert deltas == []
        assert first.events() == second.events()
        return
    # Deltas merge in ascending worker id, one per worker per multiply.
    assert [e["worker"] for e in deltas] == list(range(n_shards)) * 3
    # The merged registry agrees between the runs, wall clock aside.
    detect = first.registry.get("kernel.detect_shard.seconds")
    assert detect.count == second.registry.get("kernel.detect_shard.seconds").count
    assert detect.count == n_shards * 3


def _protocol_events(tel):
    """The ABFT protocol story: counters and syndrome margins, stripped
    of clock readings.  Kernel-timing events move between parent and
    workers depending on engagement, so they are excluded here."""
    kept = []
    for event in tel.events():
        if event.get("type") == "counter" and event["name"].startswith("abft."):
            kept.append({k: v for k, v in event.items() if k != "t"})
        elif event.get("type") == "hist" and event["name"] == "abft.syndrome_margin":
            kept.append({k: v for k, v in event.items() if k != "t"})
    return kept


@pytest.mark.parametrize("n_shards", WORKER_COUNTS[1:])
def test_protocol_events_match_the_serial_run_bit_for_bit(n_shards):
    """Sharding redistributes *kernel* work; the protocol events —
    checks, detections, per-block syndrome margins — must be the ones
    the serial same-seed run emits, value for value."""
    serial = _protocol_events(run_campaign(1))
    assert serial  # the campaign actually exercised the protocol
    assert _protocol_events(run_campaign(n_shards)) == serial


def test_crash_and_respawn_preserve_exact_merge_counts():
    telemetry = Telemetry(exporter=InMemoryExporter(), clock=FakeClock())
    with make_plan(4, telemetry=telemetry, timeout=30.0) as plan:
        b = operand()
        completed = 0
        plan.multiply(b.copy())
        completed += 1
        backend = plan.backend
        assert isinstance(backend, ProcessBackend)
        victim = backend._pool.workers[1].process
        victim.kill()
        victim.join(timeout=10.0)
        with pytest.raises(WorkerCrashError):
            plan.multiply(b.copy())
        # The pool respawns lazily; the campaign continues.
        for _ in range(2):
            plan.multiply(b.copy())
            completed += 1
    # All-or-nothing delta merging: the crashed dispatch contributes
    # nothing, every completed multiply contributes one delta per worker.
    detect = telemetry.registry.get("kernel.detect_shard.seconds")
    assert detect.count == completed * 4
    deltas = [e for e in telemetry.events() if e.get("type") == "delta"]
    assert [e["worker"] for e in deltas] == [0, 1, 2, 3] * completed
    # The respawned worker 1 keeps shipping deltas after the crash.
    post_crash = [e["worker"] for e in deltas[4:]]
    assert post_crash.count(1) == completed - 1


def test_crash_does_not_drop_prior_merged_state():
    telemetry = Telemetry(exporter=InMemoryExporter(), clock=FakeClock())
    with make_plan(2, telemetry=telemetry, timeout=30.0) as plan:
        b = operand()
        plan.multiply(b.copy())
        before = telemetry.registry.get("kernel.detect_shard.seconds").count
        backend = plan.backend
        victim = backend._pool.workers[0].process
        victim.kill()
        victim.join(timeout=10.0)
        started = time.monotonic()
        with pytest.raises(WorkerCrashError):
            plan.multiply(b.copy())
        assert time.monotonic() - started < 30.0
        # Nothing merged from the failed dispatch, nothing un-merged.
        assert telemetry.registry.get("kernel.detect_shard.seconds").count == before
