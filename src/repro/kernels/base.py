"""Kernel registry and dispatch for the ABFT hot paths.

The scheme's per-multiply cost is dominated by a handful of kernels:
checksum encoding, result-checksum evaluation (full, per-block and
multi-RHS), syndrome/threshold comparison, and block recomputation.  Each
of these exists in more than one implementation — the reference per-block
Python loops (``"naive"``) and the batched/vectorized NumPy versions
(``"vectorized"``) — grouped into a :class:`KernelSet` and selected by
name through a process-wide registry.

Registry entries are keyed ``(sparse_format, impl)``: the same impl name
exists once per storage format it supports — ``("csr", "vectorized")``,
``("bsr", "vectorized")``, ``("ell", "naive")`` and so on — so a format
decision (see :mod:`repro.sparse.formats`) and a kernel decision compose
orthogonally.  CSR remains the home format: format-agnostic callers see
the historical single-axis registry unchanged.

Selection order for the impl axis (first match wins):

1. an explicit :class:`KernelSet` instance passed to ``resolve_kernels``;
2. the :data:`KERNEL_ENV_VAR` environment variable (``REPRO_KERNELS``),
   which overrides every configured name — useful to A/B a whole run
   without touching code;
3. the name passed in (usually ``AbftConfig.kernel``);
4. :data:`DEFAULT_KERNEL`.

The format axis never comes from ``REPRO_KERNELS``; it is resolved
separately (``AbftConfig.sparse_format`` / ``REPRO_FORMAT``) and passed
as ``sparse_format`` by format-aware callers.

Every implementation pair is held to the differential-testing contract of
``tests/kernels``: structural outputs (sparsity patterns, flag masks,
accounting) must match bit-level, floating-point reductions must agree
within the paper's own rounding-error bounds.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.core.blocking import BlockPartition
    from repro.sparse.csr import CsrMatrix

#: Environment variable that overrides the configured kernel-set name.
KERNEL_ENV_VAR = "REPRO_KERNELS"

#: Dtype of the checksum side of every pipeline: weights, checksum rows,
#: ``t1``/``t2``, syndromes and thresholds.  Every builtin
#: :class:`repro.core.dtypes.DtypePolicy` accumulates in float64 — narrow
#: *storage* changes the working dtype of values and operands, never the
#: precision the detection arithmetic runs in.  Kernels allocate their
#: checksum-side buffers from this constant so the contract lives in one
#: place instead of scattered ``np.float64`` literals.
ACCUMULATION_DTYPE = np.dtype(np.float64)

#: Kernel set used when neither a name nor the environment selects one.
DEFAULT_KERNEL = "vectorized"

#: Fault-campaign hook signature (mirrors :data:`repro.core.corrector.TamperHook`).
Tamper = Optional[Callable[[str, np.ndarray, float], None]]


# ----------------------------------------------------------------------
# Shared segment utilities
# ----------------------------------------------------------------------
def validate_blocks(blocks: np.ndarray, n_blocks: int) -> np.ndarray:
    """Return ``blocks`` as an int64 array, rejecting out-of-range ids.

    Fancy indexing with a negative or too-large block id would silently
    mis-slice (NumPy wraps negatives); every kernel therefore validates
    eagerly and raises a clear :class:`ConfigurationError`.
    """
    blocks = np.asarray(blocks)
    if blocks.dtype == object or not (
        blocks.size == 0 or np.issubdtype(blocks.dtype, np.integer)
    ):
        raise ConfigurationError(
            f"block ids must be integers, got dtype {blocks.dtype}"
        )
    blocks = blocks.astype(np.int64, copy=False)
    if blocks.size:
        bad = (blocks < 0) | (blocks >= n_blocks)
        if bad.any():
            raise ConfigurationError(
                f"block ids {np.unique(blocks[bad]).tolist()} out of range "
                f"for {n_blocks} blocks"
            )
    return blocks


def flat_segment_indices(
    starts: np.ndarray, stops: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten the index ranges ``[starts[i], stops[i])`` into one array.

    Returns ``(indices, offsets)`` where segment ``i`` occupies
    ``indices[offsets[i]:offsets[i+1]]``.  This is the gather step behind
    every batched "selected blocks/rows" kernel: one fancy-indexed load
    replaces a Python loop over ranges.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(stops, dtype=np.int64) - starts
    offsets = np.zeros(starts.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), offsets
    indices = np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets[:-1], lengths
    )
    return indices, offsets


def segment_sums(
    values: np.ndarray, offsets: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Sum ``values`` over segments ``[offsets[i], offsets[i+1])``.

    Empty segments yield 0 (``np.add.reduceat`` alone would repeat the
    next segment's leading element instead).  ``out``, when given, must be
    an array of length ``offsets.size - 1`` in the pipeline's working
    dtype; it is overwritten and returned, avoiding the allocation on
    planned hot paths.
    """
    n_segments = offsets.size - 1
    if out is None:
        out = np.zeros(max(n_segments, 0), dtype=values.dtype)
    else:
        out[:] = 0.0
    if values.size == 0 or n_segments == 0:
        return out
    lengths = np.diff(offsets)
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    out[nonempty] = np.add.reduceat(values, offsets[:-1][nonempty])
    return out


# ----------------------------------------------------------------------
# The kernel-set interface
# ----------------------------------------------------------------------
class KernelSet(abc.ABC):
    """One named implementation family of the ABFT hot-path kernels.

    All methods are pure computations over the arrays passed in, except
    the two correction kernels which scatter into the result in place and
    invoke the tamper hook once per recomputed block/cell (the hook-call
    sequence is part of the contract — fault campaigns replay identically
    under every kernel set).
    """

    #: Impl half of the registry key; subclasses override.
    name: str = "abstract"

    #: Storage format this set's matrix-touching kernels expect (the
    #: format half of the registry key).  CSR sets take
    #: :class:`~repro.sparse.csr.CsrMatrix`; ``"bsr"``/``"ell"`` sets
    #: take the matching format matrix in ``encode``/``correct_*``.
    sparse_format: str = "csr"

    # -- weights / encoding ------------------------------------------------
    @abc.abstractmethod
    def linear_weights(self, partition: "BlockPartition") -> np.ndarray:
        """Per-block ramp weights ``1..len(block)`` as a full-length vector."""

    @abc.abstractmethod
    def encode(
        self,
        source: "CsrMatrix",
        partition: "BlockPartition",
        weights: np.ndarray,
    ) -> "CsrMatrix":
        """Build the sparse checksum matrix ``C`` (rows ``c_k = w_k^T A_k``)."""

    # -- detection ---------------------------------------------------------
    @abc.abstractmethod
    def result_checksums(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``t2_k = w_k^T r_k`` over all blocks.

        ``out`` (float64, length ``n_blocks``) and ``workspace`` (float64,
        length ``n_rows``) let planned callers reuse buffers; when given
        they are overwritten and ``out`` is returned.
        """

    @abc.abstractmethod
    def result_checksums_for_blocks(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``t2`` restricted to ``blocks`` (the re-verification path).

        ``out`` (float64, length ``blocks.size``) is overwritten and
        returned when given.
        """

    @abc.abstractmethod
    def compare_syndromes(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(syndrome, exceeded)`` for ``syndrome = t1 - t2``.

        A non-finite syndrome always flags; a non-finite threshold with a
        finite syndrome never does (NaN comparisons are false, matching
        the comparison hardware the paper models).
        """

    # -- correction --------------------------------------------------------
    @abc.abstractmethod
    def correct_blocks(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        blocks: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        """Recompute the result rows of ``blocks`` into ``r`` in place.

        Returns ``(rows_recomputed, nnz_recomputed)``.
        """

    @abc.abstractmethod
    def row_checksums(
        self, csr: "CsrMatrix", rows: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """Dot each selected CSR row with ``b`` (the ``t1`` refresh kernel).

        Returns ``(values, nnz_touched)``; empty rows contribute 0.
        """

    # -- multi-RHS (SpMM) --------------------------------------------------
    @abc.abstractmethod
    def result_checksums_multi(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``T2[k, j] = w_k^T R[block_k, j]`` for a 2-D result block.

        ``weights=None`` means all-ones (plain segmented column sums).
        """

    @abc.abstractmethod
    def result_checksums_multi_for_blocks(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Rows of ``T2`` restricted to ``blocks`` (SpMM re-verification)."""

    @abc.abstractmethod
    def compare_syndromes_multi(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """2-D variant of :meth:`compare_syndromes` over ``(block, column)``."""

    @abc.abstractmethod
    def correct_cells(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        cells: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        """Recompute the ``(block, column)`` cells of a 2-D result in place.

        Returns ``(rows_recomputed, nnz_recomputed)`` (rows counted once
        per cell, as each cell is an independent partial SpMV).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelSet {self.sparse_format}:{self.name}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Format used when a caller does not qualify the kernel lookup.
DEFAULT_KERNEL_FORMAT = "csr"

_REGISTRY: Dict[Tuple[str, str], KernelSet] = {}


def register_kernels(impl: KernelSet, overwrite: bool = False) -> KernelSet:
    """Register ``impl`` under ``(impl.sparse_format, impl.name)``."""
    if not isinstance(impl, KernelSet):
        raise ConfigurationError(
            f"kernel sets must subclass KernelSet, got {type(impl).__name__}"
        )
    key = (impl.sparse_format, impl.name)
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"kernel set {impl.sparse_format}:{impl.name} already registered "
            f"(pass overwrite=True)"
        )
    _REGISTRY[key] = impl
    return impl


#: CSR kernel sets that ship with the library (the historical single-axis
#: registry view; see :data:`BUILTIN_KERNEL_KEYS` for the full matrix).
BUILTIN_KERNELS = ("naive", "vectorized", "parallel")

#: Every built-in ``(sparse_format, impl)`` entry; none can be unregistered.
BUILTIN_KERNEL_KEYS = (
    ("csr", "naive"),
    ("csr", "vectorized"),
    ("csr", "parallel"),
    ("bsr", "naive"),
    ("bsr", "vectorized"),
    ("ell", "naive"),
    ("ell", "vectorized"),
)


def unregister_kernels(name: str, sparse_format: str = DEFAULT_KERNEL_FORMAT) -> None:
    """Remove a registered kernel set (primarily for test isolation)."""
    if (sparse_format, name) in BUILTIN_KERNEL_KEYS:
        raise ConfigurationError(
            f"built-in kernel set {sparse_format}:{name} cannot be removed"
        )
    _REGISTRY.pop((sparse_format, name), None)


def available_kernels(sparse_format: str = DEFAULT_KERNEL_FORMAT) -> Tuple[str, ...]:
    """Registered impl names for one storage format, sorted.

    The default keeps the historical behavior: format-agnostic callers
    (config validation, benchmarks) see the CSR impl names.
    """
    names = tuple(sorted(
        name for fmt, name in _REGISTRY if fmt == sparse_format
    ))
    if not names:
        known = ", ".join(sorted({fmt for fmt, _ in _REGISTRY}))
        raise ConfigurationError(
            f"no kernels registered for format {sparse_format!r}; "
            f"registered formats: {known}"
        )
    return names


def available_kernel_keys() -> Tuple[Tuple[str, str], ...]:
    """Every registered ``(sparse_format, impl)`` pair, sorted."""
    return tuple(sorted(_REGISTRY))


def get_kernels(
    name: str, sparse_format: Optional[str] = None
) -> KernelSet:
    """Look up a kernel set by ``(sparse_format, name)`` (format defaults
    to CSR)."""
    fmt = DEFAULT_KERNEL_FORMAT if sparse_format is None else sparse_format
    try:
        return _REGISTRY[(fmt, name)]
    except KeyError:
        known = tuple(sorted(n for f, n in _REGISTRY if f == fmt))
        raise ConfigurationError(
            f"unknown kernel set {name!r} for format {fmt!r}; expected one "
            f"of {known or available_kernel_keys()}"
        ) from None


def resolve_kernels(
    kernel: object = None, sparse_format: Optional[str] = None
) -> KernelSet:
    """Resolve a kernel selection to a concrete :class:`KernelSet`.

    ``kernel`` may be a :class:`KernelSet` (returned as-is), a registered
    impl name, or ``None``.  The :data:`KERNEL_ENV_VAR` environment
    variable overrides any *name* (but never an explicit instance).
    ``sparse_format`` picks the format axis of the registry key; ``None``
    keeps the historical CSR resolution.
    """
    if isinstance(kernel, KernelSet):
        return kernel
    env = os.environ.get(KERNEL_ENV_VAR)
    if env:
        return get_kernels(env, sparse_format)
    if kernel is None:
        return get_kernels(DEFAULT_KERNEL, sparse_format)
    if not isinstance(kernel, str):
        raise ConfigurationError(
            f"kernel must be a name or KernelSet, got {type(kernel).__name__}"
        )
    return get_kernels(kernel, sparse_format)
