"""Unit tests for the preconditioners."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SingularMatrixError
from repro.solvers import (
    IdentityPreconditioner,
    IncompleteCholeskyPreconditioner,
    JacobiPreconditioner,
    SsorPreconditioner,
    make_preconditioner,
)
from repro.sparse import CooMatrix, banded_spd, poisson2d


@pytest.fixture
def matrix():
    return banded_spd(40, 3, 0.8, seed=61)


def test_identity_is_a_copy(matrix):
    prec = IdentityPreconditioner(matrix)
    r = np.arange(40.0)
    z = prec.apply(r)
    np.testing.assert_array_equal(z, r)
    z[0] = 99.0
    assert r[0] == 0.0
    assert prec.apply_cost.work == 0.0


def test_jacobi_divides_by_diagonal(matrix):
    prec = JacobiPreconditioner(matrix)
    r = np.ones(40)
    np.testing.assert_allclose(prec.apply(r), 1.0 / matrix.diagonal())


def test_jacobi_rejects_zero_diagonal():
    a = CooMatrix.from_entries((2, 2), [(0, 1, 1.0), (1, 0, 1.0)]).to_csr()
    with pytest.raises(SingularMatrixError):
        JacobiPreconditioner(a)


def test_ssor_matches_dense_reference(matrix):
    """SSOR apply equals the dense formula (D/w+L) D_w^-1 s (D/w+U) z = r."""
    omega = 1.2
    prec = SsorPreconditioner(matrix, omega=omega)
    dense = matrix.to_dense()
    d = np.diag(np.diag(dense)) / omega
    lower = np.tril(dense, -1)
    upper = np.triu(dense, 1)
    m = (d + lower) @ np.linalg.inv(d) @ (d + upper) * (omega / (2.0 - omega))
    r = np.random.default_rng(62).standard_normal(40)
    np.testing.assert_allclose(prec.apply(r), np.linalg.solve(m, r), rtol=1e-10)


def test_ssor_rejects_bad_omega(matrix):
    with pytest.raises(SingularMatrixError):
        SsorPreconditioner(matrix, omega=0.0)
    with pytest.raises(SingularMatrixError):
        SsorPreconditioner(matrix, omega=2.0)


def test_ic0_exact_on_full_cholesky_pattern():
    """On a matrix whose Cholesky factor fits the pattern (tridiagonal),
    IC(0) is the exact Cholesky factorization and M^{-1} A = I."""
    a = banded_spd(30, 1, 1.0, seed=63)
    prec = IncompleteCholeskyPreconditioner(a)
    rng = np.random.default_rng(63)
    v = rng.standard_normal(30)
    np.testing.assert_allclose(prec.apply(a.matvec(v)), v, rtol=1e-9)


def test_ic0_is_spd_approximation(matrix):
    prec = IncompleteCholeskyPreconditioner(matrix)
    r = np.random.default_rng(64).standard_normal(40)
    z = prec.apply(r)
    # M^{-1} is SPD: r^T M^{-1} r > 0 for r != 0.
    assert float(np.dot(r, z)) > 0


def test_ic0_rejects_missing_diagonal():
    a = CooMatrix.from_entries((2, 2), [(0, 0, 1.0), (1, 0, 0.5), (0, 1, 0.5)]).to_csr()
    with pytest.raises(SingularMatrixError):
        IncompleteCholeskyPreconditioner(a)


def test_apply_costs_positive(matrix):
    for kind in ("jacobi", "ssor", "ic0"):
        prec = make_preconditioner(kind, matrix)
        assert prec.apply_cost.work > 0


def test_factory_dispatch_and_validation():
    a = poisson2d(4)
    assert isinstance(make_preconditioner("identity", a), IdentityPreconditioner)
    assert isinstance(make_preconditioner("jacobi", a), JacobiPreconditioner)
    assert isinstance(make_preconditioner("ssor", a), SsorPreconditioner)
    assert isinstance(make_preconditioner("ic0", a), IncompleteCholeskyPreconditioner)
    with pytest.raises(ConfigurationError):
        make_preconditioner("nope", a)
