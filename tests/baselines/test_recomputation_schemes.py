"""Unit tests for the complete- and partial-recomputation baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BisectionLocalizer,
    CompleteRecomputationSpMV,
    PartialRecomputationSpMV,
)
from repro.core import FaultTolerantSpMV
from repro.errors import ConfigurationError
from repro.machine import ExecutionMeter
from repro.sparse import random_spd


@pytest.fixture
def matrix():
    return random_spd(256, 2500, seed=41)


@pytest.fixture
def b():
    return np.random.default_rng(41).standard_normal(256)


def one_shot(stage_name, mutate):
    state = {"done": False}

    def hook(stage, data, work):
        if stage == stage_name and not state["done"]:
            mutate(data)
            state["done"] = True

    return hook


def big_error(threshold_scale=1e3):
    return lambda d: d.__setitem__(100, d[100] + threshold_scale)


# ----------------------------------------------------------------------
# Complete recomputation
# ----------------------------------------------------------------------
def test_complete_clean_passes(matrix, b):
    scheme = CompleteRecomputationSpMV(matrix)
    result = scheme.multiply(b)
    assert result.clean
    assert result.rounds == 0
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_complete_recomputes_everything(matrix, b):
    scheme = CompleteRecomputationSpMV(matrix)
    result = scheme.multiply(b, tamper=one_shot("result", big_error()))
    assert result.detections[0] is True
    assert result.corrections == ((0, 256),)
    assert result.rounds == 1
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_complete_exhausts_on_persistent_fault(matrix, b):
    def hook(stage, data, work):
        if stage in ("result", "corrected"):
            data[0] = np.inf

    scheme = CompleteRecomputationSpMV(matrix, max_rounds=2)
    result = scheme.multiply(b, tamper=hook)
    assert result.exhausted
    assert result.rounds == 2


# ----------------------------------------------------------------------
# Bisection localization
# ----------------------------------------------------------------------
def test_localizer_depths(matrix):
    localizer = BisectionLocalizer(matrix)  # 256 rows -> full depth 8
    assert localizer.full_depth == 8
    assert localizer.stop_depth == 4  # ceil(0.4 * 8)


def test_localizer_rejects_bad_fraction(matrix):
    with pytest.raises(ConfigurationError):
        BisectionLocalizer(matrix, early_stop_fraction=0.0)
    with pytest.raises(ConfigurationError):
        BisectionLocalizer(matrix, early_stop_fraction=1.5)


def test_localizer_narrows_to_range_containing_error(matrix, b):
    localizer = BisectionLocalizer(matrix)
    r = matrix.matvec(b)
    r[100] += 1e4
    root_syndrome = float(
        np.dot(matrix.to_dense().sum(axis=0), b) - np.sum(r)
    )
    outcome = localizer.localize(b, r, root_syndrome, tau=float(np.linalg.norm(b)))
    assert len(outcome.ranges) == 1
    start, stop = outcome.ranges[0]
    assert start <= 100 < stop
    assert stop - start == 256 // 2**4  # early stop: 16-row range
    assert outcome.probes == 4


def test_localizer_full_traversal_reaches_single_row(matrix, b):
    localizer = BisectionLocalizer(matrix, early_stop_fraction=1.0)
    r = matrix.matvec(b)
    r[37] += 1e4
    root = float(np.dot(matrix.to_dense().sum(axis=0), b) - np.sum(r))
    outcome = localizer.localize(b, r, root, tau=float(np.linalg.norm(b)))
    assert outcome.ranges == ((37, 38),)


def test_localization_graph_is_a_chain(matrix):
    localizer = BisectionLocalizer(matrix)
    graph = localizer.localization_graph(3)
    assert len(graph) == 3
    assert graph["probe1"].deps == ("probe0",)
    assert graph["probe2"].deps == ("probe1",)


# ----------------------------------------------------------------------
# Partial recomputation scheme
# ----------------------------------------------------------------------
def test_partial_clean_passes(matrix, b):
    scheme = PartialRecomputationSpMV(matrix)
    result = scheme.multiply(b)
    assert result.clean
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_partial_corrects_only_delimited_range(matrix, b):
    scheme = PartialRecomputationSpMV(matrix)
    result = scheme.multiply(b, tamper=one_shot("result", big_error()))
    assert result.rounds == 1
    assert len(result.corrections) == 1
    start, stop = result.corrections[0]
    assert start <= 100 < stop
    assert stop - start < 256
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_ours_cheaper_than_both_baselines(matrix, b):
    """Ours beats both baselines even on a small matrix (Figure 6)."""
    hook = lambda: one_shot("result", big_error())  # noqa: E731
    ours = FaultTolerantSpMV(matrix, block_size=32).multiply(b, tamper=hook())
    partial = PartialRecomputationSpMV(matrix).multiply(b, tamper=hook())
    complete = CompleteRecomputationSpMV(matrix).multiply(b, tamper=hook())
    assert ours.seconds < partial.seconds
    assert ours.seconds < complete.seconds


def test_figure6_ordering_at_scale():
    """At the nnz scales the paper evaluates, localization beats full
    recomputation: ours < partial < complete."""
    big = random_spd(3000, 1_000_000, locality=0.05, seed=43)
    b = np.random.default_rng(43).standard_normal(3000)
    hook = lambda: one_shot("result", big_error(1e6))  # noqa: E731
    ours = FaultTolerantSpMV(big, block_size=32).multiply(b, tamper=hook())
    partial = PartialRecomputationSpMV(big).multiply(b, tamper=hook())
    complete = CompleteRecomputationSpMV(big).multiply(b, tamper=hook())
    assert ours.rounds == partial.rounds == complete.rounds == 1
    assert ours.seconds < partial.seconds < complete.seconds


def test_partial_exhausts_on_persistent_fault(matrix, b):
    def hook(stage, data, work):
        if stage in ("result", "corrected"):
            data[0] = np.inf

    scheme = PartialRecomputationSpMV(matrix, max_rounds=2)
    result = scheme.multiply(b, tamper=hook)
    assert result.exhausted


def test_partial_meter_accumulates(matrix, b):
    meter = ExecutionMeter()
    scheme = PartialRecomputationSpMV(matrix)
    r1 = scheme.multiply(b, meter=meter)
    r2 = scheme.multiply(b, meter=meter)
    assert meter.seconds == pytest.approx(r1.seconds + r2.seconds)
