"""Shared fixtures for the telemetry tests.

The CI ``obs`` leg runs the whole suite with ``REPRO_OBS=jsonl``; these
tests assert precise resolution behavior, so every test starts from a
clean environment and an empty name-resolution cache.
"""

import pytest

from repro.obs import OBS_ENV_VAR, OBS_PATH_ENV_VAR, reset_telemetry_cache


@pytest.fixture(autouse=True)
def _clean_obs_environment(monkeypatch):
    monkeypatch.delenv(OBS_ENV_VAR, raising=False)
    monkeypatch.delenv(OBS_PATH_ENV_VAR, raising=False)
    reset_telemetry_cache()
    yield
    reset_telemetry_cache()


class FakeClock:
    """Deterministic monotonic clock: each reading advances by ``step``."""

    def __init__(self, step: float = 0.001) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


@pytest.fixture
def fake_clock():
    return FakeClock()
