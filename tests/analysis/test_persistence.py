"""Unit tests for experiment-result persistence."""

import pytest

from repro.analysis.persistence import SCHEMA_VERSION, ExperimentRecord, ResultStore
from repro.errors import ConfigurationError


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "records")


def test_save_load_round_trip(store):
    saved = store.save("fig5", {"reduction": 0.525}, {"trials": 12})
    loaded = store.load("fig5")
    assert loaded == saved
    assert loaded.values["reduction"] == 0.525
    assert loaded.parameters["trials"] == 12
    assert loaded.schema == SCHEMA_VERSION


def test_save_overwrites_atomically(store):
    store.save("fig5", {"reduction": 0.5})
    store.save("fig5", {"reduction": 0.6})
    assert store.load("fig5").values["reduction"] == 0.6
    # No stray temp files left behind.
    assert store.list_experiments() == ["fig5"]


def test_list_experiments(store):
    assert store.list_experiments() == []
    store.save("fig4", {"best": 32})
    store.save("fig7", {"f1": 0.94})
    assert store.list_experiments() == ["fig4", "fig7"]


def test_load_missing_raises(store):
    with pytest.raises(ConfigurationError):
        store.load("nope")


def test_invalid_experiment_names(store):
    for name in ("", "a/b", ".hidden"):
        with pytest.raises(ConfigurationError):
            store.save(name, {})


def test_json_round_trip_is_deterministic():
    record = ExperimentRecord("x", {"b": 1, "a": 2}, {"z": 3.0, "y": [1, 2]})
    text = record.to_json()
    assert ExperimentRecord.from_json(text).to_json() == text


def test_from_json_validation():
    with pytest.raises(ConfigurationError):
        ExperimentRecord.from_json("not json")
    with pytest.raises(ConfigurationError):
        ExperimentRecord.from_json("[1, 2]")
    with pytest.raises(ConfigurationError):
        ExperimentRecord.from_json('{"schema": 1}')
    with pytest.raises(ConfigurationError):
        ExperimentRecord.from_json(
            '{"schema": 999, "experiment": "x", "parameters": {}, "values": {}}'
        )


def test_compare_flags_drift(store):
    store.save("fig5", {"reduction": 0.50, "best": 32, "label": "a"})
    drift = store.compare("fig5", {"reduction": 0.50, "best": 32, "label": "a"})
    assert drift == {}
    drift = store.compare("fig5", {"reduction": 0.60, "best": 32, "label": "a"})
    assert drift == {"reduction": (0.50, 0.60)}


def test_compare_tolerates_small_drift(store):
    store.save("fig5", {"reduction": 0.500})
    assert store.compare("fig5", {"reduction": 0.51}, rel_tol=0.05) == {}


def test_compare_flags_missing_keys(store):
    store.save("fig5", {"reduction": 0.5})
    drift = store.compare("fig5", {"best": 32})
    assert drift == {"reduction": (0.5, None), "best": (None, 32)}


def test_compare_flags_changed_non_numeric(store):
    store.save("fig5", {"label": "a"})
    assert store.compare("fig5", {"label": "b"}) == {"label": ("a", "b")}
