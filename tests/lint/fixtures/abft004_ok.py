"""Fixture: float64 and integer dtypes are fine."""

import numpy as np


def widen(values):
    return values.astype(np.float64)


def allocate(n):
    return np.zeros(n, dtype=np.float64)


def index_array(n):
    return np.arange(n, dtype=np.int64)
