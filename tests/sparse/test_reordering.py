"""Unit tests for Cuthill-McKee reordering."""

import numpy as np
import pytest

from repro.core import ChecksumMatrix
from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CooMatrix, banded_spd, poisson2d
from repro.sparse.reordering import (
    bandwidth,
    cuthill_mckee,
    permute_vector,
    profile,
    random_permutation,
    reverse_cuthill_mckee,
    symmetric_permute,
)


@pytest.fixture
def scrambled():
    """A banded SPD matrix destroyed by a random relabeling."""
    banded = banded_spd(120, 3, 1.0, seed=7)
    perm = random_permutation(120, seed=8)
    return banded, symmetric_permute(banded, perm)


def test_bandwidth_of_banded_matrix():
    assert bandwidth(banded_spd(50, 4, 1.0, seed=1)) == 4
    assert bandwidth(CooMatrix.from_entries((3, 3), []).to_csr()) == 0
    assert bandwidth(CooMatrix.from_entries((3, 3), [(0, 0, 1.0)]).to_csr()) == 0


def test_profile_zero_for_diagonal():
    diag = CooMatrix.from_dense(np.eye(4)).to_csr()
    assert profile(diag) == 0
    assert profile(banded_spd(30, 2, 1.0, seed=2)) > 0


def test_cm_returns_valid_permutation(scrambled):
    _, matrix = scrambled
    perm = cuthill_mckee(matrix)
    np.testing.assert_array_equal(np.sort(perm), np.arange(matrix.n_rows))


def test_rcm_restores_small_bandwidth(scrambled):
    banded, shuffled = scrambled
    assert bandwidth(shuffled) > 5 * bandwidth(banded)
    restored = symmetric_permute(shuffled, reverse_cuthill_mckee(shuffled))
    assert bandwidth(restored) <= 3 * bandwidth(banded)
    assert profile(restored) < profile(shuffled)


def test_rcm_on_poisson_grid():
    grid = poisson2d(12)
    perm = reverse_cuthill_mckee(grid)
    reordered = symmetric_permute(grid, perm)
    assert bandwidth(reordered) <= bandwidth(grid)


def test_symmetric_permute_preserves_spectrum(scrambled):
    banded, shuffled = scrambled
    original = np.sort(np.linalg.eigvalsh(banded.to_dense()))
    permuted = np.sort(np.linalg.eigvalsh(shuffled.to_dense()))
    np.testing.assert_allclose(original, permuted, rtol=1e-9)


def test_permute_commutes_with_matvec(scrambled):
    _, matrix = scrambled
    perm = reverse_cuthill_mckee(matrix)
    reordered = symmetric_permute(matrix, perm)
    rng = np.random.default_rng(9)
    b = rng.standard_normal(matrix.n_cols)
    # (P A P^T)(P b) = P (A b)
    np.testing.assert_allclose(
        reordered.matvec(permute_vector(b, perm)),
        permute_vector(matrix.matvec(b), perm),
        rtol=1e-12,
    )


def test_identity_permutation_is_noop(scrambled):
    _, matrix = scrambled
    same = symmetric_permute(matrix, np.arange(matrix.n_rows))
    assert same == matrix


def test_rcm_shrinks_checksum_matrix(scrambled):
    """The ABFT payoff: locality restored -> smaller C -> cheaper t1."""
    _, shuffled = scrambled
    before = ChecksumMatrix.build(shuffled, block_size=16).nnz
    reordered = symmetric_permute(shuffled, reverse_cuthill_mckee(shuffled))
    after = ChecksumMatrix.build(reordered, block_size=16).nnz
    assert after < before


def test_disconnected_components_all_visited():
    # Two disjoint 2-cliques plus an isolated diagonal vertex.
    entries = [
        (0, 0, 2.0), (1, 1, 2.0), (0, 1, -1.0), (1, 0, -1.0),
        (2, 2, 2.0), (3, 3, 2.0), (2, 3, -1.0), (3, 2, -1.0),
        (4, 4, 1.0),
    ]
    matrix = CooMatrix.from_entries((5, 5), entries).to_csr()
    perm = cuthill_mckee(matrix)
    np.testing.assert_array_equal(np.sort(perm), np.arange(5))


def test_validation():
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(ShapeMismatchError):
        cuthill_mckee(rect)
    with pytest.raises(ShapeMismatchError):
        symmetric_permute(rect, np.array([0, 1]))
    square = banded_spd(4, 1, 1.0, seed=3)
    with pytest.raises(SparseFormatError):
        symmetric_permute(square, np.array([0, 1, 1, 2]))
    with pytest.raises(SparseFormatError):
        symmetric_permute(square, np.array([0, 1]))
