"""Aggregate and render telemetry event streams.

Consumes the event dicts produced by :class:`repro.obs.telemetry.Telemetry`
(live from an in-memory exporter, or replayed from a JSONL log) and
renders the human-readable protocol summary: counter totals, log-bucketed
histogram tables, a per-worker balance table for cross-process runs and a
span time breakdown drawn with the same ``|####    |`` bar aesthetic as
:func:`repro.machine.trace.render_gantt`.

Two histogram sources coexist:

* raw ``hist`` events carry the observed value(s) — scalar ``"value"`` or
  batched ``"values"`` — and aggregate into :attr:`EventSummary.histogram_values`;
* ``delta`` events (worker registry deltas merged by the process backend)
  carry exact bucket counts and fold into
  :attr:`EventSummary.histograms` as :class:`BucketedHistogram`, whose
  quantiles come from the bucket counts (upper bucket edge, clamped to
  the observed extremes).

JSONL logs from crashed or concurrently-written runs may end mid-line;
:func:`load_events` skips unparseable lines and counts them instead of
refusing the whole log (:func:`read_events` keeps the strict contract).
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.exporters import Event


@dataclass
class SpanStats:
    """Aggregate of all completed spans sharing one name."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    depth: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def add(self, duration: float, depth: int) -> None:
        if self.count == 0 or depth < self.depth:
            self.depth = depth
        self.count += 1
        self.total += duration
        self.min = min(self.min, duration)
        self.max = max(self.max, duration)


@dataclass
class BucketedHistogram:
    """Fixed-bucket aggregate reconstructed from worker delta events.

    Mirrors :class:`repro.obs.instruments.Histogram` state (``counts`` has
    ``len(edges) + 1`` slots: underflow first, overflow last) but lives on
    the analysis side: it folds the per-interval bucket deltas shipped in
    ``delta`` events and answers quantile queries from the bucket counts.
    """

    edges: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    count: int = 0
    nan_count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def merge_delta(self, payload: Mapping[str, object]) -> None:
        """Fold one delta payload (``counts`` are per-interval deltas,
        ``min``/``max`` cumulative — identical to ``Histogram.merge``)."""
        counts = payload.get("counts")
        if not isinstance(counts, (list, tuple)) or len(counts) != len(self.counts):
            raise ConfigurationError(
                f"histogram delta expects {len(self.counts)} bucket counts, "
                f"got {counts!r}"
            )
        for index, delta in enumerate(counts):
            self.counts[index] += int(delta)  # type: ignore[call-overload]
        self.count += int(payload.get("count", 0))  # type: ignore[arg-type]
        self.nan_count += int(payload.get("nan_count", 0))  # type: ignore[arg-type]
        self.sum += float(payload.get("sum", 0.0))  # type: ignore[arg-type]
        self.min = min(self.min, float(payload.get("min", math.inf)))  # type: ignore[arg-type]
        self.max = max(self.max, float(payload.get("max", -math.inf)))  # type: ignore[arg-type]

    def observe(self, value: float) -> None:
        """Record one raw observation (same bucketing as the instrument)."""
        value = float(value)
        if math.isnan(value):
            self.nan_count += 1
            return
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Quantile estimate from bucket counts.

        Returns the upper edge of the bucket holding the ``q``-quantile
        observation, clamped to the observed ``[min, max]`` (so p100 is
        exactly the maximum and a single-bucket histogram answers with
        its extremes, not a bucket boundary nobody observed).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = max(q * self.count, 1)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if bucket_count and cumulative >= target:
                upper = self.edges[index] if index < len(self.edges) else math.inf
                return min(max(upper, self.min), self.max)
        return self.max

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "nan_count": self.nan_count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.quantile(0.5) if self.count else None,
            "p90": self.quantile(0.9) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
        }


@dataclass
class WorkerStats:
    """Per-worker balance derived from that worker's delta events."""

    deltas: int = 0
    kernel_count: int = 0
    kernel_seconds: float = 0.0
    span_count: int = 0
    span_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "deltas": self.deltas,
            "kernel_count": self.kernel_count,
            "kernel_seconds": self.kernel_seconds,
            "span_count": self.span_count,
            "span_seconds": self.span_seconds,
        }


@dataclass
class EventSummary:
    """Aggregated view of one event stream."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histogram_values: Dict[str, List[float]] = field(default_factory=dict)
    histograms: Dict[str, BucketedHistogram] = field(default_factory=dict)
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    workers: Dict[int, WorkerStats] = field(default_factory=dict)
    n_events: int = 0
    skipped_lines: int = 0

    def span_count(self, name: str) -> int:
        """Completed spans named ``name`` (0 when never entered)."""
        stats = self.spans.get(name)
        return stats.count if stats is not None else 0


def load_events(
    path: Union[str, Path], strict: bool = False
) -> Tuple[List[Event], int]:
    """Load a JSONL event log, tolerating truncated or corrupt lines.

    A crashed process, a torn write or a half-synced file leaves trailing
    garbage; refusing the whole log would make exactly those runs — the
    ones worth diagnosing — unreadable.  Unparseable lines and non-object
    JSON values are skipped and counted.

    Args:
        path: the events.jsonl file.
        strict: raise :class:`~repro.errors.ConfigurationError` on the
            first bad line instead of skipping.

    Returns:
        ``(events, skipped)`` — the parsed events and the number of
        skipped lines (always 0 under ``strict``).
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"event log {path} does not exist")
    events: List[Event] = []
    skipped = 0
    with open(path, encoding="utf-8", errors="replace") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                if strict:
                    raise ConfigurationError(
                        f"{path}:{lineno}: not a JSON event: {error}"
                    ) from None
                skipped += 1
                continue
            if not isinstance(event, dict):
                if strict:
                    raise ConfigurationError(
                        f"{path}:{lineno}: event must be a JSON object, "
                        f"got {type(event).__name__}"
                    )
                skipped += 1
                continue
            events.append(event)
    return events, skipped


def read_events(path: Union[str, Path]) -> List[Event]:
    """Load a JSONL event log, rejecting any malformed line (strict)."""
    return load_events(path, strict=True)[0]


def _fold_delta(summary: EventSummary, event: Event) -> None:
    """Fold one worker ``delta`` event into the global + per-worker view."""
    worker = int(event.get("worker", -1))  # type: ignore[arg-type]
    stats = summary.workers.setdefault(worker, WorkerStats())
    stats.deltas += 1
    counters = event.get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            summary.counters[name] = summary.counters.get(name, 0.0) + float(value)
    gauges = event.get("gauges")
    if isinstance(gauges, dict):
        for name, value in gauges.items():
            summary.gauges[name] = float(value)
    hists = event.get("hists")
    if not isinstance(hists, dict):
        return
    for name, payload in hists.items():
        if not isinstance(payload, dict):
            continue
        edges = tuple(float(e) for e in payload.get("edges") or ())
        hist = summary.histograms.get(name)
        if hist is None:
            hist = summary.histograms[name] = BucketedHistogram(edges=edges)
        hist.merge_delta(payload)
        count = int(payload.get("count", 0))
        total = float(payload.get("sum", 0.0))
        if name.startswith("kernel."):
            stats.kernel_count += count
            stats.kernel_seconds += total
        elif name.startswith("span."):
            stats.span_count += count
            stats.span_seconds += total


def aggregate_events(events: Sequence[Event]) -> EventSummary:
    """Fold an event stream into per-instrument aggregates."""
    summary = EventSummary()
    for event in events:
        kind = event.get("type")
        if kind == "delta":
            summary.n_events += 1
            _fold_delta(summary, event)
            continue
        name = event.get("name")
        if not isinstance(name, str):
            continue
        summary.n_events += 1
        if kind == "counter":
            value = float(event.get("value", 1.0))  # type: ignore[arg-type]
            summary.counters[name] = summary.counters.get(name, 0.0) + value
        elif kind == "gauge":
            summary.gauges[name] = float(event.get("value", math.nan))  # type: ignore[arg-type]
        elif kind == "hist":
            bucket = summary.histogram_values.setdefault(name, [])
            values = event.get("values")
            if isinstance(values, (list, tuple)):
                bucket.extend(float(v) for v in values)
            else:
                bucket.append(float(event.get("value", math.nan)))  # type: ignore[arg-type]
        elif kind == "span":
            start = float(event.get("start", 0.0))  # type: ignore[arg-type]
            end = float(event.get("end", start))  # type: ignore[arg-type]
            depth = int(event.get("depth", 0))  # type: ignore[arg-type]
            summary.spans.setdefault(name, SpanStats()).add(end - start, depth)
    return summary


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted sequence."""
    if not ordered:
        return math.nan
    rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


def summary_as_dict(summary: EventSummary) -> Dict[str, object]:
    """JSON-ready view of a summary (``summarize --json``, CI asserts).

    Raw per-value histograms are reported as order statistics rather than
    value lists (a campaign log holds millions of margins); bucketed
    worker histograms keep their exact counts.
    """
    histogram_values: Dict[str, object] = {}
    for name, values in sorted(summary.histogram_values.items()):
        finite = sorted(v for v in values if math.isfinite(v))
        histogram_values[name] = {
            "count": len(values),
            "nan_count": sum(1 for v in values if math.isnan(v)),
            "min": finite[0] if finite else None,
            "p50": _percentile(finite, 0.5) if finite else None,
            "p90": _percentile(finite, 0.9) if finite else None,
            "p99": _percentile(finite, 0.99) if finite else None,
            "max": finite[-1] if finite else None,
        }
    return {
        "n_events": summary.n_events,
        "skipped_lines": summary.skipped_lines,
        "counters": dict(sorted(summary.counters.items())),
        "gauges": dict(sorted(summary.gauges.items())),
        "histogram_values": histogram_values,
        "histograms": {
            name: hist.as_dict()
            for name, hist in sorted(summary.histograms.items())
        },
        "spans": {
            name: {
                "count": stats.count,
                "total": stats.total,
                "mean": stats.mean,
                "min": stats.min,
                "max": stats.max,
                "depth": stats.depth,
            }
            for name, stats in sorted(summary.spans.items())
        },
        "workers": {
            str(worker): stats.as_dict()
            for worker, stats in sorted(summary.workers.items())
        },
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if not math.isfinite(seconds):
        return str(seconds)
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f}s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _bucket_edges(values: Sequence[float]) -> Tuple[float, ...]:
    """Log-spaced edges spanning the positive observations (one per decade).

    Exponents are clamped to the float64 decade range so observations near
    the representable extremes never produce infinite (non-increasing)
    edges.
    """
    positive = [v for v in values if math.isfinite(v) and v > 0.0]
    if not positive:
        return ()
    lo_exp = max(math.floor(math.log10(min(positive))), -307)
    hi_exp = min(math.ceil(math.log10(max(positive))), 308)
    if hi_exp <= lo_exp:
        hi_exp = lo_exp + 1
    return tuple(10.0 ** e for e in range(lo_exp, hi_exp + 1))


def _bucket_label(edges: Sequence[float], index: int) -> str:
    if index == 0:
        return f"< {edges[0]:.0e}"
    if index == len(edges):
        return f">= {edges[-1]:.0e}"
    return f"[{edges[index - 1]:.0e}, {edges[index]:.0e})"


def _render_bucket_rows(
    edges: Sequence[float], counts: Sequence[int], width: int
) -> List[str]:
    peak = max(counts)
    bar_width = max(8, width // 2)
    lines: List[str] = []
    for index, count in enumerate(counts):
        if count == 0:
            continue
        bar = "#" * max(1, round(bar_width * count / peak))
        lines.append(
            f"  {_bucket_label(edges, index):<20s} {bar:<{bar_width}s} {count}"
        )
    return lines


def _render_histogram(name: str, values: Sequence[float], width: int) -> List[str]:
    finite = [v for v in values if math.isfinite(v)]
    nans = sum(1 for v in values if math.isnan(v))
    lines = [f"{name}  n={len(values)}"]
    if finite:
        ordered = sorted(finite)
        p50 = ordered[len(ordered) // 2]
        lines[0] += (
            f"  min={min(finite):.3g}  p50={p50:.3g}  max={max(finite):.3g}"
        )
    if nans:
        lines[0] += f"  nan={nans}"
    edges = _bucket_edges(finite)
    if not edges:
        return lines
    counts = [0] * (len(edges) + 1)
    for value in finite:
        index = 0
        while index < len(edges) and value >= edges[index]:
            index += 1
        counts[index] += 1
    return lines + _render_bucket_rows(edges, counts, width)


def _render_bucketed(name: str, hist: BucketedHistogram, width: int) -> List[str]:
    lines = [f"{name}  n={hist.count}"]
    if hist.count:
        lines[0] += (
            f"  min={hist.min:.3g}  p50={hist.quantile(0.5):.3g}  "
            f"max={hist.max:.3g}"
        )
    if hist.nan_count:
        lines[0] += f"  nan={hist.nan_count}"
    if hist.edges and any(hist.counts):
        lines += _render_bucket_rows(hist.edges, hist.counts, width)
    return lines


def render_summary(
    events: Sequence[Event], width: int = 48, skipped: int = 0
) -> str:
    """Render an event stream as the full text summary.

    Sections: counters, gauges, histograms (raw parent-side observations
    and worker-side bucketed aggregates), the per-worker balance table
    for cross-process runs, and the span breakdown whose per-name totals
    are drawn as Gantt-style ``|####    |`` bars scaled to the largest
    total.  ``skipped`` (corrupt JSONL lines dropped by
    :func:`load_events`) is surfaced in the header.
    """
    if width < 16:
        raise ConfigurationError(f"width must be >= 16, got {width}")
    summary = aggregate_events(events)
    summary.skipped_lines = skipped
    if summary.n_events == 0:
        if skipped:
            return f"(no events; {skipped} corrupt line(s) skipped)"
        return "(no events)"
    header = f"telemetry summary — {summary.n_events} events"
    if skipped:
        header += f" ({skipped} corrupt line(s) skipped)"
    lines: List[str] = [header]

    if summary.counters:
        lines += ["", "== counters =="]
        name_width = max(len(name) for name in summary.counters)
        for name in sorted(summary.counters):
            total = summary.counters[name]
            rendered = f"{total:g}"
            lines.append(f"{name:<{name_width}s}  {rendered:>12s}")

    if summary.gauges:
        lines += ["", "== gauges =="]
        name_width = max(len(name) for name in summary.gauges)
        for name in sorted(summary.gauges):
            lines.append(f"{name:<{name_width}s}  {summary.gauges[name]:>12.6g}")

    if summary.histogram_values:
        lines += ["", "== histograms =="]
        for name in sorted(summary.histogram_values):
            lines += _render_histogram(name, summary.histogram_values[name], width)

    if summary.histograms:
        lines += ["", "== worker histograms =="]
        for name in sorted(summary.histograms):
            lines += _render_bucketed(name, summary.histograms[name], width)

    if summary.workers:
        lines += ["", "== workers =="]
        lines.append(
            f"{'worker':>6s} {'deltas':>7s} {'kernels':>8s} "
            f"{'kernel time':>12s} {'spans':>6s} {'span time':>10s}"
        )
        for worker in sorted(summary.workers):
            stats = summary.workers[worker]
            lines.append(
                f"{worker:>6d} {stats.deltas:>7d} {stats.kernel_count:>8d} "
                f"{_format_seconds(stats.kernel_seconds):>12s} "
                f"{stats.span_count:>6d} "
                f"{_format_seconds(stats.span_seconds):>10s}"
            )

    if summary.spans:
        lines += ["", "== spans =="]
        ordered = sorted(
            summary.spans.items(), key=lambda kv: (kv[1].depth, -kv[1].total, kv[0])
        )
        name_width = max(len(name) for name, _ in ordered)
        peak = max(stats.total for _, stats in ordered)
        header = (
            f"{'name':<{name_width}s} {'count':>6s} {'total':>10s} {'mean':>10s}"
        )
        lines.append(header)
        for name, stats in ordered:
            if peak > 0:
                bar = "#" * max(1, round(width * stats.total / peak))
            else:
                bar = ""
            indent = "  " * stats.depth
            lines.append(
                f"{name:<{name_width}s} {stats.count:>6d} "
                f"{_format_seconds(stats.total):>10s} "
                f"{_format_seconds(stats.mean):>10s} "
                f"|{indent}{bar:<{width - min(len(indent), width)}s}|"
            )
    return "\n".join(lines)
