"""Sparse-format registry, selection heuristics and the dispatch protocol.

The kernel engine executes planned SpMVs against one of three storage
formats — ``"csr"`` (the paper's baseline and the library default),
``"bsr"`` (dense tiles; wins on block-structured matrices) and ``"ell"``
(fixed-width padded rows; wins on very regular row lengths) — plus the
pseudo-format ``"auto"`` which picks one at plan time from structural
heuristics with an optional measured fallback to CSR.

Selection order mirrors the kernel registry (first match wins):

1. an explicit ``sparse_format=`` argument to
   :meth:`repro.core.FaultTolerantSpMV.planned` or
   :class:`repro.perf.ProtectedPlan` — never overridden;
2. the :data:`FORMAT_ENV_VAR` environment variable (``REPRO_FORMAT``),
   which overrides any *configured* name process-wide;
3. ``AbftConfig.sparse_format``;
4. :data:`DEFAULT_FORMAT` (``"csr"`` — historic behavior: existing
   callers see bit-identical results until they opt in).

Auto-selection heuristics (each threshold is part of the documented
contract, tested in ``tests/sparse/test_formats.py``):

* BSR is chosen when some candidate tile edge in
  :data:`BSR_BLOCK_CANDIDATES` reaches a fill ratio of at least
  :data:`BSR_MIN_FILL` — below that, fill-slot arithmetic burns the tile
  pipeline's advantage (measured crossover on the benchmark hardware).
  Tile edges below 8 never pay for the gather/einsum overhead on the
  measured NumPy pipeline, which is why smaller candidates are not
  probed.
* ELL is chosen only when BSR was rejected *and* the padding ratio is at
  most :data:`ELL_MAX_PADDING`; above the threshold the padded slots
  (computed, then discarded) cost more than CSR's segment reduction.
* Everything else falls back to CSR.  With ``measure=True`` a BSR/ELL
  candidate must additionally beat a timed CSR probe by
  :data:`MEASURED_MIN_GAIN`; the measured fallback protects against
  matrices that satisfy the structural heuristics but lose on the
  actual pipeline.

Every decision is recorded as a :class:`FormatChoice` (format, reason,
fill/padding ratios) which planned executors attach to the plan and emit
as ``plan.format`` telemetry.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.bsr import BsrMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.ell import EllMatrix

#: Environment variable that overrides the configured sparse format.
FORMAT_ENV_VAR = "REPRO_FORMAT"

#: Format used when neither a name nor the environment selects one.
DEFAULT_FORMAT = "csr"

#: Storage formats that ship with the library.
BUILTIN_FORMATS = ("csr", "bsr", "ell")

#: Pseudo-format: pick a storage format at plan time from the heuristics.
AUTO_FORMAT = "auto"

#: Names accepted by the format selector.
FORMAT_NAMES = BUILTIN_FORMATS + (AUTO_FORMAT,)

#: Tile edges probed by auto-selection.  Edges below 8 never recover the
#: gather/einsum overhead of the tile pipeline on the measured hardware
#: (a 4x4-tile FEM matrix runs ~0.8x CSR), so they are not candidates.
BSR_BLOCK_CANDIDATES = (8, 16)

#: Minimum BSR fill ratio for auto-selection.  Fill slots are computed
#: and discarded, so effective arithmetic scales with 1/fill; below ~0.85
#: the tile pipeline's win on block-structured matrices evaporates.
BSR_MIN_FILL = 0.85

#: Maximum ELL padding ratio for auto-selection; above it the padded
#: (computed, discarded) slots cost more than CSR's segment reduction.
ELL_MAX_PADDING = 0.25

#: Measured fallback: a candidate format must beat the timed CSR probe
#: by this factor, or auto-selection falls back to CSR.
MEASURED_MIN_GAIN = 1.05

#: Matrices below this nnz skip the timed probe (measurement noise would
#: dominate; the structural heuristics decide alone).
MEASURE_MIN_NNZ = 200_000


@runtime_checkable
class SparseFormat(Protocol):
    """Structural protocol every dispatchable storage format satisfies.

    :class:`~repro.sparse.csr.CsrMatrix`,
    :class:`~repro.sparse.bsr.BsrMatrix` and
    :class:`~repro.sparse.ell.EllMatrix` all implement it; the planned
    executors and the (format × impl) kernel sets program against this
    surface only.
    """

    format_name: str
    shape: Tuple[int, int]

    @property
    def nnz(self) -> int: ...

    def matvec(self, b: np.ndarray) -> np.ndarray: ...

    def matvec_rows(
        self, row_start: int, row_stop: int, b: np.ndarray
    ) -> np.ndarray: ...

    def nnz_in_rows(self, row_start: int, row_stop: int) -> int: ...

    def to_csr(self) -> CsrMatrix: ...


FormatMatrix = Union[CsrMatrix, BsrMatrix, EllMatrix]


@dataclass(frozen=True)
class FormatChoice:
    """One plan-time format decision, with its evidence.

    Attributes:
        format: the storage format the plan executes (``csr``/``bsr``/``ell``).
        requested: what the caller asked for (may be ``"auto"``).
        reason: one-line human-readable justification.
        fill_ratio: BSR fill ratio at ``block_shape`` (NaN when not probed).
        padding_ratio: ELL padding ratio (NaN when not probed).
        block_shape: tile shape used/probed for BSR, or None.
        measured_gain: timed speedup of the chosen format over CSR when
            the measured fallback ran (NaN otherwise).
    """

    format: str
    requested: str
    reason: str
    fill_ratio: float = float("nan")
    padding_ratio: float = float("nan")
    block_shape: Optional[Tuple[int, int]] = None
    measured_gain: float = float("nan")


def canonical_format_name(name: object) -> str:
    """Validate a format selection, returning its canonical name.

    Accepts the builtin storage formats plus ``"auto"``; anything else
    raises :class:`~repro.errors.ConfigurationError`.
    """
    if not isinstance(name, str):
        raise ConfigurationError(
            f"sparse format must be a name, got {type(name).__name__}"
        )
    canonical = name.strip().lower()
    if canonical not in FORMAT_NAMES:
        raise ConfigurationError(
            f"unknown sparse format {name!r}; expected one of {FORMAT_NAMES}"
        )
    return canonical


def available_formats() -> Tuple[str, ...]:
    """Selectable format names, sorted (storage formats plus ``auto``)."""
    return tuple(sorted(FORMAT_NAMES))


def resolve_format_name(
    configured: Optional[str] = None,
    explicit: Optional[str] = None,
    default: str = DEFAULT_FORMAT,
) -> str:
    """Resolve a format selection to a canonical name (maybe ``"auto"``).

    ``explicit`` (a programmatic argument) beats everything; the
    :data:`FORMAT_ENV_VAR` environment variable beats the ``configured``
    name (usually ``AbftConfig.sparse_format``); ``default`` applies last.
    """
    if explicit is not None:
        return canonical_format_name(explicit)
    env = os.environ.get(FORMAT_ENV_VAR)
    if env:
        return canonical_format_name(env)
    if configured is not None:
        return canonical_format_name(configured)
    return canonical_format_name(default)


# ----------------------------------------------------------------------
# Structural probes
# ----------------------------------------------------------------------
def bsr_fill_ratio(csr: CsrMatrix, block_shape: Union[int, Tuple[int, int]]) -> float:
    """Fill ratio a BSR conversion at ``block_shape`` would achieve.

    Computed from the sparsity pattern alone — O(nnz) with one sort, no
    tile materialization — so plan-time probing stays cheap.
    """
    if isinstance(block_shape, int):
        br, bc = block_shape, block_shape
    else:
        br, bc = int(block_shape[0]), int(block_shape[1])
    if csr.nnz == 0:
        return 0.0
    brow = csr.entry_rows() // br
    bcol = csr.indices // bc
    n_block_cols = max(-(-csr.n_cols // bc), 1)
    n_tiles = np.unique(brow * n_block_cols + bcol).size
    return csr.nnz / (n_tiles * br * bc)


def ell_padding_ratio(csr: CsrMatrix) -> float:
    """Padding ratio an ELL conversion would have (0 = perfectly regular)."""
    width = int(csr.row_lengths().max(initial=0))
    slots = csr.n_rows * width
    return 1.0 - csr.nnz / slots if slots else 0.0


def probe_block_shape(
    csr: CsrMatrix,
    candidates: Tuple[int, ...] = BSR_BLOCK_CANDIDATES,
) -> Tuple[Tuple[int, int], float]:
    """Best square tile shape among ``candidates`` by fill ratio.

    Ties break toward the larger edge (fewer, larger tiles amortize the
    pipeline's per-tile overhead better).
    """
    best_shape: Tuple[int, int] = (candidates[0], candidates[0])
    best_fill = -1.0
    for edge in candidates:
        fill = bsr_fill_ratio(csr, edge)
        if fill >= best_fill:
            best_fill = fill
            best_shape = (edge, edge)
    return best_shape, max(best_fill, 0.0)


def _measured_gain(csr: CsrMatrix, candidate: FormatMatrix, repeats: int = 3) -> float:
    """Timed speedup of ``candidate.matvec`` over ``csr.matvec`` (best-of)."""
    b = np.linspace(-1.0, 1.0, num=csr.n_cols)
    best_csr = best_fmt = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        csr.matvec(b)
        best_csr = min(best_csr, time.perf_counter() - t0)
        t0 = time.perf_counter()
        candidate.matvec(b)
        best_fmt = min(best_fmt, time.perf_counter() - t0)
    return best_csr / best_fmt if best_fmt > 0 else float("inf")


# ----------------------------------------------------------------------
# Selection + construction
# ----------------------------------------------------------------------
def build_format(
    csr: CsrMatrix,
    sparse_format: str,
    block_shape: Optional[Union[int, Tuple[int, int]]] = None,
) -> FormatMatrix:
    """Materialize ``csr`` in a concrete storage format.

    ``block_shape`` applies to BSR only; None probes the candidates and
    takes the densest.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    name = canonical_format_name(sparse_format)
    if name == "csr":
        return csr
    if name == "bsr":
        if block_shape is None:
            block_shape, _ = probe_block_shape(csr)
        return BsrMatrix.from_csr(csr, block_shape)
    if name == "ell":
        return EllMatrix.from_csr(csr)
    raise ConfigurationError(
        f"{AUTO_FORMAT!r} is not a storage format; resolve it through "
        f"select_format() first"
    )


def select_format(
    csr: CsrMatrix,
    requested: str,
    measure: bool = False,
) -> Tuple[FormatChoice, FormatMatrix]:
    """Resolve ``requested`` to a concrete storage matrix plus the evidence.

    Explicit names are honored as-is (probing only to pick BSR's tile
    shape); ``"auto"`` applies the documented heuristics, optionally
    backed by the measured CSR fallback (``measure=True``; skipped below
    :data:`MEASURE_MIN_NNZ` nnz where timing noise dominates).
    """
    requested = canonical_format_name(requested)

    if requested == "csr":
        return FormatChoice("csr", requested, "requested explicitly"), csr

    if requested == "bsr":
        block_shape, fill = probe_block_shape(csr)
        matrix = BsrMatrix.from_csr(csr, block_shape)
        choice = FormatChoice(
            "bsr", requested, "requested explicitly",
            fill_ratio=fill, block_shape=block_shape,
        )
        return choice, matrix

    if requested == "ell":
        matrix = EllMatrix.from_csr(csr)
        choice = FormatChoice(
            "ell", requested, "requested explicitly",
            padding_ratio=matrix.padding_ratio,
        )
        return choice, matrix

    # --- auto ---------------------------------------------------------
    block_shape, fill = probe_block_shape(csr)
    padding = ell_padding_ratio(csr)
    measurable = measure and csr.nnz >= MEASURE_MIN_NNZ

    if fill >= BSR_MIN_FILL:
        matrix = BsrMatrix.from_csr(csr, block_shape)
        if measurable:
            gain = _measured_gain(csr, matrix)
            if gain >= MEASURED_MIN_GAIN:
                choice = FormatChoice(
                    "bsr", requested,
                    f"fill {fill:.2f} >= {BSR_MIN_FILL} at "
                    f"{block_shape[0]}x{block_shape[1]} tiles; measured "
                    f"{gain:.2f}x >= {MEASURED_MIN_GAIN}x over CSR",
                    fill_ratio=fill, padding_ratio=padding,
                    block_shape=block_shape, measured_gain=gain,
                )
                return choice, matrix
            choice = FormatChoice(
                "csr", requested,
                f"measured fallback: BSR at {block_shape[0]}x{block_shape[1]} "
                f"tiles reached only {gain:.2f}x < {MEASURED_MIN_GAIN}x over CSR",
                fill_ratio=fill, padding_ratio=padding,
                block_shape=block_shape, measured_gain=gain,
            )
            return choice, csr
        choice = FormatChoice(
            "bsr", requested,
            f"fill {fill:.2f} >= {BSR_MIN_FILL} at "
            f"{block_shape[0]}x{block_shape[1]} tiles",
            fill_ratio=fill, padding_ratio=padding, block_shape=block_shape,
        )
        return choice, matrix

    if padding <= ELL_MAX_PADDING and csr.nnz > 0:
        matrix = EllMatrix.from_csr(csr)
        if measurable:
            gain = _measured_gain(csr, matrix)
            if gain >= MEASURED_MIN_GAIN:
                choice = FormatChoice(
                    "ell", requested,
                    f"padding {padding:.2f} <= {ELL_MAX_PADDING}; measured "
                    f"{gain:.2f}x >= {MEASURED_MIN_GAIN}x over CSR",
                    fill_ratio=fill, padding_ratio=padding, measured_gain=gain,
                )
                return choice, matrix
            choice = FormatChoice(
                "csr", requested,
                f"measured fallback: ELL reached only {gain:.2f}x "
                f"< {MEASURED_MIN_GAIN}x over CSR",
                fill_ratio=fill, padding_ratio=padding, measured_gain=gain,
            )
            return choice, csr
        choice = FormatChoice(
            "ell", requested,
            f"padding {padding:.2f} <= {ELL_MAX_PADDING}",
            fill_ratio=fill, padding_ratio=padding,
        )
        return choice, matrix

    reason = (
        f"fill {fill:.2f} < {BSR_MIN_FILL} and padding {padding:.2f} "
        f"> {ELL_MAX_PADDING}; CSR is the safe default"
        if csr.nnz
        else "empty matrix; CSR is the safe default"
    )
    return (
        FormatChoice(
            "csr", requested, reason,
            fill_ratio=fill, padding_ratio=padding, block_shape=block_shape,
        ),
        csr,
    )
