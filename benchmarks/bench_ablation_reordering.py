"""Ablation — matrix ordering vs checksum sparsity (extension study).

The checksum matrix ``C`` inherits sparsity from ``A`` only when rows
inside a block share columns, i.e. when the ordering is local.  This bench
scrambles a suite matrix with a random relabeling, restores locality with
reverse Cuthill-McKee, and measures the effect on ``nnz(C)`` and the
modeled detection overhead — quantifying how much the paper's scheme
depends on (and benefits from) good orderings.
"""

from conftest import write_result

from repro.analysis import detection_overhead, format_table
from repro.core import ChecksumMatrix
from repro.sparse import (
    bandwidth,
    random_permutation,
    reverse_cuthill_mckee,
    suite_matrix,
    symmetric_permute,
)


def test_reordering_ablation(benchmark):
    original = suite_matrix("bcsstk13")
    scrambled = symmetric_permute(
        original, random_permutation(original.n_rows, seed=17)
    )
    restored = symmetric_permute(scrambled, reverse_cuthill_mckee(scrambled))

    rows = []
    stats = {}
    for label, matrix in (
        ("original (local)", original),
        ("scrambled", scrambled),
        ("scrambled + RCM", restored),
    ):
        checksum = ChecksumMatrix.build(matrix, block_size=32)
        overhead = detection_overhead(matrix, "block")
        stats[label] = (checksum.sparsity_gain, overhead)
        rows.append(
            (
                label,
                bandwidth(matrix),
                f"{checksum.sparsity_gain:.3f}",
                f"{overhead:.1%}",
            )
        )
    table = format_table(
        ("ordering", "bandwidth", "nnz(C)/nnz(A)", "detection overhead"),
        rows,
        title="Ablation — ordering locality vs checksum sparsity (bcsstk13 analogue)",
    )
    write_result("ablation_reordering", table)

    # Scrambling inflates C and the overhead; RCM recovers most of it.
    assert stats["scrambled"][0] > 2.0 * stats["original (local)"][0]
    assert stats["scrambled + RCM"][0] < stats["scrambled"][0]
    assert stats["scrambled + RCM"][1] < stats["scrambled"][1]

    benchmark(lambda: reverse_cuthill_mckee(scrambled))
