"""Bad: builds protection schemes by constructor instead of the registry."""

from repro.baselines import DenseCheckSpMV, DwcSpMV, PartialRecomputationSpMV


def compare_overheads(matrix, machine, b):
    dense = DenseCheckSpMV(matrix, machine=machine)  # MARK:ABFT007
    partial = PartialRecomputationSpMV(  # MARK:ABFT007
        matrix, machine=machine
    )
    dwc = DwcSpMV(matrix, machine=machine)  # MARK:ABFT007
    return [s.multiply(b).seconds for s in (dense, partial, dwc)]
