"""Arena writes that respect the worker protocol (ABFT008 stays quiet)."""

from multiprocessing import Process

from shm import Arena


def worker(arena):
    """A spawned worker entry point may write its result views."""
    view = arena.array("x")
    view[0] = 1.0  # ok: inside the worker protocol


def build():
    """The creator initializes its own arena before publishing it."""
    arena = Arena.create(8)
    view = arena.array("x")
    view[0] = 0.0  # ok: owner laying out initial contents
    return arena


def start():
    arena = build()
    Process(target=worker, args=(arena,)).start()
