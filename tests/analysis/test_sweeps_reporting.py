"""Unit tests for sweeps and text reporting."""

import pytest

from repro.analysis import (
    FIGURE4_BLOCK_SIZES,
    PCG_ERROR_RATES,
    compare_correction_overheads,
    compare_coverage,
    compare_detection_overheads,
    detection_overhead,
    format_table,
    percent,
    plain_spmv_time,
    render_block_size_sweep,
    render_correction_comparison,
    render_coverage_comparison,
    render_detection_comparison,
    render_pcg_cells,
    sweep_block_sizes,
    sweep_pcg,
)
from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.sparse import iter_suite


@pytest.fixture(scope="module")
def small_suite():
    return list(iter_suite(names=["nos3", "bcsstk13"]))


def test_plain_spmv_time_positive(small_suite):
    machine = Machine()
    for _, matrix in small_suite:
        assert plain_spmv_time(matrix, machine) > 0


def test_detection_overhead_block_beats_dense(small_suite):
    for _, matrix in small_suite:
        assert detection_overhead(matrix, "block") < detection_overhead(matrix, "dense")


def test_detection_overhead_rejects_unknown_method(small_suite):
    with pytest.raises(ConfigurationError):
        detection_overhead(small_suite[0][1], "bogus")


def test_block_size_sweep_structure(small_suite):
    sweep = sweep_block_sizes(small_suite, block_sizes=(1, 32, 512))
    assert sweep.block_sizes == (1, 32, 512)
    assert set(sweep.per_matrix) == {"nos3", "bcsstk13"}
    assert len(sweep.averages()) == 3
    # The paper's U-shape: 32 beats both extremes.
    assert sweep.average(32) < sweep.average(1)
    assert sweep.average(32) < sweep.average(512)
    assert sweep.best_block_size() == 32


def test_detection_comparison_reduction_positive(small_suite):
    comparison = compare_detection_overheads(small_suite)
    assert comparison.average_reduction > 0.3


def test_correction_comparison_structure(small_suite):
    comparison = compare_correction_overheads(small_suite, trials=5, seed=1)
    assert comparison.names == ("nos3", "bcsstk13")
    assert comparison.average_reduction_vs("partial") > 0
    assert comparison.average_reduction_vs("complete") > 0


def test_coverage_comparison_structure(small_suite):
    comparison = compare_coverage(small_suite, sigmas=(1e-10,), trials=40, seed=2)
    assert comparison.average_f1("block", 1e-10) > comparison.average_f1("dense", 1e-10)


def test_sweep_pcg_cells(small_suite):
    cells = sweep_pcg(
        small_suite[:1],
        schemes=("ours",),
        error_rates=(0.0, 1e-6),
        runs=2,
        seed=3,
    )
    clean = cells[("ours", 0.0)]
    assert clean.runs == 2
    assert clean.success_rate == 1.0
    assert clean.mean_overhead is not None and clean.mean_overhead > 0


def test_figure_constants():
    assert 32 in FIGURE4_BLOCK_SIZES
    assert 1e-8 in PCG_ERROR_RATES and 1e-4 in PCG_ERROR_RATES


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    table = format_table(("a", "long-header"), [(1, 2.5), ("xx", "y")], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    assert len(lines) == 5


def test_percent_formatting():
    assert percent(0.437) == "43.7%"
    assert percent(None) == "-"


def test_render_functions_produce_text(small_suite):
    sweep = sweep_block_sizes(small_suite, block_sizes=(1, 32, 512))
    assert "Figure 4" in render_block_size_sweep(sweep)

    detection = compare_detection_overheads(small_suite)
    out = render_detection_comparison(detection)
    assert "Figure 5" in out and "nos3" in out

    correction = compare_correction_overheads(small_suite, trials=3, seed=4)
    out = render_correction_comparison(correction)
    assert "Figure 6" in out and "partial" in out

    coverage = compare_coverage(small_suite, sigmas=(1e-10,), trials=20, seed=5)
    out = render_coverage_comparison(coverage)
    assert "Figure 7" in out

    cells = sweep_pcg(
        small_suite[:1], schemes=("ours",), error_rates=(0.0,), runs=1, seed=6
    )
    out = render_pcg_cells(cells, schemes=("ours",), rates=(0.0,))
    assert "Figure 8" in out and "Figure 9" in out
