"""Fixture corpora for the project-wide rule pack (ABFT008-012).

Each rule has a ``<rule>_bad`` mini-project whose violations are marked
with ``# MARK:<rule>`` comments and a ``<rule>_ok`` mini-project of
protocol-respecting near-misses.  The harness asserts the rule fires on
exactly the marked lines and stays quiet on the ok corpus — both halves
matter: a rule that cannot stay quiet would be suppressed into
uselessness the first week.
"""

from pathlib import Path
from typing import List, Tuple

import pytest

from repro.lint import PROJECT_RULES, analyze_project

FIXTURES = Path(__file__).parent / "fixtures" / "project"

RULE_IDS = tuple(rule.rule_id for rule in PROJECT_RULES)


def marked_lines(directory: Path, rule_id: str) -> List[Tuple[str, int]]:
    """All ``(display_path, line)`` pairs carrying a MARK for ``rule_id``."""
    marks: List[Tuple[str, int]] = []
    for file in sorted(directory.rglob("*.py")):
        display = file.resolve().relative_to(Path.cwd()).as_posix()
        for number, text in enumerate(
            file.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if f"MARK:{rule_id}" in text:
                marks.append((display, number))
    return marks


def run_rule(directory: Path, rule_id: str):
    return analyze_project([directory], select=(rule_id,))


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_corpus_fires_on_every_marked_line(rule_id):
    directory = FIXTURES / f"{rule_id.lower()}_bad"
    result = run_rule(directory, rule_id)
    found = sorted((f.path, f.line) for f in result.findings)
    expected = sorted(marked_lines(directory, rule_id))
    assert expected, f"fixture {directory} has no MARK:{rule_id} lines"
    assert found == expected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_ok_corpus_stays_quiet(rule_id):
    directory = FIXTURES / f"{rule_id.lower()}_ok"
    result = run_rule(directory, rule_id)
    locations = [f.location() for f in result.findings]
    assert locations == [], f"{rule_id} false positives: {locations}"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rules_carry_metadata(rule_id):
    rule = next(r for r in PROJECT_RULES if r.rule_id == rule_id)
    assert rule.title
    assert rule.rationale


def test_abft008_findings_cite_the_arena_module_as_evidence():
    result = run_rule(FIXTURES / "abft008_bad", "ABFT008")
    assert result.findings
    for finding in result.findings:
        assert any(path.endswith("shm.py") for path in finding.related)


def test_abft010_finding_cites_the_nonrefreshing_caller_as_evidence():
    result = run_rule(FIXTURES / "abft010_bad", "ABFT010")
    (finding,) = result.findings
    assert finding.path.endswith("matrix.py")
    assert any(path.endswith("caller.py") for path in finding.related)


def test_abft010_suppression_at_the_mutation_site_silences_the_finding():
    """Interprocedural finding, per-file suppression: the directive sits on
    the mutation line in matrix.py even though the evidence is in caller.py."""
    result = run_rule(FIXTURES / "abft010_suppressed", "ABFT010")
    assert result.findings == []
    assert result.suppressed == 1
    assert result.reasonless_suppressions == []


def test_project_rules_are_inert_in_per_file_mode():
    from repro.lint import lint_paths

    directory = FIXTURES / "abft010_bad"
    result = lint_paths([directory], select=("ABFT010",))
    assert result.findings == []
