"""Zero-allocation execution plans for the protected multiply.

Steady-state callers — above all :func:`repro.solvers.ft_pcg.run_pcg`,
which executes the same protected SpMV hundreds of times on one matrix —
pay a real price for per-call array allocation: every multiply used to
materialize an nnz-sized product scratch, the result vector, both
checksum vectors and the comparison temporaries.  A plan precomputes, for
a fixed ``(matrix, block partition, checksum)`` triple, everything that
does not depend on the operand:

* nnz-balanced shard row ranges aligned to checksum-block boundaries
  (:mod:`repro.perf.sharding`), with per-shard ``indptr`` slices and
  ``reduceat`` offsets resolved once;
* one set of output / scratch buffers (result, product workspace, t1,
  t2, syndrome, thresholds, flag masks) reused by every call;
* the per-block beta coefficients of the rounding-error bound, so each
  detection fills its threshold buffer with one in-place multiply;
* the simulated makespan of the detection task graph, charged with a
  single :meth:`~repro.machine.ExecutionMeter.advance` per call.

After the first call the steady-state loop performs **no new array
allocations** (the tracemalloc regression test pins this), and every
value it produces is bit-identical to the unplanned
:meth:`repro.core.protected.FaultTolerantSpMV.multiply`.

Multi-shard clean multiplies run *fused*: each shard task executes its
SpMV, operand checksum, result checksum and invariant comparison in one
unit, and a flagged block is recomputed by the shard that owns it.
*Where* those tasks run is delegated to a registered execution backend
(:mod:`repro.perf.backends`): ``"serial"`` in the calling thread,
``"threads"`` on the shared kernel thread pool, or ``"processes"`` on a
persistent multicore worker pool mapping the plan's buffers from shared
memory (:mod:`repro.perf.process_backend`).  Fault campaigns (a tamper
hook) always fall back to the sequential path — the hook-call sequence
is part of the contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.blocking import BlockPartition
from repro.core.detector import DetectionReport
from repro.errors import ConfigurationError, ShapeMismatchError
from repro.kernels.base import KernelSet
from repro.kernels.parallel import ParallelKernels
from repro.kernels.vectorized import VectorizedKernels
from repro.machine import ExecutionMeter
from repro.obs import DEFAULT_FRACTION_BUCKETS, Telemetry
from repro.perf.backends import PlanBackend, make_backend, resolve_backend_name
from repro.perf.sharding import shard_blocks
from repro.sparse.csr import CsrMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.core.corrector import TamperHook
    from repro.core.protected import FaultTolerantSpMV, SpmvResult
    from repro.sparse.bsr import BsrMatrix
    from repro.sparse.ell import EllMatrix
    from repro.sparse.formats import FormatMatrix

#: ``(rows, nnz, recheck, syndrome, thresholds, exceeded, still_flagged)``
#: returned by one shard's correction task.  Every member is either a
#: scalar or a freshly materialized array, so the tuple crosses process
#: boundaries by value.
ShardCorrection = Tuple[
    int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
]

#: ``alloc(name, shape, dtype)`` hook deciding where a plan buffer lives.
BufferAllocator = Callable[[str, Tuple[int, ...], str], np.ndarray]


def _heap_alloc(name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
    return np.empty(shape, dtype=np.dtype(dtype))


class _SpmvShard:
    """Precomputed views and offsets for one contiguous row range."""

    __slots__ = (
        "row_start", "row_stop", "indices", "data", "workspace", "segment",
        "starts", "scatter", "reduced",
    )

    def __init__(
        self,
        row_start: int,
        row_stop: int,
        indices: np.ndarray,
        data: np.ndarray,
        workspace: np.ndarray,
        segment: np.ndarray,
        starts: np.ndarray,
        scatter: Optional[np.ndarray],
        reduced: Optional[np.ndarray],
    ) -> None:
        self.row_start = row_start
        self.row_stop = row_stop
        self.indices = indices
        self.data = data
        self.workspace = workspace
        self.segment = segment
        self.starts = starts
        self.scatter = scatter
        self.reduced = reduced


class _BsrShard:
    """Buffered replay of ``BsrMatrix._block_rows_matvec`` for one row range.

    The shard covers the block rows spanning ``[row_start, row_stop)``;
    when a cut falls inside a block row, neighbouring shards recompute the
    shared tiles but each writes only its own rows — every buffer below is
    shard-private, so shards stay thread-safe.  Ops and their order match
    the allocating pipeline exactly (gather, ``einsum`` into ``prod``,
    per-block-row ``reduceat``), which is what keeps planned BSR execution
    bit-identical to :meth:`repro.sparse.bsr.BsrMatrix.matvec`.
    """

    __slots__ = (
        "segment", "offset", "n_rows", "indices", "data", "tiles", "prod",
        "out2d", "starts", "scatter", "reduced",
    )

    def __init__(self, storage: "BsrMatrix", r0: int, r1: int, segment: np.ndarray) -> None:
        br, bc = storage.block_shape
        b0, b1 = r0 // br, -(-r1 // br)
        lo, hi = int(storage.indptr[b0]), int(storage.indptr[b1])
        dtype = storage.data.dtype
        self.segment = segment
        self.offset = r0 - b0 * br
        self.n_rows = r1 - r0
        self.indices = storage.indices[lo:hi]
        self.data = storage.data[lo:hi]
        self.tiles = np.empty((hi - lo, bc), dtype=dtype)
        self.prod = np.empty((hi - lo, br), dtype=dtype)
        self.out2d = np.zeros((b1 - b0, br), dtype=dtype)
        local_ptr = storage.indptr[b0 : b1 + 1] - lo
        nonempty = np.diff(local_ptr) > 0
        if bool(nonempty.all()):
            self.starts = local_ptr[:-1].astype(np.int64)
            self.scatter = None
            self.reduced = None
        else:
            self.scatter = np.flatnonzero(nonempty).astype(np.int64)
            self.starts = local_ptr[:-1][nonempty].astype(np.int64)
            self.reduced = np.empty((self.scatter.size, br), dtype=dtype)

    def execute(self, bview: np.ndarray) -> None:
        """``bview`` is the padded operand reshaped ``(n_block_cols, bc)``."""
        if self.indices.size == 0:
            self.segment[:] = 0.0
            return
        np.take(bview, self.indices, axis=0, out=self.tiles, mode="clip")
        np.einsum("nij,nj->ni", self.data, self.tiles, out=self.prod)
        if self.scatter is None:
            # reprolint: disable=ABFT002 -- same per-block-row reduceat
            # order as BsrMatrix._block_rows_matvec (the bit contract)
            np.add.reduceat(self.prod, self.starts, axis=0, out=self.out2d)
        else:
            # Empty block rows keep their construction-time zeros.
            # reprolint: disable=ABFT002 -- same reduction, scatter variant
            np.add.reduceat(self.prod, self.starts, axis=0, out=self.reduced)
            self.out2d[self.scatter] = self.reduced
        self.segment[:] = self.out2d.reshape(-1)[
            self.offset : self.offset + self.n_rows
        ]


class _EllShard:
    """Buffered ELL row-slice executor (``EllMatrix.matvec_rows``)."""

    __slots__ = ("segment", "indices", "data", "workspace")

    def __init__(self, storage: "EllMatrix", r0: int, r1: int, segment: np.ndarray) -> None:
        self.segment = segment
        self.indices = storage.indices[r0:r1]
        self.data = storage.data[r0:r1]
        self.workspace = np.empty(self.indices.shape, dtype=storage.data.dtype)

    def execute(self, b: np.ndarray) -> None:
        if self.indices.size == 0:
            self.segment[:] = 0.0
            return
        np.take(b, self.indices, out=self.workspace, mode="clip")
        np.multiply(self.workspace, self.data, out=self.workspace)
        # reprolint: disable=ABFT002 -- the row-wise pairwise sum over the
        # fixed width IS the ELL summation contract (see EllMatrix.matvec)
        np.sum(self.workspace, axis=1, out=self.segment)


class SpmvPlan:
    """A reusable, sharded SpMV schedule for one CSR matrix.

    The plan owns its result buffer (:attr:`out`, length ``n_rows``) and
    an nnz-sized product workspace; :meth:`execute` overwrites and
    returns :attr:`out`, so the value is only valid until the next call.
    Results are bit-identical to :meth:`repro.sparse.csr.CsrMatrix.matvec`
    for any shard count: shards are contiguous row spans, and every row's
    left-to-right segment reduction is unchanged.

    Args:
        matrix: the CSR matrix to plan for.
        n_shards: requested shard count; ignored when ``row_cuts`` given.
        row_cuts: explicit strictly increasing shard boundaries
            ``[0, ..., n_rows]`` (e.g. block-aligned cuts); ``None``
            derives nnz-balanced cuts from the matrix.
        out: preallocated result buffer of shape ``(n_rows,)`` float64
            (e.g. a shared-memory view); allocated when ``None``.
        workspace: preallocated product scratch of shape ``(nnz,)``
            float64; allocated when ``None``.  Only meaningful for CSR
            execution; must stay ``None`` when ``storage`` is given.
        storage: optional non-CSR storage (:class:`~repro.sparse.bsr.BsrMatrix`
            or :class:`~repro.sparse.ell.EllMatrix`) of the *same* logical
            matrix; shards then execute the format's own pipeline (with
            shard-private scratch) and results are bit-identical to that
            format's ``matvec`` instead of CSR's.  Callers must invoke
            :meth:`prepare_operand` before :meth:`execute_shard`
            (``execute`` does it internally).
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        n_shards: int = 1,
        row_cuts: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
        storage: Optional["FormatMatrix"] = None,
    ) -> None:
        from repro.perf.sharding import shard_rows

        if row_cuts is None:
            row_cuts = shard_rows(matrix.indptr, n_shards)
        else:
            row_cuts = np.asarray(row_cuts, dtype=np.int64)
            if (
                row_cuts.ndim != 1
                or row_cuts.size < 1
                or row_cuts[0] != 0
                or row_cuts[-1] != matrix.n_rows
                or np.any(np.diff(row_cuts) <= 0)
            ):
                raise ConfigurationError(
                    "row_cuts must be strictly increasing, start at 0 and "
                    f"end at n_rows={matrix.n_rows}; got {row_cuts!r}"
                )
        self.matrix = matrix
        self.row_cuts = row_cuts
        # Working buffers live in the matrix's storage dtype, so a planned
        # float32 multiply is bit-identical to the unplanned one (and a
        # float64 plan keeps its historic layout byte for byte).
        self.dtype = matrix.data.dtype
        self.out = self._buffer("out", out, matrix.n_rows, self.dtype)
        if storage is not None and getattr(storage, "format_name", "csr") == "csr":
            storage = None
        self.storage = storage
        self.sparse_format: str = (
            "csr" if storage is None else storage.format_name
        )
        self._padded: Optional[np.ndarray] = None
        self._bview: Optional[np.ndarray] = None
        self.workspace: Optional[np.ndarray] = None
        self._shards: List[object] = []
        if storage is None:
            self.workspace = self._buffer(
                "workspace", workspace, matrix.nnz, self.dtype
            )
            self._build_csr_shards(row_cuts)
            return
        if workspace is not None:
            raise ConfigurationError(
                "workspace buffers apply to CSR execution only; "
                f"got one with storage format {self.sparse_format!r}"
            )
        if storage.shape != matrix.shape:
            raise ConfigurationError(
                f"storage shape {storage.shape} does not match matrix "
                f"shape {matrix.shape}"
            )
        if self.sparse_format == "bsr":
            bc = storage.block_shape[1]
            self._padded = np.zeros(
                storage.n_block_cols * bc, dtype=storage.data.dtype
            )
            self._bview = self._padded.reshape(storage.n_block_cols, bc)
            self._shards = [
                _BsrShard(
                    storage,
                    int(row_cuts[i]),
                    int(row_cuts[i + 1]),
                    self.out[row_cuts[i] : row_cuts[i + 1]],
                )
                for i in range(row_cuts.size - 1)
            ]
        elif self.sparse_format == "ell":
            self._shards = [
                _EllShard(
                    storage,
                    int(row_cuts[i]),
                    int(row_cuts[i + 1]),
                    self.out[row_cuts[i] : row_cuts[i + 1]],
                )
                for i in range(row_cuts.size - 1)
            ]
        else:
            raise ConfigurationError(
                f"unsupported plan storage format {self.sparse_format!r}"
            )

    def _build_csr_shards(self, row_cuts: np.ndarray) -> None:
        matrix = self.matrix
        assert self.workspace is not None
        self._shards = []
        indptr = matrix.indptr
        lengths = matrix.row_lengths()
        for i in range(row_cuts.size - 1):
            r0, r1 = int(row_cuts[i]), int(row_cuts[i + 1])
            lo, hi = int(indptr[r0]), int(indptr[r1])
            nonempty = lengths[r0:r1] > 0
            scatter: Optional[np.ndarray]
            reduced: Optional[np.ndarray]
            if bool(nonempty.all()):
                starts = (indptr[r0:r1] - lo).astype(np.int64)
                scatter = None
                reduced = None
            else:
                scatter = np.flatnonzero(nonempty).astype(np.int64)
                starts = (indptr[r0:r1][nonempty] - lo).astype(np.int64)
                reduced = np.empty(scatter.size, dtype=self.dtype)
            self._shards.append(
                _SpmvShard(
                    row_start=r0,
                    row_stop=r1,
                    indices=matrix.indices[lo:hi],
                    data=matrix.data[lo:hi],
                    workspace=self.workspace[lo:hi],
                    segment=self.out[r0:r1],
                    starts=starts,
                    scatter=scatter,
                    reduced=reduced,
                )
            )

    @staticmethod
    def _buffer(
        name: str,
        provided: Optional[np.ndarray],
        size: int,
        dtype: np.dtype,
    ) -> np.ndarray:
        if provided is None:
            return np.empty(size, dtype=dtype)
        if provided.shape != (size,) or provided.dtype != dtype:
            raise ConfigurationError(
                f"provided {name} buffer must be {dtype} of shape ({size},); "
                f"got {provided.dtype} {provided.shape}"
            )
        return provided

    @property
    def n_shards(self) -> int:
        """Effective shard count (may be below the requested count)."""
        return len(self._shards)

    def execute(self, b: np.ndarray) -> np.ndarray:
        """Run all shards sequentially; overwrite and return :attr:`out`."""
        b = self.prepare_operand(b)
        for i in range(len(self._shards)):
            self.execute_shard(i, b)
        return self.out

    def check_operand(self, b: np.ndarray) -> np.ndarray:
        """Validate ``b`` once (``execute_shard`` skips validation)."""
        b = np.asarray(b, dtype=self.dtype)
        if b.shape != (self.matrix.n_cols,):
            raise ShapeMismatchError(
                f"operand has shape {b.shape}, expected ({self.matrix.n_cols},)"
            )
        return b

    def prepare_operand(self, b: np.ndarray) -> np.ndarray:
        """Validate ``b`` and stage any format-level operand state.

        For BSR storage this copies ``b`` into the plan's zero-padded
        operand buffer (the tail was zeroed at construction and padding
        never shrinks, so one copy per multiply suffices); shards then
        only *read* it, keeping the fan-out thread-safe.  A no-op beyond
        validation for CSR and ELL.
        """
        b = self.check_operand(b)
        if self._padded is not None:
            self._padded[: self.matrix.n_cols] = b
        return b

    def execute_shard(self, i: int, b: np.ndarray) -> None:
        """Compute result rows of shard ``i`` into the shared :attr:`out`.

        ``b`` must already have passed :meth:`prepare_operand` for this
        multiply; thread-safe across distinct shards — every buffer a
        shard touches is owned by that shard.
        """
        shard = self._shards[i]
        if type(shard) is not _SpmvShard:
            shard.execute(self._bview if self._bview is not None else b)
            return
        ws = shard.workspace
        # mode="clip" writes the gather straight into the workspace; the
        # default mode buffers a temporary (indices are pre-validated).
        np.take(b, shard.indices, out=ws, mode="clip")
        np.multiply(ws, shard.data, out=ws)
        if shard.scatter is None:
            np.add.reduceat(ws, shard.starts, out=shard.segment)
        else:
            shard.segment[:] = 0.0
            if shard.starts.size:
                np.add.reduceat(ws, shard.starts, out=shard.reduced)
                shard.segment[shard.scatter] = shard.reduced


class FusedShardBuffers:
    """Backend-portable state and math of the fused per-shard pipeline.

    Everything a fused detect/correct task touches lives here, allocated
    through an injectable ``alloc(name, shape, dtype)`` hook: the plan
    normally allocates on the heap, while the ``processes`` backend maps
    the same named buffers out of a shared-memory arena so workers can
    rebuild an identical object over identical bytes
    (:func:`repro.perf.process_backend._fused_from_arena`).

    The methods preserve the exact op sequence of the sequential
    protected multiply — the cross-backend bit-identity contract depends
    on that order, so treat any change here as a numerics change.

    The ``abs`` and ``finite`` comparison masks are deliberately *not*
    allocated through the hook: they are write-only scratch local to
    whichever process runs the comparison, so each side keeps a private
    heap copy.
    """

    __slots__ = (
        "matrix", "checksum_matrix", "partition", "weights", "block_cuts",
        "spmv", "checksum_spmv", "t2", "t2_workspace", "syndrome",
        "thresholds", "exceeded", "abs", "finite", "t2_starts",
        "shard_rows", "shard_blocks", "kernels", "storage",
    )

    def __init__(
        self,
        matrix: CsrMatrix,
        checksum_matrix: CsrMatrix,
        partition: BlockPartition,
        weights: np.ndarray,
        block_cuts: np.ndarray,
        alloc: Optional[BufferAllocator] = None,
        storage: Optional["FormatMatrix"] = None,
        kernels: Optional[KernelSet] = None,
    ) -> None:
        if alloc is None:
            alloc = _heap_alloc
        n_blocks = partition.n_blocks
        block_starts = partition.block_starts()
        self.matrix = matrix
        self.checksum_matrix = checksum_matrix
        self.partition = partition
        self.weights = weights
        self.block_cuts = block_cuts
        self.storage = storage
        # Non-CSR storage keeps its scratch shard-private inside SpmvPlan;
        # the flat nnz workspace is a CSR-only buffer.  The checksum
        # multiply below always stays CSR regardless of storage.  Working
        # buffers (result + product scratch) follow the matrix storage
        # dtype; every checksum-side buffer stays in the accumulation
        # dtype (the checksum matrix is always encoded float64).
        working = str(matrix.data.dtype)
        accumulation = str(checksum_matrix.data.dtype)
        self.spmv = SpmvPlan(
            matrix,
            row_cuts=block_starts[block_cuts],
            out=alloc("r", (matrix.n_rows,), working),
            workspace=(
                alloc("r_workspace", (matrix.nnz,), working)
                if storage is None
                else None
            ),
            storage=storage,
        )
        self.checksum_spmv = SpmvPlan(
            checksum_matrix,
            row_cuts=block_cuts,
            out=alloc("t1", (n_blocks,), accumulation),
            workspace=alloc("c_workspace", (checksum_matrix.nnz,), accumulation),
        )
        self.t2 = alloc("t2", (n_blocks,), "float64")
        self.t2_workspace = alloc("t2_workspace", (matrix.n_rows,), "float64")
        self.syndrome = alloc("syndrome", (n_blocks,), "float64")
        self.thresholds = alloc("thresholds", (n_blocks,), "float64")
        self.exceeded = alloc("exceeded", (n_blocks,), "bool")
        self.abs = np.empty(n_blocks, dtype=np.float64)
        self.finite = np.empty(n_blocks, dtype=bool)
        self.kernels = kernels if kernels is not None else VectorizedKernels()

        # Per-shard t2 reduceat offsets (blocks never span shards).
        self.t2_starts: List[np.ndarray] = []
        self.shard_rows: List[Tuple[int, int]] = []
        self.shard_blocks: List[Tuple[int, int]] = []
        for i in range(block_cuts.size - 1):
            c0, c1 = int(block_cuts[i]), int(block_cuts[i + 1])
            r0, r1 = int(block_starts[c0]), int(block_starts[c1])
            self.shard_blocks.append((c0, c1))
            self.shard_rows.append((r0, r1))
            self.t2_starts.append((block_starts[c0:c1] - r0).astype(np.int64))

    @property
    def n_shards(self) -> int:
        return len(self.shard_blocks)

    def compare_range(self, c0: int, c1: int) -> None:
        """Fused invariant comparison over blocks ``[c0, c1)``.

        Elementwise-identical to
        :meth:`repro.kernels.vectorized.VectorizedKernels.compare_syndromes`
        (subtract, abs-greater, non-finite flag) on the t1/t2 buffers,
        writing the syndrome/exceeded buffers instead of allocating.
        """
        t1 = self.checksum_spmv.out
        syndrome = self.syndrome[c0:c1]
        exceeded = self.exceeded[c0:c1]
        finite = self.finite[c0:c1]
        with np.errstate(invalid="ignore", over="ignore"):
            np.subtract(t1[c0:c1], self.t2[c0:c1], out=syndrome)
            np.abs(syndrome, out=self.abs[c0:c1])
            np.greater(self.abs[c0:c1], self.thresholds[c0:c1], out=exceeded)
            np.isfinite(syndrome, out=finite)
            np.logical_not(finite, out=finite)
            np.logical_or(exceeded, finite, out=exceeded)

    def detect_shard(self, i: int, b: np.ndarray) -> None:
        """One fused task: shard SpMV + t1 + t2 + comparison."""
        self.spmv.execute_shard(i, b)
        self.checksum_spmv.execute_shard(i, b)
        c0, c1 = self.shard_blocks[i]
        r0, r1 = self.shard_rows[i]
        with np.errstate(invalid="ignore", over="ignore"):
            ws = self.t2_workspace[r0:r1]
            np.multiply(self.weights[r0:r1], self.spmv.out[r0:r1], out=ws)
            # reprolint: disable=ABFT002 -- same per-block reduceat order
            # as the vectorized kernels; shards align to block starts
            np.add.reduceat(ws, self.t2_starts[i], out=self.t2[c0:c1])
        self.compare_range(c0, c1)

    def correct_shard(self, i: int, b: np.ndarray, blocks: np.ndarray) -> ShardCorrection:
        """Recompute + re-verify the flagged blocks owned by shard ``i``.

        With non-CSR storage the recompute runs the format's own kernels
        over the format matrix, so corrected rows are bit-identical to the
        clean planned multiply (both replay the format's partial-multiply
        contract).
        """
        kernels = self.kernels
        source = self.storage if self.storage is not None else self.matrix
        rows, nnz = kernels.correct_blocks(
            source, self.partition, b, self.spmv.out, blocks, None
        )
        recheck = kernels.result_checksums_for_blocks(
            self.weights, self.spmv.out, self.partition, blocks
        )
        thresholds = self.thresholds[blocks]
        with np.errstate(invalid="ignore", over="ignore"):
            syndrome = self.checksum_spmv.out[blocks] - recheck
            exceeded = np.abs(syndrome) > thresholds
            exceeded |= ~np.isfinite(syndrome)
        return rows, nnz, recheck, syndrome, thresholds, exceeded, blocks[exceeded]


class ProtectedPlan:
    """A planned, bufferized protected multiply bound to one operator.

    Construction precomputes block-aligned shard cuts, an
    :class:`SpmvPlan` each for ``A`` and the checksum matrix ``C``, all
    detection buffers, the bound's beta coefficients and the simulated
    detection-graph makespan.  :meth:`multiply` then mirrors
    :meth:`repro.core.protected.FaultTolerantSpMV.multiply` stage for
    stage — same values, same tamper-hook sequence, same telemetry, same
    simulated cost — without per-call array allocation.

    The returned :class:`~repro.core.protected.SpmvResult` holds a view
    of the plan's result buffer: it is valid until the next call on the
    same plan (iterative solvers consume the product immediately).

    Args:
        operator: the :class:`~repro.core.protected.FaultTolerantSpMV`
            to plan for.
        n_shards: requested shard count (block-aligned; the effective
            count can be lower on tiny matrices).
        parallel: explicit backend name (``"serial"``, ``"threads"``,
            ``"processes"`` or a registered extension), overriding both
            ``REPRO_PARALLEL`` and ``AbftConfig.parallel``.  ``None``
            resolves via :func:`repro.perf.backends.resolve_backend_name`.
        backend_options: keyword options forwarded to the backend
            factory (e.g. ``serial_cutoff``/``timeout`` for
            ``processes``).
        sparse_format: explicit storage format for the planned multiply
            (``"csr"``, ``"bsr"``, ``"ell"`` or ``"auto"``), overriding
            both ``REPRO_FORMAT`` and ``AbftConfig.sparse_format``.
            ``None`` resolves via
            :func:`repro.sparse.formats.resolve_format_name`.  The chosen
            format, the request that led to it and the heuristic ratios
            are recorded in :attr:`format_choice` and emitted as a
            ``plan.format`` telemetry span.  The ``processes`` backend
            shares CSR buffers between processes, so it coerces any
            non-CSR request back to CSR (recorded as the choice reason).
            Detection always compares against the CSR-encoded checksum
            matrix; non-CSR results agree with CSR within the scheme's
            own rounding-error bounds (summation association differs),
            and any correction round run by the sequential fallback
            recomputes flagged blocks with the CSR reference kernels —
            still within bounds, re-verified against the same thresholds.

    Plans over the ``processes`` backend own worker processes and a
    shared-memory segment; release them deterministically with
    :meth:`close` or a ``with`` block (an atexit hook reaps leftovers).
    """

    def __init__(
        self,
        operator: "FaultTolerantSpMV",
        n_shards: int = 1,
        parallel: Optional[str] = None,
        backend_options: Optional[Dict[str, object]] = None,
        sparse_format: Optional[str] = None,
    ) -> None:
        from repro.sparse.formats import (
            FormatChoice,
            resolve_format_name,
            select_format,
        )

        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        detector = operator.detector
        matrix = detector.matrix
        partition = detector.partition
        n_blocks = partition.n_blocks
        self.operator = operator
        self.n_shards = n_shards
        # The resolved policy keys the operator's plan cache: a plan built
        # for one precision contract is never reused under another.
        self.dtype_policy = detector.dtype_policy

        block_starts = partition.block_starts()
        self.block_cuts = shard_blocks(matrix.indptr, block_starts, n_shards)

        inner = getattr(detector.kernels, "inner", detector.kernels)
        self._parallel: Optional[ParallelKernels] = (
            inner if isinstance(inner, ParallelKernels) else None
        )

        default = "threads" if self._parallel is not None else "serial"
        self.backend_name = resolve_backend_name(
            getattr(operator.config, "parallel", None),
            explicit=parallel,
            default=default,
        )

        requested = resolve_format_name(
            getattr(operator.config, "sparse_format", None),
            explicit=sparse_format,
        )
        storage: Optional["FormatMatrix"] = None
        if requested != "csr" and self.backend_name == "processes":
            self.format_choice = FormatChoice(
                format="csr",
                requested=requested,
                reason=(
                    "processes backend maps CSR buffers from shared "
                    "memory; non-CSR request coerced to csr"
                ),
            )
        else:
            self.format_choice, built = select_format(
                matrix, requested, measure=True
            )
            if self.format_choice.format != "csr":
                storage = built
        self.sparse_format = self.format_choice.format

        self.backend: PlanBackend = make_backend(
            self.backend_name, self, **(backend_options or {})
        )

        format_kernels: Optional[KernelSet] = None
        if storage is not None:
            from repro.kernels.base import get_kernels

            format_kernels = get_kernels("vectorized", self.sparse_format)

        self._fused = FusedShardBuffers(
            matrix,
            detector.checksum.matrix,
            partition,
            detector.checksum.weights,
            self.block_cuts,
            alloc=self.backend.alloc,
            storage=storage,
            kernels=format_kernels,
        )
        # Emitted only when format machinery is in play: a default-CSR
        # plan keeps its telemetry stream byte-identical to the unplanned
        # operator's (the telemetry-equivalence test pins this).
        telemetry = detector.telemetry
        if telemetry.enabled and requested != "csr":
            choice = self.format_choice
            with telemetry.span(
                "plan.format",
                format=choice.format,
                requested=choice.requested,
                reason=choice.reason,
                fill_ratio=float(choice.fill_ratio),
                padding_ratio=float(choice.padding_ratio),
            ):
                pass
        self.spmv = self._fused.spmv
        self.checksum_spmv = self._fused.checksum_spmv
        self._weights = self._fused.weights
        self._t2_starts = self._fused.t2_starts
        self._shard_rows = self._fused.shard_rows
        self._shard_blocks = self._fused.shard_blocks
        self._t2 = self._fused.t2
        self._t2_workspace = self._fused.t2_workspace
        self._syndrome = self._fused.syndrome
        self._abs = self._fused.abs
        self._thresholds = self._fused.thresholds
        self._exceeded = self._fused.exceeded
        self._finite = self._fused.finite
        self._all_blocks = np.arange(n_blocks, dtype=np.int64)
        self._empty_blocks = np.empty(0, dtype=np.int64)
        self._beta_box = np.zeros(1, dtype=np.float64)

        # All analytic bounds are linear in beta; empirical bounds may not
        # expose coefficients, in which case thresholds are evaluated per
        # call (a small allocation, outside the zero-alloc guarantee).
        coefficients = getattr(detector.bound, "beta_coefficients", None)
        self._beta_coefficients: Optional[np.ndarray] = (
            np.asarray(coefficients(), dtype=np.float64)
            if callable(coefficients)
            else None
        )

        # The detection graph's simulated makespan/work never change for a
        # fixed machine; pre-simulating lets multiply charge one advance().
        graph = detector.detection_graph()
        self._machine = operator.machine
        self._detect_seconds = operator.machine.makespan(graph)
        self._detect_flops = graph.total_work()

        self._vectorized = self._fused.kernels

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker pool, shared memory).

        Idempotent.  A plan whose buffers live in shared memory must not
        be used after close — its result/scratch views are dead.
        """
        self.backend.close()

    def __enter__(self) -> "ProtectedPlan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protected multiply
    # ------------------------------------------------------------------
    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional["TamperHook"] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> "SpmvResult":
        """Planned fault-tolerant SpMV (see
        :meth:`repro.core.protected.FaultTolerantSpMV.multiply`).

        The result's ``value`` is the plan's reusable buffer — consume it
        before the next call.
        """
        from repro.core.protected import block_result

        operator = self.operator
        detector = operator.detector
        matrix = detector.matrix
        telemetry = detector.telemetry
        meter = meter if meter is not None else ExecutionMeter(machine=operator.machine)
        start_seconds, start_flops = meter.snapshot()
        # Staging the operand here (validation + BSR padding copy) covers
        # both execution paths: fused shard fan-out reads the prepared
        # buffer, the sequential path re-stages idempotently in execute().
        b = self.spmv.prepare_operand(b)

        with telemetry.span("abft.multiply", rows=matrix.n_rows, nnz=matrix.nnz):
            if meter.machine is self._machine:
                meter.advance(self._detect_seconds, self._detect_flops)
            else:
                meter.run_graph(detector.detection_graph())

            fused = (
                tamper is None
                and self.backend.parallel_active
                and self.spmv.n_shards > 1
            )
            if fused:
                r, t1, beta, report, detected, corrected, rounds, exhausted = (
                    self._parallel_multiply(b, meter, telemetry)
                )
            else:
                with telemetry.span("abft.detect"):
                    r = self.spmv.execute(b)
                    self._tamper(tamper, "result", r, 2.0 * matrix.nnz)
                    t1 = self.checksum_spmv.execute(b)
                    self._tamper(tamper, "t1", t1, 2.0 * detector.checksum.nnz)
                    self._beta_box[0] = detector.operand_norm(b)
                    self._tamper(tamper, "beta", self._beta_box, 2.0 * matrix.n_cols)
                    beta = float(self._beta_box[0])
                    t2 = detector.checksum.result_checksums(
                        r,
                        kernel=detector.kernels,
                        out=self._t2,
                        workspace=self._t2_workspace,
                    )
                    self._tamper(tamper, "t2", t2, 2.0 * matrix.n_rows)
                    report, exceeded = self._compare(t1, t2, beta, telemetry)
                    detector.record(report, exceeded)

                detected = [tuple(int(x) for x in report.flagged)]
                corrected = set()  # type: Set[int]
                rounds, exhausted = operator._correction_rounds(
                    b, r, t1, beta, report.flagged, tamper, meter,
                    detected=detected, corrected=corrected,
                )

        seconds, flops = meter.snapshot()
        return block_result(
            detector.partition,
            value=r,
            detected=tuple(detected),
            corrected_blocks=tuple(sorted(corrected)),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )

    # ------------------------------------------------------------------
    # Detection internals
    # ------------------------------------------------------------------
    @staticmethod
    def _tamper(
        tamper: Optional["TamperHook"], stage: str, data: np.ndarray, work: float
    ) -> None:
        if tamper is not None:
            tamper(stage, data, work)

    def _fill_thresholds(self, beta: float) -> None:
        """``thresholds <- coefficients * beta`` (bit-identical to
        ``bound.thresholds(beta, all_blocks)``; see
        :meth:`repro.core.bounds.SparseBlockBound.beta_coefficients`)."""
        with np.errstate(invalid="ignore", over="ignore"):
            if self._beta_coefficients is not None:
                np.multiply(self._beta_coefficients, beta, out=self._thresholds)
            else:
                self._thresholds[:] = self.operator.detector.bound.thresholds(
                    beta, self._all_blocks
                )

    def _flagged(self) -> np.ndarray:
        """Flagged block ids from the exceeded buffer (no alloc when clean)."""
        if bool(self._exceeded.any()):
            return self._all_blocks[self._exceeded]
        return self._empty_blocks

    def _compare(
        self, t1: np.ndarray, t2: np.ndarray, beta: float, telemetry: Telemetry
    ) -> Tuple[DetectionReport, np.ndarray]:
        """Full-detection comparison into the plan's buffers.

        With telemetry enabled the comparison dispatches through the
        operator's kernel set so per-kernel timing events keep flowing;
        the buffered fused path (identical values) runs otherwise.
        """
        self._fill_thresholds(beta)
        if telemetry.enabled:
            syndrome, exceeded = self.operator.detector.kernels.compare_syndromes(
                t1, t2, self._thresholds
            )
            flagged = (
                self._all_blocks[exceeded] if bool(exceeded.any())
                else self._empty_blocks
            )
        else:
            self._fused.compare_range(0, self._all_blocks.size)
            syndrome = self._syndrome
            exceeded = self._exceeded
            flagged = self._flagged()
        report = DetectionReport(
            flagged=flagged,
            syndrome=syndrome,
            thresholds=self._thresholds,
            blocks=self._all_blocks,
            beta=beta,
        )
        return report, exceeded

    # ------------------------------------------------------------------
    # Fused parallel path
    # ------------------------------------------------------------------
    def _detect_shard(self, i: int, b: np.ndarray, telemetry: Telemetry) -> None:
        """One worker's fused task: shard SpMV + t1 + t2 + comparison."""
        with telemetry.span("plan.shard", shard=i):
            self._fused.detect_shard(i, b)

    def _correct_shard(
        self, i: int, b: np.ndarray, blocks: np.ndarray, telemetry: Telemetry
    ) -> ShardCorrection:
        """Recompute + re-verify the flagged blocks owned by shard ``i``."""
        with telemetry.span("plan.shard", shard=i, blocks=int(blocks.size)):
            return self._fused.correct_shard(i, b, blocks)

    def _parallel_multiply(
        self, b: np.ndarray, meter: ExecutionMeter, telemetry: Telemetry
    ) -> Tuple[
        np.ndarray, np.ndarray, float, DetectionReport,
        List[Tuple[int, ...]], Set[int], int, bool,
    ]:
        """Clean-path multiply with detection fused into the shard tasks."""
        operator = self.operator
        detector = operator.detector

        with telemetry.span("abft.detect"):
            self._beta_box[0] = detector.operand_norm(b)
            beta = float(self._beta_box[0])
            self._fill_thresholds(beta)
            self.backend.run_detect(b, telemetry)
            flagged = self._flagged()
            report = DetectionReport(
                flagged=flagged,
                syndrome=self._syndrome,
                thresholds=self._thresholds,
                blocks=self._all_blocks,
                beta=beta,
            )
            detector.record(report, self._exceeded)

        r = self.spmv.out
        t1 = self.checksum_spmv.out
        detected: List[Tuple[int, ...]] = [tuple(int(x) for x in flagged)]
        corrected: Set[int] = set()
        rounds = 0
        exhausted = False
        if flagged.size:
            if operator.config.max_correction_rounds < 1:
                exhausted = True
            else:
                remaining = self._parallel_round(
                    b, beta, flagged, meter, telemetry, corrected
                )
                rounds = 1
                detected.append(tuple(int(x) for x in remaining))
                if remaining.size:
                    rounds, exhausted = operator._correction_rounds(
                        b, r, t1, beta, remaining, None, meter,
                        detected=detected, corrected=corrected, rounds=rounds,
                    )
        return r, t1, beta, report, detected, corrected, rounds, exhausted

    def _parallel_round(
        self,
        b: np.ndarray,
        beta: float,
        flagged: np.ndarray,
        meter: ExecutionMeter,
        telemetry: Telemetry,
        corrected: Set[int],
    ) -> np.ndarray:
        """First correction round with shard-owner affinity.

        Each shard recomputes and re-verifies the flagged blocks it owns;
        telemetry and simulated cost match one sequential round exactly
        (same counters, same ``abft.correct`` span, same correction
        graph).  Returns the blocks still flagged after re-verification.
        """
        operator = self.operator
        detector = operator.detector
        if telemetry.enabled:
            telemetry.count("abft.corrections")
            telemetry.count("abft.blocks_recomputed", float(flagged.size))
            telemetry.observe(
                "abft.block_recompute_fraction",
                flagged.size / detector.n_blocks,
                buckets=DEFAULT_FRACTION_BUCKETS,
            )
        with telemetry.span("abft.correct", round=1, blocks=int(flagged.size)):
            cuts = self.block_cuts
            owned: List[Tuple[int, np.ndarray]] = []
            for i in range(cuts.size - 1):
                lo = int(np.searchsorted(flagged, cuts[i]))
                hi = int(np.searchsorted(flagged, cuts[i + 1]))
                if hi > lo:
                    owned.append((i, flagged[lo:hi]))
            results = self.backend.run_correct(b, owned, telemetry)
            corrected.update(int(x) for x in flagged)
            rows = sum(result[0] for result in results)
            nnz = sum(result[1] for result in results)
            report = DetectionReport(
                flagged=np.concatenate([result[6] for result in results]),
                syndrome=np.concatenate([result[3] for result in results]),
                thresholds=np.concatenate([result[4] for result in results]),
                blocks=flagged,
                beta=beta,
            )
            exceeded = np.concatenate([result[5] for result in results])
            detector.record(report, exceeded)
        meter.run_graph(
            operator._correction_graph(1, nnz, rows, len(flagged), 0)
        )
        return report.flagged
