"""Figure 7 — error coverage (F1 score), ours vs the dense check.

σ-significant bursts corrupt random result elements; detection verdicts
are scored as TP/FN/FP and summarized by the balanced F1 score.  Paper
result at σ = 1e-12: ours 0.68..0.88 (average 0.81), improved on average
by 52.2 % over the dense check (whose norm bound misses small errors);
averages 0.88 at σ = 1e-10 and 0.95 at σ = 1e-8.  The timed unit is one
small coverage campaign.
"""

from conftest import COVERAGE_TRIALS, write_result

from repro.analysis import (
    FIGURE7_SIGMAS,
    compare_coverage,
    render_coverage_comparison,
    run_coverage_campaign,
)


def test_fig7_f1_coverage(benchmark, full_suite):
    comparison = compare_coverage(
        full_suite, sigmas=FIGURE7_SIGMAS, trials=COVERAGE_TRIALS, seed=0
    )
    report = render_coverage_comparison(comparison)
    ours_12 = comparison.average_f1("block", 1e-12)
    dense_12 = comparison.average_f1("dense", 1e-12)
    paper_note = (
        "paper @1e-12: ours avg 0.81 vs dense much lower (52.2% improvement); "
        "ours avg 0.88 @1e-10, 0.95 @1e-8 | "
        f"measured @1e-12: ours {ours_12:.3f} vs dense {dense_12:.3f}; "
        f"ours {comparison.average_f1('block', 1e-10):.3f} @1e-10, "
        f"{comparison.average_f1('block', 1e-8):.3f} @1e-8"
    )
    write_result("fig7_f1_coverage", f"{report}\n{paper_note}")

    # Ours dominates the dense check at every sigma, on every matrix.
    for sigma in FIGURE7_SIGMAS:
        for block, dense in zip(comparison.block[sigma], comparison.dense[sigma]):
            assert block.f1 > dense.f1
    # F1 grows with sigma (easier errors), as in the paper.
    assert (
        comparison.average_f1("block", 1e-8)
        >= comparison.average_f1("block", 1e-10)
        >= comparison.average_f1("block", 1e-12)
    )
    assert ours_12 > 0.7
    assert dense_12 < 0.5

    matrix = full_suite[0][1]  # nos3
    benchmark.pedantic(
        lambda: run_coverage_campaign(matrix, "block", trials=30, sigma=1e-10, seed=1),
        rounds=1,
        iterations=1,
    )
