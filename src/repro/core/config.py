"""Configuration of the block-ABFT scheme."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.kernels import DEFAULT_KERNEL, available_kernels
from repro.obs import DEFAULT_EXPORTER, available_exporters

#: Double-precision machine epsilon used by the rounding-error bounds
#: (the paper's eps_M = 2^-53, Section III-C).
MACHINE_EPSILON = 2.0**-53

#: The paper's empirically optimal block size (Section V-A, Figure 4).
DEFAULT_BLOCK_SIZE = 32

#: Supported rounding-error bounds (see repro.core.bounds).
BOUND_KINDS = ("sparse", "dense", "norm")

#: Supported weight-vector schemes (see repro.core.checksum).
WEIGHT_KINDS = ("ones", "linear", "random")

#: Default near-miss fraction: a clean block whose syndrome exceeds this
#: fraction of its bound is reported as false-positive pressure.
DEFAULT_NEAR_MISS_FRACTION = 0.9


@dataclass(frozen=True)
class AbftConfig:
    """Parameters of the fault-tolerant SpMV.

    Attributes:
        block_size: rows per checksum block (b_s); the paper sweeps 1..512
            and settles on 32.
        bound: rounding-error bound family — ``"sparse"`` is the paper's
            per-block analytical bound, ``"dense"`` the Roy-Chowdhury &
            Banerjee whole-matrix bound, ``"norm"`` the ||b||_2 bound of
            Sloan et al. (the last two exist for ablation/baselines).
        weights: weight-vector scheme; the paper uses all-ones.
        bound_scale: multiplier on the bound (1.0 = as derived); exposed
            for the bound-tightness ablation.
        max_correction_rounds: verification/correction iterations before a
            protected multiply gives up (errors can hit corrections too).
        kernel: registered kernel-set name executing the hot paths (see
            :mod:`repro.kernels`); the ``REPRO_KERNELS`` environment
            variable overrides it process-wide.  Custom sets must be
            registered before the config is constructed.
        telemetry: registered exporter name receiving protocol telemetry
            (see :mod:`repro.obs`); ``"off"`` (the default) disables all
            instrumentation down to a single guard per update site.  The
            ``REPRO_OBS`` environment variable overrides it process-wide.
        near_miss_fraction: fraction of the rounding-error bound above
            which a *clean* block's syndrome counts as a near miss
            (``abft.false_positive_candidates``) and fires the detector's
            near-miss hook — the signal adaptive thresholds watch.
        scheme: registered protection-scheme name (see
            :mod:`repro.schemes`) used when a caller asks for a default
            scheme; None keeps the library default (``"abft"``).  The
            ``REPRO_SCHEME`` environment variable overrides *defaulted*
            selections process-wide.
        parallel: registered plan-execution backend name (see
            :mod:`repro.perf.backends`) used by planned protected
            multiplies: ``"serial"``, ``"threads"`` or ``"processes"``.
            None keeps the historical default (threads when the kernel
            set is ``"parallel"``, serial otherwise).  The
            ``REPRO_PARALLEL`` environment variable overrides it
            process-wide; an explicit ``ProtectedPlan(parallel=...)``
            argument beats both.
        sparse_format: storage format planned protected multiplies run
            on (see :mod:`repro.sparse.formats`): ``"csr"``, ``"bsr"``,
            ``"ell"``, or ``"auto"`` to let the plan pick by fill/padding
            heuristics at plan time.  None keeps the library default
            (``"csr"``).  The ``REPRO_FORMAT`` environment variable
            overrides *configured* names process-wide; an explicit
            ``sparse_format=`` argument to a planned entry point beats
            both.  Unplanned multiplies always run CSR.
        dtype: registered dtype-policy name (see :mod:`repro.core.dtypes`):
            ``"float64"``, ``"float32"``, or ``"bfloat16"``.  The policy
            governs the epsilon model of the rounding-error bounds, the
            dtype explicit data constructions use, and whether values are
            quantized to an emulated narrow grid.  None keeps the library
            default (``"float64"``).  The ``REPRO_DTYPE`` environment
            variable overrides *configured* names process-wide; an
            explicit ``dtype=`` argument to an entry point beats both.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    bound: str = "sparse"
    weights: str = "ones"
    bound_scale: float = 1.0
    max_correction_rounds: int = 8
    kernel: str = DEFAULT_KERNEL
    telemetry: str = DEFAULT_EXPORTER
    near_miss_fraction: float = DEFAULT_NEAR_MISS_FRACTION
    scheme: Optional[str] = None
    parallel: Optional[str] = None
    sparse_format: Optional[str] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {self.block_size}")
        if self.bound not in BOUND_KINDS:
            raise ConfigurationError(
                f"unknown bound {self.bound!r}; expected one of {BOUND_KINDS}"
            )
        if self.weights not in WEIGHT_KINDS:
            raise ConfigurationError(
                f"unknown weights {self.weights!r}; expected one of {WEIGHT_KINDS}"
            )
        if self.bound_scale <= 0:
            raise ConfigurationError(f"bound_scale must be positive, got {self.bound_scale}")
        if self.max_correction_rounds < 1:
            raise ConfigurationError(
                f"max_correction_rounds must be >= 1, got {self.max_correction_rounds}"
            )
        if self.kernel not in available_kernels():
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {available_kernels()}"
            )
        if self.telemetry not in available_exporters():
            raise ConfigurationError(
                f"unknown telemetry {self.telemetry!r}; expected one of "
                f"{available_exporters()}"
            )
        if not 0.0 <= self.near_miss_fraction:
            raise ConfigurationError(
                f"near_miss_fraction must be >= 0, got {self.near_miss_fraction}"
            )
        if self.scheme is not None:
            # Lazy import: the registry depends on this module for defaults.
            from repro.schemes import canonical_scheme_name

            canonical_scheme_name(self.scheme)
        if self.parallel is not None:
            # Lazy import: repro.perf depends on core modules.
            from repro.perf.backends import canonical_backend_name

            canonical_backend_name(self.parallel)
        if self.sparse_format is not None:
            # Lazy import: keeps repro.sparse free of config dependencies.
            from repro.sparse.formats import canonical_format_name

            canonical_format_name(self.sparse_format)
        if self.dtype is not None:
            # Lazy import: mirrors the other registry validations above.
            from repro.core.dtypes import canonical_dtype_name

            canonical_dtype_name(self.dtype)
