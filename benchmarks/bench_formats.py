"""Storage-format shootout for the planned protected SpMV.

Three suites, one per structural regime the format heuristics key on:

* ``fem_bs8``   — FEM-style block-structured SPD (``block_stencil_spd``,
  dense 8x8 tiles, BSR fill 1.0): the regime BSR exists for;
* ``banded``    — near-regular row lengths (low ELL padding): the ELL
  leg's home turf;
* ``hostile``   — unstructured random scatter (low fill, high padding):
  auto-selection must keep CSR and stay within noise of it.

Each suite times the steady-state planned protected multiply loop under
``sparse_format`` in {csr, bsr, ell, auto} plus the raw plan SpMV
(format pipeline without detection), and records what ``auto`` chose and
why.

Acceptance floors (failed, not warned, outside smoke runs):

* ``fem_bs8``: BSR >= 1.15x over CSR on the planned protected multiply —
  the tile pipeline has to pay for the abstraction;
* ``hostile``: auto >= 0.95x of CSR — auto-selection must never lose
  more than 5% by picking (or probing) a format on hostile inputs.

Floors that cannot be asserted on a run are recorded under
``skip_reasons`` (as in ``bench_parallel_plan``).  Results go to
``results/bench_formats.txt`` and ``results/BENCH_formats.json``;
``REPRO_BENCH_SMOKE=1`` shrinks the suites to CI-smoke sizes where only
correctness is asserted.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_env, write_json, write_result
from repro.core import AbftConfig, FaultTolerantSpMV
from repro.sparse import banded_spd, block_stencil_spd, random_spd

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

BLOCK_SIZE = 64
FORMATS = ("csr", "bsr", "ell", "auto")
MULTIPLIES = 3 if SMOKE else 10
REPEATS = 3 if SMOKE else 5
MIN_BSR_SPEEDUP = 1.15  # fem_bs8: BSR over CSR, planned multiply loop
MIN_AUTO_RATIO = 0.95  # hostile: auto over CSR (never lose > 5%)

if SMOKE:
    SUITES = {
        "fem_bs8": lambda: block_stencil_spd(500, 8, seed=42),
        "banded": lambda: banded_spd(4_000, half_bandwidth=8, seed=43),
        "hostile": lambda: random_spd(4_000, 48_000, seed=44),
    }
else:
    SUITES = {
        "fem_bs8": lambda: block_stencil_spd(12_000, 8, seed=42),
        "banded": lambda: banded_spd(120_000, half_bandwidth=8, seed=43),
        "hostile": lambda: random_spd(100_000, 1_200_000, seed=44),
    }


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _bench_suite(matrix):
    """Time every format's planned loop on one matrix; return the rows."""
    b = np.random.default_rng(7).standard_normal(matrix.n_cols)
    config = AbftConfig(block_size=BLOCK_SIZE, kernel="vectorized")
    rows = {}
    reference = matrix.matvec(b)
    scale = float(np.abs(reference).max())
    plans = {}
    for sparse_format in FORMATS:
        operator = FaultTolerantSpMV(matrix, config=config)
        plan = operator.planned(sparse_format=sparse_format)
        value = plan.multiply(b).value
        # Formats re-associate row sums: bound-level, never asserted
        # bit-exact here (tests/schemes/test_format_differential.py pins
        # the exactness contract).
        np.testing.assert_allclose(
            value, reference, atol=1e-9 * max(scale, 1.0),
            err_msg=f"{sparse_format} planned multiply diverged",
        )
        plans[sparse_format] = plan
    # Interleave the formats round-robin so clock drift and cache state
    # hit every contender equally — the floors compare formats against
    # each other, not against the wall clock.  csr and auto run back to
    # back: the hostile floor compares exactly those two, and the forced
    # bsr/ell legs that precede them in a naive order can thrash the
    # cache for seconds on unstructured inputs.
    timing_order = ("csr", "auto", "bsr", "ell")
    best_loop = {fmt: float("inf") for fmt in FORMATS}
    best_raw = {fmt: float("inf") for fmt in FORMATS}
    staged = {
        fmt: plans[fmt].spmv.prepare_operand(b) for fmt in FORMATS
    }
    for _ in range(REPEATS):
        for fmt in timing_order:
            plan = plans[fmt]
            loop = _timed(lambda p=plan: [p.multiply(b) for _ in range(MULTIPLIES)])
            best_loop[fmt] = min(best_loop[fmt], loop)
            raw = _timed(
                lambda p=plan, s=staged[fmt]: [
                    p.spmv.execute(s) for _ in range(MULTIPLIES)
                ]
            )
            best_raw[fmt] = min(best_raw[fmt], raw)
    for sparse_format in FORMATS:
        choice = plans[sparse_format].format_choice
        rows[sparse_format] = {
            "loop_ms": 1e3 * best_loop[sparse_format],
            "raw_spmv_ms": 1e3 * best_raw[sparse_format],
            "resolved_format": choice.format,
            "reason": choice.reason,
            "fill_ratio": None if np.isnan(choice.fill_ratio) else choice.fill_ratio,
            "padding_ratio": (
                None if np.isnan(choice.padding_ratio) else choice.padding_ratio
            ),
            "block_shape": (
                list(choice.block_shape) if choice.block_shape else None
            ),
        }
    return rows


def test_format_speedups():
    suites = {}
    for name, make in SUITES.items():
        matrix = make()
        suites[name] = {
            "n_rows": matrix.n_rows,
            "nnz": matrix.nnz,
            "formats": _bench_suite(matrix),
        }

    def loop_ms(suite, fmt):
        return suites[suite]["formats"][fmt]["loop_ms"]

    speedups = {
        "fem_bsr_vs_csr": loop_ms("fem_bs8", "csr") / loop_ms("fem_bs8", "bsr"),
        "fem_auto_vs_csr": loop_ms("fem_bs8", "csr") / loop_ms("fem_bs8", "auto"),
        "banded_ell_vs_csr": loop_ms("banded", "csr") / loop_ms("banded", "ell"),
        "hostile_auto_vs_csr": (
            loop_ms("hostile", "csr") / loop_ms("hostile", "auto")
        ),
    }

    skip_reasons = {}
    if SMOKE:
        skip_reasons["fem_bsr_vs_csr"] = "smoke=1 (problem below full scale)"
        skip_reasons["hostile_auto_vs_csr"] = "smoke=1 (problem below full scale)"

    lines = [
        "Storage-format shootout: planned protected multiply, "
        f"block size {BLOCK_SIZE}, {MULTIPLIES} multiplies per run",
        "",
    ]
    for name, suite in suites.items():
        lines.append(
            f"{name} (n={suite['n_rows']}, nnz={suite['nnz']})"
        )
        lines.append(
            f"  {'format':<6} {'loop [ms]':>11} {'raw spmv [ms]':>14}  resolved"
        )
        for fmt, row in suite["formats"].items():
            lines.append(
                f"  {fmt:<6} {row['loop_ms']:>11.3f} {row['raw_spmv_ms']:>14.3f}"
                f"  {row['resolved_format']}"
                + (
                    f" ({row['reason']})" if fmt == "auto" else ""
                )
            )
        lines.append("")
    lines += [
        f"fem_bs8: bsr vs csr     {speedups['fem_bsr_vs_csr']:.2f}x"
        f"  (floor {MIN_BSR_SPEEDUP}x"
        + (
            ")"
            if "fem_bsr_vs_csr" not in skip_reasons
            else f", not asserted: {skip_reasons['fem_bsr_vs_csr']})"
        ),
        f"fem_bs8: auto vs csr    {speedups['fem_auto_vs_csr']:.2f}x",
        f"banded: ell vs csr      {speedups['banded_ell_vs_csr']:.2f}x",
        f"hostile: auto vs csr    {speedups['hostile_auto_vs_csr']:.2f}x"
        f"  (floor {MIN_AUTO_RATIO}x"
        + (
            ")"
            if "hostile_auto_vs_csr" not in skip_reasons
            else f", not asserted: {skip_reasons['hostile_auto_vs_csr']})"
        ),
    ]
    write_result("bench_formats", "\n".join(lines))
    write_json(
        "formats",
        {
            "benchmark": "formats",
            "config": {
                "block_size": BLOCK_SIZE,
                "formats": list(FORMATS),
                "multiplies_per_run": MULTIPLIES,
                "repeats": REPEATS,
                "smoke": SMOKE,
            },
            "suites": suites,
            "speedups": speedups,
            "floors": {
                "fem_bsr_vs_csr": MIN_BSR_SPEEDUP,
                "hostile_auto_vs_csr": MIN_AUTO_RATIO,
            },
            "asserted": {
                "fem_bsr_vs_csr": not SMOKE,
                "hostile_auto_vs_csr": not SMOKE,
            },
            "skip_reasons": skip_reasons,
            "env": bench_env(),
        },
    )

    # Structural sanity holds at every scale, smoke included.
    fem_auto = suites["fem_bs8"]["formats"]["auto"]
    assert fem_auto["resolved_format"] == "bsr", fem_auto["reason"]
    hostile_auto = suites["hostile"]["formats"]["auto"]
    assert hostile_auto["resolved_format"] == "csr", hostile_auto["reason"]

    if SMOKE:
        pytest.skip(
            "smoke run: harness + correctness only, floors not asserted "
            "(see skip_reasons in results/BENCH_formats.json)"
        )
    assert speedups["fem_bsr_vs_csr"] >= MIN_BSR_SPEEDUP, (
        f"BSR reached only {speedups['fem_bsr_vs_csr']:.2f}x over CSR on "
        f"fem_bs8 (floor {MIN_BSR_SPEEDUP}x)"
    )
    assert speedups["hostile_auto_vs_csr"] >= MIN_AUTO_RATIO, (
        f"auto lost {1 - speedups['hostile_auto_vs_csr']:.1%} vs CSR on "
        f"hostile input (floor {MIN_AUTO_RATIO}x)"
    )
