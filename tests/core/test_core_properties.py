"""Property-based tests for the ABFT core.

Invariants pinned here:

* the checksum invariant holds (within the sparse bound) on error-free
  SpMV for arbitrary SPD matrices, operands and block sizes;
* any single σ-significant corruption of the result is localized to the
  block containing it, and correction restores the exact bitwise result;
* the checksum matrix always inherits sparsity (nnz(C) <= nnz(A)).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AbftConfig, BlockAbftDetector, FaultTolerantSpMV
from repro.faults import FaultInjector
from repro.sparse import random_spd


@st.composite
def abft_cases(draw):
    n = draw(st.integers(8, 120))
    nnz = draw(st.integers(n, 6 * n))
    seed = draw(st.integers(0, 2**16))
    block_size = draw(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    matrix = random_spd(n, nnz, seed=seed)
    rng = np.random.default_rng(seed + 1)
    scale = 10.0 ** draw(st.integers(-3, 3))
    b = rng.standard_normal(n) * scale
    return matrix, b, block_size, seed


@settings(max_examples=50, deadline=None)
@given(abft_cases())
def test_invariant_holds_error_free(case):
    matrix, b, block_size, _ = case
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=block_size))
    report = detector.detect(b, matrix.matvec(b))
    assert report.clean


@settings(max_examples=50, deadline=None)
@given(abft_cases())
def test_significant_error_localized_and_corrected(case):
    matrix, b, block_size, seed = case
    ft = FaultTolerantSpMV(matrix, config=AbftConfig(block_size=block_size))
    reference = matrix.matvec(b)
    injector = FaultInjector.seeded(seed + 2)
    state = {"index": None}

    def tamper(stage, data, work):
        if stage == "result" and state["index"] is None:
            record = injector.corrupt_random_element(data, sigma=1e-6)
            state["index"] = record.index

    result = ft.multiply(b, tamper=tamper)
    target_block = state["index"] // block_size
    assert target_block in result.detected[0]
    assert target_block in result.corrected_blocks
    np.testing.assert_array_equal(result.value, reference)


@settings(max_examples=50, deadline=None)
@given(abft_cases())
def test_checksum_matrix_never_denser_than_source(case):
    matrix, _, block_size, _ = case
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=block_size))
    assert detector.checksum.nnz <= matrix.nnz
    assert detector.checksum.matrix.shape == (
        detector.partition.n_blocks,
        matrix.n_cols,
    )


@settings(max_examples=30, deadline=None)
@given(abft_cases())
def test_thresholds_positive_for_nonzero_operand(case):
    matrix, b, block_size, _ = case
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=block_size))
    beta = float(np.linalg.norm(b))
    if beta > 0:
        assert (detector.bound.thresholds(beta) > 0).all()
