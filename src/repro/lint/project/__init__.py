"""Project-wide analysis layer for reprolint.

Where :mod:`repro.lint.engine` lints one file at a time, this package
parses the whole tree once and links it: per-file fact **summaries**
(:mod:`~repro.lint.project.summary`), a symbol table / import graph /
call graph (:mod:`~repro.lint.project.graph`), a content-hash
incremental **cache** (:mod:`~repro.lint.project.cache`), and the
cross-module rule pack ABFT008-012 (:mod:`~repro.lint.project.rules`).

Entry point: :func:`analyze_project`, reached from the CLI via
``python -m repro.lint --project``.
"""

from repro.lint.project.cache import (
    CACHE_FILENAME,
    CACHE_VERSION,
    SummaryCache,
    file_digest,
    reverse_dependents,
)
from repro.lint.project.engine import (
    DIAGNOSTIC_RULE,
    ProjectResult,
    analyze_project,
)
from repro.lint.project.graph import FuncId, ModuleRecord, ProjectContext
from repro.lint.project.rules import PROJECT_RULES
from repro.lint.project.summary import Summary, extract_summary

__all__ = [
    "analyze_project",
    "ProjectResult",
    "DIAGNOSTIC_RULE",
    "ProjectContext",
    "ModuleRecord",
    "FuncId",
    "extract_summary",
    "Summary",
    "PROJECT_RULES",
    "SummaryCache",
    "CACHE_FILENAME",
    "CACHE_VERSION",
    "file_digest",
    "reverse_dependents",
]
