"""Telemetry exporters and their pluggable registry.

An exporter receives one structured event dict per instrument update or
span completion.  Four ship built in:

* ``"off"`` — the :class:`NullExporter`; resolves to the process-wide
  disabled telemetry (the hot paths' zero-cost default);
* ``"memory"`` — :class:`InMemoryExporter`, buffers events in a list
  (the test exporter, and the substrate of determinism checks);
* ``"jsonl"`` — :class:`JsonlExporter`, appends one JSON object per line
  to the path named by :data:`OBS_PATH_ENV_VAR` (default
  ``obs-events.jsonl``), consumable by ``python -m repro.obs summarize``;
* ``"text"`` — :class:`TextSummaryExporter`, buffers like ``"memory"``
  and renders the human-readable summary on :meth:`close`.

The registry mirrors :mod:`repro.kernels` / :mod:`repro.lint`: built-ins
are protected, custom exporters register a *factory* under a name and are
selectable through ``AbftConfig.telemetry`` or the ``REPRO_OBS``
environment override.
"""

from __future__ import annotations

import io
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO, Tuple, Union

from repro.errors import ConfigurationError

#: Environment variable overriding the configured exporter name.
OBS_ENV_VAR = "REPRO_OBS"

#: Environment variable naming the JSONL event-log path.
OBS_PATH_ENV_VAR = "REPRO_OBS_PATH"

#: Exporter selected when neither a name nor the environment picks one.
DEFAULT_EXPORTER = "off"

#: One telemetry event: flat JSON-serializable dict (see Telemetry).
Event = Dict[str, object]


class Exporter:
    """Base class for event sinks; subclasses override :meth:`emit`."""

    #: Registry key of the built-in factories; informational for customs.
    name: str = "abstract"

    def emit(self, event: Event) -> None:
        """Receive one telemetry event."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to their destination (no-op by default)."""

    def close(self) -> None:
        """Release resources; the exporter must tolerate repeated calls."""


class NullExporter(Exporter):
    """Discards every event (the ``"off"`` built-in)."""

    name = "off"

    def emit(self, event: Event) -> None:
        pass


class InMemoryExporter(Exporter):
    """Buffers events in :attr:`events` (the ``"memory"`` built-in)."""

    name = "memory"

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        """Drop all buffered events."""
        self.events.clear()


class JsonlExporter(Exporter):
    """Appends one compact JSON object per event to a log file.

    The file opens lazily on the first event (selecting the exporter must
    not create files in runs that emit nothing) and is line-buffered so a
    crashed run still leaves a readable prefix.
    """

    name = "jsonl"

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        if path is None:
            path = os.environ.get(OBS_PATH_ENV_VAR) or "obs-events.jsonl"
        self.path = Path(path)
        self._stream: Optional[TextIO] = None

    def emit(self, event: Event) -> None:
        if self._stream is None:
            self._stream = open(self.path, "a", buffering=1, encoding="utf-8")
        json.dump(event, self._stream, separators=(",", ":"))
        self._stream.write("\n")

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class TextSummaryExporter(Exporter):
    """Buffers events and prints a rendered summary when closed.

    ``stream=None`` writes to stderr at close time (not at construction,
    so pytest capture and redirections are honoured).
    """

    name = "text"

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.events: List[Event] = []
        self._stream = stream

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def render(self, width: int = 48) -> str:
        """Render the buffered events as the human-readable summary."""
        from repro.obs.summary import render_summary

        return render_summary(self.events, width=width)

    def close(self) -> None:
        if not self.events:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            stream.write(self.render() + "\n")
        except (ValueError, io.UnsupportedOperation):  # closed stream at exit
            pass
        self.events = []


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
ExporterFactory = Callable[[], Exporter]

#: Exporter names that ship with the package and cannot be unregistered.
BUILTIN_EXPORTERS = ("off", "memory", "jsonl", "text")

_REGISTRY: Dict[str, ExporterFactory] = {
    "off": NullExporter,
    "memory": InMemoryExporter,
    "jsonl": JsonlExporter,
    "text": TextSummaryExporter,
}


def register_exporter(
    name: str, factory: ExporterFactory, overwrite: bool = False
) -> ExporterFactory:
    """Register an exporter factory under ``name``; returns the factory."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"exporter name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ConfigurationError(
            f"exporter factory for {name!r} must be callable, got {type(factory).__name__}"
        )
    if name in BUILTIN_EXPORTERS:
        raise ConfigurationError(f"built-in exporter {name!r} cannot be replaced")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"exporter {name!r} already registered (pass overwrite=True)"
        )
    _REGISTRY[name] = factory
    return factory


def unregister_exporter(name: str) -> None:
    """Remove a registered exporter (primarily for test isolation)."""
    if name in BUILTIN_EXPORTERS:
        raise ConfigurationError(f"built-in exporter {name!r} cannot be removed")
    _REGISTRY.pop(name, None)


def available_exporters() -> Tuple[str, ...]:
    """Registered exporter names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_exporter(name: str) -> Exporter:
    """Instantiate the exporter registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown exporter {name!r}; expected one of {available_exporters()}"
        ) from None
    exporter = factory()
    if not isinstance(exporter, Exporter):
        raise ConfigurationError(
            f"exporter factory {name!r} returned {type(exporter).__name__}, "
            f"which is not an Exporter"
        )
    return exporter
