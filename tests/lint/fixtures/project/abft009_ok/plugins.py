"""Import-time registration in a plain module (ABFT009 stays quiet).

This module neither defines nor spawns process workers, so its
import-time registration runs exactly once, in the parent.
"""

from registry import register_scheme


class DenseScheme:
    pass


register_scheme("dense", DenseScheme)  # ok: parent-only module
