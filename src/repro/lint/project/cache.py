"""Content-hash incremental cache for project summaries.

The cache maps each file's display path to ``(sha256, module name,
summary)``.  A warm run reuses a cached summary — skipping the parse and
extraction — only when the file's content hash is unchanged **and** the
module is not a transitive reverse-import dependent of any changed file.
Dependents are re-extracted even though extraction is per-file pure; the
conservative policy keeps the cache safe if extraction ever grows
context-sensitive, and it is the contract CI's warm-run assertion pins.

The cache file (``.reprolint-cache.json``) is a build artifact, never
committed; a version bump or any decoding problem silently invalidates
it — a stale or corrupt cache must cost a re-analysis, not a crash.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Set, Tuple

#: Bump when the summary shape changes; old caches are discarded wholesale.
CACHE_VERSION = 2

#: Default cache filename, created next to the analysis root.
CACHE_FILENAME = ".reprolint-cache.json"


def file_digest(raw: bytes) -> str:
    """Content hash of one file's raw bytes."""
    return hashlib.sha256(raw).hexdigest()


class SummaryCache:
    """Load/store per-file summaries keyed by display path + content hash."""

    def __init__(self, entries: Optional[Dict[str, Dict[str, Any]]] = None) -> None:
        self._entries: Dict[str, Dict[str, Any]] = entries or {}

    @classmethod
    def load(cls, path: Optional[Path]) -> "SummaryCache":
        """Read a cache file; any problem yields an empty (cold) cache."""
        if path is None or not path.is_file():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return cls()
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return cls()
        files = payload.get("files")
        if not isinstance(files, dict):
            return cls()
        entries: Dict[str, Dict[str, Any]] = {}
        for display, entry in files.items():
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("sha256"), str)
                and isinstance(entry.get("module"), str)
                and isinstance(entry.get("summary"), dict)
            ):
                entries[display] = entry
        return cls(entries)

    def lookup(self, display_path: str, digest: str) -> Optional[Dict[str, Any]]:
        """Cached ``{"module", "summary"}`` when the content hash matches."""
        entry = self._entries.get(display_path)
        if entry is not None and entry["sha256"] == digest:
            return entry
        return None

    def store(
        self, display_path: str, digest: str, module: str, summary: Dict[str, Any]
    ) -> None:
        """Record one file's summary under its current content hash."""
        self._entries[display_path] = {
            "sha256": digest,
            "module": module,
            "summary": summary,
        }

    def prune(self, keep: Iterable[str]) -> None:
        """Drop entries for files no longer present in the tree."""
        alive = set(keep)
        for display in list(self._entries):
            if display not in alive:
                del self._entries[display]

    def save(self, path: Path) -> None:
        """Write the cache; IO failures are swallowed (cache is best-effort)."""
        payload = {"version": CACHE_VERSION, "files": self._entries}
        try:
            path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass


def reverse_dependents(
    module_deps: Mapping[str, Iterable[str]], changed: Set[str]
) -> Set[str]:
    """Transitive reverse-import closure of ``changed``.

    ``module_deps`` maps module -> modules it imports (project modules
    only).  Returns every module that imports a changed module, directly
    or through intermediaries — the set that must be re-analyzed even
    when its own content hash is unchanged.  ``changed`` itself is not
    included unless some changed module also imports another.
    """
    importers: Dict[str, Set[str]] = {}
    for module, deps in module_deps.items():
        for dep in deps:
            importers.setdefault(dep, set()).add(module)
    dependents: Set[str] = set()
    queue = list(changed)
    while queue:
        module = queue.pop()
        for importer in importers.get(module, ()):
            if importer not in dependents and importer not in changed:
                dependents.add(importer)
                queue.append(importer)
    return dependents


def match_prefixes(deps: Iterable[str], known_modules: Set[str]) -> Set[str]:
    """Map recorded import targets onto project modules.

    An import of ``repro.perf.plan.ProtectedPlan`` (``from ... import``
    records the full dotted target) must count as a dependency on
    ``repro.perf.plan``; the longest known-module prefix wins.
    """
    out: Set[str] = set()
    for dep in deps:
        parts = dep.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in known_modules:
                out.add(prefix)
                break
    return out


def plan_reuse(
    hashes: Mapping[str, Tuple[str, str]],
    cache: SummaryCache,
    summaries_deps: Mapping[str, Iterable[str]],
) -> Tuple[Set[str], Set[str]]:
    """Split files into (cache hits, must re-analyze) display-path sets.

    Args:
        hashes: display path -> ``(digest, module name)`` for every file
            in this run.
        cache: the loaded cache.
        summaries_deps: module -> imported project modules, covering both
            cached and freshly-extracted summaries.

    Returns:
        ``(hits, stale)`` — ``stale`` is changed files plus transitive
        reverse-import dependents of changed modules.
    """
    changed_modules: Set[str] = set()
    changed_files: Set[str] = set()
    for display, (digest, module) in hashes.items():
        if cache.lookup(display, digest) is None:
            changed_files.add(display)
            changed_modules.add(module)
    dependents = reverse_dependents(summaries_deps, changed_modules)
    stale = set(changed_files)
    for display, (_digest, module) in hashes.items():
        if module in dependents:
            stale.add(display)
    hits = set(hashes) - stale
    return hits, stale
