"""Variance-adaptive block-ABFT (``vabft``) — an extension scheme.

The paper's analytical bound (Section III-C) multiplies worst-case
norm products by the storage dtype's unit roundoff.  In double precision
the worst case is tolerable; in float32 (and emulated bfloat16) the
``(n_k + 2 b_s - 2)`` factors make the bound *orders of magnitude* looser
than the rounding noise an actual multiply produces — random rounding
errors grow like ``sqrt(n_k)``, not ``n_k`` — so small injected errors
slide underneath it undetected.

``vabft`` replaces the worst-case constant with a *measured* one, learned
online: a per-block Welford estimator tracks the mean and variance of the
scale-free clean-syndrome statistic ``|t1_k - t2_k| / beta`` and sets the
threshold

    tau_k(beta) = min(analytical_k,
                      max(floor_k, mean_k + k_sigma * std_k)) * beta

once a block has seen enough clean evaluations (``min_samples``); blocks
still warming up fall back to the analytical bound, so the scheme is
never *less* safe than the paper's.  The estimator feeds on the
detector's report hook — the same evaluation stream that drives the
``abft.syndrome_margin`` histogram and the near-miss hook, but observing
every clean block rather than only the near-miss tail — plus an optional
seeded warmup (clean synthetic multiplies at construction, mirroring
:class:`repro.core.calibration.EmpiricalBound`).

The scheme registers as ``"vabft"`` and is exercised by the same golden,
differential and campaign suites as every other builtin.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bounds import Bound
from repro.core.config import AbftConfig
from repro.core.detector import DetectionReport
from repro.core.protected import FaultTolerantSpMV
from repro.errors import ConfigurationError
from repro.kernels.base import ACCUMULATION_DTYPE
from repro.machine import Machine
from repro.sparse.csr import CsrMatrix

#: Threshold distance above the clean-syndrome mean, in standard
#: deviations.  Six sigma keeps the false-positive mass negligible for
#: anything remotely Gaussian while staying far tighter than the
#: worst-case analytical constants on narrow dtypes.
DEFAULT_K_SIGMA = 6.0

#: Clean observations a block needs before its adaptive threshold
#: activates; below this the analytical bound applies unchanged.
DEFAULT_MIN_SAMPLES = 4

#: Clean synthetic multiplies run at construction to seed the estimator.
DEFAULT_WARMUP = 16

#: Seed of the deterministic warmup operand stream.
WARMUP_SEED = 0x5AB1E


class SyndromeVarianceEstimator:
    """Per-block online mean/variance of the clean syndrome statistic.

    Observations are ``|syndrome| / beta`` — scale-free for a linear
    operator, so samples taken at different operand norms pool cleanly
    (the same normalization :class:`repro.core.calibration.EmpiricalBound`
    uses).  Welford's algorithm runs vectorized across blocks; partial
    updates (a subset of blocks) are supported for re-verification
    reports.
    """

    def __init__(self, n_blocks: int) -> None:
        if n_blocks < 0:
            raise ConfigurationError(f"n_blocks must be >= 0, got {n_blocks}")
        self.n_blocks = n_blocks
        self.counts = np.zeros(n_blocks, dtype=np.int64)
        self.means = np.zeros(n_blocks, dtype=ACCUMULATION_DTYPE)
        self._m2 = np.zeros(n_blocks, dtype=ACCUMULATION_DTYPE)

    def update(
        self, observations: np.ndarray, blocks: Optional[np.ndarray] = None
    ) -> None:
        """Fold one observation per block into the running statistics.

        ``blocks`` selects the rows being updated (None = all blocks, in
        order).  Non-finite observations are ignored — a corrupted beta
        or an inf syndrome must not poison the noise model.
        """
        observations = np.asarray(observations, dtype=ACCUMULATION_DTYPE)
        finite = np.isfinite(observations)
        if blocks is None:
            target = np.flatnonzero(finite)
            values = observations[finite]
        else:
            blocks = np.asarray(blocks, dtype=np.int64)
            target = blocks[finite]
            values = observations[finite]
        if target.size == 0:
            return
        counts = self.counts[target] + 1
        delta = values - self.means[target]
        means = self.means[target] + delta / counts
        self.counts[target] = counts
        self.means[target] = means
        self._m2[target] += delta * (values - means)

    def std(self, blocks: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-block standard deviation (0 until two samples arrive)."""
        counts = self.counts if blocks is None else self.counts[blocks]
        m2 = self._m2 if blocks is None else self._m2[blocks]
        out = np.zeros(counts.shape, dtype=ACCUMULATION_DTYPE)
        ready = counts >= 2
        np.divide(m2, counts, out=out, where=ready)
        return np.sqrt(out, out=out)

    def observe_report(self, report: DetectionReport, exceeded: np.ndarray) -> None:
        """Detector report hook: learn from the clean blocks of one check.

        Flagged blocks are excluded — their syndromes carry the error, not
        the rounding noise — and a zero or non-finite beta skips the whole
        report (the statistic is undefined there).
        """
        beta = report.beta
        if not np.isfinite(beta) or beta <= 0.0:
            return
        clean = ~np.asarray(exceeded, dtype=bool)
        if not clean.any():
            return
        with np.errstate(invalid="ignore", over="ignore"):
            observations = np.abs(report.syndrome[clean]) / beta
        self.update(observations, blocks=report.blocks[clean])


class VarianceAdaptiveBound:
    """Detector bound blending learned thresholds with the analytical one.

    Satisfies the :class:`repro.core.bounds.Bound` protocol.  For blocks
    with at least ``min_samples`` clean observations the threshold is
    ``min(analytical, max(floor, mean + k_sigma * std)) * beta`` — never
    looser than the paper's bound, and floored so an all-zero syndrome
    history cannot produce a zero threshold.  Blocks still warming up use
    the analytical threshold unchanged.

    Deliberately exposes **no** ``beta_coefficients``: the thresholds
    drift as the estimator learns, so planned execution
    (:class:`repro.perf.plan.ProtectedPlan`) evaluates them per call via
    its bound fallback instead of caching stale coefficients.
    """

    def __init__(
        self,
        estimator: SyndromeVarianceEstimator,
        analytical: Bound,
        floor: np.ndarray,
        k_sigma: float = DEFAULT_K_SIGMA,
        min_samples: int = DEFAULT_MIN_SAMPLES,
    ) -> None:
        if k_sigma <= 0:
            raise ConfigurationError(f"k_sigma must be positive, got {k_sigma}")
        if min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        self.estimator = estimator
        self.analytical = analytical
        self.floor = np.asarray(floor, dtype=ACCUMULATION_DTYPE)
        self.k_sigma = float(k_sigma)
        self.min_samples = int(min_samples)

    def adaptive_constants(
        self, blocks: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-block learned ``tau/beta`` factors (no analytical blend)."""
        estimator = self.estimator
        means = estimator.means if blocks is None else estimator.means[blocks]
        floor = self.floor if blocks is None else self.floor[blocks]
        learned = means + self.k_sigma * estimator.std(blocks)
        return np.maximum(learned, floor)

    def thresholds(
        self, beta: float, blocks: Optional[np.ndarray] = None
    ) -> np.ndarray:
        analytical = self.analytical.thresholds(beta, blocks)
        counts = (
            self.estimator.counts
            if blocks is None
            else self.estimator.counts[blocks]
        )
        ready = counts >= self.min_samples
        if not ready.any():
            return analytical
        with np.errstate(invalid="ignore", over="ignore"):
            adaptive = self.adaptive_constants(blocks) * beta
            blended = np.minimum(analytical, adaptive)
        return np.where(ready, blended, analytical)


class VarianceAdaptiveSpMV(FaultTolerantSpMV):
    """Block-ABFT with online variance-adaptive thresholds (``vabft``).

    Construction builds the ordinary detector (checksum matrix plus the
    dtype-policy-resolved analytical bound), then swaps in a
    :class:`VarianceAdaptiveBound` and wires the detector's report hook
    to the estimator.  ``warmup`` clean synthetic multiplies seed the
    noise model so adaptive thresholds are live from the first real call;
    the warmup runs through the checksum machinery only (no full SpMV
    result is retained) and its operand stream is deterministic.

    Args:
        matrix: the sparse input matrix ``A``.
        block_size / config / machine / telemetry / dtype: as for
            :class:`repro.core.protected.FaultTolerantSpMV`.
        k_sigma: threshold distance above the clean-syndrome mean.
        min_samples: clean observations before a block's adaptive
            threshold activates.
        warmup: seeded clean multiplies at construction (0 disables).
    """

    name = "vabft"

    def __init__(
        self,
        matrix: CsrMatrix,
        block_size: Optional[int] = None,
        config: Optional[AbftConfig] = None,
        machine: Optional[Machine] = None,
        telemetry: object = None,
        dtype: object = None,
        k_sigma: float = DEFAULT_K_SIGMA,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        warmup: int = DEFAULT_WARMUP,
    ) -> None:
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        super().__init__(
            matrix,
            block_size=block_size,
            config=config,
            machine=machine,
            telemetry=telemetry,
            dtype=dtype,
        )
        detector = self.detector
        checksum = detector.checksum
        self.estimator = SyndromeVarianceEstimator(detector.n_blocks)
        # Floor: a few ulps of the block's checksum magnitude in the
        # storage dtype's epsilon — the same guard EmpiricalBound uses
        # against brittle exact-zero thresholds.
        floor = detector.epsilon * np.maximum(checksum.checksum_norms, 1.0)
        self.adaptive_bound = VarianceAdaptiveBound(
            self.estimator,
            detector.bound,
            floor,
            k_sigma=k_sigma,
            min_samples=min_samples,
        )
        detector.bound = self.adaptive_bound
        detector.report_hook = self.estimator.observe_report
        self.warmup = int(warmup)
        if self.warmup:
            self._run_warmup(self.warmup)

    def _run_warmup(self, samples: int) -> None:
        """Seed the estimator with clean synthetic syndrome observations.

        Mirrors :meth:`repro.core.calibration.EmpiricalBound.calibrate`:
        deterministic operands spanning several magnitude decades, one
        checksum-pair evaluation each.  Statistics flow through
        :meth:`SyndromeVarianceEstimator.update` directly rather than the
        report hook so warmup never touches detection telemetry.
        """
        detector = self.detector
        matrix = detector.matrix
        checksum = detector.checksum
        rng = np.random.default_rng(WARMUP_SEED)
        with detector.telemetry.span("vabft.warmup", samples=samples):
            for _ in range(samples):
                b = np.asarray(
                    rng.standard_normal(matrix.n_cols)
                    * 10.0 ** rng.integers(-3, 4),
                    dtype=matrix.data.dtype,
                )
                beta = detector.operand_norm(b)
                # reprolint: disable=ABFT003 -- skip degenerate samples: only
                # an identically zero operand makes |s|/beta undefined
                if not np.isfinite(beta) or beta == 0.0:
                    continue
                r = matrix.matvec(b)
                with np.errstate(invalid="ignore", over="ignore"):
                    syndrome = checksum.operand_checksums(
                        b
                    ) - checksum.result_checksums(r, kernel=detector.kernels)
                    self.estimator.update(np.abs(syndrome) / beta)
