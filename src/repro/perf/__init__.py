"""repro.perf — planned, shard-parallel execution for the protected SpMV.

The paper's overhead argument assumes the detection stream rides along a
well-executed SpMV; this package makes the *execution* side real:

* :func:`balanced_cuts` / :func:`shard_rows` / :func:`shard_blocks` —
  nnz-balanced (not row-count-balanced) contiguous shard boundaries,
  optionally aligned to checksum-block starts so a block never straddles
  a shard;
* :class:`SpmvPlan` — a reusable execution plan for ``y = A b`` on a
  fixed matrix: per-shard index/scratch views are precomputed once and
  every :meth:`SpmvPlan.execute` reuses them, performing no new array
  allocations;
* :class:`ProtectedPlan` — the planned protected multiply: for a fixed
  ``(matrix, partition, checksum)`` triple the steady-state loop (SpMV,
  operand/result checksums, bound, syndrome compare) runs entirely in
  preallocated buffers, and with a ``parallel`` kernel backend each
  shard fuses its multiply with its own detection and first correction
  round.

Plans are built via :meth:`repro.core.FaultTolerantSpMV.planned`, which
caches one plan per operator (``plan.cache_hits`` telemetry counter).
"""

from repro.perf.plan import ProtectedPlan, SpmvPlan
from repro.perf.sharding import balanced_cuts, shard_blocks, shard_rows

__all__ = [
    "SpmvPlan",
    "ProtectedPlan",
    "balanced_cuts",
    "shard_blocks",
    "shard_rows",
]
