"""Committed-baseline support: pre-existing findings warn, new ones fail.

The baseline is a JSON document mapping finding fingerprints (line-number
independent, see :mod:`repro.lint.findings`) to a human-readable record::

    {
      "version": 1,
      "findings": {
        "<fingerprint>": {"rule": "ABFT003", "path": "...", "snippet": "..."}
      }
    }

Policy (enforced by CI): the baseline grandfathers findings that predate
the analyzer; *deliberately kept* code gets an inline suppression with a
reason instead, so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, fingerprint_all

#: Bump when the baseline layout changes incompatibly.
BASELINE_VERSION = 1

#: Conventional baseline filename at the repository root.
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"


@dataclass
class BaselineComparison:
    """Split of a run's findings against a baseline."""

    new: List[Finding] = field(default_factory=list)
    known: List[Finding] = field(default_factory=list)
    #: Baseline fingerprints no longer observed (candidates for removal).
    stale: List[str] = field(default_factory=list)


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialize ``findings`` as a deterministic baseline document."""
    records: Dict[str, Dict[str, object]] = {}
    for finding, print_ in fingerprint_all(findings):
        records[print_] = {
            "rule": finding.rule,
            "path": finding.path,
            "snippet": finding.snippet,
        }
    document = {"version": BASELINE_VERSION, "findings": records}
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the baseline for ``findings`` to ``path``."""
    path.write_text(render_baseline(findings), encoding="utf-8")


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """Load a baseline document; a missing file is an empty baseline.

    Raises:
        ConfigurationError: malformed documents or newer versions.
    """
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ConfigurationError(f"baseline {path} is not a baseline document")
    version = payload.get("version", 0)
    if not isinstance(version, int) or version > BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has version {version!r}, supported {BASELINE_VERSION}"
        )
    findings = payload["findings"]
    if not isinstance(findings, dict):
        raise ConfigurationError(f"baseline {path}: 'findings' must be an object")
    return findings


def compare_with_baseline(
    findings: Sequence[Finding], baseline: Dict[str, Dict[str, object]]
) -> BaselineComparison:
    """Partition ``findings`` into new vs. baseline-covered."""
    comparison = BaselineComparison()
    observed: set[str] = set()
    for finding, print_ in fingerprint_all(findings):
        if print_ in baseline:
            observed.add(print_)
            comparison.known.append(finding)
        else:
            comparison.new.append(finding)
    comparison.stale = sorted(set(baseline) - observed)
    return comparison


def find_default_baseline(start: Path) -> Tuple[Path, bool]:
    """Locate :data:`DEFAULT_BASELINE_NAME` from ``start`` upward.

    Returns ``(path, exists)``; when no ancestor holds a baseline the
    conventional path next to ``start`` is returned with ``exists=False``.
    """
    start = start.resolve()
    candidates = [start, *start.parents] if start.is_dir() else list(start.parents)
    for directory in candidates:
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.exists():
            return candidate, True
    return (candidates[0] if candidates else start) / DEFAULT_BASELINE_NAME, False
