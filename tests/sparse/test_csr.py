"""Unit tests for the CSR format and its kernels."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CooMatrix, CsrMatrix


@pytest.fixture
def paper_matrix() -> CsrMatrix:
    """The 6x6 example matrix from Section III-B of the paper."""
    dense = np.array(
        [
            [5.0, 0.0, 0.0, 4.0, 0.0, 0.0],
            [0.0, 3.0, 0.0, 0.0, 0.0, 2.0],
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [4.0, 0.0, 0.0, 6.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 8.0, 0.0],
            [0.0, 2.0, 0.0, 0.0, 0.0, 7.0],
        ]
    )
    return CooMatrix.from_dense(dense).to_csr()


def test_matvec_matches_dense(paper_matrix):
    b = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    np.testing.assert_allclose(paper_matrix.matvec(b), paper_matrix.to_dense() @ b)


def test_matmul_operator(paper_matrix):
    b = np.ones(6)
    np.testing.assert_allclose(paper_matrix @ b, paper_matrix.matvec(b))


def test_matvec_with_empty_rows():
    csr = CooMatrix.from_entries((4, 4), [(1, 1, 2.0), (3, 0, 1.0)]).to_csr()
    b = np.array([10.0, 20.0, 30.0, 40.0])
    np.testing.assert_array_equal(csr.matvec(b), [0.0, 40.0, 0.0, 10.0])


def test_matvec_on_all_zero_matrix():
    csr = CooMatrix.from_entries((3, 3), []).to_csr()
    np.testing.assert_array_equal(csr.matvec(np.ones(3)), np.zeros(3))


def test_matvec_rejects_wrong_operand_shape(paper_matrix):
    with pytest.raises(ShapeMismatchError):
        paper_matrix.matvec(np.ones(5))


def test_matvec_rows_equals_slice_of_full_product(paper_matrix):
    b = np.array([1.0, -1.0, 2.0, 0.5, 3.0, -2.0])
    full = paper_matrix.matvec(b)
    for start, stop in [(0, 2), (2, 4), (4, 6), (0, 6), (3, 3)]:
        np.testing.assert_allclose(
            paper_matrix.matvec_rows(start, stop, b), full[start:stop]
        )


def test_matvec_rows_rejects_bad_range(paper_matrix):
    with pytest.raises(ShapeMismatchError):
        paper_matrix.matvec_rows(4, 2, np.ones(6))
    with pytest.raises(ShapeMismatchError):
        paper_matrix.matvec_rows(0, 7, np.ones(6))


def test_rmatvec_matches_dense_transpose(paper_matrix):
    w = np.array([1.0, 2.0, 0.0, -1.0, 0.5, 1.0])
    np.testing.assert_allclose(paper_matrix.rmatvec(w), paper_matrix.to_dense().T @ w)


def test_row_norms(paper_matrix):
    dense = paper_matrix.to_dense()
    np.testing.assert_allclose(paper_matrix.row_norms(), np.linalg.norm(dense, axis=1))


def test_diagonal(paper_matrix):
    np.testing.assert_array_equal(
        paper_matrix.diagonal(), np.diag(paper_matrix.to_dense())
    )


def test_diagonal_rectangular():
    csr = CooMatrix.from_entries((2, 4), [(0, 0, 3.0), (1, 1, 4.0), (1, 3, 9.0)]).to_csr()
    np.testing.assert_array_equal(csr.diagonal(), [3.0, 4.0])


def test_nonempty_columns(paper_matrix):
    # Block of rows 0-1 touches columns 0, 1, 3, 5 (cf. the paper's Figure 2 idea).
    np.testing.assert_array_equal(paper_matrix.nonempty_columns(0, 2), [0, 1, 3, 5])
    np.testing.assert_array_equal(paper_matrix.nonempty_columns(2, 4), [0, 2, 3])
    np.testing.assert_array_equal(paper_matrix.nonempty_columns(4, 6), [1, 4, 5])


def test_nnz_in_rows(paper_matrix):
    assert paper_matrix.nnz_in_rows(0, 2) == 4
    assert paper_matrix.nnz_in_rows(0, 6) == paper_matrix.nnz
    assert paper_matrix.nnz_in_rows(2, 2) == 0


def test_row_slice_matches_dense(paper_matrix):
    sliced = paper_matrix.row_slice(1, 4)
    np.testing.assert_array_equal(sliced.to_dense(), paper_matrix.to_dense()[1:4])


def test_transpose_round_trip(paper_matrix):
    np.testing.assert_array_equal(
        paper_matrix.transpose().to_dense(), paper_matrix.to_dense().T
    )


def test_is_symmetric(paper_matrix):
    assert paper_matrix.is_symmetric()
    asym = CooMatrix.from_entries((2, 2), [(0, 1, 1.0)]).to_csr()
    assert not asym.is_symmetric()


def test_is_symmetric_false_for_rectangular():
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    assert not rect.is_symmetric()


def test_scaled(paper_matrix):
    np.testing.assert_array_equal(
        paper_matrix.scaled(2.0).to_dense(), 2.0 * paper_matrix.to_dense()
    )


def test_with_data_replaces_values(paper_matrix):
    ones = paper_matrix.with_data(np.ones(paper_matrix.nnz))
    assert ones.to_dense().sum() == paper_matrix.nnz


def test_with_data_rejects_wrong_length(paper_matrix):
    with pytest.raises(ShapeMismatchError):
        paper_matrix.with_data(np.ones(paper_matrix.nnz + 1))


def test_equality(paper_matrix):
    clone = CsrMatrix(
        paper_matrix.shape,
        paper_matrix.indptr.copy(),
        paper_matrix.indices.copy(),
        paper_matrix.data.copy(),
    )
    assert clone == paper_matrix
    assert paper_matrix.scaled(2.0) != paper_matrix


def test_not_hashable(paper_matrix):
    with pytest.raises(TypeError):
        hash(paper_matrix)


def test_density(paper_matrix):
    assert paper_matrix.density == pytest.approx(paper_matrix.nnz / 36)


def test_validation_rejects_bad_indptr():
    with pytest.raises(SparseFormatError):
        CsrMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(SparseFormatError):
        CsrMatrix((2, 2), np.array([1, 1, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(SparseFormatError):
        CsrMatrix((2, 2), np.array([0, 2, 1]), np.array([0]), np.array([1.0]))


def test_validation_rejects_bad_column_index():
    with pytest.raises(SparseFormatError):
        CsrMatrix((2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0]))


def test_entry_rows(paper_matrix):
    rows = paper_matrix.entry_rows()
    dense = paper_matrix.to_dense()
    for entry_idx in range(paper_matrix.nnz):
        i = rows[entry_idx]
        j = paper_matrix.indices[entry_idx]
        assert dense[i, j] == paper_matrix.data[entry_idx]


def test_row_lengths_cached_and_frozen(paper_matrix):
    lengths = paper_matrix.row_lengths()
    np.testing.assert_array_equal(lengths, np.diff(paper_matrix.indptr))
    # Cached: repeated calls return the same array object.
    assert paper_matrix.row_lengths() is lengths
    # Frozen: the cache is shared, so writing through it must fail.
    assert not lengths.flags.writeable
    with pytest.raises(ValueError):
        lengths[0] = 99


def test_matvec_buffered_bit_identical(paper_matrix):
    b = np.array([1.0, -2.0, 3.0, 0.5, -1.5, 6.0])
    expected = paper_matrix.matvec(b)
    out = np.full(paper_matrix.n_rows, np.nan)
    workspace = np.full(paper_matrix.nnz, np.nan)
    result = paper_matrix.matvec(b, out=out, workspace=workspace)
    assert result is out
    np.testing.assert_array_equal(result, expected)


def test_matvec_rows_buffered_bit_identical(paper_matrix):
    b = np.array([1.0, -2.0, 3.0, 0.5, -1.5, 6.0])
    for start, stop in [(0, 3), (2, 6), (0, 6)]:
        expected = paper_matrix.matvec_rows(start, stop, b)
        out = np.full(stop - start, np.nan)
        workspace = np.full(paper_matrix.nnz, np.nan)
        result = paper_matrix.matvec_rows(start, stop, b, out=out, workspace=workspace)
        assert result is out
        np.testing.assert_array_equal(result, expected)
