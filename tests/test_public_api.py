"""Public-API surface tests: everything advertised must import and exist."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sparse",
    "repro.kernels",
    "repro.machine",
    "repro.faults",
    "repro.core",
    "repro.schemes",
    "repro.baselines",
    "repro.solvers",
    "repro.analysis",
    "repro.apps",
    "repro.obs",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_top_level_quickstart_symbols():
    # The README quickstart must keep working.
    assert callable(repro.suite_matrix)
    assert callable(repro.FaultTolerantSpMV)


def test_error_hierarchy_rooted():
    from repro import (
        ConfigurationError,
        ConvergenceError,
        InjectionError,
        ReproError,
        SchedulerError,
        ShapeMismatchError,
        SingularMatrixError,
        SparseFormatError,
    )

    for exc in (
        SparseFormatError,
        ShapeMismatchError,
        SingularMatrixError,
        ConvergenceError,
        SchedulerError,
        InjectionError,
        ConfigurationError,
    ):
        assert issubclass(exc, ReproError)


def test_module_docstrings_present():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__) > 40, package_name


def test_public_callables_documented():
    """Every public class/function carries a docstring."""
    import inspect

    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"
