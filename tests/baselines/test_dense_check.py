"""Unit tests for the dense-check baseline."""

import numpy as np
import pytest

from repro.baselines import DenseChecksum
from repro.sparse import random_spd


@pytest.fixture
def setup():
    a = random_spd(200, 2000, seed=31)
    rng = np.random.default_rng(31)
    return a, DenseChecksum(a), rng.standard_normal(200)


def test_checksum_vector_is_column_sums(setup):
    a, checker, _ = setup
    np.testing.assert_allclose(
        checker.checksum_vector, a.to_dense().sum(axis=0), rtol=1e-12
    )


def test_clean_multiply_passes(setup):
    a, checker, b = setup
    report = checker.check(b, a.matvec(b))
    assert not report.detected
    assert abs(report.syndrome) < report.threshold


def test_large_error_detected_without_location(setup):
    a, checker, b = setup
    r = a.matvec(b)
    r[77] += 10.0 * checker.threshold(b)
    report = checker.check(b, r)
    assert report.detected  # but nothing in the report says *where*


def test_small_error_missed_by_norm_bound(setup):
    """The ||b||_2 bound is loose: errors below it pass silently — the
    coverage weakness Figure 7 quantifies."""
    a, checker, b = setup
    r = a.matvec(b)
    r[10] += 0.01  # far above rounding error, far below ||b||_2
    report = checker.check(b, r)
    assert not report.detected


def test_nonfinite_result_detected(setup):
    a, checker, b = setup
    r = a.matvec(b)
    r[0] = np.nan
    assert checker.check(b, r).detected


def test_tamper_hooks_fire_in_order(setup):
    a, checker, b = setup
    stages = []
    checker.check(b, a.matvec(b), tamper=lambda s, d, w: stages.append(s))
    assert stages == ["t1", "t2", "beta"]


def test_corrupted_threshold_can_mask(setup):
    a, checker, b = setup
    r = a.matvec(b)
    r[0] += 10.0 * checker.threshold(b)

    def hook(stage, data, work):
        if stage == "beta":
            data[0] = np.inf

    assert not checker.check(b, r, tamper=hook).detected


def test_detection_graph_structure(setup):
    _, checker, _ = setup
    graph = checker.detection_graph()
    names = {t.name for t in graph.tasks()}
    assert names == {"spmv", "cb", "beta", "wr"}
    assert set(graph["wr"].deps) == {"spmv", "cb", "beta"}
    assert "spmv" not in checker.detection_graph(include_spmv=False)


def test_dense_check_costlier_than_block_check(setup):
    """On the simulated device the dense check's blocking reductions make
    detection slower than the proposed fused block check — the Figure 5
    relationship."""
    from repro.core import BlockAbftDetector
    from repro.machine import Machine

    a, checker, _ = setup
    machine = Machine()
    dense_time = machine.makespan(checker.detection_graph())
    block_time = machine.makespan(BlockAbftDetector(a).detection_graph())
    assert block_time < dense_time
