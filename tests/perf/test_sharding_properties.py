"""Property-based tests (hypothesis) for nnz-balanced sharding.

The fused parallel pipeline stands on three structural invariants of
:mod:`repro.perf.sharding`:

* cuts partition the unit range exactly — disjoint, covering, strictly
  increasing;
* when the requested shard count survives, per-shard work stays within
  the documented bound ``total / n_shards + max_unit`` (the ideal share
  plus one indivisible unit — see :func:`repro.perf.sharding.balanced_cuts`);
* degenerate inputs (empty rows, all-empty matrices, a single shard,
  more shards than rows or blocks) plan without error, and the derived
  :class:`~repro.perf.plan.SpmvPlan` still reproduces ``matvec`` bit for
  bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import BlockPartition
from repro.perf import SpmvPlan, balanced_cuts, shard_blocks, shard_rows
from repro.perf.sharding import row_work
from repro.sparse import CooMatrix


@st.composite
def indptrs(draw, max_rows=64, max_row_nnz=20):
    """A CSR indptr with arbitrary (possibly empty, possibly all-empty) rows."""
    n_rows = draw(st.integers(0, max_rows))
    lengths = draw(
        st.lists(st.integers(0, max_row_nnz), min_size=n_rows, max_size=n_rows)
    )
    return np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)))


@st.composite
def csr_matrices(draw, max_dim=24, max_entries=120):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    n_entries = draw(st.integers(0, max_entries))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=n_entries, max_size=n_entries)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=n_entries, max_size=n_entries)
    )
    finite = st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    vals = draw(st.lists(finite, min_size=n_entries, max_size=n_entries))
    return CooMatrix(
        (n_rows, n_cols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    ).to_csr()


# ----------------------------------------------------------------------
# Partition exactness
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(indptr=indptrs(), n_shards=st.integers(1, 12))
def test_row_cuts_partition_rows_exactly(indptr, n_shards):
    n_rows = indptr.size - 1
    cuts = shard_rows(indptr, n_shards)
    assert cuts.dtype == np.int64
    assert cuts[0] == 0
    assert cuts[-1] == n_rows or (n_rows == 0 and cuts.size == 1)
    assert np.all(np.diff(cuts) > 0)
    assert cuts.size <= n_shards + 1
    # Disjoint + covering: the spans concatenate back to range(n_rows).
    spans = [np.arange(cuts[i], cuts[i + 1]) for i in range(cuts.size - 1)]
    recovered = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(recovered, np.arange(n_rows))


@settings(max_examples=100, deadline=None)
@given(
    indptr=indptrs(),
    block_size=st.integers(1, 17),
    n_shards=st.integers(1, 12),
)
def test_block_cuts_partition_blocks_and_land_on_block_starts(
    indptr, block_size, n_shards
):
    n_rows = indptr.size - 1
    partition = BlockPartition(n_rows=n_rows, block_size=block_size)
    block_starts = partition.block_starts()
    cuts = shard_blocks(indptr, block_starts, n_shards)
    n_blocks = partition.n_blocks
    assert cuts[0] == 0
    assert cuts[-1] == n_blocks or (n_blocks == 0 and cuts.size == 1)
    assert np.all(np.diff(cuts) > 0)
    # Every shard boundary is a block start — a block never straddles
    # two shards, the property the fused detect/correct relies on.
    row_cuts = block_starts[cuts]
    assert np.all(np.isin(row_cuts, block_starts))
    spans = [np.arange(cuts[i], cuts[i + 1]) for i in range(cuts.size - 1)]
    recovered = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(recovered, np.arange(n_blocks))


# ----------------------------------------------------------------------
# Documented imbalance bound
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(indptr=indptrs(max_rows=200, max_row_nnz=40), n_shards=st.integers(1, 16))
def test_shard_work_within_documented_bound(indptr, n_shards):
    """When all requested cuts survive, every shard's work stays at or
    below ``total / n_shards + max_unit`` (see ``balanced_cuts``)."""
    work = row_work(indptr)
    cuts = balanced_cuts(work, n_shards)
    if cuts.size != n_shards + 1:
        return  # merged cuts: covered by the partition-exactness tests
    shard_work = np.diff(work[cuts])
    total = float(work[-1] - work[0])
    max_unit = float(np.diff(work).max())
    assert shard_work.max() <= total / n_shards + max_unit + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    indptr=indptrs(max_rows=150, max_row_nnz=30),
    block_size=st.integers(1, 9),
    n_shards=st.integers(1, 8),
)
def test_block_shard_work_within_documented_bound(indptr, block_size, n_shards):
    """Block-aligned cuts obey the same bound with one *block* as the
    indivisible unit."""
    n_rows = indptr.size - 1
    partition = BlockPartition(n_rows=n_rows, block_size=block_size)
    block_starts = partition.block_starts()
    block_work = row_work(indptr)[block_starts]
    cuts = shard_blocks(indptr, block_starts, n_shards)
    if cuts.size != n_shards + 1:
        return
    shard_work = np.diff(block_work[cuts])
    total = float(block_work[-1] - block_work[0])
    max_unit = float(np.diff(block_work).max())
    assert shard_work.max() <= total / n_shards + max_unit + 1e-9


# ----------------------------------------------------------------------
# Degenerate inputs plan without error (and still compute correctly)
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(matrix=csr_matrices(), n_shards=st.integers(1, 40))
def test_degenerate_inputs_plan_and_match_matvec(matrix, n_shards):
    """Empty rows, all-empty matrices and shard counts far above the row
    count must all plan cleanly and reproduce ``matvec`` bit for bit."""
    plan = SpmvPlan(matrix, n_shards=n_shards)
    assert 1 <= plan.n_shards <= min(n_shards, max(1, matrix.n_rows))
    rng = np.random.default_rng(matrix.nnz + matrix.n_rows)
    b = rng.standard_normal(matrix.n_cols)
    np.testing.assert_array_equal(plan.execute(b), matrix.matvec(b))


def test_more_shards_than_rows_or_blocks():
    indptr = np.array([0, 2, 2, 5], dtype=np.int64)  # 3 rows, one empty
    cuts = shard_rows(indptr, 100)
    assert cuts[0] == 0 and cuts[-1] == 3 and np.all(np.diff(cuts) > 0)
    partition = BlockPartition(n_rows=3, block_size=2)
    bcuts = shard_blocks(indptr, partition.block_starts(), 100)
    assert bcuts[0] == 0 and bcuts[-1] == partition.n_blocks


def test_all_empty_rows_single_span():
    indptr = np.zeros(11, dtype=np.int64)  # 10 rows, zero nnz
    cuts = shard_rows(indptr, 4)
    assert cuts[0] == 0 and cuts[-1] == 10 and np.all(np.diff(cuts) > 0)
