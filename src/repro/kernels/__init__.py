"""Named, registry-dispatched implementations of the ABFT hot-path kernels.

Registry entries are keyed ``(sparse_format, impl)``.  For the CSR home
format three impls ship built in:

* ``"naive"`` — the reference per-block Python loops;
* ``"vectorized"`` — batched segment-sum versions of the same kernels
  (the default);
* ``"parallel"`` — the vectorized kernels sharded nnz-balanced across a
  thread pool (bit-identical results; worker count via
  ``REPRO_KERNEL_WORKERS``).

The ``"bsr"`` and ``"ell"`` formats each ship ``"naive"`` and
``"vectorized"`` sets whose recompute kernels replay the format's own
multiply pipeline (see :mod:`repro.kernels.bsr` / :mod:`repro.kernels.ell`).

Selection: the impl axis via ``AbftConfig(kernel="...")`` (or the
``kernel=`` argument the core entry points accept), overridden
process-wide by the ``REPRO_KERNELS`` environment variable; the format
axis via ``AbftConfig(sparse_format="...")`` / ``REPRO_FORMAT``, resolved
by :mod:`repro.sparse.formats` and passed as ``sparse_format`` by
format-aware callers.  ``tests/kernels`` differentially tests every
registered pair over a corpus of edge-case matrices.
"""

from repro.kernels.base import (
    BUILTIN_KERNEL_KEYS,
    BUILTIN_KERNELS,
    DEFAULT_KERNEL,
    DEFAULT_KERNEL_FORMAT,
    KERNEL_ENV_VAR,
    KernelSet,
    available_kernel_keys,
    available_kernels,
    flat_segment_indices,
    get_kernels,
    register_kernels,
    resolve_kernels,
    segment_sums,
    unregister_kernels,
    validate_blocks,
)
from repro.kernels.bsr import BsrNaiveKernels, BsrVectorizedKernels
from repro.kernels.ell import EllNaiveKernels, EllVectorizedKernels
from repro.kernels.naive import NaiveKernels
from repro.kernels.parallel import ParallelKernels
from repro.kernels.vectorized import VectorizedKernels

register_kernels(NaiveKernels())
register_kernels(VectorizedKernels())
register_kernels(ParallelKernels())
register_kernels(BsrNaiveKernels())
register_kernels(BsrVectorizedKernels())
register_kernels(EllNaiveKernels())
register_kernels(EllVectorizedKernels())

__all__ = [
    "BUILTIN_KERNELS",
    "BUILTIN_KERNEL_KEYS",
    "DEFAULT_KERNEL",
    "DEFAULT_KERNEL_FORMAT",
    "KERNEL_ENV_VAR",
    "KernelSet",
    "NaiveKernels",
    "ParallelKernels",
    "VectorizedKernels",
    "BsrNaiveKernels",
    "BsrVectorizedKernels",
    "EllNaiveKernels",
    "EllVectorizedKernels",
    "available_kernels",
    "available_kernel_keys",
    "get_kernels",
    "register_kernels",
    "unregister_kernels",
    "resolve_kernels",
    "flat_segment_indices",
    "segment_sums",
    "validate_blocks",
]
