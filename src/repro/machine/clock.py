"""Execution accounting: simulated time and arithmetic-operation counts.

The fault-tolerance drivers execute numerics eagerly (NumPy) while charging
their cost to an :class:`ExecutionMeter`.  The meter accumulates

* ``seconds`` — simulated wall-clock from the machine model (makespans of
  scheduled task graphs, or solo kernel durations), and
* ``flops`` — arithmetic operations, the time base of the paper's error
  process (λ is "the probability that an arbitrary arithmetic operation
  will return an erroneous result", Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.costs import KernelCost
from repro.machine.graph import TaskGraph
from repro.machine.params import DeviceParams
from repro.machine.scheduler import Machine


@dataclass
class ExecutionMeter:
    """Accumulates simulated seconds and arithmetic operations.

    Attributes:
        machine: the simulated device used to time task graphs.
        seconds: simulated elapsed time so far.
        flops: arithmetic operations executed so far.
    """

    machine: Machine = field(default_factory=Machine)
    seconds: float = 0.0
    flops: float = 0.0

    @property
    def params(self) -> DeviceParams:
        return self.machine.params

    def advance(self, seconds: float, flops: float = 0.0) -> None:
        """Charge raw time (and optionally operations)."""
        if seconds < 0 or flops < 0:
            raise ConfigurationError(
                f"cannot advance by negative amounts ({seconds}s, {flops} flops)"
            )
        self.seconds += seconds
        self.flops += flops

    def run_graph(self, graph: TaskGraph) -> float:
        """Schedule a task graph, charge its makespan and work; return makespan."""
        makespan = self.machine.makespan(graph)
        self.advance(makespan, graph.total_work())
        return makespan

    def run_kernel(self, cost: KernelCost) -> float:
        """Charge one kernel executed alone on the device; return its duration."""
        params = self.params
        duration = params.launch_overhead + max(
            cost.work / params.throughput, cost.span * params.sync_time
        )
        self.advance(duration, cost.work)
        return duration

    def fork(self) -> "ExecutionMeter":
        """A fresh meter on the same machine (for what-if measurements)."""
        return ExecutionMeter(machine=self.machine)

    def snapshot(self) -> tuple[float, float]:
        """Current ``(seconds, flops)`` pair."""
        return self.seconds, self.flops
