"""Cross-module linking: symbol table, call graph, and reachability.

:class:`ProjectContext` takes the per-file summaries produced by
:mod:`repro.lint.project.summary` and gives project rules the linked
view: resolve a call site to the function it names (following imports,
re-exports, ``self`` dispatch, and attribute/local types), walk callers
and callees, compute which functions are spawned onto threads or worker
processes, and run the checksum-refresh fixpoint.

Resolution is deliberately *bounded*: it tracks only the type evidence
the summaries record (constructor assignments, annotations, return-ctor
inference) and returns nothing rather than guess.  Rules built on top
therefore under-approximate the call graph — they may miss exotic
dispatch, but what they do resolve is trustworthy enough to gate CI on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding

#: A function's project-wide identity: ``(module name, qualname)`` where
#: qualname is ``"func"`` or ``"Class.method"``.
FuncId = Tuple[str, str]

#: A class's project-wide identity: ``(module name, class name)``.
ClassId = Tuple[str, str]

#: Resolution result: ``(kind, module, name)`` with kind in
#: ``{"module", "class", "func"}``.
Symbol = Tuple[str, str, str]

#: Synthetic function summary used when resolving module-level call sites.
_MODULE_SCOPE: Dict[str, Any] = {
    "class": None,
    "param_types": {},
    "local_types": {},
    "local_calls": {},
}


class ModuleRecord:
    """One analyzed file: its summary plus lazily-loaded source lines.

    Warm (cache-hit) files are never re-parsed; their source is read back
    only if a finding needs a snippet or a suppression check.
    """

    def __init__(
        self,
        name: str,
        path: Path,
        display_path: str,
        summary: Dict[str, Any],
        from_cache: bool = False,
    ) -> None:
        self.name = name
        self.path = path
        self.display_path = display_path
        self.summary = summary
        self.from_cache = from_cache
        self._lines: Optional[List[str]] = None

    def lines(self) -> List[str]:
        """Source lines, read lazily (empty when the file vanished)."""
        if self._lines is None:
            try:
                self._lines = self.path.read_text(encoding="utf-8").splitlines()
            except (OSError, UnicodeDecodeError):
                self._lines = []
        return self._lines

    def snippet(self, line: int) -> str:
        """Stripped source text of a 1-based line (empty when out of range)."""
        lines = self.lines()
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""


class ProjectContext:
    """The linked whole-project view handed to :class:`ProjectRule`\\ s."""

    def __init__(self, records: Dict[str, ModuleRecord]) -> None:
        self.records = records
        self.functions: Dict[FuncId, Dict[str, Any]] = {}
        self.classes: Dict[ClassId, Dict[str, Any]] = {}
        self._class_index: Dict[str, List[ClassId]] = {}
        for name, record in records.items():
            for qual, fn in record.summary["functions"].items():
                self.functions[(name, qual)] = fn
            for cls, info in record.summary["classes"].items():
                self.classes[(name, cls)] = info
                self._class_index.setdefault(cls, []).append((name, cls))
        self._callee_cache: Dict[FuncId, FrozenSet[FuncId]] = {}
        self._callers: Optional[Dict[FuncId, Set[FuncId]]] = None
        self._refreshing: Optional[FrozenSet[FuncId]] = None
        self._spawns: Optional[List[Dict[str, Any]]] = None

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def resolve_symbol(
        self, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Symbol]:
        """Resolve an absolute dotted path to a module, class, or function.

        Follows re-exports: ``repro.perf.Arena`` resolves through
        ``repro/perf/__init__.py``'s import table to the defining module.
        """
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.records:
                continue
            rest = parts[cut:]
            if not rest:
                return ("module", prefix, "")
            if len(rest) == 1:
                name = rest[0]
                if (prefix, name) in self.functions:
                    return ("func", prefix, name)
                if (prefix, name) in self.classes:
                    return ("class", prefix, name)
                target = self.records[prefix].summary["imports"].get(name)
                if target:
                    return self.resolve_symbol(target, seen)
                return None
            if len(rest) == 2:
                cls, method = rest
                if (prefix, cls) in self.classes:
                    fid = self.method_on_class((prefix, cls), method)
                    if fid is not None:
                        return ("func", fid[0], fid[1])
                    return None
                target = self.records[prefix].summary["imports"].get(cls)
                if target:
                    return self.resolve_symbol(f"{target}.{method}", seen)
            return None
        return None

    def lookup_class(self, module: str, name: str) -> Optional[ClassId]:
        """Find the class ``name`` names inside ``module``'s scope.

        Tries the module's own classes, then its import table, then —
        as a last resort — a project-unique class of that name.
        """
        if (module, name) in self.classes:
            return (module, name)
        record = self.records.get(module)
        if record is not None:
            target = record.summary["imports"].get(name)
            if target:
                resolved = self.resolve_symbol(target)
                if resolved is not None and resolved[0] == "class":
                    return (resolved[1], resolved[2])
        candidates = self._class_index.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def method_on_class(self, cid: ClassId, method_name: str) -> Optional[FuncId]:
        """Resolve a method on a class, walking base classes in MRO-ish order."""
        seen: Set[ClassId] = set()
        queue: List[ClassId] = [cid]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            qual = info["methods"].get(method_name)
            if qual is not None:
                return (current[0], qual)
            for base in info["bases"]:
                resolved = self.lookup_class(current[0], base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def attr_type(self, cid: ClassId, attr: str) -> Optional[str]:
        """Recorded type of ``self.<attr>`` on ``cid`` (base classes merged)."""
        seen: Set[ClassId] = set()
        queue: List[ClassId] = [cid]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            tname = info["attr_types"].get(attr)
            if tname:
                return str(tname)
            for base in info["bases"]:
                resolved = self.lookup_class(current[0], base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _var_type(self, module: str, fn: Dict[str, Any], var: str) -> Optional[str]:
        """Class name a local/parameter holds, if the summary recorded one."""
        tname = fn["local_types"].get(var) or fn["param_types"].get(var)
        if tname:
            return str(tname)
        callee_name = fn["local_calls"].get(var)
        if callee_name:
            callee = self.resolve_call(
                module, fn, {"kind": "name", "name": callee_name}
            )
            if callee is not None:
                ctor = self.functions[callee].get("returns_ctor")
                if ctor:
                    return str(ctor)
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, module: str, fn: Dict[str, Any], desc: Dict[str, Any]
    ) -> Optional[FuncId]:
        """Resolve one recorded call/reference descriptor to a function id."""
        kind = desc["kind"]
        if kind == "name":
            name = desc["name"]
            if (module, name) in self.functions:
                return (module, name)
            if (module, name) in self.classes:
                return self.method_on_class((module, name), "__init__")
            record = self.records.get(module)
            target = record.summary["imports"].get(name) if record else None
            if target:
                resolved = self.resolve_symbol(target)
                if resolved is not None:
                    if resolved[0] == "func":
                        return (resolved[1], resolved[2])
                    if resolved[0] == "class":
                        return self.method_on_class(
                            (resolved[1], resolved[2]), "__init__"
                        )
            return None
        if kind == "self":
            cls = fn.get("class")
            if cls:
                return self.method_on_class((module, cls), desc["method"])
            return None
        if kind == "self_attr":
            cls = fn.get("class")
            if not cls:
                return None
            tname = self.attr_type((module, cls), desc["attr"])
            if not tname:
                return None
            cid = self.lookup_class(module, tname)
            if cid is None:
                return None
            return self.method_on_class(cid, desc["method"])
        if kind == "var":
            tname = self._var_type(module, fn, desc["var"])
            if not tname:
                return None
            cid = self.lookup_class(module, tname)
            if cid is None:
                return None
            return self.method_on_class(cid, desc["method"])
        if kind == "dotted":
            first, _, rest = desc["dotted"].partition(".")
            record = self.records.get(module)
            target = record.summary["imports"].get(first) if record else None
            if target and rest and "()" not in rest and "[]" not in rest:
                resolved = self.resolve_symbol(f"{target}.{rest}")
                if resolved is not None and resolved[0] == "func":
                    return (resolved[1], resolved[2])
            return None
        return None

    def callees(self, fid: FuncId) -> FrozenSet[FuncId]:
        """Resolved direct callees of a function (cached)."""
        if fid not in self._callee_cache:
            module, _ = fid
            fn = self.functions[fid]
            out: Set[FuncId] = set()
            for desc in fn["calls"]:
                resolved = self.resolve_call(module, fn, desc)
                if resolved is not None:
                    out.add(resolved)
            self._callee_cache[fid] = frozenset(out)
        return self._callee_cache[fid]

    def callers(self) -> Dict[FuncId, Set[FuncId]]:
        """Inverted call graph: function -> set of direct callers."""
        if self._callers is None:
            inverted: Dict[FuncId, Set[FuncId]] = {}
            for fid in self.functions:
                for callee in self.callees(fid):
                    inverted.setdefault(callee, set()).add(fid)
            self._callers = inverted
        return self._callers

    def reachable(self, roots: Iterable[FuncId]) -> Set[FuncId]:
        """Every function reachable from ``roots`` via resolved calls."""
        seen: Set[FuncId] = set()
        queue = [fid for fid in roots if fid in self.functions]
        while queue:
            fid = queue.pop()
            if fid in seen:
                continue
            seen.add(fid)
            queue.extend(self.callees(fid))
        return seen

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    def spawn_targets(self) -> List[Dict[str, Any]]:
        """Functions handed to thread/process primitives, with spawn sites.

        Each entry: ``{"fid": FuncId, "spawn": "thread"|"process",
        "site_module": str, "site_line": int}``.
        """
        if self._spawns is not None:
            return self._spawns
        spawns: List[Dict[str, Any]] = []
        for name, record in self.records.items():
            scopes: List[Tuple[Dict[str, Any], List[Dict[str, Any]]]] = [
                (fn, fn["callable_refs"])
                for fn in record.summary["functions"].values()
            ]
            scopes.append(
                (_MODULE_SCOPE, record.summary["module_level"]["callable_refs"])
            )
            for fn, refs in scopes:
                for ref in refs:
                    fid = self.resolve_call(name, fn, ref)
                    if fid is not None:
                        spawns.append(
                            {
                                "fid": fid,
                                "spawn": ref["spawn"],
                                "site_module": name,
                                "site_line": ref.get("line", 0),
                            }
                        )
        self._spawns = spawns
        return spawns

    def spawn_roots(self, spawn_kind: Optional[str] = None) -> Set[FuncId]:
        """Spawn-target function ids, optionally filtered by spawn kind."""
        return {
            s["fid"]
            for s in self.spawn_targets()
            if spawn_kind is None or s["spawn"] == spawn_kind
        }

    def refreshing_functions(self) -> FrozenSet[FuncId]:
        """Fixpoint of functions that refresh checksums (directly or via calls)."""
        if self._refreshing is not None:
            return self._refreshing
        refreshing = {
            fid for fid, fn in self.functions.items() if fn["refreshes"]
        }
        changed = True
        while changed:
            changed = False
            for fid in self.functions:
                if fid in refreshing:
                    continue
                if any(callee in refreshing for callee in self.callees(fid)):
                    refreshing.add(fid)
                    changed = True
        self._refreshing = frozenset(refreshing)
        return self._refreshing

    # ------------------------------------------------------------------
    # Finding construction
    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[Tuple[FuncId, Dict[str, Any]]]:
        """Every function in the project, as ``(fid, summary)`` pairs."""
        yield from self.functions.items()

    def display_path(self, module: str) -> str:
        """Report path of a module (falls back to the module name)."""
        record = self.records.get(module)
        return record.display_path if record is not None else module

    def finding(
        self,
        module: str,
        rule: str,
        line: int,
        column: int,
        message: str,
        evidence_modules: Iterable[str] = (),
    ) -> Finding:
        """Build a project finding anchored in ``module``.

        ``evidence_modules`` name the other modules the finding's logic
        depends on; their display paths become :attr:`Finding.related`
        and enter the fingerprint.
        """
        record = self.records[module]
        related = tuple(
            sorted(
                {
                    self.display_path(m)
                    for m in evidence_modules
                    if m != module and m in self.records
                }
            )
        )
        return Finding(
            path=record.display_path,
            line=line,
            column=column,
            rule=rule,
            message=message,
            snippet=record.snippet(line),
            related=related,
        )
