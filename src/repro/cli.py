"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates the paper's tables and figures outside pytest, e.g.::

    python -m repro table1
    python -m repro fig5 --quick
    python -m repro pcg --runs 8 --rates 1e-8 1e-6 1e-4
    python -m repro all --quick --output results/

``--quick`` trades statistical weight for speed (suite subset, fewer
trials) — handy for smoke runs; the defaults match the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Sequence

from repro.analysis import (
    FIGURE4_BLOCK_SIZES,
    ablate_bounds,
    ablate_overlap,
    ablate_redundancy,
    render_bound_ablation,
    render_overlap_ablation,
    render_redundancy_ablation,
    FIGURE7_SIGMAS,
    PCG_ERROR_RATES,
    compare_correction_overheads,
    compare_coverage,
    compare_detection_overheads,
    format_table,
    render_block_size_sweep,
    render_correction_comparison,
    render_coverage_comparison,
    render_detection_comparison,
    render_pcg_cells,
    sweep_block_sizes,
    sweep_pcg,
)
from repro.schemes import DEFAULT_PCG_SCHEMES
from repro.solvers import FtPcgOptions
from repro.sparse import QUICK_SUITE, iter_suite

#: PCG case-study subset (matches benchmarks/conftest.py).
PCG_MATRICES = ("nos3", "bcsstk21", "bcsstk11", "ex3")


def _load_suite(args: argparse.Namespace):
    names = QUICK_SUITE if args.quick else None
    return list(iter_suite(full_scale=args.full_scale, names=names))


def _emit(args: argparse.Namespace, name: str, text: str) -> None:
    print(text)
    if args.output is not None:
        directory = Path(args.output)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{name}.txt").write_text(text + "\n")
        print(f"[written to {directory / (name + '.txt')}]")


def cmd_table1(args: argparse.Namespace) -> None:
    rows = [
        (
            spec.name,
            spec.n,
            spec.nnz,
            f"{100.0 * spec.zero_fraction:.2f}%",
            matrix.n_rows,
            matrix.nnz,
        )
        for spec, matrix in _load_suite(args)
    ]
    _emit(
        args,
        "table1",
        format_table(
            ("name", "N (paper)", "NNZ (paper)", "zeros (paper)", "N (ours)", "NNZ (ours)"),
            rows,
            title="Table I — evaluated matrices",
        ),
    )


def cmd_fig4(args: argparse.Namespace) -> None:
    sweep = sweep_block_sizes(_load_suite(args), block_sizes=FIGURE4_BLOCK_SIZES)
    _emit(args, "fig4", render_block_size_sweep(sweep))


def cmd_fig5(args: argparse.Namespace) -> None:
    comparison = compare_detection_overheads(_load_suite(args))
    _emit(args, "fig5", render_detection_comparison(comparison))


def cmd_fig6(args: argparse.Namespace) -> None:
    trials = 4 if args.quick else args.trials
    comparison = compare_correction_overheads(
        _load_suite(args), trials=trials, seed=args.seed
    )
    _emit(args, "fig6", render_correction_comparison(comparison))


def cmd_fig7(args: argparse.Namespace) -> None:
    trials = 30 if args.quick else args.trials
    comparison = compare_coverage(
        _load_suite(args), sigmas=FIGURE7_SIGMAS, trials=trials, seed=args.seed
    )
    _emit(args, "fig7", render_coverage_comparison(comparison))


def cmd_pcg(args: argparse.Namespace) -> None:
    suite = list(iter_suite(names=PCG_MATRICES[:2] if args.quick else PCG_MATRICES))
    schemes = DEFAULT_PCG_SCHEMES
    rates = tuple(args.rates) if args.rates else PCG_ERROR_RATES
    runs = 2 if args.quick else args.runs
    cells = sweep_pcg(
        suite,
        schemes=schemes,
        error_rates=rates,
        runs=runs,
        seed=args.seed,
        options=FtPcgOptions(max_iteration_factor=3),
    )
    _emit(args, "fig8_fig9", render_pcg_cells(cells, schemes=schemes, rates=rates))


def cmd_ablations(args: argparse.Namespace) -> None:
    suite = list(iter_suite(names=QUICK_SUITE))
    trials = 30 if args.quick else max(args.trials * 10, 120)
    bounds = ablate_bounds(suite, trials=trials)
    overlap = ablate_overlap(suite)
    redundancy = ablate_redundancy(suite)
    text = "\n\n".join(
        [
            render_bound_ablation(bounds),
            render_overlap_ablation(overlap),
            render_redundancy_ablation(redundancy),
        ]
    )
    _emit(args, "ablations", text)


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": cmd_table1,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "pcg": cmd_pcg,
    "ablations": cmd_ablations,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the DSN 2016 ABFT paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small suite subset and few trials (smoke run)",
    )
    parser.add_argument(
        "--full-scale", action="store_true",
        help="use the paper's full matrix dimensions even for the largest",
    )
    parser.add_argument("--trials", type=int, default=12, help="injection trials per matrix")
    parser.add_argument("--runs", type=int, default=4, help="PCG runs per (scheme, rate) cell")
    parser.add_argument(
        "--rates", type=float, nargs="+", default=None,
        help="error rates for the PCG sweep (default: 1e-8..1e-4)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory to write rendered tables into (printed regardless)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        for name in sorted(COMMANDS):
            print(f"=== {name} ===")
            COMMANDS[name](args)
    else:
        COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
