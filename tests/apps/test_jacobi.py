"""Unit tests for the protected Jacobi solver."""

import numpy as np
import pytest

from repro.apps import jacobi_solve
from repro.errors import ConfigurationError, ShapeMismatchError, SingularMatrixError
from repro.faults import ErrorProcess, FaultInjector
from repro.sparse import CooMatrix, random_spd


@pytest.fixture(scope="module")
def system():
    # Strictly diagonally dominant -> Jacobi converges.
    a = random_spd(200, 2000, seed=161, dominance=2.0)
    x_true = np.random.default_rng(161).standard_normal(200)
    return a, x_true, a.matvec(x_true)


def test_converges_to_solution(system):
    a, x_true, b = system
    result = jacobi_solve(a, b, tol=1e-10, protected=False)
    assert result.converged
    np.testing.assert_allclose(result.x, x_true, rtol=1e-6)


def test_protected_matches_plain_fault_free(system):
    a, _, b = system
    plain = jacobi_solve(a, b, protected=False)
    protected = jacobi_solve(a, b, protected=True)
    np.testing.assert_array_equal(protected.x, plain.x)
    assert protected.detections == 0
    assert protected.seconds > plain.seconds


def test_protected_survives_injected_errors(system):
    a, x_true, b = system
    injector = FaultInjector.seeded(1)
    process = ErrorProcess(5e-5, injector.rng)

    def tamper(stage, data, work):
        for _ in range(process.events_in(work)):
            if data.size:
                injector.corrupt_random_element(data, target=stage)

    result = jacobi_solve(a, b, tol=1e-10, protected=True, tamper=tamper)
    assert result.converged
    np.testing.assert_allclose(result.x, x_true, rtol=1e-5, atol=1e-7)
    assert len(injector.log) > 0


def test_unprotected_can_be_poisoned(system):
    """A NaN-producing burst ends an unprotected solve unconverged."""
    a, _, b = system

    def tamper(stage, data, work):
        if stage == "result":
            data[0] = np.nan

    result = jacobi_solve(a, b, protected=False, tamper=tamper, max_iterations=50)
    assert not result.converged


def test_zero_rhs(system):
    a, _, _ = system
    result = jacobi_solve(a, np.zeros(200), protected=False)
    assert result.converged
    np.testing.assert_allclose(result.x, np.zeros(200), atol=1e-12)


def test_validation(system):
    a, _, b = system
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(ShapeMismatchError):
        jacobi_solve(rect, np.zeros(2))
    with pytest.raises(ShapeMismatchError):
        jacobi_solve(a, b[:-1])
    with pytest.raises(ConfigurationError):
        jacobi_solve(a, b, tol=0.0)
    with pytest.raises(ConfigurationError):
        jacobi_solve(a, b, max_iterations=0)
    no_diag = CooMatrix.from_entries((2, 2), [(0, 1, 1.0), (1, 0, 1.0)]).to_csr()
    with pytest.raises(SingularMatrixError):
        jacobi_solve(no_diag, np.ones(2))


def test_iteration_budget_respected(system):
    a, _, b = system
    result = jacobi_solve(a, b, tol=1e-300, max_iterations=7, protected=False)
    assert not result.converged
    assert result.iterations == 7
