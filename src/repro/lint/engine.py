"""File discovery, parsing, rule execution, and suppression filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.lint.findings import Finding
from repro.lint.registry import resolve_rules
from repro.lint.rules.base import LintRule, ModuleContext
from repro.lint.suppressions import Suppression, parse_suppressions

#: Directories never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", ".venv", "venv", "node_modules"})

#: Rule id reserved for files the parser rejects.
PARSE_ERROR_RULE = "E999"


@dataclass
class LintResult:
    """Outcome of one engine run.

    Attributes:
        findings: surviving findings, sorted by (path, line, column, rule).
        suppressed: count of findings silenced by inline directives.
        reasonless_suppressions: directives lacking a ``-- reason`` string.
        files_checked: number of Python files parsed.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    reasonless_suppressions: List[Tuple[str, Suppression]] = field(default_factory=list)
    files_checked: int = 0


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise ConfigurationError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in SKIP_DIRS for part in candidate.parts):
                continue
            yield candidate


def lint_source(
    source: str,
    path: Path,
    rules: Iterable[LintRule],
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], int, List[Suppression]]:
    """Lint one in-memory module.

    Returns ``(findings, suppressed_count, reasonless_suppressions)``.
    """
    display = display_path or path.as_posix()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            path=display,
            line=exc.lineno or 1,
            column=(exc.offset or 0) + 1 if exc.offset is not None else 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
            snippet=(exc.text or "").strip(),
        )
        return [finding], 0, []

    module = ModuleContext(path, tree, source, display_path=display)
    suppressions = parse_suppressions(source)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(module):
            if suppressions.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed, suppressions.reasonless()


def lint_paths(
    paths: Sequence[Path | str],
    select: Tuple[str, ...] | None = None,
    ignore: Tuple[str, ...] | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with the registered rules.

    Args:
        paths: files or directories to scan.
        select: restrict the run to these rule ids (all rules when None).
        ignore: rule ids removed from the selection.
        root: base directory findings' paths are reported relative to
            (defaults to the current working directory when possible).

    Raises:
        ConfigurationError: unknown rule ids or missing paths.
    """
    rules = resolve_rules(select, ignore)
    base = (root or Path.cwd()).resolve()
    result = LintResult()
    for path in iter_python_files([Path(p) for p in paths]):
        resolved = path.resolve()
        try:
            display = resolved.relative_to(base).as_posix()
        except ValueError:
            display = resolved.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except UnicodeDecodeError as exc:
            result.findings.append(
                Finding(
                    path=display,
                    line=1,
                    column=1,
                    rule=PARSE_ERROR_RULE,
                    message=f"file is not valid UTF-8 ({exc.reason} at byte "
                    f"{exc.start})",
                    snippet="",
                )
            )
            result.files_checked += 1
            continue
        findings, suppressed, reasonless = lint_source(
            source, path, rules, display_path=display
        )
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.reasonless_suppressions.extend(
            (display, directive) for directive in reasonless
        )
        result.files_checked += 1
    result.findings.sort()
    return result
