"""Measured-time microbenchmarks of the library's real kernels.

Unlike the figure benches (which report *modeled* device time), these time
the actual NumPy implementations with pytest-benchmark: the SpMV, the
partial SpMV, checksum construction, the full detection pass, the dense
check, and one PCG iteration's worth of work.  They guard against
performance regressions in the substrate itself.
"""

import numpy as np
import pytest

from repro.baselines import DenseChecksum
from repro.core import BlockAbftDetector, ChecksumMatrix, FaultTolerantSpMV
from repro.solvers import make_preconditioner, pcg
from repro.sparse import suite_matrix


@pytest.fixture(scope="module")
def matrix():
    return suite_matrix("bcsstk13")


@pytest.fixture(scope="module")
def operand(matrix):
    return np.random.default_rng(0).standard_normal(matrix.n_cols)


def test_kernel_spmv(benchmark, matrix, operand):
    result = benchmark(matrix.matvec, operand)
    assert result.shape == (matrix.n_rows,)


def test_kernel_partial_spmv(benchmark, matrix, operand):
    result = benchmark(matrix.matvec_rows, 512, 544, operand)
    assert result.shape == (32,)


def test_kernel_checksum_build(benchmark, matrix):
    checksum = benchmark(ChecksumMatrix.build, matrix, 32)
    assert checksum.n_blocks == -(-matrix.n_rows // 32)


def test_kernel_block_detection(benchmark, matrix, operand):
    detector = BlockAbftDetector(matrix)
    r = matrix.matvec(operand)
    report = benchmark(detector.detect, operand, r)
    assert report.clean


def test_kernel_dense_check(benchmark, matrix, operand):
    checker = DenseChecksum(matrix)
    r = matrix.matvec(operand)
    report = benchmark(checker.check, operand, r)
    assert not report.detected


def test_kernel_protected_multiply(benchmark, matrix, operand):
    ft = FaultTolerantSpMV(matrix, block_size=32)
    result = benchmark(ft.multiply, operand)
    assert result.clean


def test_kernel_spmm(benchmark, matrix):
    block = np.random.default_rng(2).standard_normal((matrix.n_cols, 8))
    result = benchmark(matrix.matmat, block)
    assert result.shape == (matrix.n_rows, 8)


def test_kernel_checksum_matrix_spmm(benchmark, matrix):
    from repro.core import ProtectedSpMM

    scheme = ProtectedSpMM(matrix, block_size=32)
    block = np.random.default_rng(3).standard_normal((matrix.n_cols, 4))
    result = benchmark(scheme.multiply, block)
    assert result.clean


def test_kernel_forward_substitution(benchmark):
    from repro.core.triangular import forward_substitution
    from repro.sparse import CooMatrix, random_spd

    spd = random_spd(1000, 8000, seed=9)
    lower = CooMatrix.from_dense(np.tril(spd.to_dense())).to_csr()
    rhs = lower.matvec(np.ones(1000))
    x = np.empty(1000)
    benchmark(forward_substitution, lower, rhs, x)
    np.testing.assert_allclose(x, np.ones(1000), rtol=1e-9)


def test_kernel_rcm_reordering(benchmark, matrix):
    from repro.sparse import reverse_cuthill_mckee

    perm = benchmark(reverse_cuthill_mckee, matrix)
    assert perm.shape == (matrix.n_rows,)


def test_kernel_pcg_solve(benchmark, matrix):
    rng = np.random.default_rng(1)
    b = matrix.matvec(rng.standard_normal(matrix.n_rows))
    preconditioner = make_preconditioner("jacobi", matrix)
    result = benchmark.pedantic(
        lambda: pcg(matrix, b, preconditioner), rounds=3, iterations=1
    )
    assert result.converged
