"""Arena writes that break the worker protocol (ABFT008 must fire)."""

from shm import Arena


def fill(arena, values):
    """Writes a view of a borrowed arena from outside any worker."""
    view = arena.array("x")
    view[0] = values[0]  # MARK:ABFT008


def use_after_close():
    """Writes a view after the arena's shared memory is unmapped."""
    arena = Arena.create(8)
    view = arena.array("x")
    arena.close()
    view[0] = 1.0  # MARK:ABFT008
