"""Command-line entry point: ``python -m repro.obs summarize <events.jsonl>``.

Renders a JSONL event log (written by the ``"jsonl"`` exporter, usually
via ``REPRO_OBS=jsonl``) as the human-readable protocol summary: counter
totals, histogram tables and the span time breakdown.

Exit codes:

* 0 — summary rendered;
* 2 — usage or input errors (missing file, malformed events).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.obs.exporters import available_exporters
from repro.obs.summary import read_events, render_summary

EXIT_OK = 0
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="ABFT protocol telemetry tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="render a JSONL event log as a text summary"
    )
    summarize.add_argument("events", help="path to the events.jsonl file")
    summarize.add_argument(
        "--width", type=int, default=48, help="bar width of the span breakdown"
    )

    commands.add_parser("exporters", help="list registered exporter names")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "exporters":
        for name in available_exporters():
            print(name)
        return EXIT_OK
    try:
        events = read_events(args.events)
        print(render_summary(events, width=args.width))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:  # e.g. `... summarize log | head`
        return EXIT_OK
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
