"""Escaping self-mutation whose callers all refresh (ABFT010 quiet)."""


class ChecksumMatrix:
    def __init__(self, data):
        self.data = list(data)
        self.checksums = [0.0]

    def scale(self, factor):
        self.data[0] = self.data[0] * factor  # ok: every caller refreshes

    def refresh(self):
        self.checksums = [float(len(self.data))]
