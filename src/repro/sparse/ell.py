"""ELLPACK (ELL) sparse format: fixed-width padded rows.

The GPU-friendly counterpart to CSR: every row stores exactly ``width``
(column, value) slots, padding short rows, so threads across rows access
memory with perfect coalescing.  The cost is padding waste on irregular
matrices — quantified by :meth:`EllMatrix.padding_ratio`, and the reason
CSR remains the paper's (and this library's) primary format.

Provided for substrate completeness and for the measured-time kernel
benchmarks; the ABFT layer itself is format-agnostic at the math level but
implemented against CSR.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


class EllMatrix:
    """An immutable ELLPACK matrix.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        indices: ``(n_rows, width)`` int64 column indices; padded slots
            hold 0 and are marked in ``mask``.
        data: ``(n_rows, width)`` float64 values; padded slots hold 0.0.
        mask: ``(n_rows, width)`` bool; True for real entries.
    """

    __slots__ = ("shape", "indices", "data", "mask")

    def __init__(
        self,
        shape: Tuple[int, int],
        indices: np.ndarray,
        data: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.mask = np.ascontiguousarray(mask, dtype=bool)
        self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"negative dimension in shape {self.shape}")
        if not (self.indices.shape == self.data.shape == self.mask.shape):
            raise SparseFormatError(
                "indices, data and mask must share one (n_rows, width) shape"
            )
        if self.indices.ndim != 2 or self.indices.shape[0] != n_rows:
            raise SparseFormatError(
                f"expected ({n_rows}, width) arrays, got {self.indices.shape}"
            )
        if self.indices.size:
            if self.indices.min() < 0 or (n_cols and self.indices.max() >= n_cols):
                raise SparseFormatError("column index out of range")
            # reprolint: disable=ABFT003 -- structural invariant: ELL padding
            # slots must hold literal 0.0 (they are never computed values)
            if (self.data[~self.mask] != 0.0).any():
                raise SparseFormatError("padded slots must hold 0.0")

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CsrMatrix) -> "EllMatrix":
        """Convert a CSR matrix, padding every row to the maximum length."""
        n_rows, n_cols = csr.shape
        lengths = csr.row_lengths()
        width = int(lengths.max(initial=0))
        indices = np.zeros((n_rows, width), dtype=np.int64)
        data = np.zeros((n_rows, width), dtype=np.float64)
        mask = np.zeros((n_rows, width), dtype=bool)
        for row in range(n_rows):
            lo, hi = csr.indptr[row], csr.indptr[row + 1]
            count = hi - lo
            indices[row, :count] = csr.indices[lo:hi]
            data[row, :count] = csr.data[lo:hi]
            mask[row, :count] = True
        return cls(csr.shape, indices, data, mask)

    def to_csr(self) -> CsrMatrix:
        """Convert back to CSR (padding dropped)."""
        rows, slots = np.nonzero(self.mask)
        return CooMatrix(
            self.shape, rows, self.indices[rows, slots], self.data[rows, slots]
        ).to_csr()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Stored slots per row (the maximum row length of the source)."""
        return int(self.indices.shape[1])

    @property
    def nnz(self) -> int:
        """Real (non-padding) entries."""
        return int(self.mask.sum())

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored slots that are padding (0 = perfectly regular)."""
        slots = self.mask.size
        return 1.0 - self.nnz / slots if slots else 0.0

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(self, b: np.ndarray) -> np.ndarray:
        """SpMV; padded slots contribute exactly zero."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.shape[1],):
            raise ShapeMismatchError(
                f"operand has shape {b.shape}, expected ({self.shape[1]},)"
            )
        if self.indices.size == 0:
            return np.zeros(self.shape[0])
        return (self.data * b[self.indices]).sum(axis=1)

    def __matmul__(self, b: np.ndarray) -> np.ndarray:
        return self.matvec(b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EllMatrix(shape={self.shape}, width={self.width}, nnz={self.nnz}, "
            f"padding={self.padding_ratio:.1%})"
        )
