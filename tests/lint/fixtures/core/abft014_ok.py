"""Fixture: policy-resolved dtypes in function bodies are fine."""

import numpy as np

ACCUMULATION_DTYPE = np.dtype(np.float64)

#: Raw literals at module level define the policy constants themselves.
MACHINE_EPSILON = np.float64(2.0) ** -53


def accumulate(values):
    return values.astype(ACCUMULATION_DTYPE)


def allocate(n, matrix):
    return np.zeros(n, dtype=matrix.data.dtype)


def index_array(n):
    return np.arange(n, dtype=np.int64)
