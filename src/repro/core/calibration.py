"""Empirical rounding-error bound calibration (extension).

Related work either asks the user for thresholds ([26] — "requires both
deep knowledge of the input data and re-calibration for each new problem
set") or derives analytical bounds as the paper does.  A third option the
paper's framework invites: *measure* the rounding error.  Sampling a few
dozen error-free SpMVs on representative operands yields, per block, the
largest observed ``|syndrome| / beta``; scaled by a safety factor this is
a data-driven bound that adapts to the actual matrix values instead of
worst-case norms.

The calibrated object is a drop-in for the analytical bounds (same
``thresholds(beta, blocks)`` API), so :class:`repro.core.BlockAbftDetector`
accepts it via its ``bound_override`` argument.  The bound ablation bench
compares all four families.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.checksum import ChecksumMatrix
from repro.core.dtypes import resolve_dtype_policy
from repro.errors import ConfigurationError
from repro.kernels.base import ACCUMULATION_DTYPE
from repro.sparse.csr import CsrMatrix

#: Default multiplier on the largest observed rounding syndrome.  Sampling
#: sees a finite tail, so headroom is required to avoid false positives on
#: unseen operands.
DEFAULT_SAFETY_FACTOR = 8.0


@dataclass(frozen=True)
class EmpiricalBound:
    """Per-block bound calibrated from error-free executions.

    Attributes:
        constants: per-block ``safety * max observed |syndrome| / beta``.
        samples: number of calibration executions used.
        safety: the applied safety factor.
    """

    constants: np.ndarray
    samples: int
    safety: float

    @classmethod
    def calibrate(
        cls,
        matrix: CsrMatrix,
        block_size: int = 32,
        samples: int = 50,
        seed: int = 0,
        safety: float = DEFAULT_SAFETY_FACTOR,
        weight_kind: str = "ones",
        dtype: object = None,
    ) -> "EmpiricalBound":
        """Run ``samples`` clean SpMVs and record per-block syndrome peaks.

        Operands are drawn over several magnitude decades so the calibration
        covers the scale range the bound will face (``|s|/beta`` is scale
        free for linear operators, but the exponent spread exercises
        different rounding patterns).

        ``dtype`` selects the dtype policy whose epsilon model floors the
        never-exceeded blocks (None resolves the usual policy chain); the
        floor tracks the *matrix storage* dtype, so float32 data gets a
        float32-scaled floor automatically.

        Raises:
            ConfigurationError: on non-positive samples/safety.
        """
        if samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {samples}")
        if safety <= 0:
            raise ConfigurationError(f"safety must be positive, got {safety}")
        checksum = ChecksumMatrix.build(matrix, block_size, weight_kind)
        rng = np.random.default_rng(seed)
        peaks = np.zeros(checksum.n_blocks, dtype=ACCUMULATION_DTYPE)
        for _ in range(samples):
            b = rng.standard_normal(matrix.n_cols) * 10.0 ** rng.integers(-3, 4)
            beta = float(np.linalg.norm(b))
            # reprolint: disable=ABFT003 -- skip degenerate samples: only an
            # identically zero operand makes |s|/beta undefined
            if beta == 0.0:
                continue
            r = matrix.matvec(b)
            syndrome = np.abs(checksum.operand_checksums(b) - checksum.result_checksums(r))
            np.maximum(peaks, syndrome / beta, out=peaks)
        # Blocks whose syndrome never rose above zero still need a non-zero
        # threshold (exact-zero comparisons are brittle): floor at a few ulps
        # of the block's checksum magnitude, in the storage dtype's epsilon.
        epsilon = resolve_dtype_policy(explicit=dtype).epsilon_for(matrix.dtype)
        floor = epsilon * np.maximum(checksum.checksum_norms, 1.0)
        constants = safety * np.maximum(peaks, floor)
        return cls(constants=constants, samples=samples, safety=safety)

    def thresholds(self, beta: float, blocks: np.ndarray | None = None) -> np.ndarray:
        """Per-block thresholds ``tau_k(beta)`` (same API as the analytical
        bounds)."""
        constants = self.constants if blocks is None else self.constants[blocks]
        return constants * beta
