"""Fixture: selector parameters with a validation-error path."""

from repro.core import make_bound
from repro.sparse import canonical_format_name


def make_detector(matrix, kind="block"):
    if kind not in ("block", "dense"):
        raise ValueError(f"unknown detector kind {kind!r}")
    return (kind, matrix)


def delegated(checksum, kind="sparse"):
    return make_bound(kind, checksum)


def stage_matrix(matrix, sparse_format="csr"):
    name = canonical_format_name(sparse_format)
    return (name, matrix)


def _private_helper(matrix, kind="block"):
    return (kind, matrix)


def typed_selector(matrix, mode: int = 0):
    return (mode, matrix)
