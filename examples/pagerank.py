"""Fault-tolerant PageRank (a graph application from the paper's Section III-E).

PageRank's power iteration is one SpMV per step over a fixed link matrix,
so the proposed block-ABFT scheme protects it directly — the checksum
matrix is built once and amortizes across all iterations, the data-reuse
situation the paper highlights.

The demo builds a synthetic scale-free web graph with
:func:`repro.apps.build_link_matrix`, runs :func:`repro.apps.pagerank`
under a transient-error process, and compares the unprotected vs protected
rankings against the fault-free reference.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro.apps import build_link_matrix, pagerank
from repro.faults import ErrorProcess, FaultInjector

N_PAGES = 2000
ERROR_RATE = 2e-5  # per arithmetic operation


def build_edges(n: int, seed: int) -> np.ndarray:
    """Preferential-attachment edge list (popular pages attract links)."""
    rng = np.random.default_rng(seed)
    edges = []
    for page in range(1, n):
        n_links = 1 + int(rng.integers(0, 8))
        picks = (rng.random(n_links) ** 2 * page).astype(np.int64)
        edges.extend((page, int(target)) for target in np.unique(picks))
    return np.asarray(edges, dtype=np.int64)


def make_tamper(seed: int):
    """Error process corrupting SpMV results (and detection operations)."""
    injector = FaultInjector.seeded(seed)
    process = ErrorProcess(ERROR_RATE, injector.rng)

    def tamper(stage, data, work):
        for _ in range(process.events_in(work)):
            if data.size:
                injector.corrupt_random_element(data, target=stage)

    return tamper, injector


def top_pages(ranks: np.ndarray, count: int = 10) -> list[int]:
    return [int(page) for page in np.argsort(ranks)[::-1][:count]]


def main() -> None:
    link = build_link_matrix(build_edges(N_PAGES, seed=3), N_PAGES)
    print(f"web graph: {N_PAGES} pages, {link.nnz} links")

    reference, _ = pagerank(link, protected=False)
    tamper, injector = make_tamper(seed=1)
    unprotected, _ = pagerank(link, protected=False, tamper=tamper)
    unprotected_hits = len(injector.log)
    tamper, injector = make_tamper(seed=1)
    protected, diagnostics = pagerank(link, protected=True, tamper=tamper)

    print(f"\nreference top-10 pages:  {top_pages(reference)}")
    print(f"unprotected top-10:      {top_pages(unprotected)}  ({unprotected_hits} errors hit)")
    print(
        f"ABFT-protected top-10:   {top_pages(protected)}  "
        f"({len(injector.log)} errors hit, {diagnostics.detections} multiplies flagged)"
    )
    print(f"\nL1 rank error, unprotected: {np.abs(unprotected - reference).sum():.3e}")
    print(f"L1 rank error, protected:   {np.abs(protected - reference).sum():.3e}")
    overlap = len(set(top_pages(reference)) & set(top_pages(protected)))
    print(f"protected top-10 overlap with reference: {overlap}/10")
    print(
        "\nnote: power iteration self-heals small mid-run perturbations, so the"
        "\nunprotected error above stays modest — the danger is an error near"
        "\nconvergence or one that blows up the iterate.  Worst case:"
    )

    # --- worst case: a severe burst near the final iteration -----------
    def late_strike(stage, data, work):
        if stage != "result":
            return
        late_strike.iteration += 1
        if late_strike.iteration == 55:  # two iterations before the budget
            data[: len(data) // 2] = 0.0  # half the spread vector lost

    # A tight iteration budget leaves no room to re-converge after the hit.
    late_strike.iteration = 0
    broken, _ = pagerank(
        link, protected=False, tamper=late_strike, tol=1e-14, max_iterations=57
    )
    late_strike.iteration = 0
    saved, diag = pagerank(
        link, protected=True, tamper=late_strike, tol=1e-14, max_iterations=57
    )
    print(f"unprotected after late strike: L1 error {np.abs(broken - reference).sum():.3e}")
    print(
        f"protected after late strike:   L1 error {np.abs(saved - reference).sum():.3e} "
        f"({diag.detections} multiplies flagged and repaired)"
    )


if __name__ == "__main__":
    main()
