"""Unit tests for MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import (
    CooMatrix,
    banded_spd,
    matrix_market_string,
    read_matrix_market,
    write_matrix_market,
)


def test_read_general():
    text = "\n".join(
        [
            "%%MatrixMarket matrix coordinate real general",
            "% a comment",
            "2 3 2",
            "1 1 1.5",
            "2 3 -2.0",
            "",
        ]
    )
    a = read_matrix_market(io.StringIO(text))
    assert a.shape == (2, 3)
    np.testing.assert_array_equal(a.to_dense(), [[1.5, 0, 0], [0, 0, -2.0]])


def test_read_symmetric_expands_triangle():
    text = "\n".join(
        [
            "%%MatrixMarket matrix coordinate real symmetric",
            "3 3 3",
            "1 1 2.0",
            "3 1 -1.0",
            "3 3 4.0",
            "",
        ]
    )
    a = read_matrix_market(io.StringIO(text))
    dense = a.to_dense()
    assert dense[0, 2] == -1.0
    assert dense[2, 0] == -1.0
    assert a.is_symmetric()


def test_round_trip_general(tmp_path):
    original = CooMatrix.from_entries((3, 4), [(0, 1, 2.25), (2, 3, -0.5)]).to_csr()
    path = tmp_path / "m.mtx"
    write_matrix_market(original, path)
    loaded = read_matrix_market(path)
    assert loaded == original


def test_round_trip_symmetric(tmp_path):
    original = banded_spd(20, 3, 0.7, seed=11)
    path = tmp_path / "sym.mtx"
    write_matrix_market(original, path, symmetric=True)
    loaded = read_matrix_market(path)
    np.testing.assert_allclose(loaded.to_dense(), original.to_dense())


def test_round_trip_preserves_exact_floats():
    original = CooMatrix.from_entries((1, 1), [(0, 0, 1 / 3)]).to_csr()
    loaded = read_matrix_market(io.StringIO(matrix_market_string(original)))
    assert loaded.data[0] == original.data[0]


def test_rejects_non_mm_header():
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO("garbage\n1 1 0\n"))


def test_rejects_unsupported_field():
    text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO(text))


def test_rejects_unsupported_symmetry():
    text = "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n"
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO(text))


def test_rejects_array_format():
    text = "%%MatrixMarket matrix array real general\n1 1\n1.0\n"
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO(text))


def test_rejects_entry_count_mismatch():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO(text))


def test_rejects_too_many_entries():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n"
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO(text))


def test_rejects_missing_size_line():
    text = "%%MatrixMarket matrix coordinate real general\n% only comments\n"
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO(text))


def test_rejects_malformed_entry():
    text = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n"
    with pytest.raises(SparseFormatError):
        read_matrix_market(io.StringIO(text))
