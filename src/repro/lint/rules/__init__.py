"""Rule interface and the built-in ABFT rule pack."""

from repro.lint.rules.abft import (
    ABFT_RULES,
    BroadExceptRule,
    ChecksumRefreshRule,
    DtypeDowncastRule,
    ExactFloatCompareRule,
    MissingValidationRule,
    ReductionOrderRule,
    SchemeConstructionRule,
    TelemetryGuardRule,
)
from repro.lint.rules.base import LintRule, ModuleContext

__all__ = [
    "LintRule",
    "ModuleContext",
    "ABFT_RULES",
    "ChecksumRefreshRule",
    "ReductionOrderRule",
    "ExactFloatCompareRule",
    "DtypeDowncastRule",
    "BroadExceptRule",
    "MissingValidationRule",
    "SchemeConstructionRule",
    "TelemetryGuardRule",
]
