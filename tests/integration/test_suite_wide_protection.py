"""Suite-wide smoke tests: every Table I analogue through the full pipeline.

Parametrized over all 25 matrices so structural corner cases (very dense
rows, very sparse rows, large dimension) each get exercised: one clean
protected multiply, one injected error detected at the right block and
corrected bit-exactly.
"""

import numpy as np
import pytest

from repro.core import FaultTolerantSpMV
from repro.sparse import SUITE_SPECS, suite_matrix

_NAMES = tuple(spec.name for spec in SUITE_SPECS)
_CACHE = {}


def _operator(name):
    if name not in _CACHE:
        matrix = suite_matrix(name)
        _CACHE.clear()  # keep at most one large matrix alive
        _CACHE[name] = (matrix, FaultTolerantSpMV(matrix, block_size=32))
    return _CACHE[name]


@pytest.mark.parametrize("name", _NAMES)
def test_protect_and_repair_every_suite_matrix(name):
    matrix, ft = _operator(name)
    rng = np.random.default_rng(hash(name) % 2**32)
    b = rng.standard_normal(matrix.n_cols)
    reference = matrix.matvec(b)

    clean = ft.multiply(b)
    assert clean.clean, f"{name}: false positive on a clean multiply"
    np.testing.assert_array_equal(clean.value, reference)

    index = int(rng.integers(0, matrix.n_rows))
    state = {"armed": True}

    def tamper(stage, data, work):
        if stage == "result" and state["armed"]:
            data[index] += 1.0 + abs(data[index])
            state["armed"] = False

    faulty = ft.multiply(b, tamper=tamper)
    assert index // 32 in faulty.detected[0], f"{name}: error not localized"
    assert not faulty.exhausted
    np.testing.assert_array_equal(
        faulty.value, reference, err_msg=f"{name}: correction not exact"
    )
