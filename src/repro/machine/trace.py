"""Schedule tracing: render a simulated schedule as a text Gantt chart.

Useful for eyeballing why a protected multiply costs what it costs — which
kernels overlapped, which serialized behind a host sync — directly in a
terminal or a test failure message.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machine.scheduler import Schedule


def render_gantt(schedule: Schedule, width: int = 60) -> str:
    """ASCII Gantt chart of a schedule.

    Args:
        schedule: a schedule produced by :meth:`repro.machine.Machine.schedule`.
        width: number of character cells the makespan maps onto.

    Returns:
        One line per task: name, ``[``launch``|``compute``]`` bar, timing.
        Launch phases render as ``.``, compute phases as ``#``.
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    if not schedule.timings:
        return "(empty schedule)"
    makespan = schedule.makespan
    if makespan <= 0:
        return "\n".join(f"{name:<16s} (instant)" for name in schedule.timings)

    name_width = max(len(name) for name in schedule.timings)
    scale = width / makespan
    lines = []
    for name, timing in sorted(schedule.timings.items(), key=lambda kv: kv[1].start):
        start_cell = int(round(timing.start * scale))
        # Rounding can put the compute cell before the start cell (or a
        # degenerate timing can report compute_start < start); clamping keeps
        # the bar segments non-negative so the chart never shifts left.
        compute_cell = max(int(round(timing.compute_start * scale)), start_cell)
        finish_cell = max(int(round(timing.finish * scale)), compute_cell, start_cell + 1)
        bar = (
            " " * start_cell
            + "." * (compute_cell - start_cell)
            + "#" * (finish_cell - compute_cell)
        )
        bar = bar.ljust(width)[: width + 2]
        lines.append(
            f"{name:<{name_width}s} |{bar}| "
            f"{timing.start * 1e6:8.1f}us -> {timing.finish * 1e6:8.1f}us"
        )
    lines.append(f"{'':<{name_width}s}  makespan {makespan * 1e6:.1f}us")
    return "\n".join(lines)


def utilization(schedule: Schedule) -> float:
    """Fraction of the makespan during which at least one task computes.

    1.0 means no idle gaps at kernel granularity; launch-only time counts
    as idle.
    """
    if not schedule.timings or schedule.makespan <= 0:
        return 0.0
    intervals = sorted(
        (timing.compute_start, timing.finish) for timing in schedule.timings.values()
    )
    covered = 0.0
    cursor = 0.0
    for start, finish in intervals:
        start = max(start, cursor)
        if finish > start:
            covered += finish - start
            cursor = finish
    return covered / schedule.makespan
