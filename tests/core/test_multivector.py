"""Unit tests for the protected SpMM (multi-vector) extension."""

import numpy as np
import pytest

from repro.core.multivector import ProtectedSpMM
from repro.errors import ConfigurationError, ShapeMismatchError
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def matrix():
    return random_spd(256, 2600, seed=121)


@pytest.fixture()
def operands():
    return np.random.default_rng(121).standard_normal((256, 5))


def one_shot(stage_name, mutate):
    state = {"done": False}

    def hook(stage, data, work):
        if stage == stage_name and not state["done"]:
            mutate(data)
            state["done"] = True

    return hook


def test_clean_multiply(matrix, operands):
    scheme = ProtectedSpMM(matrix, block_size=32)
    result = scheme.multiply(operands)
    assert result.clean
    assert result.rounds == 0
    np.testing.assert_array_equal(result.value, matrix.matmat(operands))


def test_single_cell_error_localized(matrix, operands):
    scheme = ProtectedSpMM(matrix, block_size=32)
    result = scheme.multiply(
        operands, tamper=one_shot("result", lambda d: d.__setitem__((70, 3), d[70, 3] + 5.0))
    )
    assert result.detected == ((2, 3),)
    assert result.corrected == ((2, 3),)
    np.testing.assert_array_equal(result.value, matrix.matmat(operands))


def test_correction_touches_only_flagged_column(matrix, operands):
    """Other columns of the same row block must not be recomputed."""
    scheme = ProtectedSpMM(matrix, block_size=32)
    recomputed_work = []

    def hook(stage, data, work):
        if stage == "result" and not recomputed_work:
            data[70, 3] += 5.0
            recomputed_work.append(0.0)  # marker
        elif stage == "corrected":
            recomputed_work.append(work)

    scheme.multiply(operands, tamper=hook)
    # One correction call only (one cell), not one per column.
    assert len(recomputed_work) == 2


def test_errors_across_columns_and_blocks(matrix, operands):
    scheme = ProtectedSpMM(matrix, block_size=32)

    def mutate(d):
        d[0, 0] += 1.0
        d[100, 2] -= 2.0
        d[255, 4] *= 1.5

    result = scheme.multiply(operands, tamper=one_shot("result", mutate))
    assert set(result.detected) == {(0, 0), (3, 2), (7, 4)}
    np.testing.assert_array_equal(result.value, matrix.matmat(operands))


def test_nan_cell_detected_and_fixed(matrix, operands):
    scheme = ProtectedSpMM(matrix, block_size=32)
    result = scheme.multiply(
        operands, tamper=one_shot("result", lambda d: d.__setitem__((10, 1), np.nan))
    )
    assert (0, 1) in result.detected
    np.testing.assert_array_equal(result.value, matrix.matmat(operands))


def test_no_false_positives_across_column_scales(matrix):
    """Columns with wildly different norms get per-column thresholds."""
    rng = np.random.default_rng(122)
    b = rng.standard_normal((256, 4))
    b[:, 0] *= 1e-6
    b[:, 3] *= 1e6
    scheme = ProtectedSpMM(matrix, block_size=32)
    assert scheme.multiply(b).clean


def test_cost_scales_with_column_count(matrix):
    rng = np.random.default_rng(123)
    scheme = ProtectedSpMM(matrix, block_size=32)
    narrow = scheme.multiply(rng.standard_normal((256, 2)))
    wide = scheme.multiply(rng.standard_normal((256, 16)))
    assert wide.seconds > narrow.seconds
    assert wide.flops > 4 * narrow.flops


def test_corrupted_correction_reverified(matrix, operands):
    scheme = ProtectedSpMM(matrix, block_size=32)
    state = {"result": False, "corrected": False}

    def hook(stage, data, work):
        if stage == "result" and not state["result"]:
            data[70, 3] += 5.0
            state["result"] = True
        elif stage == "corrected" and not state["corrected"]:
            data[0] += 9.0
            state["corrected"] = True

    result = scheme.multiply(operands, tamper=hook)
    assert result.rounds == 2
    np.testing.assert_array_equal(result.value, matrix.matmat(operands))


def test_persistent_fault_exhausts(matrix, operands):
    def hook(stage, data, work):
        if stage in ("result", "corrected"):
            if data.ndim == 2:
                data[0, 0] = np.inf
            else:
                data[0] = np.inf

    scheme = ProtectedSpMM(matrix, block_size=32, max_rounds=2)
    result = scheme.multiply(operands, tamper=hook)
    assert result.exhausted


def test_validation(matrix, operands):
    with pytest.raises(ConfigurationError):
        ProtectedSpMM(matrix, block_size=0)
    with pytest.raises(ConfigurationError):
        ProtectedSpMM(matrix, max_rounds=0)
    scheme = ProtectedSpMM(matrix)
    with pytest.raises(ShapeMismatchError):
        scheme.multiply(np.ones(256))  # 1-D operand
    with pytest.raises(ShapeMismatchError):
        scheme.multiply(np.ones((255, 3)))


def test_single_column_matches_spmv_scheme(matrix):
    """k=1 SpMM agrees with the single-vector scheme's corrected value."""
    from repro.core import FaultTolerantSpMV

    rng = np.random.default_rng(124)
    b = rng.standard_normal(256)
    hook2d = one_shot("result", lambda d: d.__setitem__((40, 0), d[40, 0] + 3.0))
    hook1d = one_shot("result", lambda d: d.__setitem__(40, d[40] + 3.0))
    spmm = ProtectedSpMM(matrix).multiply(b[:, None], tamper=hook2d)
    spmv = FaultTolerantSpMV(matrix).multiply(b, tamper=hook1d)
    np.testing.assert_array_equal(spmm.value[:, 0], spmv.value)
