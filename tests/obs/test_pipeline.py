"""Unit tests for the worker delta pipeline (:mod:`repro.obs.pipeline`)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    InMemoryExporter,
    Registry,
    Telemetry,
)
from repro.obs.pipeline import (
    WorkerRecorder,
    apply_delta,
    capture_delta,
    merge_delta,
)


def test_recorder_delta_is_none_when_nothing_recorded():
    recorder = WorkerRecorder()
    assert recorder.delta() is None


def test_recorder_captures_counters_gauges_and_histograms():
    recorder = WorkerRecorder()
    tel = recorder.telemetry
    tel.count("abft.checks", 2.0)
    tel.gauge("pcg.residual", 0.5)
    tel.observe("kernel.spmv.seconds", 1e-3, buckets=DEFAULT_TIME_BUCKETS)
    delta = recorder.delta()
    assert delta["counters"] == {"abft.checks": 2.0}
    assert delta["gauges"] == {"pcg.residual": 0.5}
    hist = delta["hists"]["kernel.spmv.seconds"]
    assert hist["count"] == 1
    assert hist["sum"] == 1e-3
    assert sum(hist["counts"]) == 1
    assert tuple(hist["edges"]) == DEFAULT_TIME_BUCKETS


def test_consecutive_deltas_never_reship_history():
    recorder = WorkerRecorder()
    tel = recorder.telemetry
    tel.count("abft.checks")
    tel.observe("abft.syndrome_margin", 1e-6)
    first = recorder.delta()
    assert first["counters"] == {"abft.checks": 1.0}
    assert recorder.delta() is None  # quiescent interval ships nothing
    tel.count("abft.checks", 3.0)
    tel.observe("abft.syndrome_margin", 1e-2)
    second = recorder.delta()
    assert second["counters"] == {"abft.checks": 3.0}
    hist = second["hists"]["abft.syndrome_margin"]
    assert hist["count"] == 1  # only the new observation
    assert hist["sum"] == pytest.approx(1e-2)
    # min/max stay cumulative (idempotent under re-merge).
    assert hist["min"] == 1e-6
    assert hist["max"] == 1e-2


def test_gauge_reset_to_nan_still_ships():
    recorder = WorkerRecorder()
    tel = recorder.telemetry
    tel.gauge("pcg.residual", 1.0)
    recorder.delta()
    tel.gauge("pcg.residual", math.nan)
    delta = recorder.delta()
    assert math.isnan(delta["gauges"]["pcg.residual"])


def test_nan_observations_ride_the_delta():
    recorder = WorkerRecorder()
    recorder.telemetry.observe("abft.syndrome_margin", math.nan)
    delta = recorder.delta()
    assert delta["hists"]["abft.syndrome_margin"]["nan_count"] == 1
    assert delta["hists"]["abft.syndrome_margin"]["count"] == 0


def test_apply_delta_reconstructs_the_registry():
    recorder = WorkerRecorder()
    tel = recorder.telemetry
    tel.count("abft.checks", 2.0)
    for value in (1e-6, 1e-3, 5.0):
        tel.observe("abft.syndrome_margin", value)
    delta = recorder.delta()
    target = Registry()
    apply_delta(target, delta)
    assert target.counter("abft.checks").value == 2.0
    merged = target.get("abft.syndrome_margin")
    source = tel.registry.get("abft.syndrome_margin")
    assert merged.snapshot() == source.snapshot()


def test_apply_delta_accumulates_across_workers():
    target = Registry()
    for _ in range(3):
        recorder = WorkerRecorder()
        recorder.telemetry.count("abft.checks")
        recorder.telemetry.observe("abft.syndrome_margin", 1e-4)
        apply_delta(target, recorder.delta())
    assert target.counter("abft.checks").value == 3.0
    assert target.get("abft.syndrome_margin").count == 3


def test_apply_delta_rejects_malformed_payloads():
    with pytest.raises(ConfigurationError):
        apply_delta(Registry(), {"counters": "nope"})
    with pytest.raises(ConfigurationError):
        apply_delta(Registry(), {"hists": {"h": "nope"}})


def test_histogram_merge_rejects_bucket_mismatch():
    registry = Registry()
    hist = registry.histogram("h", (1.0, 2.0))
    with pytest.raises(ConfigurationError):
        hist.merge([0, 1], 1, 0, 1.5, 1.5, 1.5)  # needs len(edges)+1 slots


def test_merge_delta_emits_one_event_and_updates_registry():
    parent = Telemetry(exporter=InMemoryExporter(), clock=iter(range(100)).__next__)
    recorder = WorkerRecorder()
    recorder.telemetry.observe("kernel.spmv.seconds", 1e-3, buckets=DEFAULT_TIME_BUCKETS)
    delta = recorder.delta()
    merge_delta(parent, 2, delta)
    assert parent.registry.get("kernel.spmv.seconds").count == 1
    events = parent.events()
    assert len(events) == 1
    event = events[0]
    assert event["type"] == "delta"
    assert event["worker"] == 2
    assert event["hists"]["kernel.spmv.seconds"]["count"] == 1
    assert "t" in event


def test_merge_delta_is_a_noop_for_none_and_disabled():
    parent = Telemetry(exporter=InMemoryExporter())
    merge_delta(parent, 0, None)
    assert parent.events() == []
    disabled = Telemetry.disabled()
    recorder = WorkerRecorder()
    recorder.telemetry.count("abft.checks")
    merge_delta(disabled, 0, recorder.delta())
    assert disabled.registry.names() == ()
