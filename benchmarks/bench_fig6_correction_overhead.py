"""Figure 6 — error detection *and correction* overhead per matrix.

Every trial injects a guaranteed-visible error so all methods correct.
Paper result: ours 13.6 %..155.7 %; average reduction 43.8 % vs partial
recomputation [30] and 55.7 % vs complete recomputation [31].  The timed
unit is one ours-campaign on a mid-sized matrix.
"""

from conftest import CORRECTION_TRIALS, write_result

from repro.analysis import (
    compare_correction_overheads,
    mean,
    render_correction_comparison,
    run_correction_campaign,
)


def test_fig6_correction_overhead(benchmark, full_suite):
    comparison = compare_correction_overheads(
        full_suite, trials=CORRECTION_TRIALS, seed=0
    )
    report = render_correction_comparison(comparison)
    ours = comparison.overheads("ours")
    paper_note = (
        "paper: ours 13.6%..155.7%, reductions 43.8% (vs partial) / 55.7% (vs complete) | "
        f"measured: ours {min(ours):.1%}..{max(ours):.1%}, reductions "
        f"{comparison.average_reduction_vs('partial'):.1%} / "
        f"{comparison.average_reduction_vs('complete'):.1%}"
    )
    write_result("fig6_correction_overhead", f"{report}\n{paper_note}")

    # Ours wins on every matrix against both baselines.
    for index in range(len(comparison.names)):
        assert (
            comparison.timings["ours"][index].overhead
            < comparison.timings["partial"][index].overhead
        )
        assert (
            comparison.timings["ours"][index].overhead
            < comparison.timings["complete"][index].overhead
        )
    # Our model overshoots the paper's reductions (43.8 % / 55.7 %): the
    # baselines' blocking scalar round trips weigh heavier against our
    # reduced-scale matrices than on the authors' testbed.  The window
    # bounds the measured values; EXPERIMENTS.md discusses the gap.
    assert 0.3 < comparison.average_reduction_vs("partial") < 0.95
    assert 0.3 < comparison.average_reduction_vs("complete") < 0.95
    # On average, localization beats complete recomputation at these scales
    # (per-matrix it may not, for the smallest matrices — as in the paper,
    # where partial recomputation targets large problems).
    assert mean(comparison.overheads("partial")) != mean(
        comparison.overheads("complete")
    )

    matrix = full_suite[9][1]  # ex9
    benchmark.pedantic(
        lambda: run_correction_campaign(matrix, "ours", trials=4, seed=1),
        rounds=1,
        iterations=1,
    )
