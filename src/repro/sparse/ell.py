"""ELLPACK (ELL) sparse format: fixed-width padded rows.

The GPU-friendly counterpart to CSR: every row stores exactly ``width``
(column, value) slots, padding short rows, so threads across rows access
memory with perfect coalescing.  The cost is padding waste on irregular
matrices — quantified by :meth:`EllMatrix.padding_ratio`, the number the
plan-time format heuristics reject ELL on
(:data:`repro.sparse.formats.ELL_MAX_PADDING`).

ELL is a first-class dispatchable format: the planned executors in
:mod:`repro.perf.plan` and the ``("ell", ...)`` kernel sets in
:mod:`repro.kernels.ell` run the protected multiply directly on the
padded layout.  The summation contract is the row-wise pairwise ``sum``
over the fixed width — it depends only on ``width``, so
:meth:`EllMatrix.matvec_rows` reproduces any slice of
:meth:`EllMatrix.matvec` bit for bit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix, storage_dtype


class EllMatrix:
    """An immutable ELLPACK matrix.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        indices: ``(n_rows, width)`` int64 column indices; padded slots
            hold 0 and are marked in ``mask``.
        data: ``(n_rows, width)`` float64 or float32 values; padded slots
            hold 0.0 (the storage dtype round-trips through CSR).
        mask: ``(n_rows, width)`` bool; True for real entries.
    """

    __slots__ = ("shape", "indices", "data", "mask", "_row_nnz")

    def __init__(
        self,
        shape: Tuple[int, int],
        indices: np.ndarray,
        data: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=storage_dtype(data))
        self.mask = np.ascontiguousarray(mask, dtype=bool)
        self._row_nnz: Optional[np.ndarray] = None
        self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"negative dimension in shape {self.shape}")
        if not (self.indices.shape == self.data.shape == self.mask.shape):
            raise SparseFormatError(
                "indices, data and mask must share one (n_rows, width) shape"
            )
        if self.indices.ndim != 2 or self.indices.shape[0] != n_rows:
            raise SparseFormatError(
                f"expected ({n_rows}, width) arrays, got {self.indices.shape}"
            )
        if self.indices.size:
            if self.indices.min() < 0 or (n_cols and self.indices.max() >= n_cols):
                raise SparseFormatError("column index out of range")
            # reprolint: disable=ABFT003 -- structural invariant: ELL padding
            # slots must hold literal 0.0 (they are never computed values)
            if (self.data[~self.mask] != 0.0).any():
                raise SparseFormatError("padded slots must hold 0.0")

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CsrMatrix) -> "EllMatrix":
        """Convert a CSR matrix, padding every row to the maximum length."""
        n_rows, n_cols = csr.shape
        lengths = csr.row_lengths()
        width = int(lengths.max(initial=0))
        indices = np.zeros((n_rows, width), dtype=np.int64)
        data = np.zeros((n_rows, width), dtype=csr.data.dtype)
        mask = np.zeros((n_rows, width), dtype=bool)
        if csr.nnz:
            rows = csr.entry_rows()
            slots = np.arange(csr.nnz, dtype=np.int64) - np.repeat(
                csr.indptr[:-1], lengths
            )
            indices[rows, slots] = csr.indices
            data[rows, slots] = csr.data
            mask[rows, slots] = True
        return cls(csr.shape, indices, data, mask)

    def to_csr(self) -> CsrMatrix:
        """Convert back to CSR (padding dropped)."""
        rows, slots = np.nonzero(self.mask)
        return CooMatrix(
            self.shape, rows, self.indices[rows, slots], self.data[rows, slots]
        ).to_csr()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    #: Registry / dispatch name of this storage format.
    format_name = "ell"

    @property
    def width(self) -> int:
        """Stored slots per row (the maximum row length of the source)."""
        return int(self.indices.shape[1])

    @property
    def nnz(self) -> int:
        """Real (non-padding) entries."""
        return int(self.mask.sum())

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the values (the pipeline's working dtype)."""
        return self.data.dtype

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored slots that are padding (0 = perfectly regular)."""
        slots = self.mask.size
        return 1.0 - self.nnz / slots if slots else 0.0

    def row_nnz(self) -> np.ndarray:
        """Real entries per row (cached; read-only)."""
        if self._row_nnz is None:
            counts = self.mask.sum(axis=1).astype(np.int64)
            counts.flags.writeable = False
            self._row_nnz = counts
        return self._row_nnz

    def nnz_in_rows(self, row_start: int, row_stop: int) -> int:
        """Real-entry count of the row range ``[row_start, row_stop)``."""
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        return int(self.row_nnz()[row_start:row_stop].sum())

    def _check_row_range(self, row_start: int, row_stop: int) -> Tuple[int, int]:
        row_start, row_stop = int(row_start), int(row_stop)
        if not (0 <= row_start <= row_stop <= self.shape[0]):
            raise ShapeMismatchError(
                f"row range [{row_start}, {row_stop}) invalid for {self.shape[0]} rows"
            )
        return row_start, row_stop

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(
        self,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """SpMV; padded slots contribute exactly zero.

        ``out`` (float64, length ``n_rows``) and ``workspace`` (float64,
        shape ``(n_rows, width)``) let planned callers reuse buffers; the
        buffered path is bit-identical to the allocating one (elementwise
        multiply commutes; the row-wise pairwise sum depends only on
        ``width``).
        """
        b = np.asarray(b, dtype=self.data.dtype)
        if b.shape != (self.shape[1],):
            raise ShapeMismatchError(
                f"operand has shape {b.shape}, expected ({self.shape[1]},)"
            )
        if self.indices.size == 0:
            if out is None:
                return np.zeros(self.shape[0], dtype=self.data.dtype)
            out[:] = 0.0
            return out
        if workspace is None:
            products = self.data * b[self.indices]
        else:
            # mode="clip": gather in place (indices are validated in-range
            # at construction, so clipping never fires).
            np.take(b, self.indices, out=workspace, mode="clip")
            np.multiply(workspace, self.data, out=workspace)
            products = workspace
        if out is None:
            return products.sum(axis=1)
        return np.sum(products, axis=1, out=out)

    def matvec_rows(
        self,
        row_start: int,
        row_stop: int,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Partial SpMV over rows ``[row_start, row_stop)``.

        Bit-identical, row for row, to the corresponding slice of
        :meth:`matvec`: each row's pairwise reduction depends only on the
        fixed ``width``, not on which rows are computed.
        """
        row_start, row_stop = self._check_row_range(row_start, row_stop)
        b = np.asarray(b, dtype=self.data.dtype)
        if b.shape != (self.shape[1],):
            raise ShapeMismatchError(
                f"operand has shape {b.shape}, expected ({self.shape[1]},)"
            )
        n_local = row_stop - row_start
        if self.indices.size == 0 or n_local == 0:
            if out is None:
                return np.zeros(n_local, dtype=self.data.dtype)
            out[:] = 0.0
            return out
        indices = self.indices[row_start:row_stop]
        data = self.data[row_start:row_stop]
        if workspace is None:
            products = data * b[indices]
        else:
            view = workspace[:n_local]
            np.take(b, indices, out=view, mode="clip")
            np.multiply(view, data, out=view)
            products = view
        if out is None:
            return products.sum(axis=1)
        return np.sum(products, axis=1, out=out)

    def __matmul__(self, b: np.ndarray) -> np.ndarray:
        return self.matvec(b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EllMatrix(shape={self.shape}, width={self.width}, nnz={self.nnz}, "
            f"padding={self.padding_ratio:.1%})"
        )
