"""Fixture: stray order-sensitive reductions inside a kernel module."""

import numpy as np


def block_checksums(values, starts):
    return np.add.reduceat(values, starts)  # MARK:ABFT002


def total(values):
    return values.sum()  # MARK:ABFT002


def weighted(weights, values):
    return weights @ values  # MARK:ABFT002
