"""Robustness and lifecycle tests for the ``processes`` plan backend.

Failure semantics under test: a killed worker surfaces as
:class:`~repro.errors.WorkerCrashError`, a wedged one as
:class:`~repro.errors.WorkerTimeoutError` — typed errors within the
timeout, never a hang — after which the pool respawns lazily and keeps
producing the same bits.  Lifecycle: ``close()`` (and the atexit sweep)
unlinks the SharedMemory arena, so no segment outlives its plan; the
resource tracker never reports a leak.  Determinism: repeated seeded
runs emit bit-identical telemetry event streams.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.errors import (
    ConfigurationError,
    ParallelBackendError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.obs import InMemoryExporter, Telemetry
from repro.perf import ProtectedPlan
from repro.perf.process_backend import DEFAULT_SERIAL_CUTOFF, ProcessBackend
from repro.sparse import random_spd

N = 96
NNZ = 900
BLOCK = 16
N_SHARDS = 4

SRC = str(Path(__file__).resolve().parents[2] / "src")


class FakeClock:
    """Deterministic monotonic clock: each reading advances by ``step``."""

    def __init__(self, step: float = 0.001) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def make_plan(telemetry=None, timeout=None, **config_kwargs):
    matrix = random_spd(N, NNZ, seed=7)
    operator = FaultTolerantSpMV(
        matrix,
        config=AbftConfig(block_size=BLOCK, **config_kwargs),
        telemetry=telemetry,
    )
    options = {"serial_cutoff": 0}
    if timeout is not None:
        options["timeout"] = timeout
    return ProtectedPlan(
        operator, n_shards=N_SHARDS, parallel="processes", backend_options=options
    )


def operand():
    return np.random.default_rng(123).standard_normal(N)


def segment_path(backend):
    name = backend.arena_name
    assert name is not None
    return Path("/dev/shm") / name.lstrip("/")


# ----------------------------------------------------------------------
# Crash / timeout surfacing
# ----------------------------------------------------------------------
def test_killed_worker_raises_typed_error_not_hang():
    with make_plan(timeout=30.0) as plan:
        b = operand()
        reference = [float(v).hex() for v in plan.multiply(b.copy()).value]
        backend = plan.backend
        assert isinstance(backend, ProcessBackend)
        victim = backend._pool.workers[1].process
        victim.kill()
        victim.join(timeout=10.0)
        started = time.monotonic()
        with pytest.raises(WorkerCrashError):
            plan.multiply(b.copy())
        assert time.monotonic() - started < 30.0  # typed error, not a hang
        # The pool respawns lazily and the bits are unchanged.
        assert [float(v).hex() for v in plan.multiply(b.copy()).value] == reference


def test_wedged_worker_raises_timeout_error():
    with make_plan(timeout=1.0) as plan:
        b = operand()
        plan.multiply(b.copy())
        backend = plan.backend
        victim_pid = backend._pool.workers[0].process.pid
        os.kill(victim_pid, signal.SIGSTOP)
        try:
            started = time.monotonic()
            with pytest.raises(WorkerTimeoutError):
                plan.multiply(b.copy())
            elapsed = time.monotonic() - started
            assert elapsed < 15.0  # bounded: timeout + pool teardown
        finally:
            try:
                os.kill(victim_pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        # Recovery after the wedged pool is reaped.
        result = plan.multiply(b.copy())
        assert result.value.shape == (N,)


def test_worker_exception_is_marshalled_with_traceback():
    with make_plan() as plan:
        b = operand()
        plan.multiply(b.copy())
        backend = plan.backend
        # An out-of-range block id makes the worker raise mid-correct.
        bogus = np.array([10_000], dtype=np.int64)
        with pytest.raises(ParallelBackendError) as excinfo:
            backend.run_correct(b, [(0, bogus)], Telemetry(enabled=False))
        assert "worker 0 raised" in str(excinfo.value)
        # The pool survives an in-worker exception (no respawn needed).
        assert backend._pool is not None and backend._pool.alive
        plan.multiply(b.copy())


def test_errors_are_configuration_error_family():
    assert issubclass(WorkerCrashError, ConfigurationError)
    assert issubclass(WorkerTimeoutError, ConfigurationError)
    assert issubclass(ParallelBackendError, ConfigurationError)


# ----------------------------------------------------------------------
# SharedMemory lifecycle: no zombies, no tracker leaks
# ----------------------------------------------------------------------
def test_close_unlinks_segment_and_is_idempotent():
    plan = make_plan()
    backend = plan.backend
    path = segment_path(backend)
    plan.multiply(operand())
    assert path.exists()
    plan.close()
    assert not path.exists()
    assert backend.closed and not backend.parallel_active
    plan.close()  # idempotent
    with pytest.raises(ParallelBackendError):
        backend.run_detect(operand(), Telemetry(enabled=False))


def test_crash_leaves_no_zombie_segment_after_close():
    plan = make_plan(timeout=30.0)
    backend = plan.backend
    path = segment_path(backend)
    plan.multiply(operand())
    backend._pool.workers[0].process.kill()
    with pytest.raises(WorkerCrashError):
        plan.multiply(operand())
    assert path.exists()  # arena survives the crash for lazy respawn
    plan.close()
    assert not path.exists()


_SUBPROCESS_PROLOGUE = textwrap.dedent(
    """
    import numpy as np
    from repro.core import AbftConfig, FaultTolerantSpMV
    from repro.perf import ProtectedPlan
    from repro.sparse import random_spd

    op = FaultTolerantSpMV(random_spd(96, 900, seed=7),
                           config=AbftConfig(block_size=16))
    plan = ProtectedPlan(op, n_shards=4, parallel="processes",
                         backend_options={"serial_cutoff": 0})
    b = np.random.default_rng(123).standard_normal(96)
    plan.multiply(b)
    print("SEGMENT", plan.backend.arena_name)
    """
)


def _run_subprocess(epilogue):
    result = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_PROLOGUE + textwrap.dedent(epilogue)],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    assert result.returncode == 0, result.stderr
    segment = None
    for line in result.stdout.splitlines():
        if line.startswith("SEGMENT "):
            segment = line.split(" ", 1)[1].strip()
    assert segment
    return segment, result.stderr


@pytest.mark.parametrize("epilogue", ["plan.close()", ""], ids=["close", "atexit"])
def test_no_tracker_leak_warnings_and_no_segment_left(epilogue):
    """Both explicit close and interpreter-exit cleanup leave nothing:
    no /dev/shm segment, no resource_tracker 'leaked' warning, no
    KeyError noise from double-unregistration."""
    segment, stderr = _run_subprocess(epilogue)
    assert not (Path("/dev/shm") / segment.lstrip("/")).exists()
    assert "leaked shared_memory" not in stderr
    assert "resource_tracker" not in stderr
    assert "Traceback" not in stderr


# ----------------------------------------------------------------------
# Dormancy below the cutoff
# ----------------------------------------------------------------------
def test_backend_stays_dormant_below_cutoff():
    matrix = random_spd(N, NNZ, seed=7)
    operator = FaultTolerantSpMV(matrix, config=AbftConfig(block_size=BLOCK))
    plan = ProtectedPlan(operator, n_shards=N_SHARDS, parallel="processes")
    backend = plan.backend
    assert matrix.nnz + matrix.n_rows < DEFAULT_SERIAL_CUTOFF
    assert not backend.parallel_active
    assert backend.arena_name is None
    # Sequential semantics, no workers ever spawned.
    result = plan.multiply(operand())
    assert backend._pool is None
    reference = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK)
    ).multiply(operand())
    assert [float(v).hex() for v in result.value] == [
        float(v).hex() for v in reference.value
    ]


# ----------------------------------------------------------------------
# Telemetry determinism
# ----------------------------------------------------------------------
def _seeded_event_stream():
    telemetry = Telemetry(exporter=InMemoryExporter(), clock=FakeClock())
    with make_plan(telemetry=telemetry) as plan:
        b = operand()
        for _ in range(3):
            plan.multiply(b.copy())
    return telemetry.events()


def _normalized(event):
    """Strip worker wall-clock payloads; keep everything deterministic.

    ``delta`` events carry real worker timings (bucket placement, sums,
    extrema vary run to run) but their *shape* — worker order, instrument
    names, observation counts — must be bit-identical.
    """
    if event.get("type") != "delta":
        return event
    return {
        "type": "delta",
        "worker": event["worker"],
        "counters": event["counters"],
        "gauges": sorted(event["gauges"]),
        "hists": {name: hist["count"] for name, hist in event["hists"].items()},
        "t": event["t"],
    }


def test_repeated_seeded_runs_emit_bit_identical_event_streams():
    first = _seeded_event_stream()
    second = _seeded_event_stream()
    assert [_normalized(e) for e in first] == [_normalized(e) for e in second]
    # Non-delta events (parent-side, fake-clocked) stay bit-identical.
    assert [e for e in first if e["type"] != "delta"] == [
        e for e in second if e["type"] != "delta"
    ]
    deltas = [e for e in first if e["type"] == "delta"]
    # 4 workers per multiply, 3 multiplies, merged in ascending worker id.
    assert [e["worker"] for e in deltas] == [0, 1, 2, 3] * 3
    for event in deltas:
        hists = event["hists"]
        assert hists["kernel.detect_shard.seconds"]["count"] == 1
        assert hists["span.plan.shard.seconds"]["count"] == 1


def test_worker_deltas_merge_into_parent_registry():
    telemetry = Telemetry(exporter=InMemoryExporter())
    with make_plan(telemetry=telemetry) as plan:
        plan.multiply(operand())
        detect = telemetry.registry.get("kernel.detect_shard.seconds")
        assert detect.count == N_SHARDS
        assert detect.sum > 0.0
        shard_spans = telemetry.registry.get("span.plan.shard.seconds")
        assert shard_spans.count == N_SHARDS
        # The correct path ships deltas too: run it directly on one shard.
        backend = plan.backend
        results = backend.run_correct(
            operand(), [(0, np.array([0], dtype=np.int64))], telemetry
        )
        assert len(results) == 1
        corrected = telemetry.registry.get("kernel.correct_shard.seconds")
        assert corrected.count == 1
        # The worker-side TimedKernels wrap times the fused correction ops.
        assert telemetry.registry.get("kernel.correct_blocks.seconds").count >= 1


def test_disabled_telemetry_ships_no_deltas():
    with make_plan() as plan:
        result = plan.multiply(operand())
        assert result.clean
        backend = plan.backend
        assert backend._pool is not None  # engaged, yet nothing recorded
