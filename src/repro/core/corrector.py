"""Partial recomputation of flagged blocks (Figure 1, step 5).

Correction is a row-range SpMV per flagged block: because the detector
already localized errors to blocks, no other rows are touched.  The cost
scales with the nnz of the flagged rows only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.blocking import BlockPartition
from repro.kernels import resolve_kernels
from repro.machine import KernelCost, log2ceil
from repro.sparse.csr import CsrMatrix

#: Hook invoked after each numeric stage: ``tamper(stage, data, work)``.
#: ``data`` is a mutable array view — fault campaigns corrupt it in place.
TamperHook = Callable[[str, np.ndarray, float], None]


@dataclass(frozen=True)
class CorrectionOutcome:
    """Accounting of one correction round."""

    blocks: np.ndarray
    rows_recomputed: int
    nnz_recomputed: int

    @property
    def cost(self) -> KernelCost:
        """Kernel cost of the partial recomputation (one fused kernel)."""
        return KernelCost(2.0 * self.nnz_recomputed, log2ceil(max(1, self.nnz_recomputed)))


def correct_blocks(
    matrix: CsrMatrix,
    partition: BlockPartition,
    b: np.ndarray,
    r: np.ndarray,
    blocks: np.ndarray,
    tamper: Optional[TamperHook] = None,
    kernel: object = None,
) -> CorrectionOutcome:
    """Recompute the result rows of ``blocks`` in place.

    Args:
        matrix: the input matrix ``A``.
        partition: its row-block partition.
        b: operand vector.
        r: result vector, corrected in place.
        blocks: flagged block indices.
        tamper: optional fault hook; receives each recomputed segment so
            campaigns can corrupt corrections too (errors do not pause
            while the scheme repairs earlier errors).
        kernel: :mod:`repro.kernels` selection (name, instance, or None
            for the configured default); ``"vectorized"`` recomputes all
            flagged blocks in one fused gather/segment-sum kernel.

    Returns:
        Row/nnz accounting for the round.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    rows, nnz = resolve_kernels(kernel).correct_blocks(
        matrix, partition, b, r, blocks, tamper
    )
    return CorrectionOutcome(blocks=blocks, rows_recomputed=rows, nnz_recomputed=nnz)
