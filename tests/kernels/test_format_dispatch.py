"""(format × impl) kernel dispatch and format-kernel differential tests.

Two contracts are pinned here:

* the registry resolves two-axis ``(sparse_format, impl)`` keys while
  format-agnostic callers keep seeing the historical CSR-only view;
* the BSR/ELL kernel sets agree with the CSR reference — bit-for-bit
  where the design promises exactness (``encode`` delegates through the
  exact ``to_csr`` round trip; ``correct_*``/``row_checksums`` replay
  the storage format's own summation, so restoring an uncorrupted
  segment reproduces the format matvec's bits).
"""

import numpy as np
import pytest

from repro.core.blocking import BlockPartition
from repro.errors import ConfigurationError
from repro.kernels import (
    BUILTIN_KERNEL_KEYS,
    DEFAULT_KERNEL_FORMAT,
    KERNEL_ENV_VAR,
    available_kernel_keys,
    available_kernels,
    get_kernels,
    register_kernels,
    resolve_kernels,
    unregister_kernels,
)
from repro.kernels.bsr import BsrNaiveKernels, BsrVectorizedKernels
from repro.kernels.ell import EllNaiveKernels, EllVectorizedKernels
from repro.sparse import BsrMatrix, EllMatrix, block_stencil_spd, random_spd

N, NNZ, BLOCK = 96, 900, 16


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)


@pytest.fixture
def csr():
    return random_spd(N, NNZ, seed=99)


@pytest.fixture
def partition():
    return BlockPartition(N, BLOCK)


@pytest.fixture
def b():
    return np.random.default_rng(5).standard_normal(N)


def _format_matrix(csr, sparse_format):
    if sparse_format == "bsr":
        return BsrMatrix.from_csr(csr, 8)
    return EllMatrix.from_csr(csr)


# ----------------------------------------------------------------------
# Registry: the two-axis view
# ----------------------------------------------------------------------
def test_builtin_keys_are_registered():
    keys = available_kernel_keys()
    for key in BUILTIN_KERNEL_KEYS:
        assert key in keys


def test_per_format_impl_listings():
    assert available_kernels("bsr") == ("naive", "vectorized")
    assert available_kernels("ell") == ("naive", "vectorized")
    # The format-agnostic view stays the historical CSR one.
    assert available_kernels() == available_kernels(DEFAULT_KERNEL_FORMAT)
    assert "parallel" in available_kernels()
    assert "parallel" not in available_kernels("bsr")


@pytest.mark.parametrize(
    "sparse_format,impl,cls",
    [
        ("bsr", "naive", BsrNaiveKernels),
        ("bsr", "vectorized", BsrVectorizedKernels),
        ("ell", "naive", EllNaiveKernels),
        ("ell", "vectorized", EllVectorizedKernels),
    ],
)
def test_get_kernels_two_axis(sparse_format, impl, cls):
    kernels = get_kernels(impl, sparse_format)
    assert isinstance(kernels, cls)
    assert kernels.sparse_format == sparse_format
    assert kernels.name == impl


def test_get_kernels_unknown_format_axis():
    with pytest.raises(ConfigurationError, match="unknown kernel set"):
        get_kernels("vectorized", "coo")


def test_available_kernels_rejects_unknown_format():
    with pytest.raises(ConfigurationError, match="registered formats"):
        available_kernels("coo")
    with pytest.raises(ConfigurationError, match="unknown kernel set"):
        get_kernels("parallel", "bsr")  # no BSR parallel impl ships


def test_env_override_moves_impl_axis_only(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "naive")
    resolved = resolve_kernels("vectorized", sparse_format="bsr")
    assert resolved.name == "naive"
    assert resolved.sparse_format == "bsr"


def test_register_unregister_custom_format_set():
    class _CustomBsr(BsrNaiveKernels):
        name = "custom-tiles"

    register_kernels(_CustomBsr())
    try:
        assert get_kernels("custom-tiles", "bsr").sparse_format == "bsr"
        # The CSR axis is untouched.
        with pytest.raises(ConfigurationError):
            get_kernels("custom-tiles")
    finally:
        unregister_kernels("custom-tiles", "bsr")
    with pytest.raises(ConfigurationError):
        get_kernels("custom-tiles", "bsr")


def test_builtins_cannot_be_unregistered():
    with pytest.raises(ConfigurationError, match="cannot be removed"):
        unregister_kernels("vectorized", "bsr")


# ----------------------------------------------------------------------
# Format-kernel differential: encode is bit-exact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sparse_format", ["bsr", "ell"])
@pytest.mark.parametrize("impl", ["naive", "vectorized"])
def test_encode_bit_identical_to_csr(csr, partition, sparse_format, impl):
    """Format encode delegates through the exact to_csr round trip, so
    the checksum matrix matches the CSR scheme's bit for bit."""
    weights = np.ones(N)
    reference = get_kernels("vectorized").encode(csr, partition, weights)
    matrix = _format_matrix(csr, sparse_format)
    encoded = get_kernels(impl, sparse_format).encode(matrix, partition, weights)
    assert encoded == reference


# ----------------------------------------------------------------------
# Format-kernel differential: recomputation replays the format's bits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sparse_format", ["bsr", "ell"])
@pytest.mark.parametrize("impl", ["naive", "vectorized"])
def test_correct_blocks_restores_format_matvec_bits(
    csr, partition, b, sparse_format, impl
):
    matrix = _format_matrix(csr, sparse_format)
    kernels = get_kernels(impl, sparse_format)
    clean = matrix.matvec(b)
    r = clean.copy()
    blocks = np.array([0, 2, partition.n_blocks - 1])
    for block in blocks:
        start, stop = partition.bounds(int(block))
        r[start:stop] = np.nan
    rows, nnz = kernels.correct_blocks(matrix, partition, b, r, blocks)
    np.testing.assert_array_equal(r, clean)
    assert rows == sum(
        partition.bounds(int(blk))[1] - partition.bounds(int(blk))[0]
        for blk in blocks
    )
    assert nnz == sum(
        matrix.nnz_in_rows(*partition.bounds(int(blk))) for blk in blocks
    )


@pytest.mark.parametrize("sparse_format", ["bsr", "ell"])
@pytest.mark.parametrize("impl", ["naive", "vectorized"])
def test_row_checksums_match_format_matvec(csr, partition, b, sparse_format, impl):
    matrix = _format_matrix(csr, sparse_format)
    kernels = get_kernels(impl, sparse_format)
    clean = matrix.matvec(b)
    rows = np.array([0, 7, 40, N - 1])
    values, nnz = kernels.row_checksums(matrix, rows, b)
    np.testing.assert_array_equal(values, clean[rows])
    assert nnz == sum(matrix.nnz_in_rows(int(i), int(i) + 1) for i in rows)


@pytest.mark.parametrize("sparse_format", ["bsr", "ell"])
@pytest.mark.parametrize("impl", ["naive", "vectorized"])
def test_correct_cells_restores_multi_rhs_bits(
    csr, partition, sparse_format, impl
):
    matrix = _format_matrix(csr, sparse_format)
    kernels = get_kernels(impl, sparse_format)
    n_rhs = 3
    B = np.random.default_rng(11).standard_normal((N, n_rhs))
    clean = np.column_stack([matrix.matvec(B[:, j]) for j in range(n_rhs)])
    r = clean.copy()
    cells = np.array([[0, 1], [3, 0], [partition.n_blocks - 1, 2]])
    for block, col in cells:
        start, stop = partition.bounds(int(block))
        r[start:stop, col] = np.inf
    kernels.correct_cells(matrix, partition, B, r, cells)
    np.testing.assert_array_equal(r, clean)


@pytest.mark.parametrize("sparse_format", ["bsr", "ell"])
def test_tamper_hook_sequence_matches_csr(csr, partition, b, sparse_format):
    """Fault campaigns replay identically: one 'corrected' call per block,
    in block order, with the same work charges as the CSR reference."""
    matrix = _format_matrix(csr, sparse_format)
    blocks = np.array([1, 4])

    def run(kernels, source):
        calls = []
        r = source.matvec(b)

        def hook(stage, data, work):
            calls.append((stage, data.shape, work))

        kernels.correct_blocks(source, partition, b, r, blocks, tamper=hook)
        return calls

    reference = run(get_kernels("naive"), csr)
    observed = run(get_kernels("naive", sparse_format), matrix)
    assert [c[:2] for c in observed] == [c[:2] for c in reference]
    assert [c[0] for c in observed] == ["corrected"] * blocks.size


def test_bsr_correction_on_block_structured_matrix():
    """The FEM-style case BSR exists for: dense tiles, perfect fill."""
    csr = block_stencil_spd(12, 8, seed=13)
    part = BlockPartition(csr.n_rows, 8)
    bsr = BsrMatrix.from_csr(csr, 8)
    assert bsr.fill_ratio == 1.0
    b = np.random.default_rng(17).standard_normal(csr.n_cols)
    clean = bsr.matvec(b)
    r = clean.copy()
    r[8:16] = -1.0
    get_kernels("vectorized", "bsr").correct_blocks(
        bsr, part, b, r, np.array([1])
    )
    np.testing.assert_array_equal(r, clean)
