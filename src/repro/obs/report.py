"""Markdown campaign reports from telemetry event logs.

``python -m repro.obs report events.jsonl [more.jsonl ...]`` renders one
markdown document summarizing a protection campaign: protocol counter
totals, the span time breakdown, percentiles of the protocol's key
distributions (syndrome margins, block recompute fractions, kernel and
span wall times) and — for cross-process runs — the per-worker balance
table built from merged worker deltas.

Each input log becomes one section, so a campaign that ran the same
workload under several schemes (one log per scheme) reads as a
side-by-side comparison.  Percentiles come from raw observed values
where the log carries them and from histogram bucket counts (upper
bucket edge, clamped to observed extremes) where only worker deltas are
available.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.obs.summary import (
    EventSummary,
    _percentile,
)

#: Counter names leading the report (the protocol's headline numbers);
#: any other counters follow alphabetically.
HEADLINE_COUNTERS = (
    "abft.checks",
    "abft.detections",
    "abft.corrections",
    "abft.blocks_recomputed",
    "abft.false_positive_candidates",
    "obs.events_dropped",
)


def _fmt(value: object) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        return f"{value:.4g}"
    return str(value)


def _table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(" --- " for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return lines


def _counter_rows(summary: EventSummary) -> List[Sequence[object]]:
    rows: List[Sequence[object]] = []
    seen = set()
    for name in HEADLINE_COUNTERS:
        if name in summary.counters:
            rows.append((name, f"{summary.counters[name]:g}"))
            seen.add(name)
    for name in sorted(summary.counters):
        if name not in seen:
            rows.append((name, f"{summary.counters[name]:g}"))
    return rows


def _distribution_rows(summary: EventSummary) -> List[Sequence[object]]:
    """Percentile rows for every distribution the log carries.

    Raw value lists answer with exact order statistics; bucketed worker
    histograms answer from their bucket counts.
    """
    rows: List[Sequence[object]] = []
    for name in sorted(summary.histogram_values):
        values = summary.histogram_values[name]
        finite = sorted(v for v in values if math.isfinite(v))
        if not finite:
            continue
        rows.append(
            (
                name,
                len(values),
                _percentile(finite, 0.5),
                _percentile(finite, 0.9),
                _percentile(finite, 0.99),
                finite[-1],
            )
        )
    for name in sorted(summary.histograms):
        hist = summary.histograms[name]
        if not hist.count:
            continue
        rows.append(
            (
                f"{name} (worker)",
                hist.count,
                hist.quantile(0.5),
                hist.quantile(0.9),
                hist.quantile(0.99),
                hist.max,
            )
        )
    return rows


def _span_rows(summary: EventSummary) -> List[Sequence[object]]:
    ordered = sorted(
        summary.spans.items(), key=lambda kv: (kv[1].depth, -kv[1].total, kv[0])
    )
    return [
        (name, stats.count, stats.total, stats.mean, stats.max)
        for name, stats in ordered
    ]


def _worker_rows(summary: EventSummary) -> List[Sequence[object]]:
    return [
        (
            worker,
            stats.deltas,
            stats.kernel_count,
            stats.kernel_seconds,
            stats.span_count,
            stats.span_seconds,
        )
        for worker, stats in sorted(summary.workers.items())
    ]


def render_report(sections: Sequence[Tuple[str, EventSummary]]) -> str:
    """Render labeled summaries as one markdown campaign report."""
    lines: List[str] = ["# Telemetry campaign report", ""]
    for label, summary in sections:
        lines += [f"## {label}", ""]
        meta = f"{summary.n_events} events"
        if summary.skipped_lines:
            meta += f", {summary.skipped_lines} corrupt line(s) skipped"
        lines += [meta, ""]
        if summary.counters:
            lines += ["### Protocol counters", ""]
            lines += _table(("counter", "total"), _counter_rows(summary))
            lines.append("")
        distributions = _distribution_rows(summary)
        if distributions:
            lines += ["### Distributions", ""]
            lines += _table(
                ("metric", "n", "p50", "p90", "p99", "max"), distributions
            )
            lines.append("")
        if summary.spans:
            lines += ["### Span breakdown", ""]
            lines += _table(
                ("span", "count", "total [s]", "mean [s]", "max [s]"),
                _span_rows(summary),
            )
            lines.append("")
        if summary.workers:
            lines += ["### Worker balance", ""]
            lines += _table(
                (
                    "worker",
                    "deltas",
                    "kernel calls",
                    "kernel time [s]",
                    "spans",
                    "span time [s]",
                ),
                _worker_rows(summary),
            )
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"
