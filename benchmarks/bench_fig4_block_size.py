"""Figure 4 — SpMV detection overhead as a function of the block size.

Paper result: average overhead 83.7 % at block size 1, falling to a
minimum of 43.0 % at block size 32, rising again toward 512.  The sweep
runs over all 25 suite matrices on the modeled machine; the timed unit is
one full per-matrix block-size sweep.
"""

from conftest import write_result

from repro.analysis import (
    FIGURE4_BLOCK_SIZES,
    column_curve,
    render_block_size_sweep,
    sweep_block_sizes,
)


def test_fig4_block_size_sweep(benchmark, full_suite):
    sweep = sweep_block_sizes(full_suite, block_sizes=FIGURE4_BLOCK_SIZES)
    report = render_block_size_sweep(sweep)

    averages = dict(zip(sweep.block_sizes, sweep.averages()))
    paper_note = (
        f"paper: 83.7% at b_s=1, minimum 43.0% at b_s=32 | "
        f"measured: {averages[1]:.1%} at b_s=1, "
        f"{averages[32]:.1%} at b_s=32"
    )
    curve = column_curve(
        list(sweep.block_sizes),
        list(sweep.averages()),
        height=10,
        title="average detection overhead by block size",
        formatter=lambda v: f"{v:.1%}",
    )
    write_result("fig4_block_size", f"{report}\n\n{curve}\n\n{paper_note}")

    # Shape assertions: a U with its floor in the paper's region.
    assert sweep.best_block_size() in (16, 32, 64)
    assert averages[1] > averages[32]
    assert averages[512] > averages[32]
    assert 0.5 < averages[1] < 1.3
    assert 0.2 < averages[32] < 0.6

    benchmark.pedantic(
        lambda: sweep_block_sizes(full_suite[:4], block_sizes=FIGURE4_BLOCK_SIZES),
        rounds=1,
        iterations=1,
    )
