"""Tuning the ABFT block size for a workload (the paper's Figure 4 study).

The block size ``b_s`` trades the operand-checksum cost ``t1 = C b``
(cheaper with large blocks — fewer checksum rows) against the result-
checksum reduction depth (cheaper with small blocks).  This example sweeps
``b_s`` for a few matrices of different sizes on the simulated K80 machine
and prints where the detection-overhead minimum lands, plus how the
checksum matrix's sparsity responds.

Run:  python examples/block_size_tuning.py
"""

from repro.analysis import detection_overhead
from repro.core import ChecksumMatrix
from repro.sparse import iter_suite

BLOCK_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
MATRICES = ("nos3", "bcsstk13", "s3rmt3m3", "msc10848")


def main() -> None:
    print(f"{'matrix':12s} {'nnz':>9s}  " + "".join(f"{bs:>8d}" for bs in BLOCK_SIZES))
    best = {}
    for spec, matrix in iter_suite(names=MATRICES):
        overheads = [
            detection_overhead(matrix, "block", block_size=bs) for bs in BLOCK_SIZES
        ]
        best[spec.name] = BLOCK_SIZES[overheads.index(min(overheads))]
        row = "".join(f"{o:8.1%}" for o in overheads)
        print(f"{spec.name:12s} {matrix.nnz:>9d}  {row}")

    print("\nchecksum-matrix sparsity nnz(C)/nnz(A):")
    print(f"{'matrix':12s}  " + "".join(f"{bs:>8d}" for bs in BLOCK_SIZES))
    for spec, matrix in iter_suite(names=MATRICES):
        gains = [
            ChecksumMatrix.build(matrix, block_size=bs).sparsity_gain
            for bs in BLOCK_SIZES
        ]
        print(f"{spec.name:12s}  " + "".join(f"{g:8.2f}" for g in gains))

    print("\nper-matrix optimal block sizes:", best)
    print("the paper settles on b_s = 32 for the whole suite (Section V-A)")


if __name__ == "__main__":
    main()
