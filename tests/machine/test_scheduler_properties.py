"""Property-based tests for the scheduler: Brent bounds and monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import DeviceParams, Machine, TaskGraph


@st.composite
def random_graphs(draw, max_tasks=8):
    n = draw(st.integers(1, max_tasks))
    g = TaskGraph()
    names = [f"t{i}" for i in range(n)]
    for i, name in enumerate(names):
        work = draw(st.floats(0.0, 1e4, allow_nan=False))
        span = draw(st.floats(0.0, 20.0, allow_nan=False))
        n_deps = draw(st.integers(0, i))
        deps = draw(
            st.lists(
                st.sampled_from(names[:i]) if i else st.nothing(),
                min_size=min(n_deps, i),
                max_size=min(n_deps, i),
                unique=True,
            )
        ) if i else []
        g.add(name, work=work, span=span, deps=deps)
    return g


@st.composite
def devices(draw):
    return DeviceParams(
        name="prop",
        throughput=draw(st.floats(1.0, 1e6, allow_nan=False)),
        launch_overhead=draw(st.floats(0.0, 10.0, allow_nan=False)),
        sync_time=draw(st.floats(0.0, 10.0, allow_nan=False)),
        streams=draw(st.integers(1, 4)),
        concurrency_boost=draw(st.floats(0.0, 0.5, allow_nan=False)),
    )


@settings(max_examples=80, deadline=None)
@given(random_graphs(), devices())
def test_makespan_between_brent_bounds_and_serial_time(graph, params):
    machine = Machine(params)
    makespan = machine.makespan(graph)
    # With k concurrent kernels the device peaks at
    # throughput * (1 + boost * (streams - 1)).
    peak = params.throughput * (1.0 + params.concurrency_boost * (params.streams - 1))
    work_bound = graph.total_work() / peak
    assert makespan >= work_bound - 1e-6 * max(1.0, work_bound)
    serial = machine.serial_time(graph)
    assert makespan <= serial + 1e-6 * max(1.0, serial)
    if params.streams >= len(graph):
        span_bound, _ = graph.critical_path(
            params.throughput, params.launch_overhead, params.sync_time
        )
        assert makespan >= span_bound - 1e-6 * max(1.0, span_bound)


@settings(max_examples=60, deadline=None)
@given(random_graphs(), devices())
def test_schedule_respects_dependencies(graph, params):
    schedule = Machine(params).schedule(graph)
    for task in graph.tasks():
        for dep in task.deps:
            assert (
                schedule.timings[task.name].start
                >= schedule.timings[dep].finish - 1e-9
            )


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_more_throughput_never_slower(graph):
    slow = Machine(
        DeviceParams(
            throughput=10.0, launch_overhead=0.1, sync_time=0.01, concurrency_boost=0.0
        )
    )
    fast = Machine(
        DeviceParams(
            throughput=100.0, launch_overhead=0.1, sync_time=0.01, concurrency_boost=0.0
        )
    )
    assert fast.makespan(graph) <= slow.makespan(graph) + 1e-9


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_makespan_deterministic(graph):
    machine = Machine(DeviceParams(throughput=7.0, launch_overhead=0.3, sync_time=0.05))
    assert machine.makespan(graph) == machine.makespan(graph)
