"""Named execution backends for the planned protected SpMV.

A :class:`~repro.perf.plan.ProtectedPlan` separates *what* each shard
computes (the fused SpMV + checksum + comparison pipeline, bit-identical
across every execution strategy) from *where* the shards run.  The
latter is a registered **backend**:

* ``"serial"`` — shards run one after another in the calling thread
  (the reference semantics every other backend is differentially tested
  against);
* ``"threads"`` — shards fan out on the process-wide
  :class:`~concurrent.futures.ThreadPoolExecutor` shared with
  :class:`repro.kernels.parallel.ParallelKernels`.  NumPy releases the
  GIL inside the ufunc inner loops, but the Python-level fan-out still
  serializes on it — threads win only for mid-size inputs;
* ``"processes"`` — shards run on a persistent pool of worker
  *processes* mapping the plan's buffers zero-copy from shared memory
  (:mod:`repro.perf.process_backend`), the true-multicore path.

Selection mirrors :mod:`repro.kernels` and :mod:`repro.schemes`: a
registered name is chosen via ``AbftConfig(parallel=...)``, overridden
process-wide by the :data:`BACKEND_ENV_VAR` environment variable
(``REPRO_PARALLEL``), with an explicit ``parallel=`` argument to
:class:`~repro.perf.plan.ProtectedPlan` beating both (tests pin a
backend regardless of the environment that way).  When nothing chooses,
plans over :class:`~repro.kernels.parallel.ParallelKernels` default to
``"threads"`` (the pre-registry behaviour) and everything else to
``"serial"``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.obs import Telemetry
    from repro.perf.plan import ProtectedPlan, ShardCorrection

#: Environment variable overriding the configured backend process-wide.
BACKEND_ENV_VAR = "REPRO_PARALLEL"

#: Backend used when neither code nor the environment selects one.
DEFAULT_BACKEND = "serial"

#: Names that ship built in (and cannot be unregistered).
BUILTIN_BACKENDS = ("processes", "serial", "threads")

#: ``(shard_id, owned flagged blocks)`` pairs of one correction round.
Owned = Sequence[Tuple[int, np.ndarray]]


class PlanBackend:
    """Execution strategy bound to one plan.  The base class is serial.

    A backend provides three services to its plan:

    * :meth:`alloc` — allocate a named plan buffer.  The base class
      hands out ordinary heap arrays; the process backend carves the
      same buffers out of a :class:`~repro.perf.shm.Arena` so workers
      can map them;
    * :meth:`run_detect` / :meth:`run_correct` — execute the fused
      per-shard tasks.  Implementations may distribute them anywhere
      but must preserve the per-shard math bit for bit (the
      cross-backend differential matrix enforces this);
    * :meth:`close` — release whatever the strategy holds (threads and
      serial hold nothing; processes hold workers and shared memory).
    """

    name = "serial"

    def __init__(self, plan: "ProtectedPlan") -> None:
        self.plan = plan

    @property
    def parallel_active(self) -> bool:
        """Whether the plan should take the fused multi-shard path."""
        return False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has permanently retired the backend."""
        return False

    def alloc(self, name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
        """Allocate the named plan buffer (heap by default)."""
        return np.empty(shape, dtype=np.dtype(dtype))

    def run_detect(self, b: np.ndarray, telemetry: "Telemetry") -> None:
        """Run every shard's fused detect task."""
        for i in range(self.plan.spmv.n_shards):
            self.plan._detect_shard(i, b, telemetry)

    def run_correct(
        self, b: np.ndarray, owned: Owned, telemetry: "Telemetry"
    ) -> List["ShardCorrection"]:
        """Run the owned correction tasks; results in ``owned`` order."""
        return [
            self.plan._correct_shard(shard_id, b, blocks, telemetry)
            for shard_id, blocks in owned
        ]

    def close(self) -> None:
        """Release backend resources (idempotent; no-op by default)."""

    def __enter__(self) -> "PlanBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ThreadsBackend(PlanBackend):
    """Shard fan-out on the shared kernel thread pool (the legacy path).

    Worker count follows the operator's
    :class:`~repro.kernels.parallel.ParallelKernels` when one is
    configured (so ``REPRO_KERNEL_WORKERS`` keeps steering it),
    otherwise one thread per shard.
    """

    name = "threads"

    @property
    def parallel_active(self) -> bool:
        return True

    @property
    def n_workers(self) -> int:
        parallel = self.plan._parallel
        if parallel is not None:
            return parallel.n_workers
        return max(1, self.plan.spmv.n_shards)

    def run_detect(self, b: np.ndarray, telemetry: "Telemetry") -> None:
        from repro.kernels.parallel import get_executor

        executor = get_executor(self.n_workers)
        futures = [
            executor.submit(self.plan._detect_shard, i, b, telemetry)
            for i in range(self.plan.spmv.n_shards)
        ]
        for future in futures:
            future.result()

    def run_correct(
        self, b: np.ndarray, owned: Owned, telemetry: "Telemetry"
    ) -> List["ShardCorrection"]:
        if len(owned) == 1:
            shard_id, blocks = owned[0]
            return [self.plan._correct_shard(shard_id, b, blocks, telemetry)]
        from repro.kernels.parallel import get_executor

        executor = get_executor(self.n_workers)
        futures = [
            executor.submit(self.plan._correct_shard, shard_id, b, blocks, telemetry)
            for shard_id, blocks in owned
        ]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
BackendFactory = Callable[..., PlanBackend]

_REGISTRY: Dict[str, BackendFactory] = {}
_PROTECTED: Set[str] = set()


def register_backend(
    name: str, factory: BackendFactory, overwrite: bool = False
) -> None:
    """Register a plan-backend factory under ``name``.

    The factory is called as ``factory(plan, **options)`` and must
    return a :class:`PlanBackend` bound to that plan.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ConfigurationError(f"backend factory for {name!r} must be callable")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass overwrite=True to replace"
        )
    if name in _PROTECTED and name not in BUILTIN_BACKENDS:
        raise ConfigurationError(f"backend {name!r} is protected")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (built-ins are protected)."""
    if name in _PROTECTED:
        raise ConfigurationError(f"built-in backend {name!r} cannot be unregistered")
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        )
    del _REGISTRY[name]


def available_backends() -> Tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def get_backend_factory(name: str) -> BackendFactory:
    """Look up a backend factory by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        ) from None


def canonical_backend_name(name: str) -> str:
    """Validate ``name`` against the registry and return it."""
    get_backend_factory(name)
    return name


def resolve_backend_name(
    configured: Optional[str],
    explicit: Optional[str] = None,
    default: str = DEFAULT_BACKEND,
) -> str:
    """Resolve a backend selection to a registered name.

    Priority mirrors :func:`repro.kernels.resolve_kernels`:

    1. an ``explicit`` name passed in code (tests pinning a backend);
    2. the :data:`BACKEND_ENV_VAR` environment variable, which
       overrides every *configured* name process-wide;
    3. the ``configured`` name (``AbftConfig.parallel``);
    4. the caller's ``default``.
    """
    if explicit is not None:
        return canonical_backend_name(explicit)
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        try:
            return canonical_backend_name(env)
        except ConfigurationError:
            raise ConfigurationError(
                f"{BACKEND_ENV_VAR}={env!r} does not name a registered backend; "
                f"expected one of {available_backends()}"
            ) from None
    if configured is not None:
        return canonical_backend_name(configured)
    return canonical_backend_name(default)


def make_backend(name: str, plan: "ProtectedPlan", **options: object) -> PlanBackend:
    """Instantiate the named backend for ``plan``."""
    return get_backend_factory(name)(plan, **options)


def _serial_factory(plan: "ProtectedPlan", **options: object) -> PlanBackend:
    if options:
        raise ConfigurationError(
            f"serial backend accepts no options, got {sorted(options)}"
        )
    return PlanBackend(plan)


def _threads_factory(plan: "ProtectedPlan", **options: object) -> PlanBackend:
    if options:
        raise ConfigurationError(
            f"threads backend accepts no options, got {sorted(options)}"
        )
    return ThreadsBackend(plan)


def _processes_factory(plan: "ProtectedPlan", **options: object) -> PlanBackend:
    from repro.perf.process_backend import ProcessBackend

    return ProcessBackend(plan, **options)  # type: ignore[arg-type]


register_backend("serial", _serial_factory)
register_backend("threads", _threads_factory)
register_backend("processes", _processes_factory)
_PROTECTED.update(BUILTIN_BACKENDS)
