"""Analytical rounding-error bounds (Section III-C).

Checksum invariants over floating-point data never hold exactly; a bound
``tau`` separates rounding noise from real errors.  Three bounds are
implemented:

* :class:`SparseBlockBound` — the paper's contribution: a per-block bound
  that uses the block's *actual* non-empty column count ``n_k`` instead of
  the full dimension ``n``, giving far tighter thresholds on sparse data::

      |t1_k - t2_k| < ((n_k + 2 b_s - 2) * sum_i ||a_i||_2
                        + n_k * ||c_k||_2) * eps_M * beta

  with ``beta = ||b||_2`` and the sum over the block's rows.

* :class:`DenseAnalyticalBound` — Roy-Chowdhury & Banerjee's whole-matrix
  bound (the paper's eq. for dense MV), used for ablation::

      |t1 - t2| < ((n + 2 m - 2) * sum_{i=1..m} ||a_i||_2
                    + n * ||c||_2) * eps_M * beta

* :class:`NormBound` — the ``tau = ||b||_2`` heuristic of Sloan et al.
  [30], the bound the paper's dense-check baseline uses in Section V-B.

All bounds expose ``thresholds(beta, blocks=None) -> ndarray`` so detectors
can treat them uniformly (scalar bounds broadcast over blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.checksum import ChecksumMatrix
from repro.core.config import MACHINE_EPSILON
from repro.errors import ConfigurationError
from repro.kernels.base import ACCUMULATION_DTYPE


@runtime_checkable
class Bound(Protocol):
    """Anything usable as a detector bound: per-block thresholds from beta.

    Satisfied structurally by the three analytical bounds here and by
    :class:`repro.core.calibration.EmpiricalBound`.
    """

    def thresholds(self, beta: float, blocks: np.ndarray | None = None) -> np.ndarray: ...


@dataclass(frozen=True)
class SparseBlockBound:
    """The paper's per-block analytical rounding-error bound.

    Attributes:
        constants: per-block factors ``((n_k + 2 b_s - 2) * sum ||a_i||_2 +
            n_k * ||c_k||_2) * eps_M``; multiply by ``beta`` at run time.
        scale: extra multiplier (1.0 = bound exactly as derived).
    """

    constants: np.ndarray
    scale: float = 1.0

    @classmethod
    def from_checksum(
        cls,
        checksum: ChecksumMatrix,
        scale: float = 1.0,
        epsilon: float = MACHINE_EPSILON,
    ) -> "SparseBlockBound":
        """Precompute the per-block constants from the checksum metadata.

        ``epsilon`` is the unit roundoff of the storage dtype the bound
        models (``eps_M`` in the paper); the float64 default reproduces
        the historic behaviour bit for bit.  Narrow-storage pipelines pass
        the value from :meth:`repro.core.dtypes.DtypePolicy.epsilon_for`.
        """
        if scale <= 0:
            raise ConfigurationError(f"bound scale must be positive, got {scale}")
        if epsilon <= 0:
            raise ConfigurationError(f"bound epsilon must be positive, got {epsilon}")
        n_k = checksum.nonempty_columns.astype(ACCUMULATION_DTYPE)
        lengths = checksum.partition.block_lengths().astype(ACCUMULATION_DTYPE)
        constants = (
            (n_k + 2.0 * lengths - 2.0) * checksum.row_norm_sums
            + n_k * checksum.checksum_norms
        ) * epsilon
        return cls(constants=constants, scale=scale)

    def thresholds(self, beta: float, blocks: np.ndarray | None = None) -> np.ndarray:
        """Per-block thresholds ``tau_k(beta)`` (optionally a subset)."""
        constants = self.constants if blocks is None else self.constants[blocks]
        return self.scale * constants * beta

    def beta_coefficients(self) -> np.ndarray:
        """Per-block factors ``c_k`` with ``thresholds(beta) == c_k * beta``.

        All analytic bounds are linear in ``beta``; precomputing the
        coefficients lets planned detection fill a threshold buffer with
        one in-place multiply per check.  ``self.scale * constants`` is
        evaluated first here exactly as in :meth:`thresholds` (left
        association), so ``coefficients * beta`` is bit-identical.
        """
        return self.scale * self.constants


@dataclass(frozen=True)
class DenseAnalyticalBound:
    """Roy-Chowdhury & Banerjee's whole-matrix bound ([35] in the paper)."""

    constant: float
    n_blocks: int
    scale: float = 1.0

    @classmethod
    def from_checksum(
        cls,
        checksum: ChecksumMatrix,
        scale: float = 1.0,
        epsilon: float = MACHINE_EPSILON,
    ) -> "DenseAnalyticalBound":
        """Derive the single whole-matrix constant.

        Uses the full column dimension ``n`` everywhere a sparse block
        bound would use ``n_k`` — exactly the looseness the paper fixes.
        ``epsilon`` is the storage dtype's unit roundoff, as in
        :meth:`SparseBlockBound.from_checksum`.
        """
        if scale <= 0:
            raise ConfigurationError(f"bound scale must be positive, got {scale}")
        if epsilon <= 0:
            raise ConfigurationError(f"bound epsilon must be positive, got {epsilon}")
        m = float(checksum.partition.n_rows)
        n = float(checksum.matrix.n_cols)
        total_row_norms = float(checksum.row_norm_sums.sum())
        # ||c||_2 of the *dense* checksum vector c = w^T A: aggregate the
        # per-block checksum rows (they tile disjoint row sets of A, and the
        # dense c is their column-wise sum; the norm of the sum is bounded
        # by the root-sum-square we can compute without re-encoding).
        c_norm = float(np.sqrt(np.sum(checksum.checksum_norms**2)))
        constant = ((n + 2.0 * m - 2.0) * total_row_norms + n * c_norm) * epsilon
        return cls(constant=constant, n_blocks=checksum.n_blocks, scale=scale)

    def thresholds(self, beta: float, blocks: np.ndarray | None = None) -> np.ndarray:
        count = self.n_blocks if blocks is None else len(blocks)
        return np.full(count, self.scale * self.constant * beta)

    def beta_coefficients(self) -> np.ndarray:
        """Per-block ``c_k`` with ``thresholds(beta) == c_k * beta`` (see
        :meth:`SparseBlockBound.beta_coefficients`)."""
        return np.full(self.n_blocks, self.scale * self.constant)


@dataclass(frozen=True)
class NormBound:
    """The ``tau = ||b||_2`` bound of Sloan et al. [30].

    Independent of the matrix; the paper applies it to the dense-check
    baseline (Section V-B).  Dramatically loose for well-scaled data,
    which is why the baseline's coverage collapses in Figure 7.
    """

    n_blocks: int
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"bound scale must be positive, got {self.scale}")

    def thresholds(self, beta: float, blocks: np.ndarray | None = None) -> np.ndarray:
        count = self.n_blocks if blocks is None else len(blocks)
        return np.full(count, self.scale * beta)

    def beta_coefficients(self) -> np.ndarray:
        """Per-block ``c_k`` with ``thresholds(beta) == c_k * beta`` (see
        :meth:`SparseBlockBound.beta_coefficients`)."""
        return np.full(self.n_blocks, self.scale)


def make_bound(
    kind: str,
    checksum: ChecksumMatrix,
    scale: float = 1.0,
    epsilon: float = MACHINE_EPSILON,
) -> Bound:
    """Factory dispatching on the :class:`repro.core.config.AbftConfig` kind.

    ``epsilon`` is the unit roundoff of the storage dtype (the dtype
    policy's :meth:`~repro.core.dtypes.DtypePolicy.epsilon_for` for the
    protected matrix); the norm bound is matrix- and dtype-independent
    and ignores it.
    """
    if kind == "sparse":
        return SparseBlockBound.from_checksum(checksum, scale, epsilon=epsilon)
    if kind == "dense":
        return DenseAnalyticalBound.from_checksum(checksum, scale, epsilon=epsilon)
    if kind == "norm":
        return NormBound(n_blocks=checksum.n_blocks, scale=scale)
    raise ConfigurationError(f"unknown bound kind {kind!r}")
