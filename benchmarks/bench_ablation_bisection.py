"""Ablation — bisection early-stop fraction (DESIGN.md decision 5).

The partial-recomputation baseline stops its localization descent at 40 %
of the complete traversal (the setting the paper adopts from [30]).
Sweeping the fraction exposes the probe-cost / recompute-size trade-off:
shallow stops recompute big ranges, deep stops pay many probes.
"""

import numpy as np
from conftest import write_result

from repro.analysis import format_table
from repro.baselines import PartialRecomputationSpMV
from repro.sparse import suite_matrix

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
TRIALS = 10


def _campaign(matrix, fraction: float, seed: int) -> tuple[float, float]:
    """Mean protected seconds and mean recomputed rows per correction."""
    scheme = PartialRecomputationSpMV(matrix, early_stop_fraction=fraction)
    rng = np.random.default_rng(seed)
    seconds = []
    rows = []
    for _ in range(TRIALS):
        b = rng.standard_normal(matrix.n_cols)
        index = int(rng.integers(0, matrix.n_rows))
        magnitude = 10.0 * float(np.linalg.norm(b))
        state = {"armed": True}

        def tamper(stage, data, work):
            if stage == "result" and state["armed"]:
                data[index] += magnitude
                state["armed"] = False

        result = scheme.multiply(b, tamper=tamper)
        seconds.append(result.seconds)
        rows.append(sum(stop - start for start, stop in result.corrections))
    return float(np.mean(seconds)), float(np.mean(rows))


def test_bisection_early_stop_ablation(benchmark, full_suite):
    matrix = suite_matrix("msc10848")
    rows_out = []
    seconds_by_fraction = {}
    for fraction in FRACTIONS:
        seconds, rows = _campaign(matrix, fraction, seed=21)
        seconds_by_fraction[fraction] = seconds
        rows_out.append(
            (f"{fraction:.0%}", f"{seconds * 1e6:.1f} us", f"{rows:.0f} rows")
        )
    table = format_table(
        ("traversal depth", "mean protected time", "mean recomputed rows"),
        rows_out,
        title="Ablation — bisection early stop (msc10848 analogue)",
    )
    write_result("ablation_bisection", table)

    # Deeper traversal always shrinks the recomputed range...
    _, rows_shallow = _campaign(matrix, 0.2, seed=22)
    _, rows_deep = _campaign(matrix, 1.0, seed=22)
    assert rows_deep < rows_shallow
    # ...but full traversal pays so many probes it is not the optimum.
    assert min(seconds_by_fraction, key=seconds_by_fraction.get) < 1.0

    benchmark.pedantic(
        lambda: _campaign(matrix, 0.4, seed=23), rounds=1, iterations=1
    )
