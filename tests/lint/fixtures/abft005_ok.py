"""Fixture: narrow handlers and cleanup-then-reraise are sanctioned."""


def run_trial(trial):
    try:
        return trial()
    except ValueError:
        return None


def cleanup(trial, release):
    try:
        return trial()
    except Exception:
        release()
        raise
